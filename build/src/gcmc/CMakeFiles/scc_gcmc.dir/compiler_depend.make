# Empty compiler generated dependencies file for scc_gcmc.
# This may be replaced when dependencies are built.
