file(REMOVE_RECURSE
  "CMakeFiles/scc_gcmc.dir/app.cpp.o"
  "CMakeFiles/scc_gcmc.dir/app.cpp.o.d"
  "CMakeFiles/scc_gcmc.dir/system.cpp.o"
  "CMakeFiles/scc_gcmc.dir/system.cpp.o.d"
  "libscc_gcmc.a"
  "libscc_gcmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_gcmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
