file(REMOVE_RECURSE
  "libscc_gcmc.a"
)
