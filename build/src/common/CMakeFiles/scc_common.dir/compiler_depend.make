# Empty compiler generated dependencies file for scc_common.
# This may be replaced when dependencies are built.
