file(REMOVE_RECURSE
  "libscc_ircce.a"
)
