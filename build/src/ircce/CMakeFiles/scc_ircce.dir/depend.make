# Empty dependencies file for scc_ircce.
# This may be replaced when dependencies are built.
