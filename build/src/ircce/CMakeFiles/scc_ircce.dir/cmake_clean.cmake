file(REMOVE_RECURSE
  "CMakeFiles/scc_ircce.dir/ircce.cpp.o"
  "CMakeFiles/scc_ircce.dir/ircce.cpp.o.d"
  "libscc_ircce.a"
  "libscc_ircce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_ircce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
