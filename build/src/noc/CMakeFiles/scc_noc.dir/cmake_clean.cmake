file(REMOVE_RECURSE
  "CMakeFiles/scc_noc.dir/contention.cpp.o"
  "CMakeFiles/scc_noc.dir/contention.cpp.o.d"
  "CMakeFiles/scc_noc.dir/topology.cpp.o"
  "CMakeFiles/scc_noc.dir/topology.cpp.o.d"
  "CMakeFiles/scc_noc.dir/traffic.cpp.o"
  "CMakeFiles/scc_noc.dir/traffic.cpp.o.d"
  "libscc_noc.a"
  "libscc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
