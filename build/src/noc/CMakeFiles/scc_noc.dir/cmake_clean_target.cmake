file(REMOVE_RECURSE
  "libscc_noc.a"
)
