file(REMOVE_RECURSE
  "CMakeFiles/scc_lwnb.dir/lwnb.cpp.o"
  "CMakeFiles/scc_lwnb.dir/lwnb.cpp.o.d"
  "libscc_lwnb.a"
  "libscc_lwnb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_lwnb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
