# Empty compiler generated dependencies file for scc_lwnb.
# This may be replaced when dependencies are built.
