file(REMOVE_RECURSE
  "libscc_lwnb.a"
)
