file(REMOVE_RECURSE
  "libscc_sim.a"
)
