file(REMOVE_RECURSE
  "libscc_mem.a"
)
