file(REMOVE_RECURSE
  "CMakeFiles/scc_mem.dir/cache.cpp.o"
  "CMakeFiles/scc_mem.dir/cache.cpp.o.d"
  "CMakeFiles/scc_mem.dir/latency.cpp.o"
  "CMakeFiles/scc_mem.dir/latency.cpp.o.d"
  "CMakeFiles/scc_mem.dir/mpb.cpp.o"
  "CMakeFiles/scc_mem.dir/mpb.cpp.o.d"
  "libscc_mem.a"
  "libscc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
