# Empty dependencies file for scc_mem.
# This may be replaced when dependencies are built.
