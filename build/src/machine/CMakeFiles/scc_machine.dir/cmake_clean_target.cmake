file(REMOVE_RECURSE
  "libscc_machine.a"
)
