# Empty compiler generated dependencies file for scc_machine.
# This may be replaced when dependencies are built.
