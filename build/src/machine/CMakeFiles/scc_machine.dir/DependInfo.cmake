
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/core_api.cpp" "src/machine/CMakeFiles/scc_machine.dir/core_api.cpp.o" "gcc" "src/machine/CMakeFiles/scc_machine.dir/core_api.cpp.o.d"
  "/root/repo/src/machine/flags.cpp" "src/machine/CMakeFiles/scc_machine.dir/flags.cpp.o" "gcc" "src/machine/CMakeFiles/scc_machine.dir/flags.cpp.o.d"
  "/root/repo/src/machine/scc_machine.cpp" "src/machine/CMakeFiles/scc_machine.dir/scc_machine.cpp.o" "gcc" "src/machine/CMakeFiles/scc_machine.dir/scc_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/scc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/scc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
