file(REMOVE_RECURSE
  "CMakeFiles/scc_machine.dir/core_api.cpp.o"
  "CMakeFiles/scc_machine.dir/core_api.cpp.o.d"
  "CMakeFiles/scc_machine.dir/flags.cpp.o"
  "CMakeFiles/scc_machine.dir/flags.cpp.o.d"
  "CMakeFiles/scc_machine.dir/scc_machine.cpp.o"
  "CMakeFiles/scc_machine.dir/scc_machine.cpp.o.d"
  "libscc_machine.a"
  "libscc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
