file(REMOVE_RECURSE
  "libscc_coll.a"
)
