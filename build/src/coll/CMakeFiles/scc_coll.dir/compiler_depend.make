# Empty compiler generated dependencies file for scc_coll.
# This may be replaced when dependencies are built.
