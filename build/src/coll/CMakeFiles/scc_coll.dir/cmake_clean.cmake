file(REMOVE_RECURSE
  "CMakeFiles/scc_coll.dir/block_split.cpp.o"
  "CMakeFiles/scc_coll.dir/block_split.cpp.o.d"
  "CMakeFiles/scc_coll.dir/collectives.cpp.o"
  "CMakeFiles/scc_coll.dir/collectives.cpp.o.d"
  "CMakeFiles/scc_coll.dir/mpb_allreduce.cpp.o"
  "CMakeFiles/scc_coll.dir/mpb_allreduce.cpp.o.d"
  "CMakeFiles/scc_coll.dir/stack.cpp.o"
  "CMakeFiles/scc_coll.dir/stack.cpp.o.d"
  "libscc_coll.a"
  "libscc_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
