file(REMOVE_RECURSE
  "CMakeFiles/scc_harness.dir/runner.cpp.o"
  "CMakeFiles/scc_harness.dir/runner.cpp.o.d"
  "CMakeFiles/scc_harness.dir/sweep.cpp.o"
  "CMakeFiles/scc_harness.dir/sweep.cpp.o.d"
  "libscc_harness.a"
  "libscc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
