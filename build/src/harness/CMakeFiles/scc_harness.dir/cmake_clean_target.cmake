file(REMOVE_RECURSE
  "libscc_harness.a"
)
