# Empty dependencies file for scc_harness.
# This may be replaced when dependencies are built.
