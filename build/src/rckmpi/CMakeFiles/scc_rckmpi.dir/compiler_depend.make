# Empty compiler generated dependencies file for scc_rckmpi.
# This may be replaced when dependencies are built.
