
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rckmpi/channel.cpp" "src/rckmpi/CMakeFiles/scc_rckmpi.dir/channel.cpp.o" "gcc" "src/rckmpi/CMakeFiles/scc_rckmpi.dir/channel.cpp.o.d"
  "/root/repo/src/rckmpi/mpi.cpp" "src/rckmpi/CMakeFiles/scc_rckmpi.dir/mpi.cpp.o" "gcc" "src/rckmpi/CMakeFiles/scc_rckmpi.dir/mpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rcce/CMakeFiles/scc_rcce.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/scc_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/ircce/CMakeFiles/scc_ircce.dir/DependInfo.cmake"
  "/root/repo/build/src/lwnb/CMakeFiles/scc_lwnb.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/scc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/scc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/scc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
