file(REMOVE_RECURSE
  "CMakeFiles/scc_rckmpi.dir/channel.cpp.o"
  "CMakeFiles/scc_rckmpi.dir/channel.cpp.o.d"
  "CMakeFiles/scc_rckmpi.dir/mpi.cpp.o"
  "CMakeFiles/scc_rckmpi.dir/mpi.cpp.o.d"
  "libscc_rckmpi.a"
  "libscc_rckmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_rckmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
