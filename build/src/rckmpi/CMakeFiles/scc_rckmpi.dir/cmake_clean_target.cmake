file(REMOVE_RECURSE
  "libscc_rckmpi.a"
)
