# Empty compiler generated dependencies file for test_block_split.
# This may be replaced when dependencies are built.
