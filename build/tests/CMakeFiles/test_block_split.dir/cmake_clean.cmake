file(REMOVE_RECURSE
  "CMakeFiles/test_block_split.dir/coll/test_block_split.cpp.o"
  "CMakeFiles/test_block_split.dir/coll/test_block_split.cpp.o.d"
  "test_block_split"
  "test_block_split.pdb"
  "test_block_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
