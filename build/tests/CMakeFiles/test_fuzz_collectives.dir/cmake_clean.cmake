file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_collectives.dir/integration/test_fuzz_collectives.cpp.o"
  "CMakeFiles/test_fuzz_collectives.dir/integration/test_fuzz_collectives.cpp.o.d"
  "test_fuzz_collectives"
  "test_fuzz_collectives.pdb"
  "test_fuzz_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
