# Empty compiler generated dependencies file for test_fuzz_collectives.
# This may be replaced when dependencies are built.
