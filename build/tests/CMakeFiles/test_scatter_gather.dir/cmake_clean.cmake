file(REMOVE_RECURSE
  "CMakeFiles/test_scatter_gather.dir/coll/test_scatter_gather.cpp.o"
  "CMakeFiles/test_scatter_gather.dir/coll/test_scatter_gather.cpp.o.d"
  "test_scatter_gather"
  "test_scatter_gather.pdb"
  "test_scatter_gather[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scatter_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
