# Empty dependencies file for test_scatter_gather.
# This may be replaced when dependencies are built.
