# Empty dependencies file for test_mpb.
# This may be replaced when dependencies are built.
