file(REMOVE_RECURSE
  "CMakeFiles/test_mpb.dir/mem/test_mpb.cpp.o"
  "CMakeFiles/test_mpb.dir/mem/test_mpb.cpp.o.d"
  "test_mpb"
  "test_mpb.pdb"
  "test_mpb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
