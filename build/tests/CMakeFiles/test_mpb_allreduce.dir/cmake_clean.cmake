file(REMOVE_RECURSE
  "CMakeFiles/test_mpb_allreduce.dir/coll/test_mpb_allreduce.cpp.o"
  "CMakeFiles/test_mpb_allreduce.dir/coll/test_mpb_allreduce.cpp.o.d"
  "test_mpb_allreduce"
  "test_mpb_allreduce.pdb"
  "test_mpb_allreduce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpb_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
