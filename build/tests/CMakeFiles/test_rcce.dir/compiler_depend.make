# Empty compiler generated dependencies file for test_rcce.
# This may be replaced when dependencies are built.
