# Empty compiler generated dependencies file for test_traffic_volume.
# This may be replaced when dependencies are built.
