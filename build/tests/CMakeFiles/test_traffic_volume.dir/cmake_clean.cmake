file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_volume.dir/coll/test_traffic_volume.cpp.o"
  "CMakeFiles/test_traffic_volume.dir/coll/test_traffic_volume.cpp.o.d"
  "test_traffic_volume"
  "test_traffic_volume.pdb"
  "test_traffic_volume[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
