# Empty dependencies file for test_gcmc_app.
# This may be replaced when dependencies are built.
