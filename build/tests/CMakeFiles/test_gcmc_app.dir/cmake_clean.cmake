file(REMOVE_RECURSE
  "CMakeFiles/test_gcmc_app.dir/gcmc/test_gcmc_app.cpp.o"
  "CMakeFiles/test_gcmc_app.dir/gcmc/test_gcmc_app.cpp.o.d"
  "test_gcmc_app"
  "test_gcmc_app.pdb"
  "test_gcmc_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcmc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
