# Empty dependencies file for test_gcmc_system.
# This may be replaced when dependencies are built.
