file(REMOVE_RECURSE
  "CMakeFiles/test_gcmc_system.dir/gcmc/test_gcmc_system.cpp.o"
  "CMakeFiles/test_gcmc_system.dir/gcmc/test_gcmc_system.cpp.o.d"
  "test_gcmc_system"
  "test_gcmc_system.pdb"
  "test_gcmc_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcmc_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
