# Empty compiler generated dependencies file for test_ircce.
# This may be replaced when dependencies are built.
