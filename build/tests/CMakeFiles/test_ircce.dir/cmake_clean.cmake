file(REMOVE_RECURSE
  "CMakeFiles/test_ircce.dir/ircce/test_ircce.cpp.o"
  "CMakeFiles/test_ircce.dir/ircce/test_ircce.cpp.o.d"
  "test_ircce"
  "test_ircce.pdb"
  "test_ircce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ircce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
