file(REMOVE_RECURSE
  "CMakeFiles/test_latency_properties.dir/coll/test_latency_properties.cpp.o"
  "CMakeFiles/test_latency_properties.dir/coll/test_latency_properties.cpp.o.d"
  "test_latency_properties"
  "test_latency_properties.pdb"
  "test_latency_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
