file(REMOVE_RECURSE
  "CMakeFiles/test_core_api.dir/machine/test_core_api.cpp.o"
  "CMakeFiles/test_core_api.dir/machine/test_core_api.cpp.o.d"
  "test_core_api"
  "test_core_api.pdb"
  "test_core_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
