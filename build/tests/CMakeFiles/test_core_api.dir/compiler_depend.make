# Empty compiler generated dependencies file for test_core_api.
# This may be replaced when dependencies are built.
