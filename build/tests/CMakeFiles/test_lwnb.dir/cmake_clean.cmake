file(REMOVE_RECURSE
  "CMakeFiles/test_lwnb.dir/lwnb/test_lwnb.cpp.o"
  "CMakeFiles/test_lwnb.dir/lwnb/test_lwnb.cpp.o.d"
  "test_lwnb"
  "test_lwnb.pdb"
  "test_lwnb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lwnb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
