# Empty dependencies file for test_lwnb.
# This may be replaced when dependencies are built.
