file(REMOVE_RECURSE
  "CMakeFiles/collective_playground.dir/collective_playground.cpp.o"
  "CMakeFiles/collective_playground.dir/collective_playground.cpp.o.d"
  "collective_playground"
  "collective_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
