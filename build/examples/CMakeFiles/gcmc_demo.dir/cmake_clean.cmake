file(REMOVE_RECURSE
  "CMakeFiles/gcmc_demo.dir/gcmc_demo.cpp.o"
  "CMakeFiles/gcmc_demo.dir/gcmc_demo.cpp.o.d"
  "gcmc_demo"
  "gcmc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
