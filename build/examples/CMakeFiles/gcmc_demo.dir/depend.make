# Empty dependencies file for gcmc_demo.
# This may be replaced when dependencies are built.
