file(REMOVE_RECURSE
  "CMakeFiles/fig10_gcmc_app.dir/fig10_gcmc_app.cc.o"
  "CMakeFiles/fig10_gcmc_app.dir/fig10_gcmc_app.cc.o.d"
  "fig10_gcmc_app"
  "fig10_gcmc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gcmc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
