# Empty dependencies file for fig10_gcmc_app.
# This may be replaced when dependencies are built.
