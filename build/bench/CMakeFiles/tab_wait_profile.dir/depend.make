# Empty dependencies file for tab_wait_profile.
# This may be replaced when dependencies are built.
