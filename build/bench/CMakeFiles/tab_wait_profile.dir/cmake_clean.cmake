file(REMOVE_RECURSE
  "CMakeFiles/tab_wait_profile.dir/tab_wait_profile.cc.o"
  "CMakeFiles/tab_wait_profile.dir/tab_wait_profile.cc.o.d"
  "tab_wait_profile"
  "tab_wait_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_wait_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
