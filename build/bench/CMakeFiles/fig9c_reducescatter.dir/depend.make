# Empty dependencies file for fig9c_reducescatter.
# This may be replaced when dependencies are built.
