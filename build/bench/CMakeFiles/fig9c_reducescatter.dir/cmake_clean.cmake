file(REMOVE_RECURSE
  "CMakeFiles/fig9c_reducescatter.dir/fig9c_reducescatter.cc.o"
  "CMakeFiles/fig9c_reducescatter.dir/fig9c_reducescatter.cc.o.d"
  "fig9c_reducescatter"
  "fig9c_reducescatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9c_reducescatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
