# Empty compiler generated dependencies file for fig9f_allreduce.
# This may be replaced when dependencies are built.
