file(REMOVE_RECURSE
  "CMakeFiles/fig9f_allreduce.dir/fig9f_allreduce.cc.o"
  "CMakeFiles/fig9f_allreduce.dir/fig9f_allreduce.cc.o.d"
  "fig9f_allreduce"
  "fig9f_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9f_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
