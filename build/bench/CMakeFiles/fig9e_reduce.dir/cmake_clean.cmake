file(REMOVE_RECURSE
  "CMakeFiles/fig9e_reduce.dir/fig9e_reduce.cc.o"
  "CMakeFiles/fig9e_reduce.dir/fig9e_reduce.cc.o.d"
  "fig9e_reduce"
  "fig9e_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9e_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
