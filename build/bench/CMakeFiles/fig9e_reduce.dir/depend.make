# Empty dependencies file for fig9e_reduce.
# This may be replaced when dependencies are built.
