file(REMOVE_RECURSE
  "CMakeFiles/fig9d_broadcast.dir/fig9d_broadcast.cc.o"
  "CMakeFiles/fig9d_broadcast.dir/fig9d_broadcast.cc.o.d"
  "fig9d_broadcast"
  "fig9d_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9d_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
