# Empty dependencies file for fig9d_broadcast.
# This may be replaced when dependencies are built.
