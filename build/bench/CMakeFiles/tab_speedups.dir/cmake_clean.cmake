file(REMOVE_RECURSE
  "CMakeFiles/tab_speedups.dir/tab_speedups.cc.o"
  "CMakeFiles/tab_speedups.dir/tab_speedups.cc.o.d"
  "tab_speedups"
  "tab_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
