file(REMOVE_RECURSE
  "CMakeFiles/abl_mpb_bug.dir/abl_mpb_bug.cc.o"
  "CMakeFiles/abl_mpb_bug.dir/abl_mpb_bug.cc.o.d"
  "abl_mpb_bug"
  "abl_mpb_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mpb_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
