# Empty dependencies file for abl_mpb_bug.
# This may be replaced when dependencies are built.
