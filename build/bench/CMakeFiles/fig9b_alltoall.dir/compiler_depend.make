# Empty compiler generated dependencies file for fig9b_alltoall.
# This may be replaced when dependencies are built.
