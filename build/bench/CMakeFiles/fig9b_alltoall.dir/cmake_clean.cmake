file(REMOVE_RECURSE
  "CMakeFiles/fig9b_alltoall.dir/fig9b_alltoall.cc.o"
  "CMakeFiles/fig9b_alltoall.dir/fig9b_alltoall.cc.o.d"
  "fig9b_alltoall"
  "fig9b_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
