# Empty dependencies file for fig9a_allgather.
# This may be replaced when dependencies are built.
