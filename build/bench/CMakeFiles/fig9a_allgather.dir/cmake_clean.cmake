file(REMOVE_RECURSE
  "CMakeFiles/fig9a_allgather.dir/fig9a_allgather.cc.o"
  "CMakeFiles/fig9a_allgather.dir/fig9a_allgather.cc.o.d"
  "fig9a_allgather"
  "fig9a_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
