# Empty dependencies file for tab_block_split.
# This may be replaced when dependencies are built.
