file(REMOVE_RECURSE
  "CMakeFiles/tab_block_split.dir/tab_block_split.cc.o"
  "CMakeFiles/tab_block_split.dir/tab_block_split.cc.o.d"
  "tab_block_split"
  "tab_block_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_block_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
