# bench-smoke regression gate, run as a ctest (label "bench-smoke"):
# regenerates one fig9f_allreduce point per variant (552 doubles -- the
# paper's Allreduce spotlight size) and diffs the resulting scc-bench-v1
# JSON against the committed baseline with bench/compare. The simulator is
# deterministic, so any drift beyond the compare tolerance is a real model
# change -- either a regression or an intentional recalibration that must
# re-commit the baseline.
#
# Required -D variables: FIG9F, COMPARE (target binaries), BASELINE
# (committed JSON), WORK_DIR (scratch; bench_results/ is written inside).
foreach(var FIG9F COMPARE BASELINE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
# --hist adds the per-variant tail-latency histogram block to the JSON;
# compare gates it two-sided whenever the baseline carries one.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    SCC_BENCH_FROM=552 SCC_BENCH_TO=552 SCC_BENCH_REPS=2
    "${FIG9F}" --hist
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "fig9f_allreduce failed (exit ${bench_rc})")
endif()

execute_process(
  COMMAND "${COMPARE}"
    "--baseline=${BASELINE}"
    "--current=${WORK_DIR}/bench_results/fig9f_allreduce.json"
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
    "bench-smoke gate failed (exit ${compare_rc}); if the latency change is "
    "intentional, re-commit bench_results/baselines/fig9f.json from the "
    "fresh ${WORK_DIR}/bench_results/fig9f_allreduce.json")
endif()
