# Traffic-generator regression gate, run as a ctest (labels "bench-smoke
# nbc"). Three checks:
#
#   1. Host-parallelism byte-identity: the full artifact (gated JSON and
#      CSV table) must be identical for every (--jobs, --workers)
#      combination -- the fan-out over scenarios and the PDES drain inside
#      each machine are execution strategies, not model inputs.
#   2. Overlap win: the non-blocking 2-lane drain must finish the offered
#      load strictly sooner than the serialized blocking drain (the
#      makespan column of the CSV) -- the headline claim of the open-loop
#      harness, pinned so it cannot silently rot.
#   3. Baseline diff: every gated column (p50/p99/p999/makespan, all
#      SIMULATED time) against the committed baseline, TWO-SIDED with a
#      tight tolerance -- a tail quantile drifting low means the schedule
#      or the overlap behavior changed, which is exactly as reportable as
#      a regression. Regenerate the baseline with the exact command below.
#
# Required -D variables: TRAFFIC_GEN, COMPARE (target binaries), BASELINE
# (committed JSON), WORK_DIR (scratch; bench_results/ is written inside).
foreach(var TRAFFIC_GEN COMPARE BASELINE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "traffic_gen_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

set(combos "1,1" "2,2" "8,8")
foreach(combo IN LISTS combos)
  string(REPLACE "," ";" pair "${combo}")
  list(GET pair 0 jobs)
  list(GET pair 1 workers)
  set(dir "${WORK_DIR}/j${jobs}w${workers}")
  file(MAKE_DIRECTORY "${dir}")
  execute_process(
    COMMAND "${TRAFFIC_GEN}" --jobs=${jobs} --workers=${workers}
    WORKING_DIRECTORY "${dir}"
    RESULT_VARIABLE bench_rc)
  if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
      "traffic_gen --jobs=${jobs} --workers=${workers} failed "
      "(exit ${bench_rc})")
  endif()
endforeach()

foreach(artifact traffic_gen.json traffic_gen.csv)
  foreach(combo "2,2" "8,8")
    string(REPLACE "," ";" pair "${combo}")
    list(GET pair 0 jobs)
    list(GET pair 1 workers)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
        "${WORK_DIR}/j1w1/bench_results/${artifact}"
        "${WORK_DIR}/j${jobs}w${workers}/bench_results/${artifact}"
      RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
      message(FATAL_ERROR
        "${artifact} differs between --jobs=1/--workers=1 and "
        "--jobs=${jobs}/--workers=${workers}: host parallelism leaked into "
        "a simulated artifact")
    endif()
  endforeach()
endforeach()

# Overlap-win gate: makespan(lightweight_nbc_lanes2) < makespan of the
# serialized drain, read from the deterministic CSV. Compared in integer
# nanoseconds (CMake math() has no floats; the column is printed in us
# with 3 decimals, so stripping the dot yields exact ns).
file(STRINGS "${WORK_DIR}/j1w1/bench_results/traffic_gen.csv" traffic_rows)
set(serialized_makespan "")
set(nbc2_makespan "")
foreach(row IN LISTS traffic_rows)
  if(row MATCHES "^lightweight_serialized,.*,([0-9]+\\.[0-9]+),[0-9]+$")
    set(serialized_makespan "${CMAKE_MATCH_1}")
  elseif(row MATCHES "^lightweight_nbc_lanes2,.*,([0-9]+\\.[0-9]+),[0-9]+$")
    set(nbc2_makespan "${CMAKE_MATCH_1}")
  endif()
endforeach()
if(serialized_makespan STREQUAL "" OR nbc2_makespan STREQUAL "")
  message(FATAL_ERROR "traffic_gen.csv is missing the makespan rows")
endif()
string(REPLACE "." "" serialized_ns "${serialized_makespan}")
string(REPLACE "." "" nbc2_ns "${nbc2_makespan}")
if(NOT nbc2_ns LESS "${serialized_ns}")
  message(FATAL_ERROR
    "open-loop 2-lane drain (${nbc2_makespan} us) did not beat the "
    "serialized blocking drain (${serialized_makespan} us): the overlap "
    "win regressed")
endif()

execute_process(
  COMMAND "${COMPARE}"
    "--baseline=${BASELINE}"
    "--current=${WORK_DIR}/j1w1/bench_results/traffic_gen.json"
    "--key=scenario"
    "--rel-tol=0.01"
    "--two-sided"
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
    "traffic_gen gate failed (exit ${compare_rc}); these are simulated "
    "latencies, so any drift is a model/schedule change -- if intentional, "
    "re-commit bench_results/baselines/traffic_gen.json from the fresh "
    "${WORK_DIR}/j1w1/bench_results/traffic_gen.json")
endif()
