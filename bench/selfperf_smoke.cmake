# selfperf regression gate, run as a ctest (label "bench-smoke"): runs the
# simulator self-performance benchmark in a reduced configuration and diffs
# its scc-bench-v1 JSON (lower-is-better wall_ms per scenario) against the
# committed baseline with bench/compare. Host wall-clock is noisy -- CI
# machines differ and share cores -- so the tolerance is deliberately wide
# (rel 3.0 + abs 200 ms): the gate only catches catastrophic simulator
# slowdowns (e.g. reintroducing per-event allocations in the engine hot
# loop), not percent-level drift. The baseline must be regenerated with the
# exact command below.
#
# Required -D variables: SELFPERF, COMPARE (target binaries), BASELINE
# (committed JSON), WORK_DIR (scratch; bench_results/ is written inside).
foreach(var SELFPERF COMPARE BASELINE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "selfperf_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(
  COMMAND "${SELFPERF}"
    --events=1000000 --from=540 --to=580 --step=20 --reps=1 --jobs=2
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "selfperf failed (exit ${bench_rc})")
endif()

execute_process(
  COMMAND "${COMPARE}"
    "--baseline=${BASELINE}"
    "--current=${WORK_DIR}/bench_results/selfperf.json"
    "--key=scenario"
    "--rel-tol=3.0"
    "--abs-tol=200.0"
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
    "selfperf gate failed (exit ${compare_rc}); if the wall-clock change is "
    "intentional (new hardware class, heavier model), re-commit "
    "bench_results/baselines/selfperf.json from the fresh "
    "${WORK_DIR}/bench_results/selfperf.json")
endif()
