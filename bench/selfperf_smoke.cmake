# selfperf regression gate, run as a ctest (label "bench-smoke"): runs the
# simulator self-performance benchmark in a reduced configuration and diffs
# its scc-bench-v1 JSON (lower-is-better wall_ms per scenario) against the
# committed baseline with bench/compare. Host wall-clock is noisy -- CI
# machines differ and share cores -- so the tolerance is deliberately wide
# (rel 3.0 + abs 200 ms): the gate only catches catastrophic simulator
# slowdowns (e.g. reintroducing per-event allocations in the engine hot
# loop), not percent-level drift. The baseline must be regenerated with the
# exact command below.
#
# Required -D variables: SELFPERF, COMPARE (target binaries), BASELINE
# (committed JSON), WORK_DIR (scratch; bench_results/ is written inside).
foreach(var SELFPERF COMPARE BASELINE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "selfperf_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(
  COMMAND "${SELFPERF}"
    --events=1000000 --from=540 --to=580 --step=20 --reps=1 --jobs=2
    --pdes-steps=200
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "selfperf failed (exit ${bench_rc})")
endif()

# Intra-run parallel drain overhead gate: the conservative-PDES big mesh
# with 2 workers must stay within 1.5x of the same run drained serially.
# On a multicore host the workers row should *beat* the serial row (that is
# the events/sec win the parallel drain exists for); single-core CI runners
# cannot show a speedup, so the enforced bound is "the window protocol's
# barriers are cheap", which is host-shape independent.
file(STRINGS "${WORK_DIR}/bench_results/selfperf.csv" selfperf_rows)
set(pdes_serial_ms "")
set(pdes_workers_ms "")
foreach(row IN LISTS selfperf_rows)
  if(row MATCHES "^pdes_mesh_serial,[0-9]+,([0-9.]+),")
    set(pdes_serial_ms "${CMAKE_MATCH_1}")
  elseif(row MATCHES "^pdes_mesh_workers[0-9]+,[0-9]+,([0-9.]+),")
    set(pdes_workers_ms "${CMAKE_MATCH_1}")
  endif()
endforeach()
if(pdes_serial_ms STREQUAL "" OR pdes_workers_ms STREQUAL "")
  message(FATAL_ERROR "selfperf.csv is missing the pdes_mesh rows")
endif()
# CMake math() is integer-only: compare in tenths of a millisecond.
string(REGEX REPLACE "^([0-9]+)\\.([0-9]).*" "\\1\\2" serial_tenths
  "${pdes_serial_ms}")
string(REGEX REPLACE "^([0-9]+)\\.([0-9]).*" "\\1\\2" workers_tenths
  "${pdes_workers_ms}")
math(EXPR pdes_budget_tenths "(${serial_tenths} * 15) / 10")
if(workers_tenths GREATER "${pdes_budget_tenths}")
  message(FATAL_ERROR
    "pdes_mesh_workers took ${pdes_workers_ms} ms against "
    "${pdes_serial_ms} ms serial (> 1.5x): the parallel drain's "
    "window/barrier overhead regressed")
endif()

# Collective-workload partitioning overhead gate: the same Allreduce on
# the partitioned machine with ONE pdes worker must stay within 1.5x of
# the serial machine. This bounds what every partitioned run pays before
# parallelism earns anything back: cross-partition posts, window barriers,
# per-slab shard merges. Host-shape independent (both rows are single
# threaded).
set(coll_serial_ms "")
set(coll_workers1_ms "")
foreach(row IN LISTS selfperf_rows)
  if(row MATCHES "^coll_allreduce_serial,[0-9]+,([0-9.]+),")
    set(coll_serial_ms "${CMAKE_MATCH_1}")
  elseif(row MATCHES "^coll_allreduce_workers1,[0-9]+,([0-9.]+),")
    set(coll_workers1_ms "${CMAKE_MATCH_1}")
  endif()
endforeach()
if(coll_serial_ms STREQUAL "" OR coll_workers1_ms STREQUAL "")
  message(FATAL_ERROR "selfperf.csv is missing the coll_allreduce rows")
endif()
string(REGEX REPLACE "^([0-9]+)\\.([0-9]).*" "\\1\\2" coll_serial_tenths
  "${coll_serial_ms}")
string(REGEX REPLACE "^([0-9]+)\\.([0-9]).*" "\\1\\2" coll_workers1_tenths
  "${coll_workers1_ms}")
math(EXPR coll_budget_tenths "(${coll_serial_tenths} * 15) / 10")
if(coll_workers1_tenths GREATER "${coll_budget_tenths}")
  message(FATAL_ERROR
    "coll_allreduce_workers1 took ${coll_workers1_ms} ms against "
    "${coll_serial_ms} ms on the serial machine (> 1.5x): the partitioned "
    "machine's cross-post/window overhead regressed")
endif()

execute_process(
  COMMAND "${COMPARE}"
    "--baseline=${BASELINE}"
    "--current=${WORK_DIR}/bench_results/selfperf.json"
    "--key=scenario"
    "--rel-tol=3.0"
    "--abs-tol=200.0"
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
    "selfperf gate failed (exit ${compare_rc}); if the wall-clock change is "
    "intentional (new hardware class, heavier model), re-commit "
    "bench_results/baselines/selfperf.json from the fresh "
    "${WORK_DIR}/bench_results/selfperf.json")
endif()
