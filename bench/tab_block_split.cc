// Regenerates Fig. 6's block-size table (Section IV-C): block sizes and
// max:min ratios of the standard (RCCE_comm) and balanced (paper) split
// policies for the three vector lengths the figure shows, plus the
// worst/best cases across the whole 500..700 sweep.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_support.hpp"
#include "coll/block_split.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace {

void bench_split(benchmark::State& state) {
  // The split itself is nanoseconds of host work; benchmarked for
  // completeness of the binary.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scc::coll::split_blocks(n, 48, scc::coll::SplitPolicy::kBalanced));
  }
}
BENCHMARK(bench_split)->Arg(528)->Arg(552)->Arg(575);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using scc::coll::imbalance_ratio;
  using scc::coll::split_blocks;
  using scc::coll::SplitPolicy;

  std::cout << "\n=== Fig. 6: block sizes for p = 48 cores ===\n";
  scc::Table table({"elements", "std first", "std general", "std ratio",
                    "bal large", "bal small", "bal ratio"});
  for (const std::size_t n :
       {std::size_t{528}, std::size_t{552}, std::size_t{575}}) {
    const auto standard = split_blocks(n, 48, SplitPolicy::kStandard);
    const auto balanced = split_blocks(n, 48, SplitPolicy::kBalanced);
    table.add_row({scc::strprintf("%zu", n),
                   scc::strprintf("%zu", standard[0].count),
                   scc::strprintf("%zu", standard[1].count),
                   scc::strprintf("%.1f:1", imbalance_ratio(standard)),
                   scc::strprintf("%zu", balanced[0].count),
                   scc::strprintf("%zu", balanced[47].count),
                   scc::strprintf("%.2f:1", imbalance_ratio(balanced))});
  }
  table.print(std::cout);

  double worst_std = 1.0, worst_bal = 1.0;
  for (std::size_t n = 500; n <= 700; ++n) {
    worst_std = std::max(
        worst_std, imbalance_ratio(split_blocks(n, 48, SplitPolicy::kStandard)));
    worst_bal = std::max(
        worst_bal, imbalance_ratio(split_blocks(n, 48, SplitPolicy::kBalanced)));
  }
  std::cout << scc::strprintf(
      "\nworst case over 500..700 elements: standard %.1f:1, balanced "
      "%.2f:1\n(paper: up to 5.3:1 vs at most 1.1:1)\n",
      worst_std, worst_bal);
  std::filesystem::create_directories("bench_results");
  table.write_csv_file("bench_results/tab_block_split.csv");
  table.write_json_file("bench_results/tab_block_split.json", "tab_block_split");
  return 0;
}
