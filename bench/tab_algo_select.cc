// Algorithm-selection tuner: sweeps every implemented algorithm of every
// collective that has variants (coll/algos.hpp) over a size grid and emits
// the measured selection table -- which algorithm is fastest per
// (collective, n) cell, by how much it beats the paper's schedule, and
// whether the analytic Selector (coll::select_algo) agrees.
//
//   tab_algo_select [--mesh=6x4] [--variant=lightweight]
//                   [--sizes=8,48,192,552] [--reps=2] [--jobs=N]
//
// Output: aligned table on stdout plus bench_results/tab_algo_select.csv
// and .json (scc-bench-v1). The JSON is the input of the bench-smoke
// regression gate (bench/algo_select_smoke.cmake): rows are keyed by the
// "cell" column and the numeric columns -- per-cell latencies and the
// best-vs-paper speedup -- are diffed two-sided against the committed
// baseline (bench_results/baselines/tab_algo_select.json), so both a lost
// win and a selector pick that stops matching its committed latency fail
// the gate. The string columns (best_algo, selected) ride along for humans
// and are not diffed.
//
// The simulator is deterministic: identical flags reproduce identical
// numbers, so the gate's tolerance only absorbs intentional cost-model
// recalibrations (which must re-commit the baseline).
#include <cstdio>
#include <exception>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "exec/executor.hpp"
#include "harness/runner.hpp"

namespace {

using scc::coll::Algo;
using scc::coll::CollKind;
using scc::harness::Collective;
using scc::harness::PaperVariant;

/// The four collectives with an algorithm dimension.
constexpr Collective kCollectives[] = {
    Collective::kAllgather, Collective::kAlltoall, Collective::kReduceScatter,
    Collective::kAllreduce};

std::vector<std::size_t> parse_sizes(const std::string& flag) {
  std::vector<std::size_t> sizes;
  for (const std::string& part : scc::split(flag, ',')) {
    const int v = std::stoi(part);
    if (v < 1) throw std::runtime_error("--sizes entries must be >= 1");
    sizes.push_back(static_cast<std::size_t>(v));
  }
  if (sizes.empty()) throw std::runtime_error("--sizes must not be empty");
  return sizes;
}

PaperVariant parse_variant(const std::string& name) {
  for (const PaperVariant v :
       {PaperVariant::kBlocking, PaperVariant::kIrcce,
        PaperVariant::kLightweight, PaperVariant::kLwBalanced}) {
    if (name == scc::harness::variant_name(v)) return v;
  }
  throw std::runtime_error(
      "unknown --variant (Stack-based variants only): " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scc;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv);
    const auto mesh = split(flags.get("mesh", "6x4"), 'x');
    if (mesh.size() != 2) throw std::runtime_error("--mesh expects WxH");
    const PaperVariant variant =
        parse_variant(flags.get("variant", "lightweight"));
    const std::vector<std::size_t> sizes =
        parse_sizes(flags.get("sizes", "8,48,192,552"));
    const int reps = static_cast<int>(flags.get_int("reps", 2));
    const int jobs = exec::jobs_flag(flags);
    for (const std::string& name : flags.unconsumed()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return 2;
    }

    harness::RunSpec base;
    base.variant = variant;
    base.repetitions = reps;
    base.warmup = 1;
    base.verify = false;
    base.config.tiles_x = std::stoi(mesh[0]);
    base.config.tiles_y = std::stoi(mesh[1]);
    const int p = base.config.num_cores();
    const coll::Prims prims =
        variant == PaperVariant::kBlocking  ? coll::Prims::kBlocking
        : variant == PaperVariant::kIrcce   ? coll::Prims::kIrcce
                                            : coll::Prims::kLightweight;

    // Flattened (collective, n, algo) grid; every point simulates on its
    // own machine, fanned out over --jobs and merged in grid order (the
    // table is byte-identical for every jobs value).
    struct Point {
      Collective coll;
      std::size_t n;
      Algo algo;
    };
    std::vector<Point> points;
    for (const Collective c : kCollectives) {
      const CollKind kind = *harness::algo_kind(c);
      for (const std::size_t n : sizes) {
        for (const Algo a : coll::algos_for(kind)) points.push_back({c, n, a});
      }
    }
    const std::vector<double> lat_us = exec::parallel_map<double>(
        points.size(), jobs, [&](std::size_t i) {
          harness::RunSpec spec = base;
          spec.collective = points[i].coll;
          spec.elements = points[i].n;
          spec.algo = points[i].algo;
          return harness::run_collective(spec).mean_latency.us();
        });

    std::printf(
        "algorithm selection, %s variant, %d cores (%sx%s tiles), %d reps\n\n",
        std::string(harness::variant_name(variant)).c_str(), p,
        mesh[0].c_str(), mesh[1].c_str(), reps);
    Table table({"cell", "elements", "paper_us", "best_us", "best_algo",
                 "speedup", "selected", "selected_us"});
    std::size_t i = 0;
    for (const Collective c : kCollectives) {
      const CollKind kind = *harness::algo_kind(c);
      const auto& algos = coll::algos_for(kind);
      for (const std::size_t n : sizes) {
        double paper_us = 0.0, best_us = 0.0, selected_us = 0.0;
        Algo best = algos.front();
        const Algo selected = coll::select_algo(kind, n, p, prims);
        for (const Algo a : algos) {
          const double us = lat_us[i++];
          if (a == coll::paper_algo(kind)) paper_us = us;
          if (best_us == 0.0 || us < best_us) {
            best_us = us;
            best = a;
          }
          if (a == selected) selected_us = us;
        }
        table.add_row(
            {strprintf("%s/%zu",
                       std::string(harness::collective_name(c)).c_str(), n),
             strprintf("%zu", n), strprintf("%.2f", paper_us),
             strprintf("%.2f", best_us), std::string(coll::algo_name(best)),
             strprintf("%.3f", paper_us / best_us),
             std::string(coll::algo_name(selected)),
             strprintf("%.2f", selected_us)});
      }
    }
    table.print(std::cout);

    std::filesystem::create_directories("bench_results");
    table.write_csv_file("bench_results/tab_algo_select.csv");
    table.write_json_file("bench_results/tab_algo_select.json",
                          "tab_algo_select");
    std::cout << "\nseries written to bench_results/tab_algo_select.csv and "
                 "bench_results/tab_algo_select.json\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tab_algo_select: %s\n", e.what());
    return 1;
  }
}
