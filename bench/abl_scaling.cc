// Scaling ablation (beyond the paper's figures, motivated by its
// introduction: "low latency ... enables the scaling of problems to higher
// core counts"): Allreduce(552) latency and speedup-over-blocking as the
// mesh grows from 1x1 (2 cores) to the full 6x4 SCC (48 cores). Shows that
// the lightweight-stack advantage *grows* with the core count -- the
// synchronization and per-call overheads the paper removes are per-round
// costs, and ring algorithms have p-1 rounds.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_support.hpp"

namespace {

using scc::harness::Collective;
using scc::harness::PaperVariant;

struct Mesh {
  int x, y;
};

double latency_us(PaperVariant v, Mesh mesh) {
  scc::harness::RunSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.variant = v;
  spec.elements = 552;
  spec.repetitions = static_cast<int>(scc::bench::env_size("SCC_BENCH_REPS", 2));
  spec.warmup = 1;
  spec.verify = false;
  spec.config.tiles_x = mesh.x;
  spec.config.tiles_y = mesh.y;
  return scc::harness::run_collective(spec).mean_latency.us();
}

std::map<int, std::pair<double, double>>& rows() {  // cores -> (blocking, bal)
  static std::map<int, std::pair<double, double>> r;
  return r;
}

void bench_mesh(benchmark::State& state, Mesh mesh) {
  for (auto _ : state) {
    const double blocking = latency_us(PaperVariant::kBlocking, mesh);
    const double balanced = latency_us(PaperVariant::kLwBalanced, mesh);
    rows()[mesh.x * mesh.y * 2] = {blocking, balanced};
    state.SetIterationTime(blocking * 1e-6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Mesh meshes[] = {{1, 1}, {2, 1}, {2, 2}, {3, 2}, {4, 3}, {6, 4}};
  for (const Mesh mesh : meshes) {
    const std::string name =
        scc::strprintf("abl_scaling/%d_cores", mesh.x * mesh.y * 2);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [mesh](benchmark::State& state) { bench_mesh(state, mesh); })
        ->UseManualTime()
        ->Unit(benchmark::kMicrosecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\n=== Allreduce(552) scaling with core count ===\n";
  scc::Table table({"cores", "blocking", "lw-balanced", "speedup"});
  for (const auto& [cores, pair] : rows()) {
    table.add_row({scc::strprintf("%d", cores),
                   scc::strprintf("%.1f us", pair.first),
                   scc::strprintf("%.1f us", pair.second),
                   scc::strprintf("%.2fx", pair.first / pair.second)});
  }
  table.print(std::cout);
  std::filesystem::create_directories("bench_results");
  table.write_csv_file("bench_results/abl_scaling.csv");
  table.write_json_file("bench_results/abl_scaling.json", "abl_scaling");
  return 0;
}
