# bench-smoke regression gate for the degradation-robustness table, run as
# a ctest (label "bench-smoke"): regenerates bench/abl_degradation with its
# default grid (lightweight variant, 6x4 mesh, n=192, six fault scenarios)
# and diffs the scc-bench-v1 JSON two-sided against the committed baseline,
# keyed by the "cell" column. The simulator is deterministic, so drift in a
# latency, in wait_share, or -- most importantly -- a pick_ok flip (a fault
# scenario moving a measured crossover past the analytic Selector) is a
# real model change; intentional recalibrations must re-commit the
# baseline. The tolerance is wide (latencies under faults span orders of
# magnitude across cells); pick_ok is 0/1, so any flip exceeds it anyway.
#
# Required -D variables: ABL, COMPARE (target binaries), BASELINE
# (committed JSON), WORK_DIR (scratch; bench_results/ is written inside).
foreach(var ABL COMPARE BASELINE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "abl_degradation_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(
  COMMAND "${ABL}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE abl_rc)
if(NOT abl_rc EQUAL 0)
  message(FATAL_ERROR "abl_degradation failed (exit ${abl_rc})")
endif()

execute_process(
  COMMAND "${COMPARE}"
    "--baseline=${BASELINE}"
    "--current=${WORK_DIR}/bench_results/abl_degradation.json"
    "--key=cell"
    "--two-sided"
    "--rel-tol=0.25"
    "--abs-tol=0.25"
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
    "degradation gate failed (exit ${compare_rc}); if the change is "
    "intentional, re-commit bench_results/baselines/abl_degradation.json "
    "from the fresh ${WORK_DIR}/bench_results/abl_degradation.json")
endif()
