// Regression gate CLI: diffs a fresh "scc-bench-v1" JSON bench run against
// a committed baseline with per-metric tolerances.
//
//   compare --baseline=bench_results/baselines/fig9f.json
//           --current=bench_results/fig9f_allreduce.json
//           [--rel-tol=0.05] [--abs-tol=0.0] [--two-sided] [--key=elements]
//
// Exit codes: 0 = within tolerance, 1 = regression (or corrupt/missing
// input -- the gate fails closed), 2 = usage error. The bench-smoke ctest
// tier runs this after fig9f_allreduce to catch simulated-latency drift.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "metrics/bench_compare.hpp"

int main(int argc, char** argv) {
  try {
    const auto flags = scc::CliFlags::parse(argc, argv);
    const std::string baseline = flags.get("baseline", "");
    const std::string current = flags.get("current", "");
    scc::metrics::CompareOptions options;
    options.rel_tol = flags.get_double("rel-tol", options.rel_tol);
    options.abs_tol = flags.get_double("abs-tol", options.abs_tol);
    options.two_sided = flags.get_bool("two-sided", false);
    const std::string key = flags.get("key", "");
    for (const std::string& name : flags.unconsumed()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return 2;
    }
    if (baseline.empty() || current.empty()) {
      std::fprintf(stderr,
                   "usage: compare --baseline=<json> --current=<json> "
                   "[--rel-tol=R] [--abs-tol=A] [--two-sided] [--key=COL]\n");
      return 2;
    }
    if (options.rel_tol < 0.0 || options.abs_tol < 0.0) {
      std::fprintf(stderr, "tolerances must be non-negative\n");
      return 2;
    }

    const scc::metrics::CompareOutcome outcome =
        scc::metrics::compare_bench_files(baseline, current, options, key);
    std::cout << "comparing " << current << " against baseline " << baseline
              << '\n';
    scc::metrics::print_outcome(outcome, std::cout);
    return outcome.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "compare: %s\n", e.what());
    return 2;
  }
}
