// Simulator self-performance benchmark: host wall-clock throughput of the
// simulator itself, not virtual latencies. Three scenarios:
//
//   engine_hot_loop  -- a raw sim::Engine draining K self-rescheduling
//                       callables (pure push/pop/invoke: the MoveHeap +
//                       SmallCallable hot path, no machine model attached);
//   allreduce_552    -- one full collective run at the paper's Allreduce
//                       spotlight size (the end-to-end cost of an event
//                       once caches, MPB and NoC are in the loop);
//   sweep_serial /   -- a Fig. 9f-style (size x variant) sweep, first with
//   sweep_jobs          jobs=1 and then fanned out over --jobs host
//                       threads; the ratio is the host-parallel speedup.
//   pdes_mesh_serial -- the big-mesh halo-exchange scenario (48x24 tiles,
//   pdes_mesh_workers   8 column-slab partitions) drained by the
//                       conservative-PDES engine with 1 worker and then
//                       with --jobs workers; the ratio is the intra-run
//                       parallel speedup (same virtual run, same bytes).
//   coll_allreduce_* -- the spotlight Allreduce on the serial machine, on
//                       the partitioned machine with 1 PDES worker (the
//                       pure partitioning overhead, gated <= 1.5x serial
//                       by selfperf_smoke.cmake), and with --jobs workers
//                       (the collective-workload intra-run speedup).
//
//   selfperf [--events=N] [--from=A] [--to=B] [--step=S] [--reps=K]
//            [--jobs=N] [--pdes-steps=N]
//
// Prints a table (events, wall ms, ns/event, Mevents/s, speedup) and
// writes bench_results/selfperf.csv with the full data. The scc-bench-v1
// JSON (bench_results/selfperf.json) deliberately carries only the
// lower-is-better wall_ms column of the host-independent scenarios --
// bench/compare's one-sided gate treats increases as regressions, so a
// higher-is-better column (events/s, speedup) would fail on improvement,
// and sweep_jobs' wall time depends on host core count.
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "exec/executor.hpp"
#include "harness/pdes_scenario.hpp"
#include "harness/sweep.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/engine.hpp"
#include "sim/event_heap.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// One chain of self-rescheduling events; K chains interleave so the heap
/// keeps K live entries and every pop percolates through a realistic depth.
struct ChainState {
  scc::sim::Engine* engine = nullptr;
  std::uint64_t remaining = 0;
};

void arm(ChainState* s) {
  s->engine->schedule_call(s->engine->now() + scc::SimTime::from_ns(1),
                           [s] {
                             if (s->remaining == 0) return;
                             --s->remaining;
                             arm(s);
                           });
}

struct Row {
  std::string scenario;
  std::uint64_t events = 0;  // 0: not tracked (sweep scenarios)
  double wall_ms = 0.0;
  bool gated = false;  // included in the compare-gated JSON
};

/// The queue-structure microbench: the engine_hot_loop event pattern (64
/// interleaved self-rescheduling chains, jittered increments) run directly
/// against a priority-queue implementation -- no engine, no callables, so
/// the rows isolate the data structure itself (MoveHeap vs CalendarQueue).
struct QItem {
  std::uint64_t key = 0;
  std::uint64_t seq = 0;
};

template <typename Queue>
std::uint64_t drive_queue(Queue& queue, std::uint64_t pops) {
  constexpr std::uint64_t kChains = 64;
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < kChains; ++i)
    queue.push(QItem{i * 7, seq++});
  std::uint64_t checksum = 0;
  for (std::uint64_t n = 0; n < pops; ++n) {
    const QItem item = queue.pop_min();
    checksum ^= item.key + item.seq;
    const std::uint64_t jitter = (item.seq * 2654435761ULL >> 13) & 63;
    queue.push(QItem{item.key + 1 + jitter, seq++});
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto flags = scc::CliFlags::parse(argc, argv);
    const auto events_target = flags.get_int("events", 2'000'000);
    const auto from = flags.get_int("from", 500);
    const auto to = flags.get_int("to", 700);
    const auto step = flags.get_int("step", 25);
    const int reps = static_cast<int>(flags.get_int("reps", 1));
    const auto pdes_steps = flags.get_int("pdes-steps", 200);
    const int jobs = scc::exec::jobs_flag(flags);
    for (const std::string& name : flags.unconsumed()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return 2;
    }
    if (events_target < 1 || from < 1 || to < from || step < 1 || reps < 1 ||
        pdes_steps < 1) {
      std::fprintf(stderr,
                   "usage: selfperf [--events=N>=1] [--from=A] [--to=B>=A] "
                   "[--step=S>=1] [--reps=K>=1] [--jobs=N>=1] "
                   "[--pdes-steps=N>=1]\n");
      return 2;
    }

    std::vector<Row> rows;

    {
      // Scenario 1: the bare engine. 64 chains, events_target total pops.
      constexpr std::uint64_t kChains = 64;
      scc::sim::Engine engine;
      std::vector<ChainState> chains(kChains);
      const auto per_chain =
          static_cast<std::uint64_t>(events_target) / kChains;
      const auto t0 = Clock::now();
      for (ChainState& c : chains) {
        c.engine = &engine;
        c.remaining = per_chain;
        arm(&c);
      }
      engine.run();
      rows.push_back(
          Row{"engine_hot_loop", engine.events_processed(), ms_since(t0),
              /*gated=*/true});
    }

    {
      // Scenario 2: one end-to-end collective at the paper's spotlight
      // size (Allreduce, lw-balanced, 552 doubles on the full 6x4 mesh).
      scc::harness::RunSpec spec;
      spec.collective = scc::harness::Collective::kAllreduce;
      spec.variant = scc::harness::PaperVariant::kLwBalanced;
      spec.elements = 552;
      spec.repetitions = reps;
      spec.warmup = 0;
      spec.verify = false;
      const auto t0 = Clock::now();
      const scc::harness::RunResult result =
          scc::harness::run_collective(spec);
      rows.push_back(Row{"allreduce_552", result.events, ms_since(t0),
                         /*gated=*/true});
    }

    scc::harness::SweepSpec sweep;
    sweep.collective = scc::harness::Collective::kAllreduce;
    sweep.from = static_cast<std::size_t>(from);
    sweep.to = static_cast<std::size_t>(to);
    sweep.step = static_cast<std::size_t>(step);
    sweep.repetitions = reps;
    sweep.warmup = 1;
    sweep.verify = false;
    {
      sweep.jobs = 1;
      const auto t0 = Clock::now();
      (void)scc::harness::run_sweep(sweep);
      rows.push_back(Row{"sweep_serial", 0, ms_since(t0), /*gated=*/true});
    }
    const int resolved_jobs = scc::exec::resolve_jobs(jobs);
    {
      sweep.jobs = jobs;
      const auto t0 = Clock::now();
      (void)scc::harness::run_sweep(sweep);
      rows.push_back(Row{scc::strprintf("sweep_jobs%d", resolved_jobs), 0,
                         ms_since(t0), /*gated=*/false});
    }

    // Scenarios 5/6: the conservative-PDES big mesh, serial and parallel.
    // Same virtual run both times (the drain is bit-identical for any
    // worker count); only the host wall-clock differs. The serial row is
    // gated; the workers row depends on host core count, so it is reported
    // but not gated -- selfperf_smoke.cmake separately checks it beats the
    // committed serial baseline ("intra-run parallelism actually pays").
    scc::harness::PdesScenarioSpec mesh;
    mesh.tiles_x = 48;
    mesh.tiles_y = 24;
    mesh.partitions = 8;
    mesh.steps = static_cast<int>(pdes_steps);
    {
      mesh.workers = 1;
      const auto t0 = Clock::now();
      const auto result = scc::harness::run_pdes_mesh(mesh);
      rows.push_back(Row{"pdes_mesh_serial", result.events, ms_since(t0),
                         /*gated=*/true});
    }
    {
      mesh.workers = resolved_jobs;
      const auto t0 = Clock::now();
      const auto result = scc::harness::run_pdes_mesh(mesh);
      rows.push_back(Row{scc::strprintf("pdes_mesh_workers%d", resolved_jobs),
                         result.events, ms_since(t0), /*gated=*/false});
    }

    // Scenarios 7/8: the queue-structure microbench. Identical event
    // streams; same pop order by the total-order contract (the
    // differential tests pin that down) -- the checksum comparison below
    // is a cheap cross-check.
    const auto queue_pops = static_cast<std::uint64_t>(events_target);
    std::uint64_t heap_checksum = 0, calendar_checksum = 0;
    {
      struct QGreater {
        bool operator()(const QItem& a, const QItem& b) const {
          if (a.key != b.key) return a.key > b.key;
          return a.seq > b.seq;
        }
      };
      scc::sim::MoveHeap<QItem, QGreater> heap;
      const auto t0 = Clock::now();
      heap_checksum = drive_queue(heap, queue_pops);
      rows.push_back(
          Row{"queue_moveheap", queue_pops, ms_since(t0), /*gated=*/true});
    }
    {
      struct QLess {
        bool operator()(const QItem& a, const QItem& b) const {
          if (a.key != b.key) return a.key < b.key;
          return a.seq < b.seq;
        }
      };
      struct QKey {
        std::uint64_t operator()(const QItem& a) const { return a.key; }
      };
      scc::sim::CalendarQueue<QItem, QLess, QKey> calendar;
      const auto t0 = Clock::now();
      calendar_checksum = drive_queue(calendar, queue_pops);
      rows.push_back(
          Row{"queue_calendar", queue_pops, ms_since(t0), /*gated=*/true});
    }
    if (heap_checksum != calendar_checksum) {
      std::fprintf(stderr,
                   "queue microbench checksum mismatch (heap %llx vs "
                   "calendar %llx): pop orders diverged\n",
                   static_cast<unsigned long long>(heap_checksum),
                   static_cast<unsigned long long>(calendar_checksum));
      return 2;
    }

    // Scenarios 9-11: the full collective workload on the PARTITIONED
    // machine -- the same spotlight Allreduce as scenario 2, but with the
    // machine sharded into column slabs and drained by the
    // conservative-PDES engine. The workers1 row is the pure partitioning
    // overhead (cross-posts, window barriers, merged shards) with no
    // parallelism to pay for it; it is gated against the serial row by
    // selfperf_smoke.cmake (<= 1.5x) and against its committed baseline.
    // The workersN row is the host-dependent intra-run speedup (reported,
    // not gated; recorded in EXPERIMENTS.md).
    scc::harness::RunSpec coll;
    coll.collective = scc::harness::Collective::kAllreduce;
    coll.variant = scc::harness::PaperVariant::kLwBalanced;
    coll.elements = 552;
    coll.repetitions = reps;
    coll.warmup = 0;
    coll.verify = false;
    double coll_serial_ms = 0.0;
    double coll_workers_ms = 0.0;
    {
      coll.pdes_workers = 0;
      const auto t0 = Clock::now();
      const scc::harness::RunResult result =
          scc::harness::run_collective(coll);
      coll_serial_ms = ms_since(t0);
      rows.push_back(Row{"coll_allreduce_serial", result.events,
                         coll_serial_ms, /*gated=*/true});
    }
    {
      coll.pdes_workers = 1;
      const auto t0 = Clock::now();
      const scc::harness::RunResult result =
          scc::harness::run_collective(coll);
      rows.push_back(Row{"coll_allreduce_workers1", result.events,
                         ms_since(t0), /*gated=*/true});
    }
    {
      coll.pdes_workers = resolved_jobs;
      const auto t0 = Clock::now();
      const scc::harness::RunResult result =
          scc::harness::run_collective(coll);
      coll_workers_ms = ms_since(t0);
      rows.push_back(
          Row{scc::strprintf("coll_allreduce_workers%d", resolved_jobs),
              result.events, coll_workers_ms, /*gated=*/false});
    }

    scc::Table table(
        {"scenario", "events", "wall_ms", "ns_per_event", "Mevents_per_s"});
    for (const Row& r : rows) {
      table.add_row(
          {r.scenario,
           scc::strprintf("%llu", static_cast<unsigned long long>(r.events)),
           scc::strprintf("%.2f", r.wall_ms),
           r.events > 0 ? scc::strprintf("%.1f", r.wall_ms * 1e6 /
                                                     static_cast<double>(
                                                         r.events))
                        : std::string(),
           r.events > 0 ? scc::strprintf("%.2f", static_cast<double>(
                                                     r.events) /
                                                     (r.wall_ms * 1e3))
                        : std::string()});
    }
    std::cout << "=== simulator self-performance (host wall-clock) ===\n";
    table.print(std::cout);
    const double serial_ms = rows[2].wall_ms;
    const double jobs_ms = rows[3].wall_ms;
    std::cout << scc::strprintf(
        "\nsweep speedup with %d host thread(s): %.2fx "
        "(%.0f ms -> %.0f ms)\n",
        resolved_jobs, jobs_ms > 0.0 ? serial_ms / jobs_ms : 0.0, serial_ms,
        jobs_ms);
    const double pdes_serial_ms = rows[4].wall_ms;
    const double pdes_workers_ms = rows[5].wall_ms;
    std::cout << scc::strprintf(
        "pdes speedup with %d worker(s): %.2fx (%.0f ms -> %.0f ms)\n",
        resolved_jobs,
        pdes_workers_ms > 0.0 ? pdes_serial_ms / pdes_workers_ms : 0.0,
        pdes_serial_ms, pdes_workers_ms);
    std::cout << scc::strprintf(
        "collective pdes speedup with %d worker(s): %.2fx "
        "(%.0f ms serial machine -> %.0f ms partitioned)\n",
        resolved_jobs,
        coll_workers_ms > 0.0 ? coll_serial_ms / coll_workers_ms : 0.0,
        coll_serial_ms, coll_workers_ms);

    std::filesystem::create_directories("bench_results");
    table.write_csv_file("bench_results/selfperf.csv");
    scc::Table gate({"scenario", "wall_ms"});
    for (const Row& r : rows) {
      if (r.gated)
        gate.add_row({r.scenario, scc::strprintf("%.2f", r.wall_ms)});
    }
    gate.write_json_file("bench_results/selfperf.json", "selfperf");
    std::cout << "written to bench_results/selfperf.csv and "
                 "bench_results/selfperf.json\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selfperf: %s\n", e.what());
    return 2;
  }
}
