// Simulator self-performance benchmark: host wall-clock throughput of the
// simulator itself, not virtual latencies. Three scenarios:
//
//   engine_hot_loop  -- a raw sim::Engine draining K self-rescheduling
//                       callables (pure push/pop/invoke: the MoveHeap +
//                       SmallCallable hot path, no machine model attached);
//   allreduce_552    -- one full collective run at the paper's Allreduce
//                       spotlight size (the end-to-end cost of an event
//                       once caches, MPB and NoC are in the loop);
//   sweep_serial /   -- a Fig. 9f-style (size x variant) sweep, first with
//   sweep_jobs          jobs=1 and then fanned out over --jobs host
//                       threads; the ratio is the host-parallel speedup.
//
//   selfperf [--events=N] [--from=A] [--to=B] [--step=S] [--reps=K]
//            [--jobs=N]
//
// Prints a table (events, wall ms, ns/event, Mevents/s, speedup) and
// writes bench_results/selfperf.csv with the full data. The scc-bench-v1
// JSON (bench_results/selfperf.json) deliberately carries only the
// lower-is-better wall_ms column of the host-independent scenarios --
// bench/compare's one-sided gate treats increases as regressions, so a
// higher-is-better column (events/s, speedup) would fail on improvement,
// and sweep_jobs' wall time depends on host core count.
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "exec/executor.hpp"
#include "harness/sweep.hpp"
#include "sim/engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// One chain of self-rescheduling events; K chains interleave so the heap
/// keeps K live entries and every pop percolates through a realistic depth.
struct ChainState {
  scc::sim::Engine* engine = nullptr;
  std::uint64_t remaining = 0;
};

void arm(ChainState* s) {
  s->engine->schedule_call(s->engine->now() + scc::SimTime::from_ns(1),
                           [s] {
                             if (s->remaining == 0) return;
                             --s->remaining;
                             arm(s);
                           });
}

struct Row {
  std::string scenario;
  std::uint64_t events = 0;  // 0: not tracked (sweep scenarios)
  double wall_ms = 0.0;
  bool gated = false;  // included in the compare-gated JSON
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto flags = scc::CliFlags::parse(argc, argv);
    const auto events_target = flags.get_int("events", 2'000'000);
    const auto from = flags.get_int("from", 500);
    const auto to = flags.get_int("to", 700);
    const auto step = flags.get_int("step", 25);
    const int reps = static_cast<int>(flags.get_int("reps", 1));
    const int jobs = scc::exec::jobs_flag(flags);
    for (const std::string& name : flags.unconsumed()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return 2;
    }
    if (events_target < 1 || from < 1 || to < from || step < 1 || reps < 1) {
      std::fprintf(stderr,
                   "usage: selfperf [--events=N>=1] [--from=A] [--to=B>=A] "
                   "[--step=S>=1] [--reps=K>=1] [--jobs=N>=1]\n");
      return 2;
    }

    std::vector<Row> rows;

    {
      // Scenario 1: the bare engine. 64 chains, events_target total pops.
      constexpr std::uint64_t kChains = 64;
      scc::sim::Engine engine;
      std::vector<ChainState> chains(kChains);
      const auto per_chain =
          static_cast<std::uint64_t>(events_target) / kChains;
      const auto t0 = Clock::now();
      for (ChainState& c : chains) {
        c.engine = &engine;
        c.remaining = per_chain;
        arm(&c);
      }
      engine.run();
      rows.push_back(
          Row{"engine_hot_loop", engine.events_processed(), ms_since(t0),
              /*gated=*/true});
    }

    {
      // Scenario 2: one end-to-end collective at the paper's spotlight
      // size (Allreduce, lw-balanced, 552 doubles on the full 6x4 mesh).
      scc::harness::RunSpec spec;
      spec.collective = scc::harness::Collective::kAllreduce;
      spec.variant = scc::harness::PaperVariant::kLwBalanced;
      spec.elements = 552;
      spec.repetitions = reps;
      spec.warmup = 0;
      spec.verify = false;
      const auto t0 = Clock::now();
      const scc::harness::RunResult result =
          scc::harness::run_collective(spec);
      rows.push_back(Row{"allreduce_552", result.events, ms_since(t0),
                         /*gated=*/true});
    }

    scc::harness::SweepSpec sweep;
    sweep.collective = scc::harness::Collective::kAllreduce;
    sweep.from = static_cast<std::size_t>(from);
    sweep.to = static_cast<std::size_t>(to);
    sweep.step = static_cast<std::size_t>(step);
    sweep.repetitions = reps;
    sweep.warmup = 1;
    sweep.verify = false;
    {
      sweep.jobs = 1;
      const auto t0 = Clock::now();
      (void)scc::harness::run_sweep(sweep);
      rows.push_back(Row{"sweep_serial", 0, ms_since(t0), /*gated=*/true});
    }
    const int resolved_jobs = scc::exec::resolve_jobs(jobs);
    {
      sweep.jobs = jobs;
      const auto t0 = Clock::now();
      (void)scc::harness::run_sweep(sweep);
      rows.push_back(Row{scc::strprintf("sweep_jobs%d", resolved_jobs), 0,
                         ms_since(t0), /*gated=*/false});
    }

    scc::Table table(
        {"scenario", "events", "wall_ms", "ns_per_event", "Mevents_per_s"});
    for (const Row& r : rows) {
      table.add_row(
          {r.scenario,
           scc::strprintf("%llu", static_cast<unsigned long long>(r.events)),
           scc::strprintf("%.2f", r.wall_ms),
           r.events > 0 ? scc::strprintf("%.1f", r.wall_ms * 1e6 /
                                                     static_cast<double>(
                                                         r.events))
                        : std::string(),
           r.events > 0 ? scc::strprintf("%.2f", static_cast<double>(
                                                     r.events) /
                                                     (r.wall_ms * 1e3))
                        : std::string()});
    }
    std::cout << "=== simulator self-performance (host wall-clock) ===\n";
    table.print(std::cout);
    const double serial_ms = rows[2].wall_ms;
    const double jobs_ms = rows[3].wall_ms;
    std::cout << scc::strprintf(
        "\nsweep speedup with %d host thread(s): %.2fx "
        "(%.0f ms -> %.0f ms)\n",
        resolved_jobs, jobs_ms > 0.0 ? serial_ms / jobs_ms : 0.0, serial_ms,
        jobs_ms);

    std::filesystem::create_directories("bench_results");
    table.write_csv_file("bench_results/selfperf.csv");
    scc::Table gate({"scenario", "wall_ms"});
    for (const Row& r : rows) {
      if (r.gated)
        gate.add_row({r.scenario, scc::strprintf("%.2f", r.wall_ms)});
    }
    gate.write_json_file("bench_results/selfperf.json", "selfperf");
    std::cout << "written to bench_results/selfperf.csv and "
                 "bench_results/selfperf.json\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selfperf: %s\n", e.what());
    return 2;
  }
}
