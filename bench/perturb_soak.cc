// Standalone schedule-perturbation soak driver.
//
// Runs the differential conformance checker (harness/conformance.hpp) over
// randomly sampled (collective, size, mesh, split, delay) configurations
// for as many rounds as asked -- hours if desired -- outside of ctest. Any
// failure prints a replay line with the (engine seed, perturbation seed)
// pair and the process exits nonzero, so this can anchor a soak CI job.
//
//   perturb_soak --rounds=200 --seeds=32 --master-seed=1
//   perturb_soak --rounds=200 --jobs=8        # fan the seed matrix out
//   perturb_soak --collective=allreduce --delay-fs=2000000 --verbose
//   perturb_soak --rounds=1 --master-seed=7 --trace=replay.json
//   perturb_soak --rounds=1 --metrics=soak_metrics.json
//   perturb_soak --hist=soak_hist.json            # tail-latency quantiles
//   perturb_soak --collective=allgather --algo=bruck   # pin one algorithm
//   perturb_soak --faults='straggler:3x2'              # pin a fault spec
//
// Rounds whose collective has algorithm variants (coll/algos.hpp) sample
// the algorithm dimension too -- paper default, each implemented variant,
// or the auto Selector -- unless --algo pins one; the chosen algorithm is
// part of the round's deterministic (master-seed, round) draw and appears
// in the configuration line.
//
// The fault dimension (src/faults) is sampled the same way: about a third
// of the rounds degrade the machine with 1-2 random clauses (stragglers,
// DVFS steps, slow links; dead links only on meshes wide enough to
// reroute), validated against the round's mesh with FaultModel::check --
// an unlucky draw (e.g. dead links that would disconnect the mesh) falls
// back to the healthy machine rather than aborting. --faults=SPEC pins the
// dimension for every round ('' = force healthy). Faults stretch timings
// and shift schedules but must never change results; the conformance
// matrix checks exactly that.
//
// Every round is fully determined by (--master-seed, round index): a failed
// round can be reproduced alone via --rounds=1 --master-seed=<reported>,
// and --trace=<path> records every simulation of the soak (baselines and
// perturbed replays, each as its own run scope) into one chrome://tracing
// file -- the recorder's capacity bounds memory, so long soaks simply stop
// recording and report the drop count. --metrics=<path> writes the metrics
// snapshot of the last round's reference baseline (the run every perturbed
// replay was diffed against) as scc-metrics-v1 JSON; the seed-invariance
// diff of snapshots itself runs on every round regardless. --hist=<path>
// writes per-stack tail-latency histograms (p50/p90/p99/p999) merged over
// every completed simulation of the whole soak as "scc-hist-v1" JSON --
// O(1) memory however long the soak, byte-identical for any --jobs.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"
#include "faults/fault_model.hpp"
#include "harness/conformance.hpp"
#include "trace/chrome_export.hpp"

namespace {

using scc::harness::Collective;

constexpr Collective kCollectives[] = {
    Collective::kAllgather,     Collective::kAlltoall,
    Collective::kReduceScatter, Collective::kBroadcast,
    Collective::kReduce,        Collective::kAllreduce,
    Collective::kScatter,       Collective::kGather,
    Collective::kAllgatherv};

struct MeshShape {
  int x, y;
};
constexpr MeshShape kMeshes[] = {{1, 1}, {2, 1}, {3, 1}, {2, 2}, {3, 2}};

std::optional<Collective> parse_collective(const std::string& name) {
  for (const Collective c : kCollectives) {
    if (name == scc::harness::collective_name(c)) return c;
  }
  return std::nullopt;
}

/// A random mesh link of the round's topology (both tiles in-mesh and
/// adjacent). Requires at least one link (tiles_x > 1 or tiles_y > 1).
scc::faults::LinkRef sample_link(scc::Xoshiro256& rng, int tiles_x,
                                 int tiles_y) {
  const bool horizontal =
      tiles_y == 1 || (tiles_x > 1 && rng.below(2) == 0);
  if (horizontal) {
    const int x = static_cast<int>(rng.below(static_cast<std::uint64_t>(tiles_x - 1)));
    const int y = static_cast<int>(rng.below(static_cast<std::uint64_t>(tiles_y)));
    return {{x, y}, {x + 1, y}};
  }
  const int x = static_cast<int>(rng.below(static_cast<std::uint64_t>(tiles_x)));
  const int y = static_cast<int>(rng.below(static_cast<std::uint64_t>(tiles_y - 1)));
  return {{x, y}, {x, y + 1}};
}

/// The round's draw of the fault dimension: 1-2 random clauses against the
/// round's mesh. The caller validates with FaultModel::check and falls back
/// to the healthy machine when an unlucky draw (e.g. two dead links that
/// disconnect a 2x2 mesh) is invalid.
scc::faults::FaultSpec sample_faults(scc::Xoshiro256& rng, int tiles_x,
                                     int tiles_y, int cores) {
  scc::faults::FaultSpec spec;
  const bool has_links = tiles_x > 1 || tiles_y > 1;
  // Dead links need both dimensions >= 2: killing one link of a 1-wide mesh
  // always disconnects it (no alternate route exists).
  const bool can_kill = tiles_x > 1 && tiles_y > 1;
  const int clauses = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < clauses; ++i) {
    switch (rng.below(has_links ? (can_kill ? 4 : 3) : 2)) {
      case 0:
        spec.stragglers.push_back(
            {static_cast<int>(rng.below(static_cast<std::uint64_t>(cores))),
             1.5 + 0.5 * static_cast<double>(rng.below(6))});
        break;
      case 1:
        spec.dvfs.push_back(
            {static_cast<int>(rng.below(static_cast<std::uint64_t>(cores))),
             2 + static_cast<int>(rng.below(3))});
        break;
      case 2:
        spec.slow_links.push_back(
            {sample_link(rng, tiles_x, tiles_y),
             2.0 * static_cast<double>(1 + rng.below(4))});
        break;
      default:
        spec.dead_links.push_back(sample_link(rng, tiles_x, tiles_y));
        break;
    }
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto flags = scc::CliFlags::parse(argc, argv);
    const auto rounds = flags.get_int("rounds", 20);
    const auto seeds_per_config = flags.get_int("seeds", 16);
    const auto master_seed =
        static_cast<std::uint64_t>(flags.get_int("master-seed", 1));
    const auto fixed_delay_fs = flags.get_int("delay-fs", -1);
    const auto max_elements = flags.get_int("max-elements", 200);
    const std::string collective_flag = flags.get("collective", "all");
    const bool verbose = flags.get_bool("verbose", false);
    const std::string trace_path = flags.get("trace", "");
    const std::string metrics_path = flags.get("metrics", "");
    const std::string hist_path = flags.get("hist", "");
    // 0 = auto (exec::default_jobs()); an explicit value must be >= 1.
    // Rounds stay sequential (round R's report prints before R+1 starts);
    // the stack x seed matrix inside each round fans out.
    const int jobs = scc::exec::jobs_flag(flags);
    const std::string algo_flag = flags.get("algo", "");
    const bool pin_faults = flags.has("faults");
    const std::string faults_flag = flags.get("faults", "");
    for (const std::string& name : flags.unconsumed()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return 2;
    }
    if (seeds_per_config < 1) {
      std::fprintf(stderr, "--seeds must be >= 1\n");
      return 2;
    }
    if (max_elements < 1) {
      std::fprintf(stderr, "--max-elements must be >= 1\n");
      return 2;
    }
    // 1 simulated second; any useful jitter is a handful of ~1.9e6 fs core
    // cycles, and unbounded values would overflow SimTime arithmetic.
    constexpr long kMaxDelayFs = 1'000'000'000'000'000;
    if (fixed_delay_fs > kMaxDelayFs) {
      std::fprintf(stderr, "--delay-fs must be <= %ld\n", kMaxDelayFs);
      return 2;
    }
    std::optional<Collective> fixed_collective;
    if (collective_flag != "all") {
      fixed_collective = parse_collective(collective_flag);
      if (!fixed_collective) {
        std::fprintf(stderr, "unknown collective '%s'\n",
                     collective_flag.c_str());
        return 2;
      }
    }
    std::optional<scc::coll::Algo> fixed_algo;
    if (!algo_flag.empty()) {
      fixed_algo = scc::coll::parse_algo(algo_flag);
      if (!fixed_algo) {
        std::fprintf(stderr, "unknown algorithm '%s'\n", algo_flag.c_str());
        return 2;
      }
    }
    // --faults pins the fault dimension for every round ('' = always
    // healthy); without it the dimension is sampled per round below.
    std::optional<scc::faults::FaultSpec> fixed_faults;
    if (pin_faults) fixed_faults = scc::faults::FaultSpec::parse(faults_flag);

    std::optional<scc::trace::Recorder> recorder;
    if (!trace_path.empty()) recorder.emplace();
    std::optional<scc::metrics::MetricsRegistry> last_metrics;
    // One histogram per conformance cell (the three RCCE stacks, plus
    // "rckmpi"/"-nbc" cells on the rounds that produce them), keyed by the
    // report's cell names in first-seen order and merged over every round
    // -- Histogram::merge is exact, so the soak-long tail stays
    // deterministic regardless of round count or --jobs.
    std::vector<std::pair<std::string, scc::metrics::Histogram>> soak_hist;
    const auto soak_slot = [&soak_hist](const std::string& name)
        -> scc::metrics::Histogram& {
      for (auto& [n, h] : soak_hist) {
        if (n == name) return h;
      }
      soak_hist.emplace_back(name, scc::metrics::Histogram{});
      return soak_hist.back().second;
    };

    long total_runs = 0;
    long failed_rounds = 0;
    for (long round = 0; round < rounds; ++round) {
      // One RNG per round: a failing round replays from (master_seed+round)
      // alone, independent of how many rounds preceded it.
      scc::Xoshiro256 rng(master_seed + static_cast<std::uint64_t>(round));
      scc::harness::ConformanceSpec spec;
      spec.collective = fixed_collective
                            ? *fixed_collective
                            : kCollectives[rng.below(std::size(kCollectives))];
      const MeshShape mesh = kMeshes[rng.below(std::size(kMeshes))];
      spec.tiles_x = mesh.x;
      spec.tiles_y = mesh.y;
      spec.elements = 1 + rng.below(static_cast<std::uint64_t>(max_elements));
      spec.split = rng.below(2) == 0 ? scc::coll::SplitPolicy::kStandard
                                     : scc::coll::SplitPolicy::kBalanced;
      spec.engine_seed = rng();
      spec.perturb_seed_base = rng();
      spec.perturb_seeds = static_cast<int>(seeds_per_config);
      // A third of the rounds inject event delays up to ~10 core cycles
      // (1 core cycle = 1,876,173 fs) unless a fixed jitter was requested.
      spec.max_delay_fs =
          fixed_delay_fs >= 0
              ? static_cast<std::uint64_t>(fixed_delay_fs)
              : (rng.below(3) == 0 ? 1'876'173ULL * (1 + rng.below(10)) : 0);
      spec.model_contention = rng.below(3) == 0;
      // Fault dimension: pinned, or sampled on ~1/3 of the rounds.
      if (fixed_faults) {
        spec.faults = *fixed_faults;
      } else if (rng.below(3) == 0) {
        spec.faults = sample_faults(rng, mesh.x, mesh.y,
                                    mesh.x * mesh.y * spec.cores_per_tile);
      }
      if (!spec.faults.empty()) {
        const scc::noc::Topology topo(spec.tiles_x, spec.tiles_y,
                                      spec.cores_per_tile);
        if (const auto err =
                scc::faults::FaultModel::check(spec.faults, topo)) {
          if (fixed_faults) {
            std::fprintf(stderr, "--faults: %s\n", err->c_str());
            return 2;
          }
          spec.faults = {};  // unlucky draw: run the round healthy
        }
      }
      // Algorithm dimension (only for collectives that have one): pick 0 =
      // paper default (no override), 1..k = the implemented variants, k+1 =
      // the auto Selector.
      if (const auto kind = scc::harness::algo_kind(spec.collective)) {
        if (fixed_algo) {
          spec.algo = fixed_algo;
        } else {
          const auto& algos = scc::coll::algos_for(*kind);
          const std::uint64_t pick = rng.below(algos.size() + 2);
          if (pick == algos.size() + 1) {
            spec.algo = scc::coll::Algo::kAuto;
          } else if (pick >= 1) {
            spec.algo = algos[pick - 1];
          }
        }
      }
      // Non-blocking cells on a third of the rounds (drawn last so the
      // other dimensions of a given master seed are unchanged).
      spec.check_nbc = rng.below(3) == 0;
      spec.trace = recorder ? &*recorder : nullptr;
      spec.jobs = jobs;

      const scc::harness::ConformanceReport report =
          scc::harness::run_conformance(spec);
      total_runs += report.runs;
      if (report.baseline_metrics) last_metrics = report.baseline_metrics;
      for (std::size_t s = 0; s < report.latency_histograms.size(); ++s) {
        soak_slot(report.cells[s]).merge(report.latency_histograms[s]);
      }
      if (!report.passed()) {
        ++failed_rounds;
        std::fprintf(stderr, "round %ld (master-seed %llu): %s\n", round,
                     static_cast<unsigned long long>(
                         master_seed + static_cast<std::uint64_t>(round)),
                     report.summary().c_str());
      } else if (verbose) {
        std::printf("round %ld: %s\n", round, report.summary().c_str());
      }
    }
    if (recorder) {
      scc::trace::write_chrome_json_file(*recorder, trace_path);
      std::printf("trace written to %s (%zu events, %llu dropped)\n",
                  trace_path.c_str(), recorder->events().size(),
                  static_cast<unsigned long long>(recorder->dropped()));
    }
    if (!metrics_path.empty()) {
      if (!last_metrics) {
        std::fprintf(stderr, "--metrics: no baseline run produced a snapshot\n");
        return 2;
      }
      last_metrics->write_json_file(metrics_path);
      std::printf("metrics snapshot written to %s (%zu paths)\n",
                  metrics_path.c_str(), last_metrics->size());
    }
    if (!hist_path.empty()) {
      std::ofstream out(hist_path);
      if (!out) {
        std::fprintf(stderr, "--hist: cannot open %s\n", hist_path.c_str());
        return 2;
      }
      out << "{\n  \"schema\": \"scc-hist-v1\",\n  \"histograms\": {";
      bool first = true;
      for (const auto& [name, hist] : soak_hist) {
        out << (first ? "" : ",") << "\n    \"" << name << "\": ";
        hist.write_json_us(out);
        first = false;
      }
      out << "\n  }\n}\n";
      std::uint64_t recorded = 0;
      for (const auto& [name, h] : soak_hist) recorded += h.count();
      std::printf("latency histograms written to %s (%llu samples)\n",
                  hist_path.c_str(),
                  static_cast<unsigned long long>(recorded));
    }
    std::printf("perturb_soak: %ld rounds, %ld simulations, %ld failed\n",
                rounds, total_runs, failed_rounds);
    return failed_rounds == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perturb_soak: %s\n", e.what());
    return 2;
  }
}
