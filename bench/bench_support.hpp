// Shared scaffolding for the figure/table benchmark binaries.
//
// Each bench binary regenerates one figure or table of the paper. Points
// are registered as google-benchmark instances whose *manual* time is the
// simulated (virtual) latency -- the number the paper's y-axes show -- so
// the standard benchmark output IS the figure data. After the benchmark
// run, the collected series are also written as CSV (bench_results/) and
// printed as an aligned summary table.
//
// Environment knobs (the defaults keep every binary under ~a minute):
//   SCC_BENCH_STEP  -- sweep step in elements (default: per-figure)
//   SCC_BENCH_REPS  -- measured repetitions per point (default 2)
//   SCC_BENCH_FROM / SCC_BENCH_TO -- sweep bounds (default 500..700)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"

namespace scc::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

/// Collects (variant, size) -> latency points as benchmarks run, for the
/// CSV/table dump after the benchmark pass.
class SeriesCollector {
 public:
  void add(harness::PaperVariant variant, std::size_t elements, double us) {
    data_[elements][variant] = us;
  }

  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] Table to_table(
      const std::vector<harness::PaperVariant>& variants) const {
    std::vector<std::string> header{"elements"};
    for (const auto v : variants)
      header.emplace_back(std::string(harness::variant_name(v)) + "_us");
    Table table(std::move(header));
    for (const auto& [elements, row] : data_) {
      std::vector<std::string> cells{strprintf("%zu", elements)};
      for (const auto v : variants) {
        const auto it = row.find(v);
        cells.push_back(it == row.end() ? "" : strprintf("%.2f", it->second));
      }
      table.add_row(std::move(cells));
    }
    return table;
  }

  /// Mean over the collected sweep of blocking/variant.
  [[nodiscard]] double mean_speedup(harness::PaperVariant v) const {
    double sum = 0.0;
    int count = 0;
    for (const auto& [elements, row] : data_) {
      const auto base = row.find(harness::PaperVariant::kBlocking);
      const auto it = row.find(v);
      if (base == row.end() || it == row.end()) continue;
      sum += base->second / it->second;
      ++count;
    }
    return count > 0 ? sum / count : 0.0;
  }

 private:
  std::map<std::size_t, std::map<harness::PaperVariant, double>> data_;
};

inline SeriesCollector& collector() {
  static SeriesCollector instance;
  return instance;
}

/// One measured figure point; SetIterationTime feeds the virtual latency
/// to google-benchmark (binaries register with UseManualTime).
inline void run_point(benchmark::State& state, harness::Collective coll,
                      harness::PaperVariant variant, std::size_t elements) {
  harness::RunSpec spec;
  spec.collective = coll;
  spec.variant = variant;
  spec.elements = elements;
  spec.repetitions = static_cast<int>(env_size("SCC_BENCH_REPS", 2));
  spec.warmup = 1;
  spec.verify = false;
  for (auto _ : state) {
    const harness::RunResult result = harness::run_collective(spec);
    state.SetIterationTime(result.mean_latency.seconds());
    collector().add(variant, elements, result.mean_latency.us());
  }
  state.counters["virtual_us"] =
      benchmark::Counter(collector().empty() ? 0.0 : 0.0);
}

/// Registers the full Fig. 9 panel for `coll`.
inline void register_figure(const char* figure, harness::Collective coll,
                            std::size_t default_step) {
  const std::size_t from = env_size("SCC_BENCH_FROM", 500);
  const std::size_t to = env_size("SCC_BENCH_TO", 700);
  const std::size_t step = env_size("SCC_BENCH_STEP", default_step);
  for (const harness::PaperVariant v : harness::variants_for(coll)) {
    for (std::size_t n = from; n <= to; n += step) {
      const std::string name =
          strprintf("%s/%s/%zu", figure,
                    std::string(harness::variant_name(v)).c_str(), n);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [coll, v, n](benchmark::State& state) {
            run_point(state, coll, v, n);
          })
          ->UseManualTime()
          ->Unit(benchmark::kMicrosecond)
          ->Iterations(1);
    }
  }
}

/// Runs the registered benchmarks, then dumps the series as a table and a
/// CSV under bench_results/.
inline int figure_main(int argc, char** argv, const char* figure,
                       harness::Collective coll) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto variants = harness::variants_for(coll);
  const Table table = collector().to_table(variants);
  std::cout << "\n=== " << figure << " (" << harness::collective_name(coll)
            << ", 48 cores; latency in virtual microseconds) ===\n";
  table.print(std::cout);
  std::cout << "\nAverage speedup vs blocking over the sweep:\n";
  for (const auto v : variants) {
    if (v == harness::PaperVariant::kBlocking) continue;
    std::cout << "  " << harness::variant_name(v) << ": "
              << strprintf("%.2fx", collector().mean_speedup(v)) << '\n';
  }
  std::filesystem::create_directories("bench_results");
  const std::string csv = std::string("bench_results/") + figure + ".csv";
  table.write_csv_file(csv);
  std::cout << "\nseries written to " << csv << '\n';
  return 0;
}

}  // namespace scc::bench
