// Shared scaffolding for the figure/table benchmark binaries.
//
// Each bench binary regenerates one figure or table of the paper. Points
// are registered as google-benchmark instances whose *manual* time is the
// simulated (virtual) latency -- the number the paper's y-axes show -- so
// the standard benchmark output IS the figure data. After the benchmark
// run, the collected series are also written as CSV and as an
// "scc-bench-v1" JSON file (bench_results/) -- the JSON is what the
// bench/compare regression gate diffs against a committed baseline -- and
// printed as an aligned summary table.
//
// Environment knobs (the defaults keep every binary under ~a minute):
//   SCC_BENCH_STEP  -- sweep step in elements (default: per-figure)
//   SCC_BENCH_REPS  -- measured repetitions per point (default 2)
//   SCC_BENCH_FROM / SCC_BENCH_TO -- sweep bounds (default 500..700)
// Values must be well-formed non-negative integers; empty, trailing-garbage
// or overflowing values abort with a clear error instead of being silently
// read as 0 (a mistyped SCC_BENCH_TO=6OO must not quietly shrink a sweep).
//
// Instrumentation flags (stripped before google-benchmark sees argv):
//   --metrics=<path> -- write a metrics snapshot of every point (prefixed
//                       "point/<elements>/<variant>/") as scc-metrics-v1
//   --blame          -- per variant, print the critical-path blame report
//                       of the last swept point's final repetition
//   --jobs=N         -- host worker threads for the sweep's independent
//                       simulations (default: hardware concurrency; N >= 1).
//                       Points are precomputed in parallel and merged in
//                       registration order, so every output byte -- tables,
//                       CSV, JSON, metrics -- is identical to --jobs=1.
//                       --blame shares one trace recorder and forces serial.
//   --workers=N      -- conservative-PDES drain threads INSIDE each point's
//                       simulated machine (harness::RunSpec::pdes_workers;
//                       N >= 1; default: serial machines). Orthogonal to
//                       --jobs, and every (jobs, workers) combination
//                       produces byte-identical CSV/JSON/metrics artifacts
//                       -- only host wall-clock changes.
//   --algo=<name|auto> -- run the swept collective under this algorithm
//                       (coll/algos.hpp) on the Stack-based variants;
//                       RCKMPI and MPB keep their own schedule, so the
//                       figure compares the override against them. Errors
//                       out for collectives without algorithm variants.
//   --hist           -- per variant, aggregate every measured repetition of
//                       every swept point into a metrics::Histogram and add
//                       a "histograms" block (count/min/mean/p50/p90/p99/
//                       p999/max, microseconds) to the scc-bench-v1 JSON.
//                       Observational: row bytes are unchanged, and the
//                       block is byte-identical for any --jobs value.
//                       bench/compare gates it two-sided when the baseline
//                       carries one.
#pragma once

#include <benchmark/benchmark.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/string_util.hpp"
#include "common/table.hpp"
#include "exec/executor.hpp"
#include "harness/runner.hpp"
#include "metrics/blame.hpp"
#include "metrics/collect.hpp"
#include "metrics/histogram.hpp"
#include "metrics/registry.hpp"
#include "trace/recorder.hpp"

namespace scc::bench {

[[noreturn]] inline void env_fail(const char* name, const char* value,
                                  const char* expected) {
  std::fprintf(stderr, "error: %s='%s' is not %s\n", name, value, expected);
  std::exit(2);
}

/// Strict environment size parse: the whole value must be one non-negative
/// decimal integer that fits std::size_t. Anything else (empty string,
/// trailing garbage, sign, overflow) aborts with exit code 2.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  if (value[0] == '\0' || value[0] == '-' || value[0] == '+') {
    env_fail(name, value, "a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE ||
      parsed > std::numeric_limits<std::size_t>::max()) {
    env_fail(name, value, "a non-negative integer");
  }
  return static_cast<std::size_t>(parsed);
}

/// Strict environment double parse: the whole value must be one finite
/// number; otherwise aborts with exit code 2.
inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE ||
      !std::isfinite(parsed)) {
    env_fail(name, value, "a finite number");
  }
  return parsed;
}

/// Instrumentation requested on the command line (see header comment).
struct BenchOptions {
  std::string metrics_path;  // empty: metrics collection off
  bool blame = false;
  bool hist = false;  // --hist: per-variant latency histograms in the JSON
  int jobs = 0;  // 0: exec::default_jobs() (hardware concurrency)
  int workers = 0;  // --workers: PDES threads per machine; 0 = serial
  std::optional<coll::Algo> algo;  // --algo: unset = paper algorithm
};

inline BenchOptions& options() {
  static BenchOptions instance;
  return instance;
}

/// Merged per-point snapshots for --metrics.
inline metrics::MetricsRegistry& merged_metrics() {
  static metrics::MetricsRegistry instance;
  return instance;
}

/// Last blame report per variant for --blame (the sweep's final point).
inline std::map<std::string, std::string>& blame_reports() {
  static std::map<std::string, std::string> instance;
  return instance;
}

/// Per-variant tail-latency histograms for --hist (every measured
/// repetition of every swept point; std::map keeps the JSON block in sorted
/// variant order -- one deterministic byte stream).
inline std::map<std::string, metrics::Histogram>& histograms() {
  static std::map<std::string, metrics::Histogram> instance;
  return instance;
}

/// The "histograms" top-level member for Table::write_json, or "" when
/// --hist is off (which keeps the document bytes exactly historical).
inline std::string histogram_members() {
  if (histograms().empty()) return {};
  std::ostringstream ss;
  ss << "\"histograms\": {";
  bool first = true;
  for (auto& [name, hist] : histograms()) {
    ss << (first ? "" : ", ") << '"' << name << "\": ";
    hist.write_json_us(ss);
    first = false;
  }
  ss << '}';
  return ss.str();
}

/// Strict thread-count value parse shared by the bench CLIs' --jobs and
/// --workers: one positive decimal integer; 0, signs, garbage or overflow
/// abort with exit code 2 (the hardened get_int discipline -- a mistyped
/// --jobs=1O must not silently serialize or fork wildly).
inline int parse_thread_count_value(const char* flag, std::string_view value) {
  const std::string v(value);
  const auto fail = [&] {
    std::fprintf(stderr, "error: %s='%s' is not a positive integer\n", flag,
                 v.c_str());
    std::exit(2);
  };
  if (v.empty() || v[0] == '-' || v[0] == '+') fail();
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE || parsed == 0 ||
      parsed > static_cast<unsigned long long>(
                   std::numeric_limits<int>::max())) {
    fail();
  }
  return static_cast<int>(parsed);
}

inline int parse_jobs_value(std::string_view value) {
  return parse_thread_count_value("--jobs", value);
}

/// Strips --metrics=<path>, --blame and --jobs=N from argv
/// (google-benchmark rejects unknown flags) and records them in options().
inline void parse_instrumentation_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--metrics=", 0) == 0) {
      options().metrics_path = std::string(arg.substr(10));
      if (options().metrics_path.empty()) {
        std::fprintf(stderr, "error: --metrics= needs a path\n");
        std::exit(2);
      }
      continue;
    }
    if (arg == "--blame") {
      options().blame = true;
      continue;
    }
    if (arg == "--hist") {
      options().hist = true;
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      options().jobs = parse_jobs_value(arg.substr(7));
      continue;
    }
    if (arg.rfind("--workers=", 0) == 0) {
      options().workers = parse_thread_count_value("--workers", arg.substr(10));
      continue;
    }
    if (arg.rfind("--algo=", 0) == 0) {
      const auto algo = coll::parse_algo(arg.substr(7));
      if (!algo) {
        std::fprintf(stderr, "error: unknown --algo '%s'\n",
                     std::string(arg.substr(7)).c_str());
        std::exit(2);
      }
      options().algo = *algo;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
}

/// Collects (variant, size) -> latency points as benchmarks run, for the
/// CSV/table dump after the benchmark pass.
class SeriesCollector {
 public:
  void add(harness::PaperVariant variant, std::size_t elements, double us) {
    data_[elements][variant] = us;
  }

  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] Table to_table(
      const std::vector<harness::PaperVariant>& variants) const {
    std::vector<std::string> header{"elements"};
    for (const auto v : variants)
      header.emplace_back(std::string(harness::variant_name(v)) + "_us");
    Table table(std::move(header));
    for (const auto& [elements, row] : data_) {
      std::vector<std::string> cells{strprintf("%zu", elements)};
      for (const auto v : variants) {
        const auto it = row.find(v);
        cells.push_back(it == row.end() ? "" : strprintf("%.2f", it->second));
      }
      table.add_row(std::move(cells));
    }
    return table;
  }

  /// Mean over the collected sweep of blocking/variant.
  [[nodiscard]] double mean_speedup(harness::PaperVariant v) const {
    double sum = 0.0;
    int count = 0;
    for (const auto& [elements, row] : data_) {
      const auto base = row.find(harness::PaperVariant::kBlocking);
      const auto it = row.find(v);
      if (base == row.end() || it == row.end()) continue;
      sum += base->second / it->second;
      ++count;
    }
    return count > 0 ? sum / count : 0.0;
  }

 private:
  std::map<std::size_t, std::map<harness::PaperVariant, double>> data_;
};

inline SeriesCollector& collector() {
  static SeriesCollector instance;
  return instance;
}

/// One registered figure point (registration order is preserved).
struct PointKey {
  harness::Collective coll;
  harness::PaperVariant variant;
  std::size_t elements;
};

inline std::vector<PointKey>& registered_points() {
  static std::vector<PointKey> instance;
  return instance;
}

/// Results simulated ahead of the google-benchmark pass by the parallel
/// executor, keyed by (variant, elements); run_point consumes them so the
/// serially-executed benchmark loop only merges. Only touched from the
/// main thread (filled after the pool joins).
inline std::map<std::pair<int, std::size_t>, harness::RunResult>&
point_cache() {
  static std::map<std::pair<int, std::size_t>, harness::RunResult> instance;
  return instance;
}

inline harness::RunSpec point_spec(harness::Collective coll,
                                   harness::PaperVariant variant,
                                   std::size_t elements) {
  harness::RunSpec spec;
  spec.collective = coll;
  spec.variant = variant;
  spec.elements = elements;
  spec.repetitions = static_cast<int>(env_size("SCC_BENCH_REPS", 2));
  spec.warmup = 1;
  spec.verify = false;
  spec.collect_metrics = !options().metrics_path.empty();
  spec.pdes_workers = options().workers;
  // --algo targets the Stack-based variants; RCKMPI and the MPB-direct
  // path have no algorithm dimension and keep their own schedule.
  if (options().algo && variant != harness::PaperVariant::kRckmpi &&
      variant != harness::PaperVariant::kMpb) {
    spec.algo = options().algo;
  }
  return spec;
}

/// Fans the registered points out over --jobs host threads (each point
/// simulates on its own machine) and fills point_cache(). The benchmark
/// pass then reports the cached latencies in registration order, so all
/// output bytes match the serial run. No-op for --jobs=1 and under
/// --blame (whose shared trace recorder requires serial execution).
inline void precompute_points() {
  const auto& points = registered_points();
  if (points.empty() || options().blame) return;
  if (exec::resolve_jobs(options().jobs) <= 1) return;
  std::vector<harness::RunResult> results =
      exec::parallel_map<harness::RunResult>(
          points.size(), options().jobs, [&](std::size_t i) {
            const PointKey& p = points[i];
            return harness::run_collective(
                point_spec(p.coll, p.variant, p.elements));
          });
  for (std::size_t i = 0; i < points.size(); ++i) {
    point_cache().emplace(std::make_pair(static_cast<int>(points[i].variant),
                                         points[i].elements),
                          std::move(results[i]));
  }
}

/// One measured figure point; SetIterationTime feeds the virtual latency
/// to google-benchmark (binaries register with UseManualTime).
inline void run_point(benchmark::State& state, harness::Collective coll,
                      harness::PaperVariant variant, std::size_t elements) {
  harness::RunSpec spec = point_spec(coll, variant, elements);
  std::optional<trace::Recorder> recorder;
  if (options().blame) {
    recorder.emplace(/*capacity=*/std::size_t{1} << 20);
    spec.trace = &*recorder;
  }
  for (auto _ : state) {
    harness::RunResult result;
    const auto cached =
        point_cache().find({static_cast<int>(variant), elements});
    if (cached != point_cache().end()) {
      result = std::move(cached->second);
      point_cache().erase(cached);
    } else {
      result = harness::run_collective(spec);
    }
    state.SetIterationTime(result.mean_latency.seconds());
    collector().add(variant, elements, result.mean_latency.us());
    if (options().hist) {
      // Merged here, in registration order on the serial benchmark pass, so
      // the aggregate is identical no matter how --jobs precomputed.
      metrics::Histogram& h =
          histograms()[std::string(harness::variant_name(variant))];
      for (const SimTime s : result.latencies) h.record_time(s);
    }
    if (result.metrics) {
      merged_metrics().absorb(
          *result.metrics,
          strprintf("point/%zu/%s/", elements,
                    std::string(harness::variant_name(variant)).c_str()));
    }
    if (recorder && !result.sample_windows.empty()) {
      const auto [begin, end] = result.sample_windows.back();
      const metrics::BlameReport report = metrics::analyze_blame(
          *recorder, recorder->current_run(), /*terminal_core=*/0, begin,
          end);
      std::ostringstream ss;
      ss << "--- " << harness::variant_name(variant) << " n=" << elements;
      if (recorder->dropped() > 0) {
        ss << " (trace dropped " << recorder->dropped()
           << " events; attribution partial)";
      }
      ss << " ---\n";
      report.print(ss);
      blame_reports()[std::string(harness::variant_name(variant))] = ss.str();
    }
  }
  state.counters["virtual_us"] =
      benchmark::Counter(collector().empty() ? 0.0 : 0.0);
}

/// Registers the full Fig. 9 panel for `coll`.
inline void register_figure(const char* figure, harness::Collective coll,
                            std::size_t default_step) {
  const std::size_t from = env_size("SCC_BENCH_FROM", 500);
  const std::size_t to = env_size("SCC_BENCH_TO", 700);
  const std::size_t step = env_size("SCC_BENCH_STEP", default_step);
  if (step == 0) env_fail("SCC_BENCH_STEP", "0", "a positive integer");
  for (const harness::PaperVariant v : harness::variants_for(coll)) {
    for (std::size_t n = from; n <= to; n += step) {
      registered_points().push_back(PointKey{coll, v, n});
      const std::string name =
          strprintf("%s/%s/%zu", figure,
                    std::string(harness::variant_name(v)).c_str(), n);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [coll, v, n](benchmark::State& state) {
            run_point(state, coll, v, n);
          })
          ->UseManualTime()
          ->Unit(benchmark::kMicrosecond)
          ->Iterations(1);
    }
  }
}

/// Writes the collected series as CSV + scc-bench-v1 JSON under
/// bench_results/ and dumps the requested instrumentation.
inline void write_outputs(const char* figure, const Table& table) {
  std::filesystem::create_directories("bench_results");
  const std::string csv = std::string("bench_results/") + figure + ".csv";
  table.write_csv_file(csv);
  const std::string json = std::string("bench_results/") + figure + ".json";
  table.write_json_file(json, figure, histogram_members());
  std::cout << "\nseries written to " << csv << " and " << json << '\n';
  if (!options().metrics_path.empty()) {
    merged_metrics().set_label(figure);
    merged_metrics().write_json_file(options().metrics_path);
    std::cout << "metrics snapshot written to " << options().metrics_path
              << '\n';
  }
  for (const auto& [variant, report] : blame_reports()) {
    std::cout << '\n' << report;
  }
}

/// Runs the registered benchmarks, then dumps the series as a table, a CSV
/// and a JSON under bench_results/.
inline int figure_main(int argc, char** argv, const char* figure,
                       harness::Collective coll) {
  parse_instrumentation_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  precompute_points();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto variants = harness::variants_for(coll);
  const Table table = collector().to_table(variants);
  std::cout << "\n=== " << figure << " (" << harness::collective_name(coll)
            << ", 48 cores; latency in virtual microseconds) ===\n";
  table.print(std::cout);
  std::cout << "\nAverage speedup vs blocking over the sweep:\n";
  for (const auto v : variants) {
    if (v == harness::PaperVariant::kBlocking) continue;
    std::cout << "  " << harness::variant_name(v) << ": "
              << strprintf("%.2fx", collector().mean_speedup(v)) << '\n';
  }
  write_outputs(figure, table);
  return 0;
}

}  // namespace scc::bench
