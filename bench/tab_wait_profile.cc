// Regenerates the profiling observation that motivates Section IV-A:
// "cores spend up to 50% of their time in the rcce_wait_until method".
// Reports the per-phase time breakdown (max and mean over the 48 cores)
// for an Allreduce under each variant, plus the GCMC application's
// blocking-stack profile.
//
// Besides the shared --metrics=<path> / --blame instrumentation flags
// (bench_support.hpp), --trace=<path> records every profiled run into one
// chrome://tracing file (one run scope per variant).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string>

#include "bench_support.hpp"
#include "gcmc/app.hpp"
#include "machine/profile.hpp"
#include "trace/chrome_export.hpp"

namespace {

scc::trace::Recorder* g_trace = nullptr;
// With --trace= the recorder accumulates every variant into one file; with
// --blame alone each variant gets the full capacity to itself.
bool g_keep_trace = false;

using scc::machine::CoreProfile;
using scc::machine::Phase;
using scc::harness::PaperVariant;

struct Breakdown {
  double wait_max_pct = 0.0;
  double wait_mean_pct = 0.0;
  double overhead_mean_pct = 0.0;
  double transfer_mean_pct = 0.0;
  double compute_mean_pct = 0.0;
};

Breakdown analyze(const std::vector<CoreProfile>& profiles) {
  Breakdown b;
  double wait_sum = 0.0, overhead_sum = 0.0, transfer_sum = 0.0,
         compute_sum = 0.0;
  for (const CoreProfile& p : profiles) {
    const double total = p.total().seconds();
    if (total <= 0.0) continue;
    const double wait = p.get(Phase::kFlagWait).seconds() / total * 100.0;
    b.wait_max_pct = std::max(b.wait_max_pct, wait);
    wait_sum += wait;
    overhead_sum += p.get(Phase::kSwOverhead).seconds() / total * 100.0;
    transfer_sum += p.get(Phase::kMpbTransfer).seconds() / total * 100.0;
    compute_sum += (p.get(Phase::kCompute) + p.get(Phase::kPrivMem)).seconds() /
                   total * 100.0;
  }
  const double n = static_cast<double>(profiles.size());
  b.wait_mean_pct = wait_sum / n;
  b.overhead_mean_pct = overhead_sum / n;
  b.transfer_mean_pct = transfer_sum / n;
  b.compute_mean_pct = compute_sum / n;
  return b;
}

scc::harness::RunResult allreduce_run(PaperVariant v) {
  scc::harness::RunSpec spec;
  spec.collective = scc::harness::Collective::kAllreduce;
  spec.variant = v;
  spec.elements = 552;
  spec.repetitions = 3;
  spec.warmup = 1;
  spec.verify = false;
  spec.collect_profiles = true;
  spec.collect_metrics = !scc::bench::options().metrics_path.empty();
  spec.trace = g_trace;
  return scc::harness::run_collective(spec);
}

void bench_profile(benchmark::State& state, PaperVariant v,
                   Breakdown* out) {
  for (auto _ : state) {
    if (g_trace != nullptr && !g_keep_trace) g_trace->clear();
    const auto result = allreduce_run(v);
    *out = analyze(result.profiles);
    state.SetIterationTime(result.profiles[0].total().seconds());
    const std::string variant{scc::harness::variant_name(v)};
    if (result.metrics) {
      scc::bench::merged_metrics().absorb(*result.metrics,
                                          "profile/" + variant + "/");
    }
    if (scc::bench::options().blame && g_trace != nullptr &&
        !result.sample_windows.empty()) {
      const auto [begin, end] = result.sample_windows.back();
      const scc::metrics::BlameReport report = scc::metrics::analyze_blame(
          *g_trace, g_trace->current_run(), /*terminal_core=*/0, begin, end);
      std::ostringstream ss;
      ss << "--- " << variant << " n=552";
      if (g_trace->dropped() > 0) {
        ss << " (trace dropped " << g_trace->dropped()
           << " events; attribution partial)";
      }
      ss << " ---\n";
      report.print(ss);
      scc::bench::blame_reports()[variant] = ss.str();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  scc::bench::parse_instrumentation_flags(argc, argv);
  // Pull our own --trace= flag out of argv before google-benchmark sees it.
  std::string trace_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  static scc::trace::Recorder recorder(/*capacity=*/std::size_t{1} << 20);
  if (!trace_path.empty() || scc::bench::options().blame) {
    g_trace = &recorder;  // --blame replays the recorded intervals
    g_keep_trace = !trace_path.empty();
  }

  const PaperVariant variants[] = {PaperVariant::kBlocking,
                                   PaperVariant::kIrcce,
                                   PaperVariant::kLightweight,
                                   PaperVariant::kLwBalanced,
                                   PaperVariant::kMpb};
  static Breakdown breakdowns[5];
  for (int i = 0; i < 5; ++i) {
    const PaperVariant v = variants[i];
    Breakdown* out = &breakdowns[i];
    const std::string name = std::string("profile/") +
                             std::string(scc::harness::variant_name(v));
    benchmark::RegisterBenchmark(
        name.c_str(),
        [v, out](benchmark::State& state) { bench_profile(state, v, out); })
        ->UseManualTime()
        ->Unit(benchmark::kMicrosecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\n=== Per-core time breakdown, Allreduce(552) on 48 cores ===\n";
  scc::Table table({"variant", "wait max", "wait mean", "sw-overhead",
                    "mpb-transfer", "compute+mem"});
  for (int i = 0; i < 5; ++i) {
    const Breakdown& b = breakdowns[i];
    table.add_row({std::string(scc::harness::variant_name(variants[i])),
                   scc::strprintf("%.0f%%", b.wait_max_pct),
                   scc::strprintf("%.0f%%", b.wait_mean_pct),
                   scc::strprintf("%.0f%%", b.overhead_mean_pct),
                   scc::strprintf("%.0f%%", b.transfer_mean_pct),
                   scc::strprintf("%.0f%%", b.compute_mean_pct)});
  }
  table.print(std::cout);

  // The paper's actual profile subject: the application on the blocking
  // stack ("up to 50% of their time in rcce_wait_until").
  scc::gcmc::AppParams params;
  params.model.kmaxvecs = 276;
  params.particles_total = 240;
  params.max_local_particles = 12;
  params.cycles = static_cast<int>(scc::bench::env_size("SCC_BENCH_CYCLES", 8));
  const auto app =
      scc::gcmc::run_app(params, PaperVariant::kBlocking);
  const Breakdown b = analyze(app.profiles);
  std::cout << scc::strprintf(
      "\nGCMC application, blocking stack: wait max %.0f%% / mean %.0f%% of "
      "core time (paper: up to 50%%)\n",
      b.wait_max_pct, b.wait_mean_pct);
  scc::bench::write_outputs("tab_wait_profile", table);
  if (!trace_path.empty()) {
    scc::trace::write_chrome_json_file(recorder, trace_path);
    std::cout << "trace written to " << trace_path << " ("
              << recorder.events().size() << " events, " << recorder.dropped()
              << " dropped)\n";
  }
  return 0;
}
