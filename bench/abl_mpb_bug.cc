// Ablation for Section IV-D's closing claim: "with the hardware bug
// resolved, we expect to see significantly higher speedups" for the
// MPB-direct Allreduce. Runs the lightweight+balanced stack and the
// MPB-direct routine with the tile-arbiter-bug workaround ON (the real,
// evaluated chip) and OFF (hypothetical fixed silicon), across sizes.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_support.hpp"

namespace {

using scc::harness::Collective;
using scc::harness::PaperVariant;

double latency_us(PaperVariant v, std::size_t n, bool bug) {
  scc::harness::RunSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.variant = v;
  spec.elements = n;
  spec.repetitions = static_cast<int>(scc::bench::env_size("SCC_BENCH_REPS", 2));
  spec.warmup = 1;
  spec.verify = false;
  spec.config = bug ? scc::machine::SccConfig::paper_default()
                    : scc::machine::SccConfig::bug_fixed();
  return scc::harness::run_collective(spec).mean_latency.us();
}

struct Row {
  double balanced_us, mpb_us;
};
std::map<std::pair<std::size_t, bool>, Row>& rows() {
  static std::map<std::pair<std::size_t, bool>, Row> r;
  return r;
}

void bench_point(benchmark::State& state, std::size_t n, bool bug) {
  for (auto _ : state) {
    Row row{latency_us(PaperVariant::kLwBalanced, n, bug),
            latency_us(PaperVariant::kMpb, n, bug)};
    state.SetIterationTime(row.mpb_us * 1e-6);
    rows()[{n, bug}] = row;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t sizes[] = {500, 552, 576, 648, 700};
  for (const std::size_t n : sizes) {
    for (const bool bug : {true, false}) {
      const std::string name = scc::strprintf(
          "abl_mpb_bug/%zu/%s", n, bug ? "bug_workaround" : "bug_fixed");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [n, bug](benchmark::State& state) { bench_point(state, n, bug); })
          ->UseManualTime()
          ->Unit(benchmark::kMicrosecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\n=== Section IV-D ablation: MPB-direct Allreduce vs the "
            << "tile-arbiter bug (48 cores) ===\n";
  scc::Table table({"elements", "arbiter bug", "lw-balanced", "mpb-direct",
                    "mpb speedup"});
  for (const std::size_t n : sizes) {
    for (const bool bug : {true, false}) {
      const Row& row = rows().at({n, bug});
      table.add_row({scc::strprintf("%zu", n),
                     bug ? "workaround on" : "fixed",
                     scc::strprintf("%.1f us", row.balanced_us),
                     scc::strprintf("%.1f us", row.mpb_us),
                     scc::strprintf("%.2fx", row.balanced_us / row.mpb_us)});
    }
  }
  table.print(std::cout);
  std::cout << "\npaper: ~1.1x with the bug workaround; 'significantly "
            << "higher' expected on fixed silicon.\n";
  std::filesystem::create_directories("bench_results");
  table.write_csv_file("bench_results/abl_mpb_bug.csv");
  table.write_json_file("bench_results/abl_mpb_bug.json", "abl_mpb_bug");
  return 0;
}
