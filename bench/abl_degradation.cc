// Degradation-robustness ablation: how the algorithm ranking -- and the
// analytic Selector's pick -- hold up when the machine is injected with
// faults (src/faults; DESIGN.md §13).
//
//   abl_degradation [--mesh=6x4] [--elements=192] [--reps=2] [--jobs=N]
//
// For every (fault scenario, collective-with-algorithm-variants) cell the
// driver measures every implemented algorithm on the SAME degraded machine,
// then reports the selected algorithm (coll::select_algo -- analytic, so it
// is blind to the injected faults), the measured best, whether the pick is
// still measured-best (pick_ok), and -- via the critical-path blame engine
// on a traced re-run of the selected algorithm -- where the end-to-end
// latency of the pick actually goes (wait_share = fraction blamed to
// flag-wait; blame_top = the single largest bucket).
//
// Output: aligned table on stdout plus bench_results/abl_degradation.csv
// and .json (scc-bench-v1). The JSON feeds the bench-smoke regression gate
// (bench/abl_degradation_smoke.cmake): rows keyed by "cell", numeric
// columns (latencies, pick_ok, wait_share) diffed two-sided against the
// committed baseline with a wide tolerance -- the simulator is
// deterministic, so any drift is a real model change; a pick_ok flip in
// particular means a fault scenario moved a measured crossover past the
// Selector. String columns (selected, best_algo, blame_top) ride along.
#include <cstdio>
#include <exception>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "exec/executor.hpp"
#include "faults/fault_model.hpp"
#include "harness/runner.hpp"
#include "metrics/blame.hpp"

namespace {

using scc::coll::Algo;
using scc::coll::CollKind;
using scc::harness::Collective;

/// The four collectives with an algorithm dimension.
constexpr Collective kCollectives[] = {
    Collective::kAllgather, Collective::kAlltoall, Collective::kReduceScatter,
    Collective::kAllreduce};

/// Fault scenarios of the robustness table. Coordinates are valid for the
/// default 6x4 mesh (and any mesh at least that large); the specs are
/// validated against the actual mesh at startup.
struct Scenario {
  const char* name;
  const char* faults;
};
constexpr Scenario kScenarios[] = {
    {"healthy", ""},
    // One core 4x slower: OS interference / thermal throttling on one P54C.
    {"straggler", "straggler:14x4"},
    // A whole tile stepped down to half frequency (DVFS island).
    {"dvfs-tile", "dvfs:14/2;dvfs:15/2"},
    // A central mesh link at 8x latency (degraded channel).
    {"slow-link", "slowlink:2,1-3,1x8"},
    // The same central link dead: XY routes through it detour (static
    // reroute), so hop counts -- not just latencies -- change.
    {"dead-link", "deadlink:2,1-3,1"},
    // Compound failure: a straggler, a slow link and a dead link at once.
    {"combo", "straggler:14x2;slowlink:2,1-3,1x4;deadlink:3,2-3,3"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace scc;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv);
    const auto mesh = split(flags.get("mesh", "6x4"), 'x');
    if (mesh.size() != 2) throw std::runtime_error("--mesh expects WxH");
    const auto elements =
        static_cast<std::size_t>(flags.get_int("elements", 192));
    const int reps = static_cast<int>(flags.get_int("reps", 2));
    const int jobs = exec::jobs_flag(flags);
    for (const std::string& name : flags.unconsumed()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return 2;
    }

    harness::RunSpec base;
    base.variant = harness::PaperVariant::kLightweight;
    base.elements = elements;
    base.repetitions = reps;
    base.warmup = 1;
    base.verify = true;  // results must stay correct on a degraded machine
    base.config.tiles_x = std::stoi(mesh[0]);
    base.config.tiles_y = std::stoi(mesh[1]);
    const int p = base.config.num_cores();

    // Parse + validate every scenario against the actual mesh up front.
    const noc::Topology topo(base.config.tiles_x, base.config.tiles_y,
                             base.config.cores_per_tile);
    std::vector<faults::FaultSpec> specs;
    for (const Scenario& s : kScenarios) {
      faults::FaultSpec spec = faults::FaultSpec::parse(s.faults);
      if (const auto err = faults::FaultModel::check(spec, topo)) {
        throw std::runtime_error(strprintf("scenario %s: %s", s.name,
                                           err->c_str()));
      }
      specs.push_back(std::move(spec));
    }

    // Flattened (scenario, collective, algo) grid; every point simulates on
    // its own machine, fanned out over --jobs and merged in grid order (the
    // table is byte-identical for every jobs value).
    struct Point {
      std::size_t scenario;
      Collective coll;
      Algo algo;
    };
    std::vector<Point> points;
    for (std::size_t s = 0; s < std::size(kScenarios); ++s) {
      for (const Collective c : kCollectives) {
        const CollKind kind = *harness::algo_kind(c);
        for (const Algo a : coll::algos_for(kind))
          points.push_back({s, c, a});
      }
    }
    const std::vector<double> lat_us = exec::parallel_map<double>(
        points.size(), jobs, [&](std::size_t i) {
          harness::RunSpec spec = base;
          spec.collective = points[i].coll;
          spec.algo = points[i].algo;
          spec.config.faults = specs[points[i].scenario];
          return harness::run_collective(spec).mean_latency.us();
        });

    // Blame pass: one traced re-run per (scenario, collective) of the
    // Selector's pick, walking the critical path of the last measured
    // repetition. Traced runs have identical virtual timing, so the
    // latencies above stay authoritative.
    struct Blame {
      double wait_share = 0.0;
      std::string top;
    };
    const std::size_t cells = std::size(kScenarios) * std::size(kCollectives);
    const std::vector<Blame> blames = exec::parallel_map<Blame>(
        cells, jobs, [&](std::size_t i) {
          const std::size_t s = i / std::size(kCollectives);
          const Collective c = kCollectives[i % std::size(kCollectives)];
          const CollKind kind = *harness::algo_kind(c);
          harness::RunSpec spec = base;
          spec.collective = c;
          spec.algo = coll::select_algo(kind, elements, p,
                                        coll::Prims::kLightweight);
          spec.config.faults = specs[s];
          trace::Recorder recorder(/*capacity=*/std::size_t{1} << 20);
          spec.trace = &recorder;
          const harness::RunResult r = harness::run_collective(spec);
          Blame b;
          if (r.sample_windows.empty()) return b;
          const auto [begin, end] = r.sample_windows.back();
          const metrics::BlameReport report = metrics::analyze_blame(
              recorder, recorder.current_run(), /*terminal_core=*/0, begin,
              end);
          b.wait_share = report.kind_share("flag-wait");
          if (!report.components.empty()) {
            const metrics::BlameComponent& top = report.components.front();
            b.top = strprintf(
                "%s %.0f%%", top.where().c_str(),
                100.0 * top.time.seconds() / report.total().seconds());
          }
          return b;
        });

    std::printf(
        "degradation robustness, lightweight variant, %d cores (%sx%s "
        "tiles), n=%zu, %d reps\n\n",
        p, mesh[0].c_str(), mesh[1].c_str(), elements, reps);
    Table table({"cell", "faults", "selected", "selected_us", "best_algo",
                 "best_us", "pick_ok", "wait_share", "blame_top"});
    std::size_t i = 0;
    std::size_t cell = 0;
    int picks_ok = 0;
    for (std::size_t s = 0; s < std::size(kScenarios); ++s) {
      for (const Collective c : kCollectives) {
        const CollKind kind = *harness::algo_kind(c);
        const auto& algos = coll::algos_for(kind);
        const Algo selected =
            coll::select_algo(kind, elements, p, coll::Prims::kLightweight);
        double best_us = 0.0, selected_us = 0.0;
        Algo best = algos.front();
        for (const Algo a : algos) {
          const double us = lat_us[i++];
          if (best_us == 0.0 || us < best_us) {
            best_us = us;
            best = a;
          }
          if (a == selected) selected_us = us;
        }
        // Ties (selected matches the best time exactly) count as ok: the
        // pick loses nothing.
        const bool pick_ok = selected_us <= best_us;
        picks_ok += pick_ok ? 1 : 0;
        const Blame& b = blames[cell++];
        table.add_row(
            {strprintf("%s/%s", kScenarios[s].name,
                       std::string(harness::collective_name(c)).c_str()),
             kScenarios[s].faults[0] != '\0' ? kScenarios[s].faults : "-",
             std::string(coll::algo_name(selected)),
             strprintf("%.2f", selected_us),
             std::string(coll::algo_name(best)), strprintf("%.2f", best_us),
             strprintf("%d", pick_ok ? 1 : 0),
             strprintf("%.3f", b.wait_share), b.top});
      }
    }
    table.print(std::cout);
    std::printf("\nselector still measured-best in %d/%zu cells\n", picks_ok,
                cell);

    std::filesystem::create_directories("bench_results");
    table.write_csv_file("bench_results/abl_degradation.csv");
    table.write_json_file("bench_results/abl_degradation.json",
                          "abl_degradation");
    std::cout << "series written to bench_results/abl_degradation.csv and "
                 "bench_results/abl_degradation.json\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abl_degradation: %s\n", e.what());
    return 1;
  }
}
