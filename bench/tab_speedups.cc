// Regenerates the paper's summary speedup statistics (Section V-A, last
// paragraph): average speedup of the fully-optimized stack over the
// RCCE_comm baseline for every collective, and the maximum pointwise
// Allreduce speedup with the size at which it occurs.
//
// Uses a coarser sweep than the figure binaries (SCC_BENCH_STEP, default
// 16) since only aggregate statistics are reported.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_support.hpp"
#include "harness/sweep.hpp"

namespace {

using scc::harness::Collective;
using scc::harness::PaperVariant;
using scc::harness::SweepResult;
using scc::harness::SweepSpec;

SweepResult sweep_of(Collective coll) {
  SweepSpec spec;
  spec.collective = coll;
  spec.from = scc::bench::env_size("SCC_BENCH_FROM", 500);
  spec.to = scc::bench::env_size("SCC_BENCH_TO", 700);
  spec.step = scc::bench::env_size("SCC_BENCH_STEP", 16);
  spec.repetitions = static_cast<int>(scc::bench::env_size("SCC_BENCH_REPS", 2));
  spec.warmup = 1;
  spec.verify = false;
  // --jobs=N (0 = hardware concurrency): cells fan out inside run_sweep;
  // the merged SweepResult is identical for every jobs value.
  spec.jobs = scc::bench::options().jobs;
  return scc::harness::run_sweep(spec);
}

void bench_sweep(benchmark::State& state, Collective coll,
                 SweepResult* result_out) {
  for (auto _ : state) {
    *result_out = sweep_of(coll);
    double total_us = 0.0;
    for (const auto& pt : result_out->points)
      for (const double us : pt.latency_us) total_us += us;
    state.SetIterationTime(total_us * 1e-6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  scc::bench::parse_instrumentation_flags(argc, argv);
  const Collective collectives[] = {
      Collective::kAllgather, Collective::kAlltoall,
      Collective::kReduceScatter, Collective::kBroadcast, Collective::kReduce,
      Collective::kAllreduce};
  static SweepResult results[6];
  for (int i = 0; i < 6; ++i) {
    const Collective coll = collectives[i];
    const std::string name = std::string("sweep/") +
                             std::string(scc::harness::collective_name(coll));
    SweepResult* out = &results[i];
    benchmark::RegisterBenchmark(
        name.c_str(),
        [coll, out](benchmark::State& state) { bench_sweep(state, coll, out); })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\n=== Average speedups vs RCCE_comm blocking baseline "
            << "(48 cores, 500..700 doubles) ===\n";
  scc::Table table({"collective", "ircce", "lightweight", "best non-MPB",
                    "paper (best)"});
  const char* paper[] = {"~2.7-2.8x", "~1.6x", "n/a", "n/a", "~1.6x", "~1.7x+bal"};
  for (int i = 0; i < 6; ++i) {
    const auto& r = results[i];
    const bool has_balanced =
        std::find(r.variants.begin(), r.variants.end(),
                  PaperVariant::kLwBalanced) != r.variants.end();
    const PaperVariant best =
        has_balanced ? PaperVariant::kLwBalanced : PaperVariant::kLightweight;
    table.add_row(
        {std::string(scc::harness::collective_name(collectives[i])),
         scc::strprintf("%.2fx", r.mean_speedup_vs_blocking(PaperVariant::kIrcce)),
         scc::strprintf("%.2fx",
                        r.mean_speedup_vs_blocking(PaperVariant::kLightweight)),
         scc::strprintf("%.2fx", r.mean_speedup_vs_blocking(best)),
         paper[i]});
  }
  table.print(std::cout);

  const auto& allreduce = results[5];
  const auto [best, at] =
      allreduce.max_speedup_vs_blocking(PaperVariant::kLwBalanced);
  std::cout << scc::strprintf(
      "\nmax Allreduce speedup (lw-balanced): %.2fx at %zu elements "
      "(paper: 3.6x at 574)\n",
      best, at);
  std::filesystem::create_directories("bench_results");
  table.write_csv_file("bench_results/tab_speedups.csv");
  table.write_json_file("bench_results/tab_speedups.json", "tab_speedups");
  return 0;
}
