// One-stop observability report for a single collective configuration.
//
//   obs_report --out=report.html [--collective=allreduce] [--elements=552]
//              [--reps=4] [--warmup=2] [--seed=42] [--sample-us=1]
//              [--jobs=N]
//
// Runs every Fig. 9 variant of the collective -- each on its own machine,
// with its own trace recorder, metrics snapshot, flight-recorder sampler
// and per-repetition latency capture -- and fuses the results into ONE
// self-contained HTML file (metrics::ObsReport):
//
//   - counter sparklines per variant (inline SVG from the timeseries);
//   - a mesh link heatmap (per-link busy time from the counter snapshot);
//   - critical-path blame of the last measured repetition (metrics/blame);
//   - per-variant tail-latency histograms (p50/p90/p99/p999).
//
// Deterministic: the HTML bytes are identical for any --jobs value (the
// variant grid is merged in spec order) and contain no timestamps or host
// names -- diffable in CI like every other artifact here.
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "exec/executor.hpp"
#include "harness/runner.hpp"
#include "metrics/blame.hpp"
#include "metrics/collect.hpp"
#include "metrics/histogram.hpp"
#include "metrics/report.hpp"

namespace {

using scc::harness::Collective;

std::optional<Collective> parse_collective(const std::string& name) {
  constexpr Collective kAll[] = {
      Collective::kAllgather,     Collective::kAlltoall,
      Collective::kReduceScatter, Collective::kBroadcast,
      Collective::kReduce,        Collective::kAllreduce,
      Collective::kScatter,       Collective::kGather,
      Collective::kAllgatherv};
  for (const Collective c : kAll) {
    if (name == scc::harness::collective_name(c)) return c;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto flags = scc::CliFlags::parse(argc, argv);
    const std::string out_path = flags.get("out", "");
    const std::string collective_flag = flags.get("collective", "allreduce");
    const auto elements = flags.get_int("elements", 552);
    const auto reps = flags.get_int("reps", 4);
    const auto warmup = flags.get_int("warmup", 2);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    const double sample_us = flags.get_double("sample-us", 1.0);
    const int jobs = scc::exec::jobs_flag(flags);
    for (const std::string& name : flags.unconsumed()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return 2;
    }
    if (out_path.empty()) {
      std::fprintf(stderr,
                   "usage: obs_report --out=<html> [--collective=C] "
                   "[--elements=N] [--reps=R] [--warmup=W] [--seed=S] "
                   "[--sample-us=U] [--jobs=J]\n");
      return 2;
    }
    if (elements < 1 || reps < 1 || warmup < 0 || sample_us <= 0.0) {
      std::fprintf(stderr, "invalid run parameters\n");
      return 2;
    }
    const std::optional<Collective> collective =
        parse_collective(collective_flag);
    if (!collective) {
      std::fprintf(stderr, "unknown collective '%s'\n",
                   collective_flag.c_str());
      return 2;
    }

    // One job per variant; every job gets its own machine AND its own trace
    // recorder, so the grid parallelizes without sharing mutable state.
    const std::vector<scc::harness::PaperVariant> variants =
        scc::harness::variants_for(*collective);
    struct Cell {
      scc::harness::RunResult result;
      std::unique_ptr<scc::trace::Recorder> trace;
    };
    const std::vector<Cell> cells = scc::exec::parallel_map<Cell>(
        variants.size(), jobs, [&](std::size_t job) {
          Cell cell;
          cell.trace = std::make_unique<scc::trace::Recorder>();
          scc::harness::RunSpec run;
          run.collective = *collective;
          run.variant = variants[job];
          run.elements = static_cast<std::size_t>(elements);
          run.repetitions = static_cast<int>(reps);
          run.warmup = static_cast<int>(warmup);
          run.seed = seed;
          run.collect_metrics = true;
          run.sample_interval = scc::SimTime::from_us(sample_us);
          run.trace = cell.trace.get();
          cell.result = scc::harness::run_collective(run);
          return cell;
        });

    // Deterministic merge in variant order.
    scc::metrics::ObsReport report;
    report.title = scc::strprintf(
        "%s n=%d seed=%llu reps=%d",
        std::string(scc::harness::collective_name(*collective)).c_str(),
        static_cast<int>(elements), static_cast<unsigned long long>(seed),
        static_cast<int>(reps));
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const std::string name{scc::harness::variant_name(variants[v])};
      const scc::harness::RunResult& rr = cells[v].result;
      if (rr.timeseries) report.timeseries.emplace_back(name, *rr.timeseries);
      scc::metrics::Histogram hist;
      for (const scc::SimTime t : rr.latencies) hist.record_time(t);
      report.histograms.emplace_back(name, std::move(hist));
      if (!rr.sample_windows.empty()) {
        const auto [begin, end] = rr.sample_windows.back();
        const scc::metrics::BlameReport blame =
            scc::metrics::analyze_blame(*cells[v].trace, /*run=*/0,
                                        /*terminal_core=*/0, begin, end);
        std::ostringstream text;
        blame.print(text);
        report.blame_texts.emplace_back(name, text.str());
      }
      if (rr.metrics) report.metrics.emplace_back(name, *rr.metrics);
    }

    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "--out: cannot open %s\n", out_path.c_str());
      return 2;
    }
    report.write_html(out);
    if (!out) {
      std::fprintf(stderr, "--out: write to %s failed\n", out_path.c_str());
      return 2;
    }
    std::printf("observability report written to %s (%zu variants)\n",
                out_path.c_str(), variants.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_report: %s\n", e.what());
    return 2;
  }
}
