# bench-smoke regression gate for the algorithm-selection table, run as a
# ctest (label "bench-smoke"): regenerates bench/tab_algo_select with its
# default grid (lightweight variant, 6x4 mesh, sizes 8/48/192/552) and
# diffs the scc-bench-v1 JSON two-sided against the committed baseline,
# keyed by the "cell" column. The simulator is deterministic, so any drift
# -- a lost algorithm win, a Selector pick whose latency moved, or a paper-
# path change -- is a real model change; intentional recalibrations must
# re-commit the baseline. Two-sided: an "improvement" in paper_us is just
# as much unexplained drift as a regression in best_us.
#
# Required -D variables: TUNER, COMPARE (target binaries), BASELINE
# (committed JSON), WORK_DIR (scratch; bench_results/ is written inside).
foreach(var TUNER COMPARE BASELINE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "algo_select_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(
  COMMAND "${TUNER}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE tuner_rc)
if(NOT tuner_rc EQUAL 0)
  message(FATAL_ERROR "tab_algo_select failed (exit ${tuner_rc})")
endif()

execute_process(
  COMMAND "${COMPARE}"
    "--baseline=${BASELINE}"
    "--current=${WORK_DIR}/bench_results/tab_algo_select.json"
    "--key=cell"
    "--two-sided"
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
    "algo-select gate failed (exit ${compare_rc}); if the change is "
    "intentional, re-commit bench_results/baselines/tab_algo_select.json "
    "from the fresh ${WORK_DIR}/bench_results/tab_algo_select.json")
endif()
