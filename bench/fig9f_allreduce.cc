// Regenerates the paper's allreduce panel of Fig. 9: latency of a
// single collective on all 48 simulated cores against the vector size
// (500..700 doubles), one series per library variant. Reported times are
// VIRTUAL (simulated) microseconds -- the quantity on the paper's y-axis.
#include "bench_support.hpp"

int main(int argc, char** argv) {
  scc::bench::register_figure("fig9f_allreduce",
                              scc::harness::Collective::kAllreduce,
                              /*default_step=*/2);
  return scc::bench::figure_main(argc, argv, "fig9f_allreduce",
                                 scc::harness::Collective::kAllreduce);
}
