// Regenerates Fig. 10: total runtime of the Grand-Canonical Monte Carlo
// thermodynamics application under each communication stack. Reported
// times are VIRTUAL (simulated) seconds; the paper's absolute minutes come
// from far longer production runs, so EXPERIMENTS.md compares the
// *ratios* between the bars.
//
// Environment knobs: SCC_BENCH_CYCLES (GCMC moves, default 12),
// SCC_BENCH_REPS ignored (the app is a single deterministic trajectory).
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_support.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "gcmc/app.hpp"

namespace {

using scc::harness::PaperVariant;

scc::gcmc::AppParams bench_params() {
  scc::gcmc::AppParams params;
  params.model.kmaxvecs = 276;  // the paper's 552-double Allreduce
  params.particles_total = 240;
  params.max_local_particles = 12;
  params.cycles =
      static_cast<int>(scc::bench::env_size("SCC_BENCH_CYCLES", 12));
  return params;
}

std::map<PaperVariant, scc::gcmc::AppResult>& results() {
  static std::map<PaperVariant, scc::gcmc::AppResult> r;
  return r;
}

void run_variant(benchmark::State& state, PaperVariant variant) {
  for (auto _ : state) {
    scc::gcmc::AppResult result = scc::gcmc::run_app(bench_params(), variant);
    state.SetIterationTime(result.runtime.seconds());
    results()[variant] = std::move(result);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const PaperVariant variants[] = {
      PaperVariant::kRckmpi,      PaperVariant::kBlocking,
      PaperVariant::kIrcce,       PaperVariant::kLightweight,
      PaperVariant::kLwBalanced,  PaperVariant::kMpb};
  for (const PaperVariant v : variants) {
    const std::string name =
        std::string("fig10/") + std::string(scc::harness::variant_name(v));
    benchmark::RegisterBenchmark(
        name.c_str(),
        [v](benchmark::State& state) { run_variant(state, v); })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\n=== fig10: GCMC application runtime (48 cores, "
            << bench_params().cycles << " moves, virtual time) ===\n";
  scc::Table table({"variant", "runtime", "vs blocking", "speedup", "accepted",
                    "final energy"});
  const double blocking =
      results().at(PaperVariant::kBlocking).runtime.seconds();
  for (const PaperVariant v : variants) {
    const auto& r = results().at(v);
    const double s = r.runtime.seconds();
    table.add_row({std::string(scc::harness::variant_name(v)),
                   scc::format_minutes(s), scc::strprintf("%+.1f%%", (s - blocking) / blocking * 100.0),
                   scc::strprintf("%.2fx", blocking / s),
                   scc::strprintf("%d/%d", r.accepted, r.attempted),
                   scc::strprintf("%.4f", r.final_energy)});
  }
  table.print(std::cout);
  std::filesystem::create_directories("bench_results");
  table.write_csv_file("bench_results/fig10_gcmc_app.csv");
  table.write_json_file("bench_results/fig10_gcmc_app.json", "fig10_gcmc_app");
  std::cout << "\nseries written to bench_results/fig10_gcmc_app.csv\n";
  return 0;
}
