// Open-loop multi-tenant traffic generator with tail-latency reporting
// (harness/traffic.hpp): N tenant streams issue mixed collectives at
// exponential arrival times; per-request sojourn latency (completion minus
// scheduled arrival) lands in a log-bucketed metrics::Histogram and the
// p50/p99/p999 tail plus the drain makespan are reported per scenario.
//
//   traffic_gen [--streams=N] [--requests=N] [--elements=N] [--mean-us=F]
//               [--seed=N] [--jobs=N] [--workers=N]
//               [--sample-interval-us=F]
//
// The scenario matrix compares the serialized blocking drain against the
// non-blocking ProgressEngine at 1, 2 and 4 lanes on the same offered
// load. Every reported number is SIMULATED time: the whole table is a
// deterministic artifact, byte-identical for every --jobs (host threads
// across scenarios) and --workers (PDES drain threads inside each machine)
// combination, and gated two-sided against a committed baseline by
// traffic_gen_smoke.cmake -- a tail quantile drifting LOW is as suspicious
// as one drifting high (it usually means requests stopped overlapping or
// the schedule changed).
//
// Writes bench_results/traffic_gen.csv (full table) and the gated
// scc-bench-v1 JSON bench_results/traffic_gen.json. When
// --sample-interval-us is set, additionally writes one flight-recorder
// timeseries CSV per scenario (bench_results/traffic_<scenario>.csv).
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "exec/executor.hpp"
#include "harness/traffic.hpp"

namespace {

struct Scenario {
  std::string name;
  scc::harness::PaperVariant variant =
      scc::harness::PaperVariant::kLightweight;
  bool serialize = false;
  int lanes = 1;
};

double q_us(const scc::metrics::Histogram& h, double q) {
  return scc::SimTime{h.value_at_quantile(q)}.us();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto flags = scc::CliFlags::parse(argc, argv);
    scc::harness::TrafficSpec base;
    base.streams = static_cast<int>(flags.get_int("streams", 4));
    base.requests_per_stream =
        static_cast<int>(flags.get_int("requests", 12));
    base.elements = static_cast<std::size_t>(flags.get_int("elements", 96));
    base.mean_interarrival =
        scc::SimTime::from_us(flags.get_double("mean-us", 60.0));
    base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    const double sample_us = flags.get_double("sample-interval-us", 0.0);
    base.sample_interval = scc::SimTime::from_us(sample_us);
    const int jobs = scc::exec::jobs_flag(flags);
    base.pdes_workers = scc::exec::workers_flag(flags);
    for (const std::string& name : flags.unconsumed()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return 2;
    }
    if (base.streams < 1 || base.requests_per_stream < 1 ||
        base.elements < 1 ||
        base.mean_interarrival <= scc::SimTime::zero() || sample_us < 0.0) {
      std::fprintf(stderr,
                   "usage: traffic_gen [--streams=N>=1] [--requests=N>=1] "
                   "[--elements=N>=1] [--mean-us=F>0] [--seed=N] "
                   "[--jobs=N>=1] [--workers=N>=1] "
                   "[--sample-interval-us=F>=0]\n");
      return 2;
    }

    // The serialized blocking drain is the baseline every overlap claim is
    // measured against; the lanes sweep shows what each level of engine
    // concurrency buys on the identical offered load.
    const std::vector<Scenario> scenarios = {
        {"lightweight_serialized", scc::harness::PaperVariant::kLightweight,
         true, 1},
        {"lightweight_nbc_lanes1", scc::harness::PaperVariant::kLightweight,
         false, 1},
        {"lightweight_nbc_lanes2", scc::harness::PaperVariant::kLightweight,
         false, 2},
        {"lightweight_nbc_lanes4", scc::harness::PaperVariant::kLightweight,
         false, 4},
        {"ircce_serialized", scc::harness::PaperVariant::kIrcce, true, 1},
        {"ircce_nbc_lanes2", scc::harness::PaperVariant::kIrcce, false, 2},
    };

    // Fully independent simulations: fan out over host threads, merge in
    // scenario order, so the artifact bytes never depend on --jobs.
    const auto results =
        scc::exec::parallel_map<scc::harness::TrafficResult>(
            scenarios.size(), jobs, [&](std::size_t i) {
              scc::harness::TrafficSpec spec = base;
              spec.variant = scenarios[i].variant;
              spec.serialize = scenarios[i].serialize;
              spec.lanes = scenarios[i].lanes;
              return scc::harness::run_traffic(spec);
            });

    scc::Table table({"scenario", "requests", "p50_us", "p90_us", "p99_us",
                      "p999_us", "max_us", "makespan_us", "lines_sent"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const scc::harness::TrafficResult& r = results[i];
      table.add_row(
          {scenarios[i].name, scc::strprintf("%zu", r.requests),
           scc::strprintf("%.3f", q_us(r.latency, 0.5)),
           scc::strprintf("%.3f", q_us(r.latency, 0.9)),
           scc::strprintf("%.3f", q_us(r.latency, 0.99)),
           scc::strprintf("%.3f", q_us(r.latency, 0.999)),
           scc::strprintf("%.3f", scc::SimTime{r.latency.max()}.us()),
           scc::strprintf("%.3f", r.makespan.us()),
           scc::strprintf("%llu",
                          static_cast<unsigned long long>(r.lines_sent))});
    }
    std::cout << scc::strprintf(
        "=== open-loop traffic: %d streams x %d requests, n=%zu, "
        "mean interarrival %.1f us (simulated time) ===\n",
        base.streams, base.requests_per_stream, base.elements,
        base.mean_interarrival.us());
    table.print(std::cout);

    const double serial_ms = results[0].makespan.us();
    const double nbc2_ms = results[2].makespan.us();
    std::cout << scc::strprintf(
        "\noverlap win (lightweight, 2 lanes vs serialized drain): "
        "makespan %.1f us -> %.1f us (%.2fx), p99 %.1f us -> %.1f us\n",
        serial_ms, nbc2_ms, nbc2_ms > 0.0 ? serial_ms / nbc2_ms : 0.0,
        q_us(results[0].latency, 0.99), q_us(results[2].latency, 0.99));

    std::filesystem::create_directories("bench_results");
    table.write_csv_file("bench_results/traffic_gen.csv");
    // The gated JSON carries only simulated, deterministic columns; the
    // smoke gate diffs them TWO-SIDED against the committed baseline.
    scc::Table gate({"scenario", "p50_us", "p99_us", "p999_us",
                     "makespan_us"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const scc::harness::TrafficResult& r = results[i];
      gate.add_row({scenarios[i].name,
                    scc::strprintf("%.3f", q_us(r.latency, 0.5)),
                    scc::strprintf("%.3f", q_us(r.latency, 0.99)),
                    scc::strprintf("%.3f", q_us(r.latency, 0.999)),
                    scc::strprintf("%.3f", r.makespan.us())});
    }
    gate.write_json_file("bench_results/traffic_gen.json", "traffic_gen");
    std::cout << "written to bench_results/traffic_gen.csv and "
                 "bench_results/traffic_gen.json\n";
    if (base.sample_interval > scc::SimTime::zero()) {
      for (std::size_t i = 0; i < scenarios.size(); ++i) {
        if (!results[i].timeseries) continue;
        const std::string path = scc::strprintf(
            "bench_results/traffic_%s.csv", scenarios[i].name.c_str());
        std::ofstream os(path);
        results[i].timeseries->write_csv(os);
        std::cout << "timeseries written to " << path << '\n';
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "traffic_gen: %s\n", e.what());
    return 2;
  }
}
