// Contention ablation (beyond the paper; DESIGN.md lists the optional
// link-contention model): how much do the Fig. 9 latencies shift when
// first-order link queueing is modeled instead of the paper's
// contention-free formulas? Dense patterns (Alltoall, Allgather) should
// shift most; the neighbour-local reduction rings barely.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_support.hpp"

namespace {

using scc::harness::Collective;
using scc::harness::PaperVariant;

double latency_us(Collective coll, bool contention) {
  scc::harness::RunSpec spec;
  spec.collective = coll;
  spec.variant = PaperVariant::kLightweight;
  spec.elements = 552;
  spec.repetitions = static_cast<int>(scc::bench::env_size("SCC_BENCH_REPS", 2));
  spec.warmup = 1;
  spec.verify = false;
  spec.config.cost.hw.model_link_contention = contention;
  return scc::harness::run_collective(spec).mean_latency.us();
}

std::map<Collective, std::pair<double, double>>& rows() {
  static std::map<Collective, std::pair<double, double>> r;
  return r;
}

void bench_collective(benchmark::State& state, Collective coll) {
  for (auto _ : state) {
    const double off = latency_us(coll, false);
    const double on = latency_us(coll, true);
    rows()[coll] = {off, on};
    state.SetIterationTime(on * 1e-6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Collective collectives[] = {
      Collective::kAllgather, Collective::kAlltoall,
      Collective::kReduceScatter, Collective::kBroadcast, Collective::kReduce,
      Collective::kAllreduce};
  for (const Collective coll : collectives) {
    const std::string name = std::string("abl_contention/") +
                             std::string(scc::harness::collective_name(coll));
    benchmark::RegisterBenchmark(
        name.c_str(),
        [coll](benchmark::State& state) { bench_collective(state, coll); })
        ->UseManualTime()
        ->Unit(benchmark::kMicrosecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\n=== Link-contention ablation (lightweight stack, 552 "
            << "doubles, 48 cores) ===\n";
  scc::Table table(
      {"collective", "contention-free", "with contention", "slowdown"});
  for (const Collective coll : collectives) {
    const auto& [off, on] = rows().at(coll);
    table.add_row({std::string(scc::harness::collective_name(coll)),
                   scc::strprintf("%.1f us", off),
                   scc::strprintf("%.1f us", on),
                   scc::strprintf("%+.1f%%", (on - off) / off * 100.0)});
  }
  table.print(std::cout);
  std::cout << "\n(The paper's latency formulas are contention-free; the "
            << "default configuration matches them.)\n";
  std::filesystem::create_directories("bench_results");
  table.write_csv_file("bench_results/abl_contention.csv");
  table.write_json_file("bench_results/abl_contention.json", "abl_contention");
  return 0;
}
