// Golden smoke of the fused observability report (metrics/report.hpp):
// the HTML is self-contained (inline CSS + SVG, no external fetches, no
// timestamps), renders every section that has data, escapes what it
// embeds, and is byte-deterministic.
#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "metrics/histogram.hpp"
#include "metrics/registry.hpp"
#include "metrics/sampler.hpp"

namespace scc::metrics {
namespace {

ObsReport golden_report() {
  ObsReport report;
  report.title = "allreduce n=96 <golden>";

  TimeSeries ts;
  ts.label = "lw-balanced";
  ts.interval = SimTime{1'000'000'000};
  ts.ticks = 3;
  ts.columns = {"engine/events_processed", "noc/lines_sent"};
  ts.rows = {{SimTime{1'000'000'000}, {10, 2}},
             {SimTime{2'000'000'000}, {25, 5}},
             {SimTime{3'000'000'000}, {70, 9}}};
  report.timeseries.emplace_back("lw-balanced", ts);

  Histogram hist;
  for (const std::uint64_t v : {1'000'000'000ULL, 1'200'000'000ULL,
                                1'500'000'000ULL, 9'000'000'000ULL}) {
    hist.record(v);
  }
  report.histograms.emplace_back("lw-balanced", std::move(hist));
  report.histograms.emplace_back("empty-variant", Histogram{});

  MetricsRegistry reg;
  reg.set("noc/link/(0,0)->(1,0)/busy_fs", 5'000'000'000ULL);
  reg.set("noc/link/(1,0)->(0,0)/busy_fs", 1'000'000'000ULL);
  reg.set("noc/link/(0,0)->(0,1)/busy_fs", 2'500'000'000ULL);
  reg.set("unrelated/counter", 7);
  report.metrics.emplace_back("lw-balanced", reg);

  report.blame_texts.emplace_back(
      "lw-balanced", "61.0% flag-wait core 17\n12.0% link-queue <mesh>\n");
  return report;
}

std::string html_of(const ObsReport& report) {
  std::ostringstream os;
  report.write_html(os);
  return os.str();
}

TEST(ObsReport, RendersEverySectionSelfContained) {
  const std::string html = html_of(golden_report());
  // Envelope and inline style only -- nothing external to fetch.
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("<style>"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);
  // Title is escaped, not embedded raw.
  EXPECT_NE(html.find("allreduce n=96 &lt;golden&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<golden>"), std::string::npos);
  // Histogram table with quantile columns; the empty variant degrades.
  EXPECT_NE(html.find("p999 us"), std::string::npos);
  EXPECT_NE(html.find("no samples"), std::string::npos);
  // One sparkline SVG per column.
  EXPECT_NE(html.find("engine/events_processed (peak 70)"),
            std::string::npos);
  EXPECT_NE(html.find("noc/lines_sent (peak 9)"), std::string::npos);
  EXPECT_NE(html.find("<polygon points="), std::string::npos);
  // Heatmap: three parsed links, escaped tooltips, tile labels.
  EXPECT_NE(html.find("(0,0)-&gt;(1,0) busy 5.00 us"), std::string::npos);
  EXPECT_NE(html.find("(0,0)-&gt;(0,1) busy 2.50 us"), std::string::npos);
  // Blame text is escaped into a <pre> block.
  EXPECT_NE(html.find("link-queue &lt;mesh&gt;"), std::string::npos);
}

TEST(ObsReport, OutputIsByteDeterministic) {
  EXPECT_EQ(html_of(golden_report()), html_of(golden_report()));
}

TEST(ObsReport, EmptyReportOmitsSections) {
  ObsReport report;
  report.title = "empty";
  const std::string html = html_of(report);
  EXPECT_EQ(html.find("<h2>"), std::string::npos);
  EXPECT_EQ(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("</body></html>"), std::string::npos);
}

}  // namespace
}  // namespace scc::metrics
