#include "metrics/registry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "machine/scc_machine.hpp"
#include "metrics/collect.hpp"
#include "metrics/json.hpp"

namespace scc::metrics {
namespace {

TEST(Registry, SetOverwritesAndLooksUp) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.set("a/b", 7, Unit::kBytes, /*invariant=*/true);
  reg.set("a/b", 9, Unit::kBytes, /*invariant=*/true);  // overwrite
  reg.set("a/c", 1);
  EXPECT_EQ(reg.size(), 2u);
  ASSERT_NE(reg.find("a/b"), nullptr);
  EXPECT_EQ(reg.find("a/b")->value, 9u);
  EXPECT_EQ(reg.find("a/b")->unit, Unit::kBytes);
  EXPECT_TRUE(reg.find("a/b")->invariant);
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_EQ(reg.value_or("a/c"), 1u);
  EXPECT_EQ(reg.value_or("missing", 42), 42u);
}

TEST(Registry, SetTimeStoresFemtoseconds) {
  MetricsRegistry reg;
  reg.set_time("t", SimTime::from_ns(2));
  ASSERT_NE(reg.find("t"), nullptr);
  EXPECT_EQ(reg.find("t")->value, 2'000'000u);
  EXPECT_EQ(reg.find("t")->unit, Unit::kFemtoseconds);
}

TEST(Registry, AbsorbPrefixesEveryEntry) {
  MetricsRegistry point;
  point.set("run/lines", 5, Unit::kCount, /*invariant=*/true);
  point.set("run/latency_fs", 99, Unit::kFemtoseconds);
  MetricsRegistry sweep;
  sweep.set("points", 1);
  sweep.absorb(point, "point/552/");
  EXPECT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep.value_or("point/552/run/lines"), 5u);
  ASSERT_NE(sweep.find("point/552/run/lines"), nullptr);
  EXPECT_TRUE(sweep.find("point/552/run/lines")->invariant);
}

TEST(Registry, DiffInvariantIgnoresVariantEntries) {
  MetricsRegistry a, b;
  a.set("vol", 10, Unit::kCount, /*invariant=*/true);
  b.set("vol", 10, Unit::kCount, /*invariant=*/true);
  a.set("time", 123, Unit::kFemtoseconds, /*invariant=*/false);
  b.set("time", 456, Unit::kFemtoseconds, /*invariant=*/false);
  EXPECT_TRUE(MetricsRegistry::diff_invariant(a, b).empty());
}

TEST(Registry, DiffInvariantReportsDriftAndMissingBothWays) {
  MetricsRegistry a, b;
  a.set("vol", 10, Unit::kCount, /*invariant=*/true);
  b.set("vol", 11, Unit::kCount, /*invariant=*/true);
  a.set("only_a", 1, Unit::kCount, /*invariant=*/true);
  b.set("only_b", 1, Unit::kCount, /*invariant=*/true);
  const std::vector<std::string> diff = MetricsRegistry::diff_invariant(a, b);
  EXPECT_EQ(diff.size(), 3u);
}

TEST(Registry, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.set_label("test \"label\"");
  reg.set("run/lines_sent", 1234, Unit::kCount, /*invariant=*/true);
  reg.set_time("run/mean_latency_fs", SimTime::from_ns(3));
  std::ostringstream os;
  reg.write_json(os);

  const JsonValue doc = parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "scc-metrics-v1");
  EXPECT_EQ(doc.find("label")->as_string(), "test \"label\"");
  const JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* lines = metrics->find("run/lines_sent");
  ASSERT_NE(lines, nullptr);
  EXPECT_EQ(lines->find("value")->as_number(), 1234.0);
  EXPECT_EQ(lines->find("unit")->as_string(), "count");
  EXPECT_TRUE(lines->find("invariant")->as_bool());
  const JsonValue* lat = metrics->find("run/mean_latency_fs");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("value")->as_number(), 3e6);
  EXPECT_FALSE(lat->find("invariant")->as_bool());
}

// --- machine snapshot: cache counters -----------------------------------

sim::Task<> sweep_program(machine::CoreApi& api, const std::vector<double>* buf) {
  co_await api.priv_read(buf->data(), buf->size() * sizeof(double));
  co_await api.priv_read(buf->data(), buf->size() * sizeof(double));
}

TEST(Collect, PinsColdFootprintMissCountsForKnownSweep) {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;  // 8 cores
  machine::SccMachine machine(config);
  // 256 doubles = 2048 bytes = exactly 64 cache lines. The first sweep
  // misses once per line (cold footprint); the second hits every line.
  std::vector<double> buf(256);
  machine.launch(0, sweep_program(machine.core(0), &buf));
  machine.run();

  MetricsRegistry reg;
  collect_machine(machine, reg);
  EXPECT_EQ(reg.value_or("core/0/cache/misses"), 64u);
  EXPECT_EQ(reg.value_or("core/0/cache/hits"), 64u);
  EXPECT_EQ(reg.value_or("core/1/cache/misses"), 0u);
  // Volume-type counters are classified invariant (seed-independent).
  ASSERT_NE(reg.find("core/0/cache/misses"), nullptr);
  EXPECT_TRUE(reg.find("core/0/cache/misses")->invariant);
  // Reads only: no dirty lines, no writebacks.
  EXPECT_EQ(reg.value_or("core/0/cache/writebacks"), 0u);
}

}  // namespace
}  // namespace scc::metrics
