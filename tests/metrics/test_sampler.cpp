// Flight-recorder determinism: the engine probe fires at exact virtual
// tick instants (state-before-tick semantics), decimation keeps the tick
// grid deterministic under bounded memory, and attaching a sampler changes
// nothing about the simulation itself.
#include "metrics/sampler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace scc::metrics {
namespace {

using sim::Engine;

TEST(Sampler, ProbeFiresAtTickInstantsWithStateBeforeTick) {
  Engine engine;
  std::uint64_t counter = 0;
  // Events at t = 5, 15, 25: the tick at 10 must see exactly the t=5
  // increment, the tick at 20 exactly the first two.
  engine.schedule_call(SimTime{5}, [&] { ++counter; });
  engine.schedule_call(SimTime{15}, [&] { ++counter; });
  engine.schedule_call(SimTime{25}, [&] { ++counter; });

  Sampler sampler(SimTime{10});
  sampler.add_column("c", [&] { return counter; });
  sampler.attach(engine);
  engine.run();
  engine.clear_probe();

  // The tick at 30 never fires: no event with timestamp >= 30 exists.
  const TimeSeries series = sampler.take();
  ASSERT_EQ(series.rows.size(), 2u);
  EXPECT_EQ(series.rows[0].t, SimTime{10});
  EXPECT_EQ(series.rows[0].values, std::vector<std::uint64_t>{1});
  EXPECT_EQ(series.rows[1].t, SimTime{20});
  EXPECT_EQ(series.rows[1].values, std::vector<std::uint64_t>{2});
  EXPECT_EQ(series.ticks, 2u);
  EXPECT_EQ(series.interval, SimTime{10});
}

TEST(Sampler, ProbeReadsTickTimeAsNow) {
  Engine engine;
  engine.schedule_call(SimTime{7}, [] {});
  engine.schedule_call(SimTime{35}, [] {});

  std::vector<SimTime> nows;
  Sampler sampler(SimTime{10});
  sampler.add_column("now_fs",
                     [&] { nows.push_back(engine.now());
                           return engine.now().femtoseconds(); });
  sampler.attach(engine);
  engine.run();
  engine.clear_probe();

  // Ticks at 10, 20, 30 all fire before the t=35 event; each sees now()
  // pinned at its own tick instant, not at the triggering event's time.
  ASSERT_EQ(nows.size(), 3u);
  EXPECT_EQ(nows[0], SimTime{10});
  EXPECT_EQ(nows[1], SimTime{20});
  EXPECT_EQ(nows[2], SimTime{30});
  EXPECT_EQ(engine.now(), SimTime{35});
}

TEST(Sampler, DecimationKeepsEveryStrideThTick) {
  // max_rows = 4: the 4th accepted row triggers a decimation (keep even
  // indices, double the stride). Offer 16 ticks at t = 1..16.
  Sampler sampler(SimTime{1}, /*max_rows=*/4);
  std::uint64_t v = 0;
  sampler.add_column("v", [&] { return v; });
  for (std::uint64_t i = 1; i <= 16; ++i) {
    v = i;
    sampler.tick(SimTime{i});
  }
  const TimeSeries series = sampler.take();
  EXPECT_EQ(series.ticks, 16u);
  // Decimation fires the moment the buffer reaches max_rows: the 4th
  // accepted row (tick index 3) halves to stride 2, index 7 to stride 4,
  // index 13 to stride 8 -- survivors are the ticks whose index is a
  // multiple of the final stride (0 and 8, i.e. t = 1 and t = 9).
  EXPECT_EQ(series.decimations, 3u);
  std::vector<std::uint64_t> kept;
  for (const TimeSeries::Row& row : series.rows)
    kept.push_back(row.t.femtoseconds());
  EXPECT_EQ(kept, (std::vector<std::uint64_t>{1, 9}));
  EXPECT_LT(series.rows.size(), 4u);
  // Every surviving row keeps its full value vector (regression: the
  // compaction loop must not self-move row 0 into itself, which would
  // empty it).
  ASSERT_EQ(series.rows.size(), 2u);
  EXPECT_EQ(series.rows[0].values, std::vector<std::uint64_t>{1});
  EXPECT_EQ(series.rows[1].values, std::vector<std::uint64_t>{9});
}

TEST(Sampler, DecimationIsDeterministicRunToRun) {
  // The surviving tick grid is a function of the total tick count alone:
  // two sessions over the same stream decimate to byte-identical CSV, and
  // the grid genuinely depends on the count (no hidden host state).
  const auto run = [](int ticks) {
    Sampler sampler(SimTime{1}, /*max_rows=*/8);
    std::uint64_t v = 0;
    sampler.add_column("v", [&] { return v; });
    for (int i = 1; i <= ticks; ++i) {
      v = static_cast<std::uint64_t>(i) * 3;
      sampler.tick(SimTime{static_cast<std::uint64_t>(i)});
    }
    std::ostringstream os;
    sampler.take().write_csv(os);
    return os.str();
  };
  EXPECT_EQ(run(100), run(100));
  // The 113th tick (index 112, a multiple of the stride) forces another
  // decimation, so the surviving grid coarsens: count drives the grid.
  EXPECT_NE(run(100), run(113));
}

TEST(Sampler, SamplingIsPurelyObservational) {
  // Identical workloads, one with a probe attached: the simulation's final
  // state must be bit-identical (the obs tier's core invariant, here at
  // engine granularity).
  const auto run = [](bool sampled) {
    Engine engine;
    std::uint64_t acc = 0;
    for (std::uint64_t t = 1; t <= 50; ++t) {
      engine.schedule_call(SimTime{t * 7},
                           [&acc, t] { acc = acc * 31 + t; });
    }
    Sampler sampler(SimTime{10});
    sampler.add_column("acc", [&] { return acc; });
    if (sampled) sampler.attach(engine);
    engine.run();
    return std::pair<std::uint64_t, std::uint64_t>{
        acc, engine.events_processed()};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Sampler, CsvAndJsonShapes) {
  Sampler sampler(SimTime{1000});
  sampler.set_label("shape-test");
  std::uint64_t a = 0;
  std::uint64_t b = 100;
  sampler.add_column("alpha", [&] { return a; });
  sampler.add_column("beta", [&] { return b; });
  a = 4;
  sampler.tick(SimTime{1000});
  a = 9;
  b = 101;
  sampler.tick(SimTime{2000});
  const TimeSeries series = sampler.take();

  std::ostringstream csv;
  series.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "t_fs,alpha,beta\n"
            "1000,4,100\n"
            "2000,9,101\n");

  std::ostringstream json;
  series.write_json(json);
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"schema\": \"scc-timeseries-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"label\": \"shape-test\""), std::string::npos);
  EXPECT_NE(doc.find("\"interval_fs\": 1000"), std::string::npos);
  EXPECT_NE(doc.find("\"alpha\""), std::string::npos);
}

TEST(Sampler, TakeResetsRowsAndKeepsColumns) {
  Sampler sampler(SimTime{10});
  std::uint64_t v = 1;
  sampler.add_column("v", [&] { return v; });
  sampler.tick(SimTime{10});
  EXPECT_EQ(sampler.take().rows.size(), 1u);
  // A fresh session on the same sampler starts from an empty series and
  // stride 1.
  v = 2;
  sampler.tick(SimTime{10});
  const TimeSeries second = sampler.take();
  ASSERT_EQ(second.rows.size(), 1u);
  EXPECT_EQ(second.rows[0].values, std::vector<std::uint64_t>{2});
  EXPECT_EQ(second.ticks, 1u);
}

}  // namespace
}  // namespace scc::metrics
