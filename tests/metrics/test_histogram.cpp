// HDR histogram determinism and accuracy: exact small values, bounded
// relative quantile error at every scale, exact merge (any split of a
// sample stream reproduces the serial state bit for bit), and the JSON
// export contract (non-finite statistics become null via json_number --
// the regression the obs tier pins for metrics/json).
#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "metrics/json.hpp"

namespace scc::metrics {
namespace {

std::string json_of(const Histogram& h) {
  std::ostringstream os;
  h.write_json_us(os);
  return os.str();
}

/// Deterministic value stream (splitmix64): no RNG seed plumbing needed,
/// same sequence on every platform.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(Histogram, EmptyExportsCountZeroAndNulls) {
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  const std::string json = json_of(h);
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\": null"), std::string::npos);
  // The document must still parse (null, not nan, reaches the file).
  const JsonValue doc = parse_json(json);
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.as_object().at("p50_us").is_null());
}

TEST(Histogram, JsonNumberMapsNonFiniteToNull) {
  // Satellite regression for metrics/json: NaN/inf must never be printed
  // bare (bare nan is invalid JSON and breaks every downstream parser).
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(2.5), "2.5");
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below kSubBuckets land in unit-width buckets: quantiles are
  // exact, not approximate.
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) h.record(v);
  EXPECT_EQ(h.count(), Histogram::kSubBuckets);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), Histogram::kSubBuckets - 1);
  EXPECT_EQ(h.value_at_quantile(0.0), 0u);
  EXPECT_EQ(h.value_at_quantile(1.0), Histogram::kSubBuckets - 1);
  // Median of 0..31: at least 16 values <= bucket -> bucket holding 15.
  EXPECT_EQ(h.value_at_quantile(0.5), 15u);
}

TEST(Histogram, SingleValueReportsItselfAtEveryQuantile) {
  Histogram h;
  h.record(123456789u);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.value_at_quantile(q), 123456789u) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.mean(), 123456789.0);
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{31},
        std::uint64_t{32}, std::uint64_t{33}, std::uint64_t{1000},
        std::uint64_t{1} << 40, (std::uint64_t{1} << 40) + 12345,
        std::numeric_limits<std::uint64_t>::max()}) {
    const std::size_t index = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lower(index), v) << v;
    EXPECT_GE(Histogram::bucket_upper(index), v) << v;
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(index)), index);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(index)), index);
  }
}

TEST(Histogram, QuantileTracksExactSampleQuantileWithinBucketError) {
  // Differential check against the exact type-7 quantile (common/stats):
  // the histogram's answer must stay within one sub-bucket's relative
  // width (2^-kSubBucketBits ~ 3.1%, plus interpolation slop) of the
  // exact order statistic, across several orders of magnitude.
  Histogram h;
  std::vector<double> exact;
  std::uint64_t x = 7;
  for (int i = 0; i < 20000; ++i) {
    x = mix64(x);
    // Skewed tail: mostly ~1e6, occasionally up to ~1e9.
    const std::uint64_t v = 1'000'000 + x % (1 + (i % 97 == 0 ? 1'000'000'000u
                                                              : 300'000u));
    h.record(v);
    exact.push_back(static_cast<double>(v));
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double want = quantile(exact, q);
    const double got = static_cast<double>(h.value_at_quantile(q));
    EXPECT_NEAR(got, want, want * 0.04) << "q=" << q;
  }
}

TEST(Histogram, TailQuantileOfSmallSamplesIsTheExactMaximum) {
  // Regression: for q * count reaching the last rank -- p999 of anything
  // under 1000 samples, p99 under 100, q = 1.0 always -- the quantile IS
  // the maximum, which the histogram tracks exactly. The old walk returned
  // the midpoint of the maximum's bucket instead, under-reporting the tail
  // by up to half a bucket (~1.6%) on exactly the small per-cell sample
  // counts the conformance and traffic reports aggregate.
  for (const int n : {2, 7, 10, 99, 999}) {
    Histogram h;
    std::uint64_t x = 11;
    std::uint64_t top = 0;
    for (int i = 0; i < n; ++i) {
      x = mix64(x);
      const std::uint64_t v = 1'000'000 + x % 1'000'000;
      top = std::max(top, v);
      h.record(v);
    }
    EXPECT_EQ(h.value_at_quantile(0.999), top) << n << " samples";
    EXPECT_EQ(h.value_at_quantile(1.0), top) << n << " samples";
  }
}

TEST(Histogram, FullQuantileIsExactWhenMaxSharesItsBucket) {
  // 96 and 97 land in the same sub-bucket (width 2 at this scale): q = 1
  // must still report 97, not the shared bucket's midpoint 96.
  Histogram h;
  h.record(96);
  h.record(97);
  EXPECT_EQ(Histogram::bucket_index(96), Histogram::bucket_index(97));
  EXPECT_EQ(h.value_at_quantile(1.0), 97u);
  EXPECT_EQ(h.value_at_quantile(0.0), 96u);
}

TEST(Histogram, TinySampleQuantilesTrackTheirOrderStatistic) {
  // On tiny counts the type-7 interpolated quantile and the histogram's
  // rank convention (type 1: the ceil(q * n)-th order statistic)
  // legitimately diverge by whole inter-sample gaps, so the honest
  // differential is against the exact order statistic the rank targets:
  // within one sub-bucket width always, and EXACT at both extreme ranks.
  for (const int n : {2, 3, 5, 12, 37, 200}) {
    Histogram h;
    std::vector<std::uint64_t> sorted;
    std::uint64_t x = static_cast<std::uint64_t>(n) * 131;
    for (int i = 0; i < n; ++i) {
      x = mix64(x);
      const std::uint64_t v = 500'000 + x % 4'000'000;
      h.record(v);
      sorted.push_back(v);
    }
    std::sort(sorted.begin(), sorted.end());
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
      const auto rank = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 std::ceil(q * static_cast<double>(n))));
      const std::uint64_t want = sorted[static_cast<std::size_t>(rank - 1)];
      const auto got = static_cast<double>(h.value_at_quantile(q));
      if (rank == 1 || rank == static_cast<std::uint64_t>(n)) {
        EXPECT_EQ(h.value_at_quantile(q), want) << "n=" << n << " q=" << q;
      } else {
        // One sub-bucket width at this magnitude: want / 2^5, +1 for the
        // integer bucket bounds.
        const double tol =
            static_cast<double>(want) / Histogram::kSubBuckets + 1.0;
        EXPECT_NEAR(got, static_cast<double>(want), tol)
            << "n=" << n << " q=" << q;
      }
    }
  }
}

TEST(Histogram, QuantilesAreMonotoneInQ) {
  Histogram h;
  std::uint64_t x = 3;
  for (int i = 0; i < 257; ++i) {
    x = mix64(x);
    h.record(x % 50'000'000);
  }
  std::uint64_t prev = 0;
  for (const double q :
       {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const std::uint64_t v = h.value_at_quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_EQ(h.value_at_quantile(0.0), h.min());
  EXPECT_EQ(h.value_at_quantile(1.0), h.max());
}

TEST(HistogramDeathTest, QuantileOutsideUnitIntervalAborts) {
  // The q-domain contract is enforced, not saturated: a caller computing a
  // quantile from bad arithmetic (q = 1.001, q = -0.1) must crash with a
  // diagnostic rather than silently read the max.
  Histogram h;
  h.record(42);
  EXPECT_DEATH((void)h.value_at_quantile(-0.001), "precondition");
  EXPECT_DEATH((void)h.value_at_quantile(1.001), "precondition");
  EXPECT_DEATH((void)h.value_at_quantile(-1e9), "precondition");
  const Histogram empty;
  EXPECT_DEATH((void)empty.value_at_quantile(0.5), "precondition");
}

TEST(Histogram, MergeReproducesSerialStateExactly) {
  Histogram serial;
  Histogram parts[3];
  std::uint64_t x = 42;
  for (int i = 0; i < 5000; ++i) {
    x = mix64(x);
    const std::uint64_t v = x % 10'000'000;
    serial.record(v);
    parts[i % 3].record(v);
  }
  Histogram merged;
  merged.merge(parts[0]);
  merged.merge(parts[1]);
  merged.merge(parts[2]);
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_EQ(merged.sum(), serial.sum());
  EXPECT_EQ(merged.min(), serial.min());
  EXPECT_EQ(merged.max(), serial.max());
  EXPECT_EQ(merged.buckets(), serial.buckets());
  EXPECT_EQ(json_of(merged), json_of(serial));

  // And merge order is irrelevant (commutativity): the export bytes pin it.
  Histogram reversed;
  reversed.merge(parts[2]);
  reversed.merge(parts[0]);
  reversed.merge(parts[1]);
  EXPECT_EQ(json_of(reversed), json_of(serial));
}

TEST(Histogram, QuantileEdgeCasesMatchStatsQuantile) {
  // Satellite: common/stats quantile edge cases, differentially against
  // the histogram where both are exact (unit-width buckets).
  EXPECT_DOUBLE_EQ(quantile({5.0}, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile({5.0}, 0.73), 5.0);
  EXPECT_DOUBLE_EQ(quantile({5.0}, 1.0), 5.0);
  // Duplicates collapse: every quantile is the duplicated value.
  EXPECT_DOUBLE_EQ(quantile({3.0, 3.0, 3.0, 3.0}, 0.99), 3.0);
  // Type-7 interpolation: rank h = q * (n - 1) between order statistics.
  EXPECT_DOUBLE_EQ(quantile({10.0, 20.0}, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0, 20.0, 30.0}, 0.25), 7.5);
  // median() agreement on even-sized samples.
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.5),
                   median({1.0, 2.0, 3.0, 4.0}));

  Histogram h;
  for (const std::uint64_t v : {3u, 3u, 3u, 3u}) h.record(v);
  EXPECT_EQ(h.value_at_quantile(0.99), 3u);
}

}  // namespace
}  // namespace scc::metrics
