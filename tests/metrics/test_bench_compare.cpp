#include "metrics/bench_compare.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "metrics/json.hpp"

namespace scc::metrics {
namespace {

JsonValue bench_doc(double blocking_us, double ircce_us) {
  Table table({"elements", "blocking_us", "ircce_us"});
  table.add_row({"552", std::to_string(blocking_us),
                 std::to_string(ircce_us)});
  table.add_row({"1104", std::to_string(2 * blocking_us),
                 std::to_string(2 * ircce_us)});
  std::ostringstream os;
  table.write_json(os, "fig9f_allreduce");
  return parse_json(os.str());
}

TEST(BenchCompare, IdenticalRunsPass) {
  const CompareOutcome outcome =
      compare_bench(bench_doc(100.0, 70.0), bench_doc(100.0, 70.0),
                    CompareOptions{});
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.values_compared, 4);
}

TEST(BenchCompare, WithinTolerancePasses) {
  CompareOptions options;
  options.rel_tol = 0.05;
  const CompareOutcome outcome =
      compare_bench(bench_doc(100.0, 70.0), bench_doc(104.0, 72.0), options);
  EXPECT_TRUE(outcome.ok());
}

TEST(BenchCompare, TenPercentRegressionFails) {
  // The acceptance scenario: a 10% latency inflation must trip the 5% gate.
  CompareOptions options;
  options.rel_tol = 0.05;
  const CompareOutcome outcome =
      compare_bench(bench_doc(100.0, 70.0), bench_doc(110.0, 70.0), options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.regressions.empty());
}

TEST(BenchCompare, ImprovementPassesOneSidedFailsTwoSided) {
  CompareOptions options;
  options.rel_tol = 0.05;
  EXPECT_TRUE(
      compare_bench(bench_doc(100.0, 70.0), bench_doc(80.0, 70.0), options)
          .ok());
  options.two_sided = true;
  EXPECT_FALSE(
      compare_bench(bench_doc(100.0, 70.0), bench_doc(80.0, 70.0), options)
          .ok());
}

TEST(BenchCompare, MissingRowIsCoverageLoss) {
  Table current({"elements", "blocking_us", "ircce_us"});
  current.add_row({"552", "100.0", "70.0"});  // 1104 row dropped
  std::ostringstream os;
  current.write_json(os, "fig9f_allreduce");
  const CompareOutcome outcome = compare_bench(
      bench_doc(100.0, 70.0), parse_json(os.str()), CompareOptions{});
  EXPECT_FALSE(outcome.ok());
}

TEST(BenchCompare, MissingColumnIsCoverageLoss) {
  Table current({"elements", "blocking_us"});
  current.add_row({"552", "100.0"});
  current.add_row({"1104", "200.0"});
  std::ostringstream os;
  current.write_json(os, "fig9f_allreduce");
  const CompareOutcome outcome = compare_bench(
      bench_doc(100.0, 70.0), parse_json(os.str()), CompareOptions{});
  EXPECT_FALSE(outcome.ok());
}

/// A bench doc whose table is stable but whose --hist block moves: the
/// histogram gate must judge the quantiles independently of the rows.
JsonValue hist_doc(double p99_us) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"scc-bench-v1\",\n  \"name\": \"fig9f_allreduce\",\n"
     << "  \"rows\": [\n    {\"elements\": 552, \"blocking_us\": 100.0}\n  ],\n"
     << "  \"histograms\": {\"blocking\": {\"count\": 4, \"p50_us\": 90.0, "
     << "\"p99_us\": " << json_number(p99_us) << "}}\n}\n";
  return parse_json(os.str());
}

TEST(BenchCompare, HistogramQuantilesAreGatedTwoSided) {
  CompareOptions options;
  options.rel_tol = 0.05;
  EXPECT_TRUE(compare_bench(hist_doc(100.0), hist_doc(102.0), options).ok());
  // A drifting tail trips the gate in either direction, regardless of the
  // table gate's one-sided default.
  EXPECT_FALSE(compare_bench(hist_doc(100.0), hist_doc(111.0), options).ok());
  EXPECT_FALSE(compare_bench(hist_doc(100.0), hist_doc(89.0), options).ok());
}

TEST(BenchCompare, HistogramFieldsCountAsComparedValues) {
  const CompareOutcome outcome =
      compare_bench(hist_doc(100.0), hist_doc(100.0), CompareOptions{});
  EXPECT_TRUE(outcome.ok());
  // 1 row cell + count/p50_us/p99_us from the histogram block.
  EXPECT_EQ(outcome.values_compared, 4);
}

TEST(BenchCompare, HistogramMissingFromCurrentIsCoverageLoss) {
  // Baseline was recorded with --hist; a current run without it silently
  // un-gates the tail, so the compare fails closed.
  const CompareOutcome outcome = compare_bench(
      hist_doc(100.0), bench_doc(100.0, 70.0), CompareOptions{});
  EXPECT_FALSE(outcome.ok());
}

TEST(BenchCompare, BaselineWithoutHistogramsSkipsTheGate) {
  // Pre---hist baselines keep their historical bytes and semantics: a
  // current run that happens to carry the block is not an error.
  const CompareOutcome outcome = compare_bench(
      bench_doc(100.0, 70.0), hist_doc(100.0), CompareOptions{});
  // The table itself lost the ircce_us column, so coverage fails -- but
  // against a matching table the extra block is ignored.
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(
      compare_bench(hist_doc(100.0), hist_doc(100.0), CompareOptions{}).ok());
  Table plain({"elements", "blocking_us"});
  plain.add_row({"552", "100.0"});
  std::ostringstream os;
  plain.write_json(os, "fig9f_allreduce");
  EXPECT_TRUE(compare_bench(parse_json(os.str()), hist_doc(100.0),
                            CompareOptions{})
                  .ok());
}

TEST(BenchCompare, CorruptCurrentFailsClosed) {
  const std::string dir = testing::TempDir();
  const std::string baseline_path = dir + "/baseline.json";
  const std::string corrupt_path = dir + "/corrupt.json";
  {
    Table table({"elements", "blocking_us"});
    table.add_row({"552", "100.0"});
    table.write_json_file(baseline_path, "fig9f_allreduce");
    std::ofstream bad(corrupt_path, std::ios::binary);
    bad << "{ \"schema\": \"scc-bench-v1\", \"rows\": [ truncated";
  }
  const CompareOutcome outcome =
      compare_bench_files(baseline_path, corrupt_path, CompareOptions{});
  EXPECT_FALSE(outcome.ok());
}

TEST(BenchCompare, MissingFileFailsClosed) {
  const std::string dir = testing::TempDir();
  const std::string baseline_path = dir + "/baseline2.json";
  {
    Table table({"elements", "blocking_us"});
    table.add_row({"552", "100.0"});
    table.write_json_file(baseline_path, "fig9f_allreduce");
  }
  const CompareOutcome outcome = compare_bench_files(
      baseline_path, dir + "/does_not_exist.json", CompareOptions{});
  EXPECT_FALSE(outcome.ok());
}

}  // namespace
}  // namespace scc::metrics
