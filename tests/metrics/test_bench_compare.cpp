#include "metrics/bench_compare.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "metrics/json.hpp"

namespace scc::metrics {
namespace {

JsonValue bench_doc(double blocking_us, double ircce_us) {
  Table table({"elements", "blocking_us", "ircce_us"});
  table.add_row({"552", std::to_string(blocking_us),
                 std::to_string(ircce_us)});
  table.add_row({"1104", std::to_string(2 * blocking_us),
                 std::to_string(2 * ircce_us)});
  std::ostringstream os;
  table.write_json(os, "fig9f_allreduce");
  return parse_json(os.str());
}

TEST(BenchCompare, IdenticalRunsPass) {
  const CompareOutcome outcome =
      compare_bench(bench_doc(100.0, 70.0), bench_doc(100.0, 70.0),
                    CompareOptions{});
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.values_compared, 4);
}

TEST(BenchCompare, WithinTolerancePasses) {
  CompareOptions options;
  options.rel_tol = 0.05;
  const CompareOutcome outcome =
      compare_bench(bench_doc(100.0, 70.0), bench_doc(104.0, 72.0), options);
  EXPECT_TRUE(outcome.ok());
}

TEST(BenchCompare, TenPercentRegressionFails) {
  // The acceptance scenario: a 10% latency inflation must trip the 5% gate.
  CompareOptions options;
  options.rel_tol = 0.05;
  const CompareOutcome outcome =
      compare_bench(bench_doc(100.0, 70.0), bench_doc(110.0, 70.0), options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.regressions.empty());
}

TEST(BenchCompare, ImprovementPassesOneSidedFailsTwoSided) {
  CompareOptions options;
  options.rel_tol = 0.05;
  EXPECT_TRUE(
      compare_bench(bench_doc(100.0, 70.0), bench_doc(80.0, 70.0), options)
          .ok());
  options.two_sided = true;
  EXPECT_FALSE(
      compare_bench(bench_doc(100.0, 70.0), bench_doc(80.0, 70.0), options)
          .ok());
}

TEST(BenchCompare, MissingRowIsCoverageLoss) {
  Table current({"elements", "blocking_us", "ircce_us"});
  current.add_row({"552", "100.0", "70.0"});  // 1104 row dropped
  std::ostringstream os;
  current.write_json(os, "fig9f_allreduce");
  const CompareOutcome outcome = compare_bench(
      bench_doc(100.0, 70.0), parse_json(os.str()), CompareOptions{});
  EXPECT_FALSE(outcome.ok());
}

TEST(BenchCompare, MissingColumnIsCoverageLoss) {
  Table current({"elements", "blocking_us"});
  current.add_row({"552", "100.0"});
  current.add_row({"1104", "200.0"});
  std::ostringstream os;
  current.write_json(os, "fig9f_allreduce");
  const CompareOutcome outcome = compare_bench(
      bench_doc(100.0, 70.0), parse_json(os.str()), CompareOptions{});
  EXPECT_FALSE(outcome.ok());
}

TEST(BenchCompare, CorruptCurrentFailsClosed) {
  const std::string dir = testing::TempDir();
  const std::string baseline_path = dir + "/baseline.json";
  const std::string corrupt_path = dir + "/corrupt.json";
  {
    Table table({"elements", "blocking_us"});
    table.add_row({"552", "100.0"});
    table.write_json_file(baseline_path, "fig9f_allreduce");
    std::ofstream bad(corrupt_path, std::ios::binary);
    bad << "{ \"schema\": \"scc-bench-v1\", \"rows\": [ truncated";
  }
  const CompareOutcome outcome =
      compare_bench_files(baseline_path, corrupt_path, CompareOptions{});
  EXPECT_FALSE(outcome.ok());
}

TEST(BenchCompare, MissingFileFailsClosed) {
  const std::string dir = testing::TempDir();
  const std::string baseline_path = dir + "/baseline2.json";
  {
    Table table({"elements", "blocking_us"});
    table.add_row({"552", "100.0"});
    table.write_json_file(baseline_path, "fig9f_allreduce");
  }
  const CompareOutcome outcome = compare_bench_files(
      baseline_path, dir + "/does_not_exist.json", CompareOptions{});
  EXPECT_FALSE(outcome.ok());
}

}  // namespace
}  // namespace scc::metrics
