// Pins the blame engine's contract on the paper's headline configuration:
// the blocking Allreduce at 48 cores x 552 doubles spends the majority of
// its critical path in rcce_wait_until (Section IV-A motivates relaxed
// synchronization with "up to 50%" wait time), the blame components tile
// the measured window exactly, and observability never perturbs timing.
#include "metrics/blame.hpp"

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "trace/recorder.hpp"

namespace scc::metrics {
namespace {

harness::RunSpec paper_spec(harness::PaperVariant variant,
                            std::size_t elements) {
  harness::RunSpec spec;
  spec.collective = harness::Collective::kAllreduce;
  spec.variant = variant;
  spec.elements = elements;
  spec.repetitions = 2;
  return spec;
}

BlameReport blame_last_window(const harness::RunSpec& base,
                              trace::Recorder& recorder) {
  harness::RunSpec spec = base;
  spec.trace = &recorder;
  const harness::RunResult result = harness::run_collective(spec);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_FALSE(result.sample_windows.empty());
  const auto [begin, end] = result.sample_windows.back();
  return analyze_blame(recorder, recorder.current_run(), /*terminal_core=*/0,
                       begin, end);
}

TEST(Blame, BlockingAllreduceIsFlagWaitDominated) {
  trace::Recorder recorder(std::size_t{1} << 20);
  const BlameReport report =
      blame_last_window(paper_spec(harness::PaperVariant::kBlocking, 552),
                        recorder);
  // The acceptance bar of the motivation: >= 50% of the end-to-end latency
  // blamed to flag-wait on the critical path.
  EXPECT_GE(report.kind_share("flag-wait"), 0.5);
  // The walk crossed to other cores via flag set->wakeup edges.
  EXPECT_GT(report.edges_followed, 0u);
}

TEST(Blame, ComponentsSumExactlyToWindow) {
  // Exact tiling, femtosecond for femtosecond -- not approximately.
  for (const auto variant : {harness::PaperVariant::kBlocking,
                             harness::PaperVariant::kIrcce,
                             harness::PaperVariant::kLwBalanced}) {
    trace::Recorder recorder(std::size_t{1} << 20);
    const BlameReport report =
        blame_last_window(paper_spec(variant, 256), recorder);
    EXPECT_EQ(report.attributed(), report.total())
        << "variant " << static_cast<int>(variant);
    EXPECT_GT(report.total(), SimTime::zero());
  }
}

TEST(Blame, ObservabilityDoesNotPerturbTiming) {
  // Metrics + tracing on vs. everything off: byte-identical latencies.
  const harness::RunSpec plain =
      paper_spec(harness::PaperVariant::kBlocking, 552);
  const harness::RunResult off = harness::run_collective(plain);

  harness::RunSpec instrumented = plain;
  trace::Recorder recorder(std::size_t{1} << 20);
  instrumented.trace = &recorder;
  instrumented.collect_metrics = true;
  instrumented.collect_profiles = true;
  const harness::RunResult on = harness::run_collective(instrumented);

  EXPECT_EQ(off.mean_latency.femtoseconds(), on.mean_latency.femtoseconds());
  EXPECT_EQ(off.min_latency.femtoseconds(), on.min_latency.femtoseconds());
  EXPECT_EQ(off.max_latency.femtoseconds(), on.max_latency.femtoseconds());
  ASSERT_TRUE(on.metrics.has_value());
  EXPECT_EQ(on.metrics->value_or("run/mean_latency_fs"),
            off.mean_latency.femtoseconds());
}

TEST(Blame, InvariantMetricsAreSeedInvariantUnderPerturbation) {
  // Volume-type counters must not move when the event schedule is
  // perturbed; only time-type entries may.
  harness::RunSpec spec = paper_spec(harness::PaperVariant::kBlocking, 64);
  spec.collect_metrics = true;
  const harness::RunResult baseline = harness::run_collective(spec);

  harness::RunSpec perturbed = spec;
  perturbed.config.perturb_seed = 12345;
  const harness::RunResult shaken = harness::run_collective(perturbed);

  ASSERT_TRUE(baseline.metrics.has_value());
  ASSERT_TRUE(shaken.metrics.has_value());
  const auto diff =
      MetricsRegistry::diff_invariant(*baseline.metrics, *shaken.metrics);
  EXPECT_TRUE(diff.empty()) << (diff.empty() ? "" : diff.front());
}

}  // namespace
}  // namespace scc::metrics
