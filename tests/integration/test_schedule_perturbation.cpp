// Schedule-perturbation race detection + differential conformance across
// the three message-passing stacks (label: perturb).
//
// The engine half checks the perturbation mechanism itself: seeded
// permutation of equal-time events, bounded delay injection, determinism
// per seed, and diversity across seeds. The conformance half runs every
// collective through RCCE / iRCCE / LWNB under 16 perturbation seeds per
// configuration and cross-checks element-wise results, traffic-volume
// invariants, and absence of deadlock -- any failure line carries the
// (engine seed, perturbation seed) pair needed for a deterministic replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "harness/conformance.hpp"
#include "machine/scc_machine.hpp"
#include "sim/engine.hpp"
#include "sim/wait_queue.hpp"

namespace scc {
namespace {

sim::Task<> sleep_then_record(sim::Engine* engine, SimTime delay, int id,
                              std::vector<int>* order) {
  co_await engine->sleep_for(delay);
  order->push_back(id);
}

std::vector<int> equal_time_order(std::optional<sim::PerturbConfig> config,
                                  int tasks = 12) {
  sim::Engine engine;
  if (config) engine.enable_perturbation(*config);
  std::vector<int> order;
  for (int i = 0; i < tasks; ++i) {
    engine.spawn(sleep_then_record(&engine, SimTime{100}, i, &order), "t");
  }
  engine.run();
  return order;
}

TEST(SchedulePerturbation, DisabledKeepsScheduleOrder) {
  const auto order = equal_time_order(std::nullopt);
  for (int i = 0; i < 12; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulePerturbation, PermutesEqualTimeEvents) {
  // Some seed among a handful must produce a non-identity permutation of a
  // 12-element equal-time batch (all-identity has probability ~(1/12!)^4).
  std::vector<int> identity(12);
  for (int i = 0; i < 12; ++i) identity[static_cast<std::size_t>(i)] = i;
  bool any_permuted = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto order = equal_time_order(sim::PerturbConfig{seed, SimTime::zero()});
    // Always a permutation of the same 12 tasks ...
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, identity);
    // ... just not necessarily the identity one.
    if (order != identity) any_permuted = true;
  }
  EXPECT_TRUE(any_permuted);
}

TEST(SchedulePerturbation, DeterministicPerSeed) {
  for (std::uint64_t seed : {1ULL, 7ULL, 123456789ULL}) {
    const sim::PerturbConfig config{seed, SimTime{5000}};
    EXPECT_EQ(equal_time_order(config), equal_time_order(config))
        << "seed " << seed;
  }
}

TEST(SchedulePerturbation, DistinctSeedsExploreDistinctInterleavings) {
  std::set<std::vector<int>> seen;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    seen.insert(equal_time_order(sim::PerturbConfig{seed, SimTime::zero()}));
  }
  // 8 seeds over 12! interleavings: collisions are astronomically unlikely,
  // but all we need is evidence of genuine exploration.
  EXPECT_GE(seen.size(), 2u);
}

sim::Task<> record_fire_time(sim::Engine* engine, SimTime delay,
                             std::vector<std::uint64_t>* times) {
  co_await engine->sleep_for(delay);
  times->push_back(engine->now().femtoseconds());
}

TEST(SchedulePerturbation, InjectedDelaysAreBoundedAndDeterministic) {
  constexpr std::uint64_t kMaxDelay = 700;
  const auto run_once = [] {
    sim::Engine engine;
    engine.enable_perturbation(sim::PerturbConfig{9, SimTime{kMaxDelay}});
    std::vector<std::uint64_t> times;
    for (int i = 0; i < 20; ++i) {
      engine.spawn(record_fire_time(&engine, SimTime{1000}, &times), "t");
    }
    engine.run();
    return times;
  };
  const auto times = run_once();
  ASSERT_EQ(times.size(), 20u);
  bool any_delayed = false;
  for (const std::uint64_t t : times) {
    // Spawn kickoff (<= kMaxDelay late) plus the sleep's wakeup event
    // (<= kMaxDelay late again): at most 2x the bound after time 1000.
    EXPECT_GE(t, 1000u);
    EXPECT_LE(t, 1000u + 2 * kMaxDelay);
    if (t != 1000u) any_delayed = true;
  }
  EXPECT_TRUE(any_delayed);
  EXPECT_EQ(times, run_once());
}

TEST(SchedulePerturbation, EngineReportsSeed) {
  sim::Engine engine;
  EXPECT_FALSE(engine.perturbation_enabled());
  engine.enable_perturbation(sim::PerturbConfig{321, SimTime::zero()});
  EXPECT_TRUE(engine.perturbation_enabled());
  EXPECT_EQ(engine.perturbation_seed(), 321u);
}

TEST(SchedulePerturbation, MachineConfigFlowsToEngine) {
  machine::SccConfig config;
  config.tiles_x = 1;
  config.tiles_y = 1;
  config.perturb_seed = 55;
  config.perturb_max_delay_fs = 1000;
  machine::SccMachine machine(config);
  EXPECT_TRUE(machine.engine().perturbation_enabled());
  EXPECT_EQ(machine.engine().perturbation_seed(), 55u);
}

TEST(SchedulePerturbation, FailureReplayNamesBothSeeds) {
  const harness::ConformanceFailure failure{
      "ircce", 42, 7, "result mismatch: core 3 element 1"};
  const std::string line = failure.replay();
  EXPECT_NE(line.find("engine_seed=42"), std::string::npos);
  EXPECT_NE(line.find("perturb_seed=7"), std::string::npos);
  EXPECT_NE(line.find("ircce"), std::string::npos);

  const harness::ConformanceFailure baseline_failure{"blocking", 42,
                                                     std::nullopt, "deadlock"};
  EXPECT_NE(baseline_failure.replay().find("unperturbed"), std::string::npos);
}

// Guard against perturbation silently becoming a no-op in full-machine
// simulations: injected event delays must change the measured virtual-time
// latency of a collective (results stay identical -- that is the whole
// conformance claim -- but the schedule must genuinely move).
TEST(SchedulePerturbation, PerturbationIsLiveInMachineSimulations) {
  harness::RunSpec spec;
  spec.collective = harness::Collective::kAllreduce;
  spec.variant = harness::PaperVariant::kLightweight;
  spec.elements = 48;
  spec.repetitions = 1;
  spec.warmup = 0;
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 2;
  const harness::RunResult base = harness::run_collective(spec);
  spec.config.perturb_seed = 3;
  spec.config.perturb_max_delay_fs = 10 * 1'876'173;  // ~10 core cycles
  const harness::RunResult jittered = harness::run_collective(spec);
  EXPECT_NE(base.mean_latency, jittered.mean_latency);
  EXPECT_EQ(base.lines_sent, jittered.lines_sent);  // volume is invariant
}

// ---------------------------------------------------------------------------
// Differential conformance: all three stacks, >= 16 perturbation seeds per
// configuration, element-wise identical results + schedule-invariant
// traffic + no deadlock.

struct ConformanceCase {
  harness::Collective collective;
  std::size_t elements;
  int tiles_x, tiles_y;
  coll::SplitPolicy split;
  std::uint64_t max_delay_fs;
  const char* tag;
};

// One configuration per collective, mesh shapes and sizes chosen to hit
// wraparound blocks, empty blocks (n < p for broadcast), and the long-vector
// broadcast path; two of them additionally inject event delays (~1 and ~10
// core cycles) so not only equal-time ties are explored.
constexpr ConformanceCase kCases[] = {
    {harness::Collective::kAllgather, 23, 2, 2, coll::SplitPolicy::kStandard,
     0, "allgather"},
    {harness::Collective::kAlltoall, 9, 3, 1, coll::SplitPolicy::kStandard, 0,
     "alltoall"},
    {harness::Collective::kReduceScatter, 53, 2, 2,
     coll::SplitPolicy::kBalanced, 0, "reducescatter"},
    {harness::Collective::kBroadcast, 140, 2, 2, coll::SplitPolicy::kBalanced,
     0, "broadcast_long"},
    {harness::Collective::kBroadcast, 5, 2, 2, coll::SplitPolicy::kStandard,
     0, "broadcast_short"},
    {harness::Collective::kReduce, 37, 3, 2, coll::SplitPolicy::kStandard, 0,
     "reduce"},
    {harness::Collective::kAllreduce, 52, 2, 2, coll::SplitPolicy::kBalanced,
     1'876'173, "allreduce_jitter"},
    {harness::Collective::kScatter, 16, 2, 2, coll::SplitPolicy::kStandard, 0,
     "scatter"},
    {harness::Collective::kGather, 11, 3, 1, coll::SplitPolicy::kStandard, 0,
     "gather"},
    {harness::Collective::kAllgatherv, 20, 2, 2, coll::SplitPolicy::kStandard,
     18'761'726, "allgatherv_jitter"},
};

class Conformance : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(Conformance, AllStacksAgreeUnderPerturbation) {
  const ConformanceCase& c = GetParam();
  harness::ConformanceSpec spec;
  spec.collective = c.collective;
  spec.elements = c.elements;
  spec.tiles_x = c.tiles_x;
  spec.tiles_y = c.tiles_y;
  spec.split = c.split;
  spec.perturb_seeds = 16;
  spec.max_delay_fs = c.max_delay_fs;
  const harness::ConformanceReport report = harness::run_conformance(spec);
  // Three RCCE stacks, plus the RCKMPI cell for the collectives that have
  // an MPI counterpart (scatter/gather/allgatherv do not).
  const bool has_rckmpi =
      c.collective != harness::Collective::kScatter &&
      c.collective != harness::Collective::kGather &&
      c.collective != harness::Collective::kAllgatherv;
  EXPECT_EQ(report.runs, (has_rckmpi ? 4 : 3) * (16 + 1));
  EXPECT_TRUE(report.passed()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Cases, Conformance, ::testing::ValuesIn(kCases),
                         [](const auto& param_info) {
                           return std::string(param_info.param.tag);
                         });

TEST(Conformance, ContentionModelDoesNotBreakAgreement) {
  harness::ConformanceSpec spec;
  spec.collective = harness::Collective::kAllreduce;
  spec.elements = 40;
  spec.tiles_x = 2;
  spec.tiles_y = 2;
  spec.perturb_seeds = 16;
  spec.model_contention = true;
  const harness::ConformanceReport report = harness::run_conformance(spec);
  EXPECT_TRUE(report.passed()) << report.summary();
}

}  // namespace
}  // namespace scc
