// Open-loop traffic generator (harness/traffic.hpp), label: nbc.
//
// The schedule must be a pure function of the spec; every simulated result
// byte must be invariant under PDES worker count; every request's result is
// verified against the host reference inside run_traffic; and the whole
// point of the exercise -- the open-loop non-blocking drain finishing the
// same offered load sooner than the serialized blocking drain -- is pinned
// as a strict inequality.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/traffic.hpp"

namespace scc::harness {
namespace {

TrafficSpec small_spec() {
  TrafficSpec spec;
  spec.streams = 3;
  spec.requests_per_stream = 4;
  spec.elements = 24;
  spec.mean_interarrival = SimTime::from_us(30.0);
  spec.variant = PaperVariant::kLightweight;
  spec.lanes = 2;
  return spec;
}

TEST(TrafficSchedule, PureFunctionOfSpecAndSorted) {
  const TrafficSpec spec = small_spec();
  const auto a = traffic_schedule(spec, 8);
  const auto b = traffic_schedule(spec, 8);
  ASSERT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].stream, b[i].stream);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].root, b[i].root);
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const TrafficRequest& x,
                                const TrafficRequest& y) {
                               return x.arrival < y.arrival;
                             }));
  // Broadcast roots are per-stream, so concurrent broadcasts from
  // different tenants genuinely fan out from different cores.
  for (const TrafficRequest& r : a) {
    if (r.kind == TrafficKind::kBroadcast) {
      EXPECT_EQ(r.root, r.stream % 8);
    }
  }
}

TEST(TrafficSchedule, DistinctSeedsDistinctSchedules) {
  TrafficSpec spec = small_spec();
  const auto a = traffic_schedule(spec, 8);
  spec.seed = 43;
  const auto b = traffic_schedule(spec, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].arrival != b[i].arrival || a[i].kind != b[i].kind) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

class TrafficStacks : public ::testing::TestWithParam<PaperVariant> {};

// run_traffic verifies every request element-wise internally; this test's
// job is that the run completes (no cross-lane deadlock) and the probe is
// fully populated for every stack that can drive the open loop.
TEST_P(TrafficStacks, OpenLoopCompletesAndVerifies) {
  TrafficSpec spec = small_spec();
  spec.variant = GetParam();
  spec.lanes = spec.variant == PaperVariant::kBlocking ? 1 : 2;
  const TrafficResult result = run_traffic(spec);
  EXPECT_EQ(result.requests, 12u);
  EXPECT_EQ(result.latency.count(), 12u);
  EXPECT_EQ(result.latencies.size(), 12u);
  EXPECT_GT(result.makespan, SimTime::zero());
  EXPECT_GT(result.lines_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, TrafficStacks,
    ::testing::Values(PaperVariant::kBlocking, PaperVariant::kIrcce,
                      PaperVariant::kLightweight,
                      PaperVariant::kLwBalanced),
    [](const auto& param_info) {
      std::string name(variant_name(param_info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(TrafficGen, SerializedBaselineCompletesAndVerifies) {
  TrafficSpec spec = small_spec();
  spec.serialize = true;
  const TrafficResult result = run_traffic(spec);
  EXPECT_EQ(result.latency.count(), 12u);
  EXPECT_GT(result.makespan, SimTime::zero());
}

// The headline claim: under a backlogged open-loop arrival process, the
// non-blocking engine overlaps queued collectives and finishes the offered
// load strictly sooner than the serialized blocking drain -- with lower
// mean sojourn latency, since queued requests stop paying full
// head-of-line blocking.
TEST(TrafficGen, OpenLoopBeatsSerializedDrain) {
  TrafficSpec spec;
  spec.streams = 4;
  spec.requests_per_stream = 6;
  spec.elements = 32;
  // Aggressive rate: mean interarrival well below one collective's service
  // time, so the queue genuinely builds up.
  spec.mean_interarrival = SimTime::from_us(20.0);
  spec.variant = PaperVariant::kLightweight;
  spec.lanes = 2;
  const TrafficResult nbc = run_traffic(spec);
  spec.serialize = true;
  const TrafficResult serial = run_traffic(spec);
  ASSERT_EQ(nbc.requests, serial.requests);
  EXPECT_LT(nbc.makespan, serial.makespan);
}

// Everything simulated -- per-request sojourn latencies, makespan, traffic
// volume, event count -- must be byte-identical for every PDES worker
// count (the conservative drain is an execution strategy, not a model).
TEST(TrafficGen, WorkerCountInvariant) {
  TrafficSpec spec = small_spec();
  const TrafficResult serial = run_traffic(spec);
  for (const int workers : {2, 8}) {
    spec.pdes_workers = workers;
    const TrafficResult pdes = run_traffic(spec);
    EXPECT_EQ(pdes.makespan, serial.makespan) << "workers=" << workers;
    EXPECT_EQ(pdes.lines_sent, serial.lines_sent);
    EXPECT_EQ(pdes.line_hops, serial.line_hops);
    // (event counts are not compared: sharding the machine adds engine
    // bookkeeping events -- cross-partition posts -- by design.)
    ASSERT_EQ(pdes.latencies.size(), serial.latencies.size());
    for (std::size_t i = 0; i < serial.latencies.size(); ++i) {
      EXPECT_EQ(pdes.latencies[i], serial.latencies[i])
          << "workers=" << workers << " request " << i;
    }
  }
}

TEST(TrafficGen, RejectsOversizedMessagesForLaneChunk) {
  TrafficSpec spec = small_spec();
  spec.elements = 4096;  // 32 KiB/message >> any lane chunk
  spec.lanes = 4;
  EXPECT_THROW((void)run_traffic(spec), std::runtime_error);
}

TEST(TrafficGen, RejectsMultiLaneBlocking) {
  TrafficSpec spec = small_spec();
  spec.variant = PaperVariant::kBlocking;
  spec.lanes = 2;
  EXPECT_THROW((void)run_traffic(spec), std::runtime_error);
}

TEST(TrafficGen, RejectsNonRcceVariants) {
  TrafficSpec spec = small_spec();
  spec.variant = PaperVariant::kRckmpi;
  EXPECT_THROW((void)run_traffic(spec), std::runtime_error);
  spec.variant = PaperVariant::kMpb;
  EXPECT_THROW((void)run_traffic(spec), std::runtime_error);
}

}  // namespace
}  // namespace scc::harness
