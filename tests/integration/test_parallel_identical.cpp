// Determinism-by-merge-order, end to end: every artifact a parallel run
// produces -- sweep CSV/JSON bytes, conformance verdicts, scc-metrics-v1
// snapshots -- must be byte-identical between --jobs=1 and --jobs=8. This
// is the contract that makes host parallelism invisible to baselines,
// regression gates and paper figures (src/exec/executor.hpp).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/conformance.hpp"
#include "harness/sweep.hpp"

namespace scc::harness {
namespace {

std::string csv_of(const SweepResult& result) {
  std::ostringstream os;
  result.to_table().write_csv(os);
  return os.str();
}

std::string json_of(const SweepResult& result) {
  std::ostringstream os;
  result.to_table().write_json(os, "sweep");
  return os.str();
}

std::string metrics_json_of(const metrics::MetricsRegistry& registry) {
  std::ostringstream os;
  registry.write_json(os);
  return os.str();
}

SweepSpec small_sweep(int jobs) {
  SweepSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.from = 48;
  spec.to = 96;
  spec.step = 24;
  spec.repetitions = 1;
  spec.warmup = 0;
  spec.verify = false;
  spec.collect_metrics = true;
  spec.jobs = jobs;
  return spec;
}

TEST(ParallelIdentical, SweepArtifactsAreByteIdenticalAcrossJobs) {
  const SweepResult serial = run_sweep(small_sweep(1));
  const SweepResult parallel = run_sweep(small_sweep(8));

  EXPECT_EQ(csv_of(serial), csv_of(parallel));
  EXPECT_EQ(json_of(serial), json_of(parallel));
  // The absorbed per-point metrics snapshot (counter paths AND values,
  // including absorption order) must match too -- it feeds --metrics files.
  EXPECT_EQ(metrics_json_of(serial.metrics),
            metrics_json_of(parallel.metrics));
  ASSERT_EQ(serial.variants.size(), parallel.variants.size());
  EXPECT_EQ(serial.mean_speedup_vs_blocking(PaperVariant::kLwBalanced),
            parallel.mean_speedup_vs_blocking(PaperVariant::kLwBalanced));
}

TEST(ParallelIdentical, SweepAutoJobsMatchesSerial) {
  // jobs=0 resolves to hardware concurrency -- whatever that is on the
  // host, the bytes must not change.
  const SweepResult serial = run_sweep(small_sweep(1));
  const SweepResult auto_jobs = run_sweep(small_sweep(0));
  EXPECT_EQ(csv_of(serial), csv_of(auto_jobs));
}

ConformanceSpec small_conformance(int jobs) {
  ConformanceSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.elements = 48;
  spec.tiles_x = 2;
  spec.tiles_y = 1;
  spec.perturb_seeds = 4;
  spec.jobs = jobs;
  return spec;
}

TEST(ParallelIdentical, ConformanceReportIsIdenticalAcrossJobs) {
  const ConformanceReport serial = run_conformance(small_conformance(1));
  const ConformanceReport parallel = run_conformance(small_conformance(8));

  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_EQ(serial.summary(), parallel.summary());
  ASSERT_EQ(serial.failures.size(), parallel.failures.size());
  for (std::size_t i = 0; i < serial.failures.size(); ++i)
    EXPECT_EQ(serial.failures[i].replay(), parallel.failures[i].replay());
  ASSERT_TRUE(serial.baseline_metrics.has_value());
  ASSERT_TRUE(parallel.baseline_metrics.has_value());
  EXPECT_EQ(metrics_json_of(*serial.baseline_metrics),
            metrics_json_of(*parallel.baseline_metrics));
}

}  // namespace
}  // namespace scc::harness
