// Partition-aware SccMachine, end to end: full collective workloads on the
// conservative-PDES parallel drain must be INVISIBLE in every artifact.
//   1. a Fig. 9f-style Allreduce sweep produces byte-identical
//      CSV/JSON/metrics/histogram artifacts for --workers in {1, 2, 8};
//   2. the partitioned machine preserves every simulated RESULT of the
//      serial machine (latencies, outputs, traffic) -- only engine
//      bookkeeping (event counts, pdes/* counters) may differ;
//   3. traces and flight-recorder timeseries are byte-identical across
//      worker counts;
//   4. a 16-seed perturbation conformance cell is byte-identical across
//      worker counts, and --jobs x --workers compose;
//   5. all of the above hold on a degraded machine (stragglers, DVFS,
//      slow and dead links), where the fault-effective lookahead clamp is
//      what keeps every cross-post legal.
// The whole file must also be tsan-clean (preset tsan-pdes): the window
// barrier is the only synchronization the drain has.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/conformance.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "metrics/histogram.hpp"
#include "trace/chrome_export.hpp"
#include "trace/recorder.hpp"

namespace scc::harness {
namespace {

std::string csv_of(const SweepResult& result) {
  std::ostringstream os;
  result.to_table().write_csv(os);
  return os.str();
}

std::string json_of(const SweepResult& result) {
  std::ostringstream os;
  result.to_table().write_json(os, "sweep");
  return os.str();
}

std::string metrics_json_of(const metrics::MetricsRegistry& registry) {
  std::ostringstream os;
  registry.write_json(os);
  return os.str();
}

std::string histograms_json_of(const SweepResult& result) {
  std::ostringstream os;
  for (const metrics::Histogram& h : result.histograms) h.write_json_us(os);
  return os.str();
}

/// A gnarly-but-connected degradation: stragglers and DVFS steps on cores
/// in different slabs, a slowed boundary link, and a dead link forcing a
/// reroute. Every charge rises, so the fault-effective lookahead is doing
/// real work at every cross-post audit site.
faults::FaultSpec gnarly_faults() {
  faults::FaultSpec spec;
  spec.stragglers.push_back({5, 2.5});
  spec.stragglers.push_back({40, 1.5});
  spec.dvfs.push_back({17, 2});
  spec.slow_links.push_back({{{2, 1}, {3, 1}}, 4.0});
  spec.dead_links.push_back({{1, 2}, {2, 2}});
  return spec;
}

SweepSpec fig9f_sweep(int workers, int jobs = 1) {
  SweepSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.from = 48;
  spec.to = 96;
  spec.step = 24;
  spec.repetitions = 2;
  spec.warmup = 0;
  spec.verify = false;
  spec.collect_metrics = true;
  spec.jobs = jobs;
  spec.pdes_workers = workers;
  return spec;
}

TEST(PdesCollectives, SweepArtifactsAreByteIdenticalAcrossWorkers) {
  const SweepResult one = run_sweep(fig9f_sweep(1));
  ASSERT_FALSE(one.histograms.empty());
  for (const int workers : {2, 8}) {
    const SweepResult many = run_sweep(fig9f_sweep(workers));
    EXPECT_EQ(csv_of(one), csv_of(many)) << "workers " << workers;
    EXPECT_EQ(json_of(one), json_of(many)) << "workers " << workers;
    EXPECT_EQ(metrics_json_of(one.metrics), metrics_json_of(many.metrics))
        << "workers " << workers;
    EXPECT_EQ(histograms_json_of(one), histograms_json_of(many))
        << "workers " << workers;
  }
}

TEST(PdesCollectives, JobsAndWorkersCompose) {
  // The host-thread executor (independent simulations) and the PDES drain
  // (threads inside one simulation) multiply out; every combination is the
  // same bytes.
  const SweepResult base = run_sweep(fig9f_sweep(/*workers=*/1, /*jobs=*/1));
  for (const auto& [jobs, workers] : std::vector<std::pair<int, int>>{
           {8, 2}, {2, 8}}) {
    const SweepResult combo = run_sweep(fig9f_sweep(workers, jobs));
    EXPECT_EQ(csv_of(base), csv_of(combo))
        << "jobs " << jobs << " workers " << workers;
    EXPECT_EQ(json_of(base), json_of(combo))
        << "jobs " << jobs << " workers " << workers;
    EXPECT_EQ(metrics_json_of(base.metrics), metrics_json_of(combo.metrics))
        << "jobs " << jobs << " workers " << workers;
    EXPECT_EQ(histograms_json_of(base), histograms_json_of(combo))
        << "jobs " << jobs << " workers " << workers;
  }
}

RunSpec spotlight_run() {
  RunSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.variant = PaperVariant::kLwBalanced;
  spec.elements = 96;
  spec.repetitions = 3;
  spec.warmup = 1;
  spec.capture_outputs = true;
  return spec;
}

TEST(PdesCollectives, PartitionedMachinePreservesSerialResults) {
  // Sharding the machine may add engine bookkeeping (cross-post events)
  // but must not move a single simulated result: same latencies, same
  // output vectors, same traffic totals, verification still passes.
  const RunResult serial = run_collective(spotlight_run());
  RunSpec partitioned = spotlight_run();
  partitioned.pdes_workers = 2;
  const RunResult pdes = run_collective(partitioned);

  EXPECT_TRUE(serial.verified);
  EXPECT_TRUE(pdes.verified);
  EXPECT_EQ(serial.mean_latency, pdes.mean_latency);
  EXPECT_EQ(serial.min_latency, pdes.min_latency);
  EXPECT_EQ(serial.max_latency, pdes.max_latency);
  EXPECT_EQ(serial.latencies, pdes.latencies);
  EXPECT_EQ(serial.outputs, pdes.outputs);
  EXPECT_EQ(serial.lines_sent, pdes.lines_sent);
  EXPECT_EQ(serial.line_hops, pdes.line_hops);
}

TEST(PdesCollectives, TraceAndTimeseriesAreByteIdenticalAcrossWorkers) {
  const auto run = [](int workers) {
    trace::Recorder recorder;
    RunSpec spec = spotlight_run();
    spec.trace = &recorder;
    spec.collect_metrics = true;
    spec.sample_interval = SimTime::from_us(5.0);
    spec.pdes_workers = workers;
    const RunResult result = run_collective(spec);
    std::ostringstream chrome;
    trace::write_chrome_json(recorder, chrome);
    std::ostringstream links;
    trace::write_link_csv(recorder, links);
    std::ostringstream series_csv;
    EXPECT_TRUE(result.timeseries.has_value()) << "workers " << workers;
    if (result.timeseries.has_value()) result.timeseries->write_csv(series_csv);
    struct Artifacts {
      std::string chrome, links, series, metrics;
    };
    return Artifacts{chrome.str(), links.str(), series_csv.str(),
                     metrics_json_of(*result.metrics)};
  };
  const auto one = run(1);
  EXPECT_FALSE(one.chrome.empty());
  EXPECT_FALSE(one.series.empty());
  for (const int workers : {2, 8}) {
    const auto many = run(workers);
    EXPECT_EQ(one.chrome, many.chrome) << "workers " << workers;
    EXPECT_EQ(one.links, many.links) << "workers " << workers;
    EXPECT_EQ(one.series, many.series) << "workers " << workers;
    EXPECT_EQ(one.metrics, many.metrics) << "workers " << workers;
  }
}

TEST(PdesCollectives, PerturbedConformanceCellIsByteIdenticalAcrossWorkers) {
  // 16 perturbation seeds: on a partitioned machine every partition mixes
  // its own per-slab stream out of the run seed, so this is the test that
  // the perturbation layer itself stays deterministic under the drain.
  const auto run = [](int workers) {
    ConformanceSpec spec;
    spec.collective = Collective::kAllreduce;
    spec.elements = 64;
    spec.perturb_seeds = 16;
    spec.pdes_workers = workers;
    return run_conformance(spec);
  };
  const ConformanceReport one = run(1);
  EXPECT_GT(one.runs, 0);
  ASSERT_FALSE(one.latency_histograms.empty());
  for (const int workers : {2, 8}) {
    const ConformanceReport many = run(workers);
    EXPECT_EQ(one.runs, many.runs) << "workers " << workers;
    EXPECT_EQ(one.summary(), many.summary()) << "workers " << workers;
    ASSERT_EQ(one.failures.size(), many.failures.size());
    for (std::size_t i = 0; i < one.failures.size(); ++i)
      EXPECT_EQ(one.failures[i].replay(), many.failures[i].replay());
    ASSERT_EQ(one.latency_histograms.size(), many.latency_histograms.size());
    for (std::size_t s = 0; s < one.latency_histograms.size(); ++s) {
      std::ostringstream a;
      std::ostringstream b;
      one.latency_histograms[s].write_json_us(a);
      many.latency_histograms[s].write_json_us(b);
      EXPECT_EQ(a.str(), b.str())
          << "stack " << s << " workers " << workers;
    }
  }
}

TEST(PdesCollectives, FaultedRunIsByteIdenticalAcrossWorkers) {
  const auto run = [](int workers) {
    RunSpec spec = spotlight_run();
    spec.collect_metrics = true;
    spec.config.faults = gnarly_faults();
    spec.pdes_workers = workers;
    return run_collective(spec);
  };
  const RunResult one = run(1);
  EXPECT_TRUE(one.verified);
  for (const int workers : {2, 8}) {
    const RunResult many = run(workers);
    EXPECT_TRUE(many.verified) << "workers " << workers;
    EXPECT_EQ(one.latencies, many.latencies) << "workers " << workers;
    EXPECT_EQ(one.outputs, many.outputs) << "workers " << workers;
    EXPECT_EQ(one.lines_sent, many.lines_sent) << "workers " << workers;
    EXPECT_EQ(one.line_hops, many.line_hops) << "workers " << workers;
    EXPECT_EQ(metrics_json_of(*one.metrics), metrics_json_of(*many.metrics))
        << "workers " << workers;
  }
  // And the degraded partitioned run still matches the degraded SERIAL
  // machine's simulated results.
  RunSpec serial_spec = spotlight_run();
  serial_spec.config.faults = gnarly_faults();
  const RunResult serial = run_collective(serial_spec);
  EXPECT_EQ(serial.latencies, one.latencies);
  EXPECT_EQ(serial.outputs, one.outputs);
  EXPECT_EQ(serial.lines_sent, one.lines_sent);
}

}  // namespace
}  // namespace scc::harness
