// Seeded random fuzzing across the full (collective x variant x size x
// mesh) configuration space. Every sampled configuration runs on a fresh
// machine and is verified element-wise against the serial reference by the
// harness (which throws on any mismatch). Catches interaction bugs the
// hand-picked parameter grids miss -- wraparound block indices, degenerate
// splits, odd mesh shapes, chunk boundaries.
#include <gtest/gtest.h>

#include <iterator>

#include "common/rng.hpp"
#include "harness/runner.hpp"

namespace scc::harness {
namespace {

struct MeshShape {
  int x, y;
};

constexpr MeshShape kMeshes[] = {{1, 1}, {2, 1}, {3, 1}, {2, 2}, {3, 2}};

constexpr Collective kCollectives[] = {
    Collective::kAllgather,     Collective::kAlltoall,
    Collective::kReduceScatter, Collective::kBroadcast,
    Collective::kReduce,        Collective::kAllreduce,
    Collective::kScatter,       Collective::kGather,
    Collective::kAllgatherv};

class FuzzCollectives : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCollectives, RandomConfigurationVerifies) {
  Xoshiro256 rng(GetParam());
  // Several draws per gtest case keep the case count readable while still
  // covering a few hundred sampled configurations.
  for (int draw = 0; draw < 6; ++draw) {
    const Collective coll = kCollectives[rng.below(std::size(kCollectives))];
    const auto variants = variants_for(coll);
    const PaperVariant variant = variants[rng.below(variants.size())];
    const MeshShape mesh = kMeshes[rng.below(5)];
    const int p = mesh.x * mesh.y * 2;
    // Sizes biased toward the interesting boundaries: around multiples of
    // p and of 4 (cache lines), sub-p vectors (some cores' blocks are
    // empty, so zero-length messages flow through the stacks), plus a
    // uniform tail.
    std::size_t n = 0;
    switch (rng.below(4)) {
      case 0:
        n = static_cast<std::size_t>(p) * (1 + rng.below(12)) + rng.below(3);
        break;
      case 1:
        n = 4 * (1 + rng.below(40)) + rng.below(4);
        break;
      case 2:
        n = 1 + rng.below(static_cast<std::uint64_t>(p));
        break;
      default:
        n = 1 + rng.below(200);
        break;
    }
    // The MPB-direct routine needs at least one element per block to be
    // representative; it handles empty blocks, but bias toward real work.
    if (variant == PaperVariant::kMpb && n < static_cast<std::size_t>(p)) {
      n += static_cast<std::size_t>(p);
    }
    RunSpec spec;
    spec.collective = coll;
    spec.variant = variant;
    spec.elements = n;
    spec.repetitions = 1;
    spec.warmup = 1;
    spec.seed = rng();
    spec.config.tiles_x = mesh.x;
    spec.config.tiles_y = mesh.y;
    // A third of the draws also enable the contention model.
    spec.config.cost.hw.model_link_contention = rng.below(3) == 0;
    // ... and some run on hypothetical fixed silicon.
    spec.config.cost.hw.mpb_bug_workaround = rng.below(4) != 0;
    // Half the draws run under a perturbed schedule (seeded, reproducible),
    // so the fuzzer explores interleavings as well as configurations.
    if (rng.below(2) == 0) spec.config.perturb_seed = rng();
    // The algorithm dimension (coll/algos.hpp), for the collectives and
    // variants that have one: paper default, each implemented variant, or
    // the auto Selector.
    if (const auto kind = algo_kind(coll);
        kind && variant != PaperVariant::kRckmpi &&
        variant != PaperVariant::kMpb) {
      const auto& algos = coll::algos_for(*kind);
      const std::uint64_t pick = rng.below(algos.size() + 2);
      if (pick == algos.size() + 1) {
        spec.algo = coll::Algo::kAuto;
      } else if (pick >= 1) {
        spec.algo = algos[pick - 1];
      }
    }
    SCOPED_TRACE(std::string(collective_name(coll)) + "/" +
                 std::string(variant_name(variant)) + " n=" +
                 std::to_string(n) + " mesh=" + std::to_string(mesh.x) + "x" +
                 std::to_string(mesh.y) +
                 (spec.algo ? " algo=" + std::string(coll::algo_name(*spec.algo))
                            : std::string()) +
                 (spec.config.perturb_seed
                      ? " perturb=" + std::to_string(*spec.config.perturb_seed)
                      : std::string()));
    const RunResult result = run_collective(spec);  // throws on mismatch
    EXPECT_TRUE(result.verified);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCollectives,
                         ::testing::Range<std::uint64_t>(1, 41),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace scc::harness
