// Seeded random fuzzing across the full (collective x variant x size x
// mesh x algorithm x fault) configuration space. Every sampled
// configuration runs on a fresh
// machine and is verified element-wise against the serial reference by the
// harness (which throws on any mismatch). Catches interaction bugs the
// hand-picked parameter grids miss -- wraparound block indices, degenerate
// splits, odd mesh shapes, chunk boundaries.
#include <gtest/gtest.h>

#include <iterator>

#include "common/rng.hpp"
#include "faults/fault_model.hpp"
#include "harness/runner.hpp"

namespace scc::harness {
namespace {

struct MeshShape {
  int x, y;
};

constexpr MeshShape kMeshes[] = {{1, 1}, {2, 1}, {3, 1}, {2, 2}, {3, 2}};

/// A random mesh link of the sampled shape (requires at least one link).
faults::LinkRef sample_link(Xoshiro256& rng, const MeshShape& mesh) {
  faults::LinkRef link;
  const bool horizontal =
      mesh.y == 1 || (mesh.x > 1 && rng.below(2) == 0);
  if (horizontal) {
    link.a.x = static_cast<int>(rng.below(static_cast<std::uint64_t>(mesh.x - 1)));
    link.a.y = static_cast<int>(rng.below(static_cast<std::uint64_t>(mesh.y)));
    link.b = {link.a.x + 1, link.a.y};
  } else {
    link.a.x = static_cast<int>(rng.below(static_cast<std::uint64_t>(mesh.x)));
    link.a.y = static_cast<int>(rng.below(static_cast<std::uint64_t>(mesh.y - 1)));
    link.b = {link.a.x, link.a.y + 1};
  }
  return link;
}

/// 1-2 random fault clauses valid for the sampled mesh: stragglers and DVFS
/// steps always; slow links when the mesh has links at all; dead links only
/// when both dimensions exceed 1 (one dead link then never disconnects).
faults::FaultSpec sample_faults(Xoshiro256& rng, const MeshShape& mesh,
                                int p) {
  faults::FaultSpec spec;
  const bool has_links = mesh.x > 1 || mesh.y > 1;
  const bool can_kill = mesh.x > 1 && mesh.y > 1;
  const int clauses = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < clauses; ++i) {
    const std::uint64_t kinds = has_links ? (can_kill ? 4u : 3u) : 2u;
    switch (rng.below(kinds)) {
      case 0:
        spec.stragglers.push_back(
            {static_cast<int>(rng.below(static_cast<std::uint64_t>(p))),
             1.5 + 0.5 * static_cast<double>(rng.below(6))});
        break;
      case 1:
        spec.dvfs.push_back(
            {static_cast<int>(rng.below(static_cast<std::uint64_t>(p))),
             2 + static_cast<int>(rng.below(3))});
        break;
      case 2:
        spec.slow_links.push_back(
            {sample_link(rng, mesh),
             2.0 * static_cast<double>(1 + rng.below(4))});
        break;
      default:
        spec.dead_links.push_back(sample_link(rng, mesh));
        break;
    }
  }
  return spec;
}

constexpr Collective kCollectives[] = {
    Collective::kAllgather,     Collective::kAlltoall,
    Collective::kReduceScatter, Collective::kBroadcast,
    Collective::kReduce,        Collective::kAllreduce,
    Collective::kScatter,       Collective::kGather,
    Collective::kAllgatherv};

class FuzzCollectives : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCollectives, RandomConfigurationVerifies) {
  Xoshiro256 rng(GetParam());
  // Several draws per gtest case keep the case count readable while still
  // covering a few hundred sampled configurations.
  for (int draw = 0; draw < 6; ++draw) {
    const Collective coll = kCollectives[rng.below(std::size(kCollectives))];
    const auto variants = variants_for(coll);
    const PaperVariant variant = variants[rng.below(variants.size())];
    const MeshShape mesh = kMeshes[rng.below(5)];
    const int p = mesh.x * mesh.y * 2;
    // Sizes biased toward the interesting boundaries: around multiples of
    // p and of 4 (cache lines), sub-p vectors (some cores' blocks are
    // empty, so zero-length messages flow through the stacks), plus a
    // uniform tail.
    std::size_t n = 0;
    switch (rng.below(4)) {
      case 0:
        n = static_cast<std::size_t>(p) * (1 + rng.below(12)) + rng.below(3);
        break;
      case 1:
        n = 4 * (1 + rng.below(40)) + rng.below(4);
        break;
      case 2:
        n = 1 + rng.below(static_cast<std::uint64_t>(p));
        break;
      default:
        n = 1 + rng.below(200);
        break;
    }
    // The MPB-direct routine needs at least one element per block to be
    // representative; it handles empty blocks, but bias toward real work.
    if (variant == PaperVariant::kMpb && n < static_cast<std::size_t>(p)) {
      n += static_cast<std::size_t>(p);
    }
    RunSpec spec;
    spec.collective = coll;
    spec.variant = variant;
    spec.elements = n;
    spec.repetitions = 1;
    spec.warmup = 1;
    spec.seed = rng();
    spec.config.tiles_x = mesh.x;
    spec.config.tiles_y = mesh.y;
    // A third of the draws also enable the contention model.
    spec.config.cost.hw.model_link_contention = rng.below(3) == 0;
    // ... and some run on hypothetical fixed silicon.
    spec.config.cost.hw.mpb_bug_workaround = rng.below(4) != 0;
    // Half the draws run under a perturbed schedule (seeded, reproducible),
    // so the fuzzer explores interleavings as well as configurations.
    if (rng.below(2) == 0) spec.config.perturb_seed = rng();
    // A third of the draws simulate on a degraded machine (src/faults):
    // random stragglers, DVFS steps, slow and dead links, cross-bred with
    // every other dimension. Faults move timings -- verification against
    // the serial reference must still pass on every degraded machine. A
    // rare invalid sample (e.g. two dead links isolating a tile) falls
    // back to the healthy machine instead of aborting the constructor.
    if (rng.below(3) == 0) {
      faults::FaultSpec faults = sample_faults(rng, mesh, p);
      const noc::Topology topo(mesh.x, mesh.y, 2);
      if (!faults::FaultModel::check(faults, topo)) {
        spec.config.faults = std::move(faults);
      }
    }
    // The algorithm dimension (coll/algos.hpp), for the collectives and
    // variants that have one: paper default, each implemented variant, or
    // the auto Selector.
    if (const auto kind = algo_kind(coll);
        kind && variant != PaperVariant::kRckmpi &&
        variant != PaperVariant::kMpb) {
      const auto& algos = coll::algos_for(*kind);
      const std::uint64_t pick = rng.below(algos.size() + 2);
      if (pick == algos.size() + 1) {
        spec.algo = coll::Algo::kAuto;
      } else if (pick >= 1) {
        spec.algo = algos[pick - 1];
      }
    }
    SCOPED_TRACE(std::string(collective_name(coll)) + "/" +
                 std::string(variant_name(variant)) + " n=" +
                 std::to_string(n) + " mesh=" + std::to_string(mesh.x) + "x" +
                 std::to_string(mesh.y) +
                 (spec.algo ? " algo=" + std::string(coll::algo_name(*spec.algo))
                            : std::string()) +
                 (spec.config.perturb_seed
                      ? " perturb=" + std::to_string(*spec.config.perturb_seed)
                      : std::string()) +
                 (spec.config.faults.empty()
                      ? std::string()
                      : " faults=" + spec.config.faults.to_string()));
    const RunResult result = run_collective(spec);  // throws on mismatch
    EXPECT_TRUE(result.verified);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCollectives,
                         ::testing::Range<std::uint64_t>(1, 41),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace scc::harness
