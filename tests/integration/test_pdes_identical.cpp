// Bit-identity of the conservative-PDES drain, end to end: every artifact
// the big-mesh halo-exchange scenario produces -- per-partition CSV/JSON
// tables, chrome trace bytes, scc-metrics-v1 snapshots, checksums, event
// and window counts -- must be byte-identical between workers=1 and any
// other worker count. This is the contract that makes intra-run
// parallelism invisible to baselines and paper figures (src/sim/pdes.hpp,
// "Determinism").
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/pdes_scenario.hpp"

namespace scc::harness {
namespace {

std::string csv_of(const PdesScenarioResult& result) {
  std::ostringstream os;
  result.to_table().write_csv(os);
  return os.str();
}

std::string json_of(const PdesScenarioResult& result) {
  std::ostringstream os;
  result.to_table().write_json(os, "pdes_mesh");
  return os.str();
}

std::string metrics_json_of(const PdesScenarioResult& result) {
  std::ostringstream os;
  result.metrics.write_json(os);
  return os.str();
}

PdesScenarioSpec small_mesh(int workers) {
  PdesScenarioSpec spec;
  spec.tiles_x = 16;
  spec.tiles_y = 8;
  spec.partitions = 8;
  spec.workers = workers;
  spec.steps = 12;
  spec.trace = true;
  return spec;
}

void expect_identical(const PdesScenarioResult& serial,
                      const PdesScenarioResult& parallel, int workers) {
  EXPECT_EQ(csv_of(serial), csv_of(parallel)) << "workers " << workers;
  EXPECT_EQ(json_of(serial), json_of(parallel)) << "workers " << workers;
  EXPECT_EQ(metrics_json_of(serial), metrics_json_of(parallel))
      << "workers " << workers;
  // Trace bytes include every instant's partition, lane, timestamp and
  // detail string in recording order -- the strictest artifact.
  EXPECT_EQ(serial.trace_json, parallel.trace_json) << "workers " << workers;
  EXPECT_EQ(serial.checksum, parallel.checksum) << "workers " << workers;
  EXPECT_EQ(serial.events, parallel.events) << "workers " << workers;
  EXPECT_EQ(serial.halo_posts, parallel.halo_posts) << "workers " << workers;
  EXPECT_EQ(serial.end_time, parallel.end_time) << "workers " << workers;
  EXPECT_EQ(serial.pdes.windows, parallel.pdes.windows)
      << "workers " << workers;
  EXPECT_EQ(serial.pdes.max_window_events, parallel.pdes.max_window_events)
      << "workers " << workers;
}

TEST(PdesIdentical, MeshArtifactsAreByteIdenticalAcrossWorkerCounts) {
  const PdesScenarioResult serial = run_pdes_mesh(small_mesh(1));
  // The scenario is not trivially empty.
  EXPECT_GT(serial.events, 1000u);
  EXPECT_GT(serial.halo_posts, 100u);
  EXPECT_GT(serial.pdes.windows, 10u);
  ASSERT_FALSE(serial.trace_json.empty());
  for (const int workers : {2, 8}) {
    const PdesScenarioResult parallel = run_pdes_mesh(small_mesh(workers));
    expect_identical(serial, parallel, workers);
  }
}

TEST(PdesIdentical, RerunningSerialIsAlsoIdentical) {
  // Control: the scenario itself is deterministic run to run, so any
  // worker-count difference above would be the drain's fault, not the
  // workload's.
  const PdesScenarioResult a = run_pdes_mesh(small_mesh(1));
  const PdesScenarioResult b = run_pdes_mesh(small_mesh(1));
  expect_identical(a, b, 1);
}

TEST(PdesIdentical, PerturbationComposesPerPartitionDeterministically) {
  // Per-partition perturbation: each partition permutes its own schedule
  // from its own seed. The run must stay bit-identical across worker
  // counts (injected delays only add latency, and pushes happen in
  // deterministic per-partition order) -- this is how ordering bugs in
  // partitioned protocols will be flushed out without losing replay.
  const auto run_perturbed = [](int workers) {
    PdesScenarioSpec spec = small_mesh(workers);
    spec.perturb = true;
    spec.perturb_seed = 42;
    return run_pdes_mesh(spec);
  };
  const PdesScenarioResult serial = run_perturbed(1);
  const PdesScenarioResult parallel = run_perturbed(8);
  expect_identical(serial, parallel, 8);
  // And the perturbed schedule is genuinely different from the unperturbed
  // one (otherwise the mode explores nothing here).
  EXPECT_NE(serial.checksum, run_pdes_mesh(small_mesh(1)).checksum);
  EXPECT_GT(serial.engine.perturb_delays, 0u);
}

}  // namespace
}  // namespace scc::harness
