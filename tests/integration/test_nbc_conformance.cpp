// Runner- and conformance-level checks of the non-blocking collective path
// (label: nbc).
//
// Three layers of the ISSUE-10 acceptance criteria live here:
//   1. blocking-vs-non-blocking element-wise equivalence per (collective,
//      stack, algorithm) cell through the harness runner -- one lane must
//      reproduce the blocking schedule's outputs bit-exactly AND its
//      measured latency (same wire schedule), extra lanes must still
//      reproduce the outputs;
//   2. the conformance matrix with check_nbc: every RCCE stack gains an
//      "<stack>-nbc" cell that is cross-checked against the shared
//      reference under 16 perturbation seeds;
//   3. the RCKMPI mod-256 sequence wraparound re-exercised under the new
//      traffic load (repetitions accumulate >256 lines per channel) with
//      the nbc cells riding the same matrix.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "coll/algos.hpp"
#include "harness/conformance.hpp"
#include "harness/runner.hpp"

namespace scc {
namespace {

using harness::Collective;
using harness::PaperVariant;

/// The collectives with an i*() entry point (coll/nbc.hpp).
constexpr Collective kNbcCollectives[] = {
    Collective::kAllgather,
    Collective::kAlltoall,
    Collective::kBroadcast,
    Collective::kAllreduce,
};

/// The RCCE-family stacks the non-blocking API runs on.
constexpr PaperVariant kNbcVariants[] = {
    PaperVariant::kBlocking,
    PaperVariant::kIrcce,
    PaperVariant::kLightweight,
    PaperVariant::kLwBalanced,
};

/// Paper algorithm (nullopt) plus every concrete variant the collective
/// implements; just the paper algorithm for the kinds without a dimension.
std::vector<std::optional<coll::Algo>> algo_axis(Collective c) {
  std::vector<std::optional<coll::Algo>> axis{std::nullopt};
  if (const auto kind = harness::algo_kind(c)) {
    for (const coll::Algo algo : coll::algos_for(*kind)) {
      axis.emplace_back(algo);
    }
  }
  return axis;
}

harness::RunSpec grid_spec(Collective c, PaperVariant v,
                           std::optional<coll::Algo> algo) {
  harness::RunSpec spec;
  spec.collective = c;
  spec.variant = v;
  spec.algo = algo;
  spec.elements = 48;
  spec.repetitions = 1;
  spec.warmup = 0;
  spec.capture_outputs = true;
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 2;
  return spec;
}

std::string cell_name(Collective c, PaperVariant v,
                      std::optional<coll::Algo> algo) {
  std::string name{harness::collective_name(c)};
  name += '/';
  name += harness::variant_name(v);
  name += '/';
  name += algo ? coll::algo_name(*algo) : "paper";
  return name;
}

// Every (collective, stack, algorithm) cell: the one-lane non-blocking run
// must match the blocking run bit-exactly in outputs AND in measured
// latency (one lane replays the blocking wire schedule); a two-lane engine
// changes the flag/MPB partitioning, so only the outputs must match.
TEST(NbcRunnerGrid, OneLaneMatchesBlockingBitExactPerAlgorithm) {
  for (const Collective c : kNbcCollectives) {
    for (const PaperVariant v : kNbcVariants) {
      for (const auto algo : algo_axis(c)) {
        SCOPED_TRACE(cell_name(c, v, algo));
        const harness::RunSpec blocking = grid_spec(c, v, algo);
        const harness::RunResult want = harness::run_collective(blocking);

        harness::RunSpec nbc = blocking;
        nbc.nonblocking = true;
        nbc.nbc_lanes = 1;
        const harness::RunResult got = harness::run_collective(nbc);
        ASSERT_EQ(got.outputs.size(), want.outputs.size());
        for (std::size_t r = 0; r < want.outputs.size(); ++r) {
          ASSERT_EQ(got.outputs[r], want.outputs[r]) << "core " << r;
        }
        EXPECT_EQ(got.mean_latency, want.mean_latency)
            << "lanes=1 must replay the blocking wire schedule exactly";

        if (v == PaperVariant::kBlocking) continue;  // no poll-and-yield
        harness::RunSpec wide = nbc;
        wide.nbc_lanes = 2;
        const harness::RunResult wide_got = harness::run_collective(wide);
        ASSERT_EQ(wide_got.outputs.size(), want.outputs.size());
        for (std::size_t r = 0; r < want.outputs.size(); ++r) {
          ASSERT_EQ(wide_got.outputs[r], want.outputs[r])
              << "lanes=2 core " << r;
        }
      }
    }
  }
}

// The conformance matrix with check_nbc on: three RCCE stacks + the RCKMPI
// baseline + three "<stack>-nbc" cells, every cell cross-checked against
// the shared reference and diffed against its own baseline under 16
// perturbation seeds.
TEST(NbcConformance, SixteenSeedMatrixPasses) {
  struct Case {
    Collective collective;
    std::size_t elements;
    coll::SplitPolicy split;
    std::uint64_t max_delay_fs;
  };
  const Case cases[] = {
      {Collective::kAllreduce, 52, coll::SplitPolicy::kBalanced,
       1'876'173},  // ~1 core cycle of event jitter
      {Collective::kAlltoall, 9, coll::SplitPolicy::kStandard, 0},
  };
  for (const Case& c : cases) {
    harness::ConformanceSpec spec;
    spec.collective = c.collective;
    spec.elements = c.elements;
    spec.split = c.split;
    spec.perturb_seeds = 16;
    spec.max_delay_fs = c.max_delay_fs;
    spec.check_nbc = true;
    const harness::ConformanceReport report = harness::run_conformance(spec);
    // 3 RCCE stacks + rckmpi + 3 nbc cells, each (1 baseline + 16 seeds).
    EXPECT_EQ(report.runs, 7 * (16 + 1))
        << harness::collective_name(c.collective);
    ASSERT_EQ(report.cells.size(), 7u);
    EXPECT_EQ(report.cells[3], "rckmpi");
    EXPECT_EQ(report.cells[4], "blocking-nbc");
    EXPECT_EQ(report.cells[6], "lightweight-nbc");
    EXPECT_TRUE(report.passed()) << report.summary();
  }
}

// Collectives without an i*() entry point must not grow nbc cells even
// when asked -- the matrix silently stays at the blocking stacks.
TEST(NbcConformance, UnsupportedCollectiveGetsNoNbcCells) {
  harness::ConformanceSpec spec;
  spec.collective = Collective::kReduceScatter;
  spec.elements = 24;
  spec.perturb_seeds = 2;
  spec.check_nbc = true;
  const harness::ConformanceReport report = harness::run_conformance(spec);
  EXPECT_EQ(report.cells.size(), 4u);  // 3 stacks + rckmpi, no -nbc cells
  EXPECT_TRUE(report.passed()) << report.summary();
}

// RCKMPI's packetized channel sequences lines mod 256; an Alltoall at 512
// per-pair doubles moves 128 lines per channel per repetition, so three
// measured repetitions push every channel's cumulative counter past the
// wraparound (384 > 256) while the nbc cells ride the same matrix. Any
// sequencing bug shows up as a result mismatch or traffic drift.
TEST(NbcConformance, RckmpiSequenceWraparoundUnderTraffic) {
  harness::ConformanceSpec spec;
  spec.collective = Collective::kAlltoall;
  spec.elements = 512;
  spec.repetitions = 3;
  spec.perturb_seeds = 2;
  spec.check_nbc = true;
  const harness::ConformanceReport report = harness::run_conformance(spec);
  EXPECT_EQ(report.runs, 7 * (2 + 1));
  EXPECT_TRUE(report.passed()) << report.summary();
}

}  // namespace
}  // namespace scc
