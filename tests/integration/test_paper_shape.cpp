// Full-scale integration checks of the paper's headline claims on the
// complete 48-core machine at the application's vector size (552 doubles).
// Bounds are deliberately loose: they pin the *shape* (ordering and rough
// factors), not the calibration details, so routine cost-model tweaks
// don't break the build while real regressions (a lost optimization) do.
#include <gtest/gtest.h>

#include "gcmc/app.hpp"
#include "harness/runner.hpp"

namespace scc::harness {
namespace {

double latency_us(Collective coll, PaperVariant v, std::size_t n) {
  RunSpec spec;
  spec.collective = coll;
  spec.variant = v;
  spec.elements = n;
  spec.repetitions = 2;
  spec.warmup = 1;
  return run_collective(spec).mean_latency.us();
}

TEST(PaperShape, Fig9fAllreduceVariantOrdering) {
  const double rckmpi = latency_us(Collective::kAllreduce, PaperVariant::kRckmpi, 552);
  const double blocking = latency_us(Collective::kAllreduce, PaperVariant::kBlocking, 552);
  const double ircce = latency_us(Collective::kAllreduce, PaperVariant::kIrcce, 552);
  const double lightweight = latency_us(Collective::kAllreduce, PaperVariant::kLightweight, 552);
  const double balanced = latency_us(Collective::kAllreduce, PaperVariant::kLwBalanced, 552);
  const double mpb = latency_us(Collective::kAllreduce, PaperVariant::kMpb, 552);

  // Ordering of the curves in Fig. 9f at 552 elements.
  EXPECT_GT(rckmpi, blocking);
  EXPECT_GT(blocking, ircce);
  EXPECT_GT(ircce, lightweight);
  EXPECT_GT(lightweight, balanced);
  EXPECT_GT(balanced * 1.3, mpb);  // MPB close to balanced (Section IV-D)

  // Paper's factors at 552: iRCCE ~ +25%, lightweight ~ +65% over iRCCE,
  // balanced ~ +28% over lightweight. Accept generous bands.
  EXPECT_GT(blocking / ircce, 1.1);
  EXPECT_LT(blocking / ircce, 1.7);
  EXPECT_GT(ircce / lightweight, 1.15);
  EXPECT_LT(ircce / lightweight, 2.2);
  EXPECT_GT(lightweight / balanced, 1.1);
  EXPECT_LT(lightweight / balanced, 1.7);
  // Combined optimizations: between 2x and 3.5x (paper: up to 3.6x).
  EXPECT_GT(blocking / balanced, 2.0);
  EXPECT_LT(blocking / mpb, 3.6);
}

TEST(PaperShape, AverageSpeedupsInPaperBand) {
  // "collectives show speedups between approximately 1.6x and 2.8x" --
  // checked at the midpoint size for each collective's best non-MPB stack.
  for (const Collective coll :
       {Collective::kAllgather, Collective::kAlltoall,
        Collective::kReduceScatter, Collective::kBroadcast,
        Collective::kReduce, Collective::kAllreduce}) {
    const bool has_balanced = variants_for(coll).size() >= 5;
    const PaperVariant best = has_balanced ? PaperVariant::kLwBalanced
                                           : PaperVariant::kLightweight;
    const double speedup = latency_us(coll, PaperVariant::kBlocking, 552) /
                           latency_us(coll, best, 552);
    EXPECT_GT(speedup, 1.5) << collective_name(coll);
    EXPECT_LT(speedup, 3.6) << collective_name(coll);
  }
}

TEST(PaperShape, RckmpiSlowerExceptGatherAndAlltoall) {
  // "RCKMPI performs significantly worse (factors 2 to 5) than our
  // baseline in all cases except Alltoall" (Allgather is also close in
  // Fig. 9a). Reduction collectives: clearly slower.
  for (const Collective coll :
       {Collective::kReduceScatter, Collective::kBroadcast,
        Collective::kReduce, Collective::kAllreduce}) {
    const double ratio = latency_us(coll, PaperVariant::kRckmpi, 552) /
                         latency_us(coll, PaperVariant::kBlocking, 552);
    EXPECT_GT(ratio, 1.4) << collective_name(coll);
    EXPECT_LT(ratio, 6.0) << collective_name(coll);
  }
  // Alltoall/Allgather: competitive (within ~30% of the baseline).
  for (const Collective coll : {Collective::kAlltoall, Collective::kAllgather}) {
    const double ratio = latency_us(coll, PaperVariant::kRckmpi, 552) /
                         latency_us(coll, PaperVariant::kBlocking, 552);
    EXPECT_LT(ratio, 1.35) << collective_name(coll);
  }
}

TEST(PaperShape, MaxAllreduceSpeedupNearWorstCaseRemainder) {
  // Paper: maximum 3.6x at 574 elements (remainder 46 of 48). The balanced
  // variant's advantage must peak near the top of the sawtooth.
  const double at_576 = latency_us(Collective::kAllreduce, PaperVariant::kBlocking, 576) /
                        latency_us(Collective::kAllreduce, PaperVariant::kLwBalanced, 576);
  const double at_574 = latency_us(Collective::kAllreduce, PaperVariant::kBlocking, 574) /
                        latency_us(Collective::kAllreduce, PaperVariant::kLwBalanced, 574);
  EXPECT_GT(at_574, at_576);  // 576 = 12*48 is perfectly balanced already
  EXPECT_GT(at_574, 2.3);
}

TEST(PaperShape, Fig10ApplicationOrdering) {
  gcmc::AppParams params;
  params.model.kmaxvecs = 276;  // the paper's 552-double Allreduce
  params.particles_total = 96;  // scaled down for test runtime
  params.max_local_particles = 4;
  params.cycles = 4;
  const auto runtime = [&](PaperVariant v) {
    return gcmc::run_app(params, v).runtime.seconds();
  };
  const double rckmpi = runtime(PaperVariant::kRckmpi);
  const double blocking = runtime(PaperVariant::kBlocking);
  const double ircce = runtime(PaperVariant::kIrcce);
  const double lightweight = runtime(PaperVariant::kLightweight);
  const double balanced = runtime(PaperVariant::kLwBalanced);
  const double mpb = runtime(PaperVariant::kMpb);
  // Fig. 10 bar ordering.
  EXPECT_GT(rckmpi, blocking);
  EXPECT_GT(blocking, ircce);
  EXPECT_GT(ircce, lightweight);
  EXPECT_GT(lightweight, balanced);
  EXPECT_GT(balanced, mpb);
}

}  // namespace
}  // namespace scc::harness
