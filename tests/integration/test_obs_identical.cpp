// End-to-end observability invariants:
//   1. enabling the flight recorder / histograms changes NO simulated
//      result byte (sampling on vs off, same machine);
//   2. every exported observability artifact -- timeseries CSV/JSON,
//      histogram JSON, bench-table JSON with its histogram block -- is
//      byte-identical for any host --jobs value and any PDES worker count.
// These are the contracts that keep the instrumentation safe to leave on
// in CI: it can never perturb a baseline and never makes output depend on
// the host's parallelism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/conformance.hpp"
#include "harness/pdes_scenario.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "metrics/histogram.hpp"
#include "trace/recorder.hpp"

namespace scc::harness {
namespace {

RunSpec small_run() {
  RunSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.variant = PaperVariant::kLwBalanced;
  spec.elements = 96;
  spec.repetitions = 3;
  spec.warmup = 1;
  spec.capture_outputs = true;
  spec.collect_metrics = true;
  return spec;
}

std::string metrics_json_of(const RunResult& result) {
  std::ostringstream os;
  result.metrics->write_json(os);
  return os.str();
}

TEST(ObsIdentical, SamplingChangesNoSimulatedResultByte) {
  const RunResult off = run_collective(small_run());

  RunSpec sampled = small_run();
  sampled.sample_interval = SimTime::from_us(1.0);
  const RunResult on = run_collective(sampled);

  EXPECT_EQ(off.mean_latency, on.mean_latency);
  EXPECT_EQ(off.latencies, on.latencies);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.lines_sent, on.lines_sent);
  EXPECT_EQ(off.line_hops, on.line_hops);
  EXPECT_EQ(off.outputs, on.outputs);
  EXPECT_EQ(metrics_json_of(off), metrics_json_of(on));
  // And the sampled run actually produced a series.
  ASSERT_TRUE(on.timeseries.has_value());
  EXPECT_FALSE(off.timeseries.has_value());
  EXPECT_GT(on.timeseries->rows.size(), 0u);
}

TEST(ObsIdentical, SweepHistogramsAreByteIdenticalAcrossJobs) {
  const auto run = [](int jobs) {
    SweepSpec spec;
    spec.collective = Collective::kAllreduce;
    spec.from = 64;
    spec.to = 96;
    spec.step = 16;
    spec.repetitions = 2;
    spec.warmup = 0;
    spec.jobs = jobs;
    return run_sweep(spec);
  };
  const SweepResult serial = run(1);
  ASSERT_FALSE(serial.histograms.empty());
  EXPECT_GT(serial.histograms.front().count(), 0u);

  const SweepResult parallel = run(8);
  ASSERT_EQ(serial.histograms.size(), parallel.histograms.size());
  for (std::size_t v = 0; v < serial.histograms.size(); ++v) {
    std::ostringstream a;
    std::ostringstream b;
    serial.histograms[v].write_json_us(a);
    parallel.histograms[v].write_json_us(b);
    EXPECT_EQ(a.str(), b.str()) << "variant index " << v;
  }
  // The bench table itself stays identical too (histograms ride along).
  std::ostringstream ta;
  std::ostringstream tb;
  serial.to_table().write_json(ta, "sweep");
  parallel.to_table().write_json(tb, "sweep");
  EXPECT_EQ(ta.str(), tb.str());
}

TEST(ObsIdentical, PdesTimeseriesIsByteIdenticalAcrossWorkerCounts) {
  const auto run = [](int workers) {
    PdesScenarioSpec spec;
    spec.tiles_x = 16;
    spec.tiles_y = 8;
    spec.partitions = 8;
    spec.workers = workers;
    spec.steps = 12;
    spec.sample = true;
    return run_pdes_mesh(spec);
  };
  const PdesScenarioResult serial = run(1);
  ASSERT_TRUE(serial.timeseries.has_value());
  EXPECT_GT(serial.timeseries->rows.size(), 0u);

  std::ostringstream serial_csv;
  std::ostringstream serial_json;
  serial.timeseries->write_csv(serial_csv);
  serial.timeseries->write_json(serial_json);
  std::ostringstream serial_metrics;
  serial.metrics.write_json(serial_metrics);

  for (const int workers : {2, 8}) {
    const PdesScenarioResult parallel = run(workers);
    ASSERT_TRUE(parallel.timeseries.has_value());
    std::ostringstream csv;
    std::ostringstream json;
    parallel.timeseries->write_csv(csv);
    parallel.timeseries->write_json(json);
    EXPECT_EQ(serial_csv.str(), csv.str()) << "workers " << workers;
    EXPECT_EQ(serial_json.str(), json.str()) << "workers " << workers;
    // The new drain-introspection counters ride in the metrics snapshot
    // and must not leak worker count or host time either.
    std::ostringstream metrics;
    parallel.metrics.write_json(metrics);
    EXPECT_EQ(serial_metrics.str(), metrics.str()) << "workers " << workers;
    EXPECT_EQ(serial.pdes.max_window_posts, parallel.pdes.max_window_posts);
    EXPECT_EQ(serial.pdes.posts_at_floor, parallel.pdes.posts_at_floor);
    EXPECT_EQ(serial.pdes.min_post_slack, parallel.pdes.min_post_slack);
    EXPECT_EQ(serial.pdes.saturated_windows, parallel.pdes.saturated_windows);
  }
}

TEST(ObsIdentical, ConformanceHistogramsAreByteIdenticalAcrossJobs) {
  const auto run = [](int jobs) {
    ConformanceSpec spec;
    spec.collective = Collective::kAllreduce;
    spec.elements = 64;
    spec.perturb_seeds = 4;
    spec.jobs = jobs;
    return run_conformance(spec);
  };
  const ConformanceReport serial = run(1);
  const ConformanceReport parallel = run(8);
  ASSERT_EQ(serial.latency_histograms.size(),
            parallel.latency_histograms.size());
  ASSERT_FALSE(serial.latency_histograms.empty());
  for (std::size_t s = 0; s < serial.latency_histograms.size(); ++s) {
    EXPECT_GT(serial.latency_histograms[s].count(), 0u);
    std::ostringstream a;
    std::ostringstream b;
    serial.latency_histograms[s].write_json_us(a);
    parallel.latency_histograms[s].write_json_us(b);
    EXPECT_EQ(a.str(), b.str()) << "stack index " << s;
  }
}

TEST(ObsIdentical, TraceDropCountSurfacesInMetricsSnapshot) {
  // Satellite: a recorder at capacity must not fail silently -- the drop
  // count lands in the metrics snapshot under trace/dropped_events.
  trace::Recorder tiny(/*capacity=*/16);
  RunSpec spec = small_run();
  spec.trace = &tiny;
  const RunResult result = run_collective(spec);
  ASSERT_TRUE(result.metrics.has_value());
  EXPECT_GT(tiny.dropped(), 0u);
  const std::string json = metrics_json_of(result);
  EXPECT_NE(json.find("trace/dropped_events"), std::string::npos);
}

}  // namespace
}  // namespace scc::harness
