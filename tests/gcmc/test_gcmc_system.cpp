#include "gcmc/system.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scc::gcmc {
namespace {

ModelParams tiny_model() {
  ModelParams m;
  m.kmaxvecs = 26;
  return m;
}

TEST(KSpace, HasRequestedVectorCount) {
  const KSpace k(tiny_model());
  EXPECT_EQ(k.kvecs.size(), 26u);
  EXPECT_EQ(k.coeff.size(), 26u);
}

TEST(KSpace, PaperConfigurationGives276Vectors) {
  ModelParams m;
  m.kmaxvecs = 276;
  const KSpace k(m);
  EXPECT_EQ(k.kvecs.size(), 276u);  // 552 doubles through Allreduce
}

TEST(KSpace, NoZeroVector) {
  const KSpace k(tiny_model());
  for (const Vec3& kv : k.kvecs) {
    EXPECT_GT(kv[0] * kv[0] + kv[1] * kv[1] + kv[2] * kv[2], 0.0);
  }
}

TEST(KSpace, SortedByMagnitude) {
  const KSpace k(tiny_model());
  double prev = 0.0;
  for (const Vec3& kv : k.kvecs) {
    const double k2 = kv[0] * kv[0] + kv[1] * kv[1] + kv[2] * kv[2];
    EXPECT_GE(k2, prev - 1e-12);
    prev = k2;
  }
}

TEST(KSpace, CoefficientsPositiveAndDecayingInMagnitude) {
  const KSpace k(tiny_model());
  for (std::size_t i = 0; i < k.coeff.size(); ++i) EXPECT_GT(k.coeff[i], 0.0);
}

TEST(LocalSystem, MakeParticleIsNeutral) {
  const ModelParams m = tiny_model();
  LocalSystem sys(m, 4);
  Xoshiro256 rng(3);
  for (int i = 0; i < 20; ++i) {
    const Particle p = sys.make_particle(rng);
    EXPECT_TRUE(p.alive);
    EXPECT_EQ(static_cast<int>(p.atoms.size()), m.atoms_per_particle);
    double q = 0.0;
    for (const Atom& a : p.atoms) q += a.charge;
    EXPECT_NEAR(q, 0.0, 1e-12);
  }
}

TEST(LocalSystem, AliveCountAndFreeSlots) {
  LocalSystem sys(tiny_model(), 3);
  EXPECT_EQ(sys.alive_count(), 0);
  EXPECT_EQ(sys.free_slot(), 0);
  Xoshiro256 rng(1);
  sys.slot(0) = sys.make_particle(rng);
  sys.slot(2) = sys.make_particle(rng);
  EXPECT_EQ(sys.alive_count(), 2);
  EXPECT_EQ(sys.free_slot(), 1);
  sys.slot(1) = sys.make_particle(rng);
  EXPECT_EQ(sys.free_slot(), -1);
}

TEST(LocalSystem, ShortRangeZeroWhenEmpty) {
  LocalSystem sys(tiny_model(), 4);
  Xoshiro256 rng(1);
  const Particle probe = sys.make_particle(rng);
  const auto sr = sys.short_range(probe, -1);
  EXPECT_EQ(sr.energy, 0.0);
  EXPECT_EQ(sr.pairs, 0u);
}

TEST(LocalSystem, ShortRangeSkipsOwnSlot) {
  LocalSystem sys(tiny_model(), 4);
  Xoshiro256 rng(1);
  sys.slot(0) = sys.make_particle(rng);
  const Particle& probe = sys.slot(0);
  const auto with_self = sys.short_range(probe, -1);
  const auto without_self = sys.short_range(probe, 0);
  EXPECT_EQ(without_self.pairs, 0u);
  EXPECT_GT(with_self.pairs, 0u);  // probe against its own copy
}

TEST(LocalSystem, ShortRangePairCountIsAtomProduct) {
  const ModelParams m = tiny_model();
  LocalSystem sys(m, 4);
  Xoshiro256 rng(2);
  sys.slot(0) = sys.make_particle(rng);
  sys.slot(1) = sys.make_particle(rng);
  const Particle probe = sys.make_particle(rng);
  const auto sr = sys.short_range(probe, -1);
  EXPECT_EQ(sr.pairs, static_cast<std::uint64_t>(m.atoms_per_particle) *
                          static_cast<std::uint64_t>(2 * m.atoms_per_particle));
}

TEST(LocalSystem, LennardJonesRepulsiveAtShortDistance) {
  ModelParams m = tiny_model();
  LocalSystem sys(m, 2);
  // Two single-point "particles" placed very close.
  Particle a;
  a.alive = true;
  a.atoms = {Atom{{1.0, 1.0, 1.0}, 0.0}};
  Particle b;
  b.alive = true;
  b.atoms = {Atom{{1.0, 1.0, 1.5}, 0.0}};  // r = 0.5 < sigma
  sys.slot(0) = a;
  EXPECT_GT(sys.short_range(b, -1).energy, 0.0);
  // At the potential minimum (r = 2^(1/6) sigma) the energy is -epsilon.
  Particle c;
  c.alive = true;
  c.atoms = {Atom{{1.0, 1.0, 1.0 + std::pow(2.0, 1.0 / 6.0)}, 0.0}};
  EXPECT_NEAR(sys.short_range(c, -1).energy, -m.lj_epsilon, 1e-9);
}

TEST(LocalSystem, MinimumImageWrapsBox) {
  ModelParams m = tiny_model();
  LocalSystem sys(m, 2);
  Particle a;
  a.alive = true;
  a.atoms = {Atom{{0.2, 6.0, 6.0}, 0.0}};
  sys.slot(0) = a;
  Particle near_far_edge;
  near_far_edge.alive = true;
  near_far_edge.atoms = {Atom{{m.box_length - 0.2, 6.0, 6.0}, 0.0}};
  // Across the boundary the distance is 0.4, well inside the core.
  EXPECT_GT(sys.short_range(near_far_edge, -1).energy, 0.0);
}

TEST(LocalSystem, StructureFactorsMatchDirectSum) {
  const ModelParams m = tiny_model();
  const KSpace kspace(m);
  LocalSystem sys(m, 3);
  Xoshiro256 rng(4);
  sys.slot(0) = sys.make_particle(rng);
  sys.slot(2) = sys.make_particle(rng);
  std::vector<std::complex<double>> f;
  std::uint64_t evals = 0;
  sys.structure_factors(kspace, f, evals);
  ASSERT_EQ(f.size(), kspace.kvecs.size());
  // Direct recomputation for a few k.
  for (const std::size_t k : {std::size_t{0}, std::size_t{10}, std::size_t{25}}) {
    std::complex<double> want{0.0, 0.0};
    for (const int slot : {0, 2}) {
      for (const Atom& atom : sys.slot(slot).atoms) {
        const double phase = kspace.kvecs[k][0] * atom.pos[0] +
                             kspace.kvecs[k][1] * atom.pos[1] +
                             kspace.kvecs[k][2] * atom.pos[2];
        want += atom.charge *
                std::complex<double>(std::cos(phase), std::sin(phase));
      }
    }
    EXPECT_NEAR(f[k].real(), want.real(), 1e-12);
    EXPECT_NEAR(f[k].imag(), want.imag(), 1e-12);
  }
  EXPECT_EQ(evals, 2u * 3u * 26u);
}

TEST(LocalSystem, LongRangeEnergyNonNegativeForRealFactors) {
  const ModelParams m = tiny_model();
  const KSpace kspace(m);
  const LocalSystem sys(m, 1);
  std::vector<std::complex<double>> f(kspace.kvecs.size(), {1.0, -2.0});
  // |F|^2 weighted by positive coefficients -> strictly positive.
  EXPECT_GT(sys.long_range_energy(kspace, f), 0.0);
  std::vector<std::complex<double>> zero(kspace.kvecs.size(), {0.0, 0.0});
  EXPECT_EQ(sys.long_range_energy(kspace, zero), 0.0);
}

}  // namespace
}  // namespace scc::gcmc
