#include "gcmc/app.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scc::gcmc {
namespace {

AppParams tiny_app() {
  AppParams params;
  params.model.kmaxvecs = 26;  // 52-double Allreduce keeps tests fast
  params.particles_total = 16;
  params.max_local_particles = 6;
  params.cycles = 8;
  return params;
}

machine::SccConfig mesh8() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;
  return config;
}

TEST(GcmcApp, RunsAndProducesFiniteEnergy) {
  const AppResult r = run_app(tiny_app(), harness::PaperVariant::kBlocking,
                              mesh8());
  EXPECT_TRUE(std::isfinite(r.final_energy));
  EXPECT_EQ(r.attempted, 8);
  EXPECT_GE(r.accepted, 0);
  EXPECT_LE(r.accepted, r.attempted);
  EXPECT_GT(r.runtime, SimTime::zero());
  EXPECT_EQ(r.profiles.size(), 8u);
}

TEST(GcmcApp, DeterministicForSameSeed) {
  const AppResult a = run_app(tiny_app(), harness::PaperVariant::kLightweight,
                              mesh8());
  const AppResult b = run_app(tiny_app(), harness::PaperVariant::kLightweight,
                              mesh8());
  EXPECT_EQ(a.final_energy, b.final_energy);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.final_particles, b.final_particles);
}

TEST(GcmcApp, PhysicsIndependentOfCommunicationStack) {
  // All variants implement the same reduction semantics, so the sampled
  // trajectory must be identical; only the virtual runtime may differ.
  const AppParams params = tiny_app();
  const AppResult blocking =
      run_app(params, harness::PaperVariant::kBlocking, mesh8());
  for (const harness::PaperVariant v :
       {harness::PaperVariant::kIrcce, harness::PaperVariant::kLightweight,
        harness::PaperVariant::kLwBalanced, harness::PaperVariant::kMpb,
        harness::PaperVariant::kRckmpi}) {
    const AppResult r = run_app(params, v, mesh8());
    EXPECT_EQ(r.final_energy, blocking.final_energy)
        << harness::variant_name(v);
    EXPECT_EQ(r.accepted, blocking.accepted) << harness::variant_name(v);
    EXPECT_EQ(r.final_particles, blocking.final_particles)
        << harness::variant_name(v);
  }
}

TEST(GcmcApp, OptimizedStacksAreFaster) {
  const AppParams params = tiny_app();
  const SimTime blocking =
      run_app(params, harness::PaperVariant::kBlocking, mesh8()).runtime;
  const SimTime lightweight =
      run_app(params, harness::PaperVariant::kLightweight, mesh8()).runtime;
  const SimTime balanced =
      run_app(params, harness::PaperVariant::kLwBalanced, mesh8()).runtime;
  EXPECT_LT(lightweight, blocking);
  EXPECT_LE(balanced, lightweight);
}

TEST(GcmcApp, MoveMixChangesParticleCount) {
  // With inserts and deletes in the mix, long runs should change N at
  // least once from the initial configuration (statistically certain for
  // this seed/length; the test pins the deterministic outcome).
  AppParams params = tiny_app();
  params.cycles = 30;
  const AppResult r = run_app(params, harness::PaperVariant::kLightweight,
                              mesh8());
  EXPECT_GE(r.final_particles, 0);
  EXPECT_LE(r.final_particles, 8 * params.max_local_particles);
}

TEST(GcmcApp, DifferentSeedsGiveDifferentTrajectories) {
  AppParams a = tiny_app();
  AppParams b = tiny_app();
  b.seed = a.seed + 1;
  const AppResult ra = run_app(a, harness::PaperVariant::kLightweight, mesh8());
  const AppResult rb = run_app(b, harness::PaperVariant::kLightweight, mesh8());
  EXPECT_NE(ra.final_energy, rb.final_energy);
}

TEST(GcmcApp, WaitTimeIsSignificantForBlockingStack) {
  // The paper's motivating profile: a large share of time sits in
  // rcce_wait_until with the blocking stack.
  const AppResult r = run_app(tiny_app(), harness::PaperVariant::kBlocking,
                              mesh8());
  SimTime max_wait;
  for (const auto& profile : r.profiles)
    max_wait = std::max(max_wait, profile.get(machine::Phase::kFlagWait));
  EXPECT_GT(max_wait.seconds(), 0.05 * r.runtime.seconds());
}

}  // namespace
}  // namespace scc::gcmc
