#include "rckmpi/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "machine/scc_machine.hpp"

namespace scc::rckmpi {
namespace {

struct Fixture {
  explicit Fixture(int tx = 2, int ty = 2) {
    machine::SccConfig config;
    config.tiles_x = tx;
    config.tiles_y = ty;
    base_layout = std::make_unique<rcce::Layout>(config.num_cores());
    layout = std::make_unique<ChannelLayout>(*base_layout);
    config.flags_per_core = layout->flags_needed();
    machine = std::make_unique<machine::SccMachine>(config);
  }
  std::unique_ptr<rcce::Layout> base_layout;
  std::unique_ptr<ChannelLayout> layout;
  std::unique_ptr<machine::SccMachine> machine;
};

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 5 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

TEST(ChannelLayout, GeometrySane) {
  const rcce::Layout base(48);
  const ChannelLayout layout(base);
  EXPECT_GE(layout.ring_lines(), 2u);
  EXPECT_LE(layout.ring_lines(), 64u);
  // 48 rings of ring_bytes each must fit in the payload.
  EXPECT_LE(48u * layout.ring_bytes(), base.payload_bytes());
  EXPECT_GT(layout.flags_needed(), base.flags_needed());
}

TEST(ChannelLayout, RingLinesWrapInPlace) {
  const rcce::Layout base(8);
  const ChannelLayout layout(base);
  const auto a = layout.ring_line(0, 1, 0);
  const auto b = layout.ring_line(0, 1, layout.ring_lines());
  EXPECT_EQ(a.core, b.core);
  EXPECT_EQ(a.offset, b.offset);  // wraps modulo ring size
}

sim::Task<> chan_send(machine::CoreApi& api, const ChannelLayout* layout,
                      const std::vector<std::byte>* data, int dest, int tag) {
  Channel channel(api, *layout);
  co_await channel.send(*data, dest, tag);
}

sim::Task<> chan_recv(machine::CoreApi& api, const ChannelLayout* layout,
                      std::vector<std::byte>* data, int src, int tag) {
  Channel channel(api, *layout);
  co_await channel.recv(*data, src, tag);
}

class ChannelSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelSize, TransfersIntact) {
  Fixture f;
  const auto data = pattern(GetParam(), 7);
  std::vector<std::byte> received(GetParam());
  f.machine->launch(0, chan_send(f.machine->core(0), f.layout.get(), &data, 5, 42));
  f.machine->launch(5, chan_recv(f.machine->core(5), f.layout.get(), &received, 0, 42));
  f.machine->run();
  EXPECT_EQ(received, data);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ChannelSize,
    // Zero bytes, sub-line, exact lines, many times the ring capacity.
    ::testing::Values(0, 1, 31, 32, 33, 100, 1000, 5600, 50000),
    [](const auto& param_info) { return "bytes_" + std::to_string(param_info.param); });

TEST(Channel, WildcardTagAccepted) {
  Fixture f;
  const auto data = pattern(64, 1);
  std::vector<std::byte> received(64);
  f.machine->launch(0, chan_send(f.machine->core(0), f.layout.get(), &data, 1, 9));
  f.machine->launch(1, chan_recv(f.machine->core(1), f.layout.get(), &received,
                                 0, kAnyTag));
  f.machine->run();
  EXPECT_EQ(received, data);
}

TEST(ChannelDeath, TagMismatchDetected) {
  EXPECT_DEATH(
      {
        Fixture f;
        const auto data = pattern(64, 1);
        std::vector<std::byte> received(64);
        f.machine->launch(0, chan_send(f.machine->core(0), f.layout.get(),
                                       &data, 1, 9));
        f.machine->launch(1, chan_recv(f.machine->core(1), f.layout.get(),
                                       &received, 0, 10));
        f.machine->run();
      },
      "precondition");
}

sim::Task<> back_to_back_sends(machine::CoreApi& api,
                               const ChannelLayout* layout,
                               const std::vector<std::byte>* a,
                               const std::vector<std::byte>* b, int dest) {
  Channel channel(api, *layout);
  co_await channel.send(*a, dest, 1);
  co_await channel.send(*b, dest, 2);
}

sim::Task<> back_to_back_recvs(machine::CoreApi& api,
                               const ChannelLayout* layout,
                               std::vector<std::byte>* a,
                               std::vector<std::byte>* b, int src) {
  Channel channel(api, *layout);
  co_await channel.recv(*a, src, 1);
  co_await channel.recv(*b, src, 2);
}

TEST(Channel, MessagesOrderedPerPair) {
  Fixture f;
  const auto first = pattern(700, 1);
  const auto second = pattern(300, 2);
  std::vector<std::byte> r1(700), r2(300);
  f.machine->launch(0, back_to_back_sends(f.machine->core(0), f.layout.get(),
                                          &first, &second, 3));
  f.machine->launch(3, back_to_back_recvs(f.machine->core(3), f.layout.get(),
                                          &r1, &r2, 0));
  f.machine->run();
  EXPECT_EQ(r1, first);
  EXPECT_EQ(r2, second);
}

sim::Task<> duplex_side(machine::CoreApi& api, const ChannelLayout* layout,
                        const std::vector<std::byte>* sdata,
                        std::vector<std::byte>* rdata, int peer) {
  Channel channel(api, *layout);
  co_await channel.sendrecv(*sdata, peer, *rdata, peer, 5);
}

TEST(Channel, DuplexSendrecvBothDirections) {
  Fixture f;
  const auto a = pattern(4000, 1);
  const auto b = pattern(4000, 2);
  std::vector<std::byte> ra(4000), rb(4000);
  f.machine->launch(0, duplex_side(f.machine->core(0), f.layout.get(), &a, &rb, 6));
  f.machine->launch(6, duplex_side(f.machine->core(6), f.layout.get(), &b, &ra, 0));
  f.machine->run();
  EXPECT_EQ(rb, b);
  EXPECT_EQ(ra, a);
}

TEST(Channel, DuplexFasterThanTwoBlockingTransfers) {
  // The progress loop overlaps the per-packet round trips of the two
  // directions; serial send-then-recv cannot.
  const auto run_duplex = [] {
    Fixture f;
    static std::vector<std::byte> a, b;
    static std::vector<std::byte> ra, rb;
    a = pattern(4000, 1);
    b = pattern(4000, 2);
    ra.assign(4000, std::byte{});
    rb.assign(4000, std::byte{});
    f.machine->launch(0, duplex_side(f.machine->core(0), f.layout.get(), &a, &rb, 1));
    f.machine->launch(1, duplex_side(f.machine->core(1), f.layout.get(), &b, &ra, 0));
    f.machine->run();
    return f.machine->engine().now();
  };
  const auto run_serial = [] {
    Fixture f;
    static std::vector<std::byte> a, b;
    static std::vector<std::byte> ra, rb;
    a = pattern(4000, 1);
    b = pattern(4000, 2);
    ra.assign(4000, std::byte{});
    rb.assign(4000, std::byte{});
    struct P {
      static sim::Task<> lo(machine::CoreApi& api, const ChannelLayout* l) {
        Channel c(api, *l);
        co_await c.send(a, 1, 5);
        co_await c.recv(ra, 1, 5);
      }
      static sim::Task<> hi(machine::CoreApi& api, const ChannelLayout* l) {
        Channel c(api, *l);
        co_await c.recv(rb, 0, 5);
        co_await c.send(b, 0, 5);
      }
    };
    f.machine->launch(0, P::lo(f.machine->core(0), f.layout.get()));
    f.machine->launch(1, P::hi(f.machine->core(1), f.layout.get()));
    f.machine->run();
    return f.machine->engine().now();
  };
  EXPECT_LT(run_duplex(), run_serial());
}

TEST(Channel, IncomingProbe) {
  Fixture f;
  struct P {
    static sim::Task<> probe(machine::CoreApi& api, const ChannelLayout* l,
                             bool* before, bool* after) {
      Channel channel(api, *l);
      *before = channel.incoming(1);
      co_await api.compute(1000000);  // let the sender run
      *after = channel.incoming(1);
      std::vector<std::byte> sink(16);
      co_await channel.recv(sink, 1, 3);
    }
  };
  const auto data = pattern(16, 4);
  bool before = true, after = false;
  f.machine->launch(0, P::probe(f.machine->core(0), f.layout.get(), &before,
                                &after));
  f.machine->launch(1, chan_send(f.machine->core(1), f.layout.get(), &data, 0, 3));
  f.machine->run();
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

}  // namespace
}  // namespace scc::rckmpi
