#include "rckmpi/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "machine/scc_machine.hpp"

namespace scc::rckmpi {
namespace {

struct Fixture {
  explicit Fixture(int tx = 2, int ty = 2) {
    machine::SccConfig config;
    config.tiles_x = tx;
    config.tiles_y = ty;
    base_layout = std::make_unique<rcce::Layout>(config.num_cores());
    layout = std::make_unique<ChannelLayout>(*base_layout);
    config.flags_per_core = layout->flags_needed();
    machine = std::make_unique<machine::SccMachine>(config);
  }
  std::unique_ptr<rcce::Layout> base_layout;
  std::unique_ptr<ChannelLayout> layout;
  std::unique_ptr<machine::SccMachine> machine;
};

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 5 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

TEST(ChannelLayout, GeometrySane) {
  const rcce::Layout base(48);
  const ChannelLayout layout(base);
  EXPECT_GE(layout.ring_lines(), 2u);
  EXPECT_LE(layout.ring_lines(), 64u);
  // 48 rings of ring_bytes each must fit in the payload.
  EXPECT_LE(48u * layout.ring_bytes(), base.payload_bytes());
  EXPECT_GT(layout.flags_needed(), base.flags_needed());
}

TEST(ChannelLayout, RingLinesWrapInPlace) {
  const rcce::Layout base(8);
  const ChannelLayout layout(base);
  const auto a = layout.ring_line(0, 1, 0);
  const auto b = layout.ring_line(0, 1, layout.ring_lines());
  EXPECT_EQ(a.core, b.core);
  EXPECT_EQ(a.offset, b.offset);  // wraps modulo ring size
}

sim::Task<> chan_send(machine::CoreApi& api, const ChannelLayout* layout,
                      const std::vector<std::byte>* data, int dest, int tag) {
  Channel channel(api, *layout);
  co_await channel.send(*data, dest, tag);
}

sim::Task<> chan_recv(machine::CoreApi& api, const ChannelLayout* layout,
                      std::vector<std::byte>* data, int src, int tag) {
  Channel channel(api, *layout);
  co_await channel.recv(*data, src, tag);
}

class ChannelSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelSize, TransfersIntact) {
  Fixture f;
  const auto data = pattern(GetParam(), 7);
  std::vector<std::byte> received(GetParam());
  f.machine->launch(0, chan_send(f.machine->core(0), f.layout.get(), &data, 5, 42));
  f.machine->launch(5, chan_recv(f.machine->core(5), f.layout.get(), &received, 0, 42));
  f.machine->run();
  EXPECT_EQ(received, data);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ChannelSize,
    // Zero bytes, sub-line, exact lines, many times the ring capacity.
    ::testing::Values(0, 1, 31, 32, 33, 100, 1000, 5600, 50000),
    [](const auto& param_info) { return "bytes_" + std::to_string(param_info.param); });

TEST(Channel, WildcardTagAccepted) {
  Fixture f;
  const auto data = pattern(64, 1);
  std::vector<std::byte> received(64);
  f.machine->launch(0, chan_send(f.machine->core(0), f.layout.get(), &data, 1, 9));
  f.machine->launch(1, chan_recv(f.machine->core(1), f.layout.get(), &received,
                                 0, kAnyTag));
  f.machine->run();
  EXPECT_EQ(received, data);
}

TEST(ChannelDeath, TagMismatchDetected) {
  EXPECT_DEATH(
      {
        Fixture f;
        const auto data = pattern(64, 1);
        std::vector<std::byte> received(64);
        f.machine->launch(0, chan_send(f.machine->core(0), f.layout.get(),
                                       &data, 1, 9));
        f.machine->launch(1, chan_recv(f.machine->core(1), f.layout.get(),
                                       &received, 0, 10));
        f.machine->run();
      },
      "precondition");
}

sim::Task<> back_to_back_sends(machine::CoreApi& api,
                               const ChannelLayout* layout,
                               const std::vector<std::byte>* a,
                               const std::vector<std::byte>* b, int dest) {
  Channel channel(api, *layout);
  co_await channel.send(*a, dest, 1);
  co_await channel.send(*b, dest, 2);
}

sim::Task<> back_to_back_recvs(machine::CoreApi& api,
                               const ChannelLayout* layout,
                               std::vector<std::byte>* a,
                               std::vector<std::byte>* b, int src) {
  Channel channel(api, *layout);
  co_await channel.recv(*a, src, 1);
  co_await channel.recv(*b, src, 2);
}

TEST(Channel, MessagesOrderedPerPair) {
  Fixture f;
  const auto first = pattern(700, 1);
  const auto second = pattern(300, 2);
  std::vector<std::byte> r1(700), r2(300);
  f.machine->launch(0, back_to_back_sends(f.machine->core(0), f.layout.get(),
                                          &first, &second, 3));
  f.machine->launch(3, back_to_back_recvs(f.machine->core(3), f.layout.get(),
                                          &r1, &r2, 0));
  f.machine->run();
  EXPECT_EQ(r1, first);
  EXPECT_EQ(r2, second);
}

sim::Task<> duplex_side(machine::CoreApi& api, const ChannelLayout* layout,
                        const std::vector<std::byte>* sdata,
                        std::vector<std::byte>* rdata, int peer) {
  Channel channel(api, *layout);
  co_await channel.sendrecv(*sdata, peer, *rdata, peer, 5);
}

TEST(Channel, DuplexSendrecvBothDirections) {
  Fixture f;
  const auto a = pattern(4000, 1);
  const auto b = pattern(4000, 2);
  std::vector<std::byte> ra(4000), rb(4000);
  f.machine->launch(0, duplex_side(f.machine->core(0), f.layout.get(), &a, &rb, 6));
  f.machine->launch(6, duplex_side(f.machine->core(6), f.layout.get(), &b, &ra, 0));
  f.machine->run();
  EXPECT_EQ(rb, b);
  EXPECT_EQ(ra, a);
}

TEST(Channel, DuplexFasterThanTwoBlockingTransfers) {
  // The progress loop overlaps the per-packet round trips of the two
  // directions; serial send-then-recv cannot.
  const auto run_duplex = [] {
    Fixture f;
    static std::vector<std::byte> a, b;
    static std::vector<std::byte> ra, rb;
    a = pattern(4000, 1);
    b = pattern(4000, 2);
    ra.assign(4000, std::byte{});
    rb.assign(4000, std::byte{});
    f.machine->launch(0, duplex_side(f.machine->core(0), f.layout.get(), &a, &rb, 1));
    f.machine->launch(1, duplex_side(f.machine->core(1), f.layout.get(), &b, &ra, 0));
    f.machine->run();
    return f.machine->engine().now();
  };
  const auto run_serial = [] {
    Fixture f;
    static std::vector<std::byte> a, b;
    static std::vector<std::byte> ra, rb;
    a = pattern(4000, 1);
    b = pattern(4000, 2);
    ra.assign(4000, std::byte{});
    rb.assign(4000, std::byte{});
    struct P {
      static sim::Task<> lo(machine::CoreApi& api, const ChannelLayout* l) {
        Channel c(api, *l);
        co_await c.send(a, 1, 5);
        co_await c.recv(ra, 1, 5);
      }
      static sim::Task<> hi(machine::CoreApi& api, const ChannelLayout* l) {
        Channel c(api, *l);
        co_await c.recv(rb, 0, 5);
        co_await c.send(b, 0, 5);
      }
    };
    f.machine->launch(0, P::lo(f.machine->core(0), f.layout.get()));
    f.machine->launch(1, P::hi(f.machine->core(1), f.layout.get()));
    f.machine->run();
    return f.machine->engine().now();
  };
  EXPECT_LT(run_duplex(), run_serial());
}

// --- mod-256 counter wraparound ------------------------------------------
//
// The flow-control counters live in 8-bit MPB flags and wrap mod 256;
// Channel::advance_counter folds them into 32-bit cumulative counts, which
// is sound only while in-flight lines stay below 256 (ring_lines() <= 64).

TEST(Channel, AdvanceCounterFoldsAcrossWrap) {
  std::uint32_t counter = 250;
  Channel::advance_counter(counter, static_cast<std::uint8_t>(260 & 0xFF));
  EXPECT_EQ(counter, 260u);
}

TEST(Channel, AdvanceCounterEqualFlagIsNoop) {
  std::uint32_t counter = 1000;  // 1000 mod 256 == 232
  Channel::advance_counter(counter, 232);
  EXPECT_EQ(counter, 1000u);
}

TEST(Channel, AdvanceCounterTracksManyWraps) {
  std::uint32_t counter = 0;
  std::uint32_t truth = 0;
  // Cumulative increments of at most 64 lines (the ring cap): the folded
  // counter must track the true count through a dozen 256-wraps.
  for (int i = 0; i < 100; ++i) {
    truth += static_cast<std::uint32_t>(1 + (i * 7) % 64);
    Channel::advance_counter(counter, static_cast<std::uint8_t>(truth & 0xFF));
    ASSERT_EQ(counter, truth);
  }
  EXPECT_GT(truth, 256u * 4);  // really crossed several wraps
}

sim::Task<> stream_send(machine::CoreApi& api, const ChannelLayout* layout,
                        int dest, int messages, std::size_t bytes,
                        bool* invariant_held) {
  Channel channel(api, *layout);
  for (int m = 0; m < messages; ++m) {
    const auto data = pattern(bytes, m);
    co_await channel.send(data, dest, m);
    // tx_credits derives from lines_sent - lines_acked, both folded from
    // the wrapped flag; it must never exceed the ring.
    *invariant_held =
        *invariant_held && channel.tx_credits(dest) <= layout->ring_lines();
  }
}

sim::Task<> stream_recv(machine::CoreApi& api, const ChannelLayout* layout,
                        int src, int messages, std::size_t bytes,
                        bool* data_ok, bool* invariant_held) {
  Channel channel(api, *layout);
  for (int m = 0; m < messages; ++m) {
    std::vector<std::byte> got(bytes);
    co_await channel.recv(got, src, m);
    *data_ok = *data_ok && got == pattern(bytes, m);
    *invariant_held =
        *invariant_held && channel.rx_available(src) <= layout->ring_lines();
  }
}

/// Streams enough framed lines through ONE persistent channel pair that the
/// cumulative counters wrap mod 256 several times; optional schedule
/// perturbation (seed 0 = off) explores other interleavings of the same
/// exchange.
void run_wrap_stream(std::uint64_t perturb_seed, std::uint64_t max_delay_fs) {
  // 224-byte payloads: 7 payload lines + 1 header = 8 lines per message;
  // 40 messages = 320 cumulative lines > 256 (and > 2x for the acks).
  constexpr int kMessages = 40;
  constexpr std::size_t kBytes = 224;
  Fixture f;
  if (perturb_seed != 0) {
    machine::SccConfig config;
    config.tiles_x = 2;
    config.tiles_y = 2;
    config.flags_per_core = f.layout->flags_needed();
    config.perturb_seed = perturb_seed;
    config.perturb_max_delay_fs = max_delay_fs;
    f.machine = std::make_unique<machine::SccMachine>(config);
  }
  bool tx_ok = true, rx_ok = true, data_ok = true;
  f.machine->launch(0, stream_send(f.machine->core(0), f.layout.get(), 5,
                                   kMessages, kBytes, &tx_ok));
  f.machine->launch(5, stream_recv(f.machine->core(5), f.layout.get(), 0,
                                   kMessages, kBytes, &data_ok, &rx_ok));
  f.machine->run();
  EXPECT_TRUE(tx_ok) << "tx_credits exceeded ring_lines (seed "
                     << perturb_seed << ")";
  EXPECT_TRUE(rx_ok) << "rx_available exceeded ring_lines (seed "
                     << perturb_seed << ")";
  EXPECT_TRUE(data_ok) << "payload corrupted across counter wrap (seed "
                       << perturb_seed << ")";
}

TEST(Channel, CounterWrapUnperturbed) { run_wrap_stream(0, 0); }

TEST(Channel, CounterWrapUnderPerturbation) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) run_wrap_stream(seed, 0);
}

TEST(Channel, CounterWrapUnderPerturbationWithDelays) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    run_wrap_stream(seed, 1'000'000);  // up to 1 ns injected per event
}

TEST(Channel, IncomingProbe) {
  Fixture f;
  struct P {
    static sim::Task<> probe(machine::CoreApi& api, const ChannelLayout* l,
                             bool* before, bool* after) {
      Channel channel(api, *l);
      *before = channel.incoming(1);
      co_await api.compute(1000000);  // let the sender run
      *after = channel.incoming(1);
      std::vector<std::byte> sink(16);
      co_await channel.recv(sink, 1, 3);
    }
  };
  const auto data = pattern(16, 4);
  bool before = true, after = false;
  f.machine->launch(0, P::probe(f.machine->core(0), f.layout.get(), &before,
                                &after));
  f.machine->launch(1, chan_send(f.machine->core(1), f.layout.get(), &data, 0, 3));
  f.machine->run();
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

}  // namespace
}  // namespace scc::rckmpi
