#include "rckmpi/mpi.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/block_split.hpp"
#include "machine/scc_machine.hpp"

namespace scc::rckmpi {
namespace {

struct Fixture {
  explicit Fixture(int tx = 2, int ty = 2) {
    machine::SccConfig config;
    config.tiles_x = tx;
    config.tiles_y = ty;
    base_layout = std::make_unique<rcce::Layout>(config.num_cores());
    layout = std::make_unique<ChannelLayout>(*base_layout);
    config.flags_per_core = layout->flags_needed();
    machine = std::make_unique<machine::SccMachine>(config);
  }
  [[nodiscard]] int p() const { return machine->num_cores(); }
  std::unique_ptr<rcce::Layout> base_layout;
  std::unique_ptr<ChannelLayout> layout;
  std::unique_ptr<machine::SccMachine> machine;
};

std::vector<double> values(std::size_t n, int seed) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<double>((i * 17 + static_cast<std::size_t>(seed) * 101) % 1000);
  return v;
}

sim::Task<> bcast_prog(machine::CoreApi& api, const ChannelLayout* layout,
                       std::vector<double>* data, int root) {
  Mpi mpi(api, *layout);
  co_await mpi.bcast(*data, root);
}

class MpiBcastSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MpiBcastSize, Distributes) {
  Fixture f;
  const int root = 2;
  std::vector<std::vector<double>> data(static_cast<std::size_t>(f.p()),
                                        std::vector<double>(GetParam(), 0.0));
  data[root] = values(GetParam(), 5);
  for (int r = 0; r < f.p(); ++r)
    f.machine->launch(r, bcast_prog(f.machine->core(r), f.layout.get(),
                                    &data[static_cast<std::size_t>(r)], root));
  f.machine->run();
  for (int r = 0; r < f.p(); ++r)
    EXPECT_EQ(data[static_cast<std::size_t>(r)], data[root]);
}

// 8 covers the short binomial path; 200 the scatter+allgather path.
INSTANTIATE_TEST_SUITE_P(Sizes, MpiBcastSize, ::testing::Values(8, 31, 200),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

sim::Task<> reduce_prog(machine::CoreApi& api, const ChannelLayout* layout,
                        const std::vector<double>* in,
                        std::vector<double>* out, int root) {
  Mpi mpi(api, *layout);
  co_await mpi.reduce(*in, *out, ReduceOp::kSum, root);
}

TEST(Mpi, ReduceLongVector) {
  Fixture f;
  const std::size_t n = 120;
  const int root = 3;
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < f.p(); ++r) {
    in.push_back(values(n, r));
    out.emplace_back(n, 0.0);
  }
  for (int r = 0; r < f.p(); ++r)
    f.machine->launch(r, reduce_prog(f.machine->core(r), f.layout.get(),
                                     &in[static_cast<std::size_t>(r)],
                                     &out[static_cast<std::size_t>(r)], root));
  f.machine->run();
  for (std::size_t i = 0; i < n; ++i) {
    double want = 0.0;
    for (int r = 0; r < f.p(); ++r) want += in[static_cast<std::size_t>(r)][i];
    EXPECT_DOUBLE_EQ(out[root][i], want);
  }
}

TEST(Mpi, ReduceShortVectorUsesBinomialPath) {
  Fixture f;
  const std::size_t n = 3;  // < p
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < f.p(); ++r) {
    in.push_back(values(n, r));
    out.emplace_back(n, 0.0);
  }
  for (int r = 0; r < f.p(); ++r)
    f.machine->launch(r, reduce_prog(f.machine->core(r), f.layout.get(),
                                     &in[static_cast<std::size_t>(r)],
                                     &out[static_cast<std::size_t>(r)], 0));
  f.machine->run();
  for (std::size_t i = 0; i < n; ++i) {
    double want = 0.0;
    for (int r = 0; r < f.p(); ++r) want += in[static_cast<std::size_t>(r)][i];
    EXPECT_DOUBLE_EQ(out[0][i], want);
  }
}

sim::Task<> allreduce_prog(machine::CoreApi& api, const ChannelLayout* layout,
                           const std::vector<double>* in,
                           std::vector<double>* out) {
  Mpi mpi(api, *layout);
  co_await mpi.allreduce(*in, *out, ReduceOp::kSum);
}

class MpiAllreduceSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MpiAllreduceSize, EveryoneGetsTheSum) {
  Fixture f;
  const std::size_t n = GetParam();
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < f.p(); ++r) {
    in.push_back(values(n, r));
    out.emplace_back(n, 0.0);
  }
  for (int r = 0; r < f.p(); ++r)
    f.machine->launch(r, allreduce_prog(f.machine->core(r), f.layout.get(),
                                        &in[static_cast<std::size_t>(r)],
                                        &out[static_cast<std::size_t>(r)]));
  f.machine->run();
  for (std::size_t i = 0; i < n; ++i) {
    double want = 0.0;
    for (int r = 0; r < f.p(); ++r) want += in[static_cast<std::size_t>(r)][i];
    for (int r = 0; r < f.p(); ++r)
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][i], want);
  }
}

// 1 and 60 take the recursive-doubling path (with the non-power-of-two
// folding on 8 cores it is exercised only when p is not a power of two --
// see the OddCoreCount test); 300 and 2100 stay under/over the ring
// threshold.
INSTANTIATE_TEST_SUITE_P(Sizes, MpiAllreduceSize,
                         ::testing::Values(1, 60, 300, 2100),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(Mpi, AllreduceOddCoreCountFolds) {
  Fixture f(3, 1);  // 6 cores: non-power-of-two recursive doubling
  const std::size_t n = 20;
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < f.p(); ++r) {
    in.push_back(values(n, r));
    out.emplace_back(n, 0.0);
  }
  for (int r = 0; r < f.p(); ++r)
    f.machine->launch(r, allreduce_prog(f.machine->core(r), f.layout.get(),
                                        &in[static_cast<std::size_t>(r)],
                                        &out[static_cast<std::size_t>(r)]));
  f.machine->run();
  for (std::size_t i = 0; i < n; ++i) {
    double want = 0.0;
    for (int r = 0; r < f.p(); ++r) want += in[static_cast<std::size_t>(r)][i];
    for (int r = 0; r < f.p(); ++r)
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][i], want);
  }
}

sim::Task<> allgather_prog(machine::CoreApi& api, const ChannelLayout* layout,
                           const std::vector<double>* in,
                           std::vector<double>* out) {
  Mpi mpi(api, *layout);
  co_await mpi.allgather(*in, *out);
}

TEST(Mpi, AllgatherRing) {
  Fixture f;
  const std::size_t n = 25;
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < f.p(); ++r) {
    in.push_back(values(n, r));
    out.emplace_back(n * static_cast<std::size_t>(f.p()), 0.0);
  }
  for (int r = 0; r < f.p(); ++r)
    f.machine->launch(r, allgather_prog(f.machine->core(r), f.layout.get(),
                                        &in[static_cast<std::size_t>(r)],
                                        &out[static_cast<std::size_t>(r)]));
  f.machine->run();
  for (int r = 0; r < f.p(); ++r)
    for (int src = 0; src < f.p(); ++src)
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)]
                            [static_cast<std::size_t>(src) * n + i],
                         in[static_cast<std::size_t>(src)][i]);
}

sim::Task<> alltoall_prog(machine::CoreApi& api, const ChannelLayout* layout,
                          const std::vector<double>* in,
                          std::vector<double>* out) {
  Mpi mpi(api, *layout);
  co_await mpi.alltoall(*in, *out);
}

TEST(Mpi, AlltoallPersonalized) {
  Fixture f;
  const std::size_t n = 10;
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < f.p(); ++r) {
    in.push_back(values(n * static_cast<std::size_t>(f.p()), r));
    out.emplace_back(n * static_cast<std::size_t>(f.p()), 0.0);
  }
  for (int r = 0; r < f.p(); ++r)
    f.machine->launch(r, alltoall_prog(f.machine->core(r), f.layout.get(),
                                       &in[static_cast<std::size_t>(r)],
                                       &out[static_cast<std::size_t>(r)]));
  f.machine->run();
  for (int r = 0; r < f.p(); ++r)
    for (int src = 0; src < f.p(); ++src)
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)]
                            [static_cast<std::size_t>(src) * n + i],
                         in[static_cast<std::size_t>(src)]
                           [static_cast<std::size_t>(r) * n + i]);
}

sim::Task<> reduce_scatter_prog(machine::CoreApi& api,
                                const ChannelLayout* layout,
                                const std::vector<double>* in,
                                std::vector<double>* out, int* block) {
  Mpi mpi(api, *layout);
  *block = co_await mpi.reduce_scatter(*in, *out, ReduceOp::kSum);
}

TEST(Mpi, ReduceScatterOwnedBlocks) {
  Fixture f;
  const std::size_t n = 45;
  std::vector<std::vector<double>> in, out;
  std::vector<int> block(static_cast<std::size_t>(f.p()), -1);
  for (int r = 0; r < f.p(); ++r) {
    in.push_back(values(n, r));
    out.emplace_back(n, 0.0);
  }
  for (int r = 0; r < f.p(); ++r)
    f.machine->launch(r, reduce_scatter_prog(
                             f.machine->core(r), f.layout.get(),
                             &in[static_cast<std::size_t>(r)],
                             &out[static_cast<std::size_t>(r)],
                             &block[static_cast<std::size_t>(r)]));
  f.machine->run();
  const auto blocks =
      coll::split_blocks(n, f.p(), coll::SplitPolicy::kBalanced);
  for (int r = 0; r < f.p(); ++r) {
    const int b = block[static_cast<std::size_t>(r)];
    ASSERT_GE(b, 0);
    const coll::Block& blk = blocks[static_cast<std::size_t>(b)];
    for (std::size_t i = blk.offset; i < blk.offset + blk.count; ++i) {
      double want = 0.0;
      for (int src = 0; src < f.p(); ++src)
        want += in[static_cast<std::size_t>(src)][i];
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][i], want);
    }
  }
}

sim::Task<> barrier_prog(machine::CoreApi& api, const ChannelLayout* layout,
                         std::uint64_t pre_cycles, SimTime* after) {
  Mpi mpi(api, *layout);
  co_await api.compute(pre_cycles);
  co_await mpi.barrier();
  *after = api.now();
}

TEST(Mpi, BarrierSynchronizes) {
  Fixture f;
  std::vector<SimTime> after(static_cast<std::size_t>(f.p()));
  for (int r = 0; r < f.p(); ++r)
    f.machine->launch(r, barrier_prog(f.machine->core(r), f.layout.get(),
                                      static_cast<std::uint64_t>(r) * 50000,
                                      &after[static_cast<std::size_t>(r)]));
  f.machine->run();
  // No core leaves the barrier before the slowest one arrived.
  const SimTime slowest_arrival =
      Clock{533e6}.cycles(static_cast<std::uint64_t>(f.p() - 1) * 50000);
  for (int r = 0; r < f.p(); ++r)
    EXPECT_GE(after[static_cast<std::size_t>(r)], slowest_arrival);
}

}  // namespace
}  // namespace scc::rckmpi
