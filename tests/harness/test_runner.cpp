#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace scc::harness {
namespace {

machine::SccConfig mesh8() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;
  return config;
}

TEST(Runner, ReportsSaneLatencies) {
  RunSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.variant = PaperVariant::kBlocking;
  spec.elements = 64;
  spec.repetitions = 3;
  spec.config = mesh8();
  const RunResult r = run_collective(spec);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.mean_latency, SimTime::zero());
  EXPECT_LE(r.min_latency, r.mean_latency);
  EXPECT_GE(r.max_latency, r.mean_latency);
  EXPECT_GT(r.events, 0u);
}

TEST(Runner, WarmRepetitionsAreStable) {
  // The simulator is deterministic and caches are warm after the warmup
  // repetition: all measured samples must be nearly identical.
  RunSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.variant = PaperVariant::kLightweight;
  spec.elements = 96;
  spec.repetitions = 4;
  spec.warmup = 2;
  spec.config = mesh8();
  const RunResult r = run_collective(spec);
  EXPECT_LT(r.max_latency.us() - r.min_latency.us(), r.mean_latency.us() * 0.02);
}

TEST(Runner, ProfilesCollectedOnRequest) {
  RunSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.variant = PaperVariant::kBlocking;
  spec.elements = 64;
  spec.config = mesh8();
  spec.collect_profiles = true;
  const RunResult r = run_collective(spec);
  ASSERT_EQ(r.profiles.size(), 8u);
  // Blocking stacks spend real time waiting on flags.
  EXPECT_GT(r.profiles[0].get(machine::Phase::kFlagWait), SimTime::zero());
  EXPECT_GT(r.profiles[0].total(), SimTime::zero());
}

TEST(Runner, VariantNamesMatchFigureLegends) {
  EXPECT_EQ(variant_name(PaperVariant::kRckmpi), "rckmpi");
  EXPECT_EQ(variant_name(PaperVariant::kBlocking), "blocking");
  EXPECT_EQ(variant_name(PaperVariant::kIrcce), "ircce");
  EXPECT_EQ(variant_name(PaperVariant::kLightweight), "lightweight");
  EXPECT_EQ(variant_name(PaperVariant::kLwBalanced), "lw-balanced");
  EXPECT_EQ(variant_name(PaperVariant::kMpb), "mpb");
}

TEST(Sweep, ProducesOnePointPerSize) {
  SweepSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.from = 60;
  spec.to = 72;
  spec.step = 4;
  spec.repetitions = 1;
  spec.warmup = 1;
  spec.config = mesh8();
  spec.variants = {PaperVariant::kBlocking, PaperVariant::kLightweight};
  const SweepResult r = run_sweep(spec);
  ASSERT_EQ(r.points.size(), 4u);  // 60, 64, 68, 72
  EXPECT_EQ(r.points.front().elements, 60u);
  EXPECT_EQ(r.points.back().elements, 72u);
  for (const SweepPoint& pt : r.points) {
    ASSERT_EQ(pt.latency_us.size(), 2u);
    EXPECT_GT(pt.latency_us[0], 0.0);
  }
}

TEST(Sweep, SpeedupStatistics) {
  SweepSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.from = 60;
  spec.to = 68;
  spec.step = 4;
  spec.repetitions = 1;
  spec.warmup = 1;
  spec.config = mesh8();
  spec.variants = {PaperVariant::kBlocking, PaperVariant::kLightweight};
  const SweepResult r = run_sweep(spec);
  const double mean = r.mean_speedup_vs_blocking(PaperVariant::kLightweight);
  EXPECT_GT(mean, 1.0);
  const auto [best, at] = r.max_speedup_vs_blocking(PaperVariant::kLightweight);
  EXPECT_GE(best, mean * 0.99);
  EXPECT_GE(at, 60u);
  EXPECT_LE(at, 68u);
  EXPECT_DOUBLE_EQ(r.mean_speedup_vs_blocking(PaperVariant::kBlocking), 1.0);
}

TEST(Sweep, TableHasVariantColumns) {
  SweepSpec spec;
  spec.collective = Collective::kReduce;
  spec.from = 64;
  spec.to = 64;
  spec.repetitions = 1;
  spec.warmup = 0;
  spec.config = mesh8();
  spec.variants = {PaperVariant::kBlocking};
  const SweepResult r = run_sweep(spec);
  const Table table = r.to_table();
  EXPECT_EQ(table.columns(), 2u);  // elements + 1 variant
  EXPECT_EQ(table.rows(), 1u);
}

TEST(Runner, CustomSeedChangesDataNotShape) {
  RunSpec a;
  a.collective = Collective::kAllreduce;
  a.variant = PaperVariant::kLightweight;
  a.elements = 64;
  a.config = mesh8();
  a.seed = 1;
  RunSpec b = a;
  b.seed = 2;
  const auto ra = run_collective(a);
  const auto rb = run_collective(b);
  // Timing is data-independent in this model (same charge structure).
  EXPECT_EQ(ra.mean_latency, rb.mean_latency);
}

}  // namespace
}  // namespace scc::harness
