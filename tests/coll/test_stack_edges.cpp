// Edge-case audit of the three message-passing stacks behind coll::Stack:
//
//   1. zero-length messages -- every primitive (send/recv, exchange,
//      exchange_pair, exchange_shift) must complete a 0-byte transfer with
//      the same one-handshake semantics on all three layers instead of
//      deadlocking or diverging (an empty message still synchronizes);
//   2. multi-chunk bidirectional exchanges -- both directions larger than
//      one MPB chunk, the configuration where the non-blocking layers'
//      receive-before-restage completion used to deadlock (fixed by
//      rcce::complete_exchange's interleaved progression); data integrity
//      is checked byte-for-byte at the primitive level and element-wise at
//      the Stack level;
//   3. precondition death tests for the rooted collectives' buffer-size
//      contracts (reduce/scatter/gather validate the root's buffer).
#include "coll/stack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "coll/collectives.hpp"
#include "machine/scc_machine.hpp"

namespace scc::coll {
namespace {

machine::SccConfig small_config() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;  // 8 cores
  return config;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] =
        static_cast<std::byte>((i * 13 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

// --- 1. zero-length messages ---------------------------------------------

struct RingBufs {
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
};

sim::Task<> ring_exchange_program(machine::CoreApi& api,
                                  const rcce::Layout* layout, Prims prims,
                                  RingBufs* bufs) {
  Stack stack(api, *layout, prims);
  const int p = stack.num_cores();
  co_await stack.exchange(bufs->sbuf, (stack.rank() + 1) % p, bufs->rbuf,
                          (stack.rank() + p - 1) % p);
}

/// A full ring round where every core's payload is empty: each of the p
/// simultaneous 0-byte exchanges must still handshake and terminate.
void run_zero_ring(Prims prims) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  std::vector<RingBufs> bufs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    machine.launch(r, ring_exchange_program(machine.core(r), &layout, prims,
                                            &bufs[static_cast<std::size_t>(r)]));
  machine.run();  // termination IS the assertion (deadlock throws)
}

TEST(ZeroLength, RingExchangeBlocking) { run_zero_ring(Prims::kBlocking); }
TEST(ZeroLength, RingExchangeIrcce) { run_zero_ring(Prims::kIrcce); }
TEST(ZeroLength, RingExchangeLightweight) {
  run_zero_ring(Prims::kLightweight);
}

/// Mixed case: even ranks send 0 bytes but receive a payload, odd ranks
/// the reverse -- zero- and nonzero-length handshakes interleave in one
/// round and the payloads must land intact.
sim::Task<> mixed_pair_program(machine::CoreApi& api,
                               const rcce::Layout* layout, Prims prims,
                               RingBufs* bufs) {
  Stack stack(api, *layout, prims);
  const int partner = stack.rank() ^ 1;
  co_await stack.exchange_pair(bufs->sbuf, bufs->rbuf, partner);
}

void run_mixed_pairs(Prims prims) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  std::vector<RingBufs> bufs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    if (r % 2 == 0) {
      bufs[static_cast<std::size_t>(r)].rbuf.resize(300);
    } else {
      bufs[static_cast<std::size_t>(r)].sbuf = pattern(300, r);
    }
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, mixed_pair_program(machine.core(r), &layout, prims,
                                         &bufs[static_cast<std::size_t>(r)]));
  machine.run();
  for (int r = 0; r < p; r += 2)
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)].rbuf, pattern(300, r + 1))
        << prims_name(prims) << " rank " << r;
}

TEST(ZeroLength, MixedPairsBlocking) { run_mixed_pairs(Prims::kBlocking); }
TEST(ZeroLength, MixedPairsIrcce) { run_mixed_pairs(Prims::kIrcce); }
TEST(ZeroLength, MixedPairsLightweight) {
  run_mixed_pairs(Prims::kLightweight);
}

sim::Task<> zero_send_program(machine::CoreApi& api,
                              const rcce::Layout* layout, Prims prims,
                              int dest) {
  Stack stack(api, *layout, prims);
  co_await stack.send({}, dest);
}

sim::Task<> zero_recv_program(machine::CoreApi& api,
                              const rcce::Layout* layout, Prims prims,
                              int src) {
  Stack stack(api, *layout, prims);
  co_await stack.recv({}, src);
}

TEST(ZeroLength, SendRecvAllStacks) {
  for (const Prims prims : kAllPrims) {
    machine::SccMachine machine(small_config());
    const rcce::Layout layout(machine.num_cores());
    machine.launch(0, zero_send_program(machine.core(0), &layout, prims, 5));
    machine.launch(5, zero_recv_program(machine.core(5), &layout, prims, 0));
    machine.run();
  }
}

sim::Task<> zero_shift_program(machine::CoreApi& api,
                               const rcce::Layout* layout, Prims prims,
                               int dist) {
  Stack stack(api, *layout, prims);
  co_await stack.exchange_shift({}, {}, dist);
}

TEST(ZeroLength, ExchangeShiftAllStacksAllDistances) {
  // Distances covering the odd-even case (dist odd), the cycle-breaker
  // case (gcd(8, dist) > 1), and negative shifts (Bruck allgather's
  // direction).
  for (const Prims prims : kAllPrims) {
    for (const int dist : {1, 2, 4, 6, -1, -2, -4}) {
      machine::SccMachine machine(small_config());
      const int p = machine.num_cores();
      const rcce::Layout layout(p);
      for (int r = 0; r < p; ++r)
        machine.launch(
            r, zero_shift_program(machine.core(r), &layout, prims, dist));
      machine.run();
    }
  }
}

struct VBufs {
  std::vector<double> contribution;
  std::vector<double> gathered;
};

sim::Task<> allgatherv_program(machine::CoreApi& api,
                               const rcce::Layout* layout, Prims prims,
                               const std::vector<std::size_t>* counts,
                               VBufs* bufs) {
  Stack stack(api, *layout, prims);
  co_await allgatherv(stack, bufs->contribution, *counts, bufs->gathered);
}

TEST(ZeroLength, AllgathervWithEmptyContributions) {
  // Several cores contribute nothing at all; their ring slots are 0-byte
  // messages that must still forward everyone else's data around.
  for (const Prims prims : kAllPrims) {
    machine::SccMachine machine(small_config());
    const int p = machine.num_cores();
    const rcce::Layout layout(p);
    const std::vector<std::size_t> counts = {0, 3, 0, 0, 7, 1, 0, 5};
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (const std::size_t c : counts) total += c;
    std::vector<VBufs> bufs(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      auto& b = bufs[static_cast<std::size_t>(r)];
      b.contribution.resize(counts[static_cast<std::size_t>(r)]);
      for (std::size_t i = 0; i < b.contribution.size(); ++i)
        b.contribution[i] = static_cast<double>(r * 100 + static_cast<int>(i));
      b.gathered.assign(total, -1.0);
    }
    for (int r = 0; r < p; ++r)
      machine.launch(r,
                     allgatherv_program(machine.core(r), &layout, prims,
                                        &counts,
                                        &bufs[static_cast<std::size_t>(r)]));
    machine.run();
    std::vector<double> want;
    for (int r = 0; r < p; ++r)
      for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i)
        want.push_back(static_cast<double>(r * 100 + static_cast<int>(i)));
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(bufs[static_cast<std::size_t>(r)].gathered, want)
          << prims_name(prims) << " rank " << r;
  }
}

// --- 2. multi-chunk bidirectional exchanges -------------------------------

sim::Task<> pair_exchange_program(machine::CoreApi& api,
                                  const rcce::Layout* layout, Prims prims,
                                  RingBufs* bufs, int partner) {
  Stack stack(api, *layout, prims);
  co_await stack.exchange_pair(bufs->sbuf, bufs->rbuf, partner);
}

/// Both directions of every pair larger than one MPB chunk: the layers
/// must interleave chunk progression instead of completing the receive
/// first (which deadlocks -- each side's next send chunk would wait behind
/// its own unfinished receive).
void run_multichunk_pairs(Prims prims, std::size_t send_bytes,
                          std::size_t recv_bytes) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  ASSERT_GT(std::max(send_bytes, recv_bytes), layout.chunk_bytes())
      << "grow the test sizes: the whole point is to span chunks";
  std::vector<RingBufs> bufs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const bool even = r % 2 == 0;
    auto& b = bufs[static_cast<std::size_t>(r)];
    b.sbuf = pattern(even ? send_bytes : recv_bytes, r);
    b.rbuf.resize(even ? recv_bytes : send_bytes);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, pair_exchange_program(machine.core(r), &layout, prims,
                                            &bufs[static_cast<std::size_t>(r)],
                                            r ^ 1));
  machine.run();
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)].rbuf,
              bufs[static_cast<std::size_t>(r ^ 1)].sbuf)
        << prims_name(prims) << " rank " << r;
}

TEST(MultiChunk, SymmetricPairsBlocking) {
  run_multichunk_pairs(Prims::kBlocking, 14000, 14000);
}
TEST(MultiChunk, SymmetricPairsIrcce) {
  run_multichunk_pairs(Prims::kIrcce, 14000, 14000);
}
TEST(MultiChunk, SymmetricPairsLightweight) {
  run_multichunk_pairs(Prims::kLightweight, 14000, 14000);
}

// Asymmetric: only one direction spans chunks (both orderings). The
// interleaved path must also handle its partner finishing early.
TEST(MultiChunk, AsymmetricPairsIrcce) {
  run_multichunk_pairs(Prims::kIrcce, 14000, 64);
  run_multichunk_pairs(Prims::kIrcce, 64, 14000);
}
TEST(MultiChunk, AsymmetricPairsLightweight) {
  run_multichunk_pairs(Prims::kLightweight, 14000, 64);
  run_multichunk_pairs(Prims::kLightweight, 64, 14000);
}

sim::Task<> big_ring_program(machine::CoreApi& api, const rcce::Layout* layout,
                             Prims prims, RingBufs* bufs) {
  Stack stack(api, *layout, prims);
  const int p = stack.num_cores();
  co_await stack.exchange(bufs->sbuf, (stack.rank() + 1) % p, bufs->rbuf,
                          (stack.rank() + p - 1) % p);
}

TEST(MultiChunk, RingExchangeAllStacks) {
  // A ring (not pairs): the exchange cycle spans all 8 cores, so a
  // receive-first completion would deadlock the whole ring at once.
  for (const Prims prims : kAllPrims) {
    machine::SccMachine machine(small_config());
    const int p = machine.num_cores();
    const rcce::Layout layout(p);
    std::vector<RingBufs> bufs(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      bufs[static_cast<std::size_t>(r)].sbuf = pattern(14000, r);
      bufs[static_cast<std::size_t>(r)].rbuf.resize(14000);
    }
    for (int r = 0; r < p; ++r)
      machine.launch(r,
                     big_ring_program(machine.core(r), &layout, prims,
                                      &bufs[static_cast<std::size_t>(r)]));
    machine.run();
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(bufs[static_cast<std::size_t>(r)].rbuf,
                pattern(14000, (r + p - 1) % p))
          << prims_name(prims) << " rank " << r;
  }
}

// --- 3. rooted-collective buffer-size preconditions -----------------------

sim::Task<> bad_reduce_root(machine::CoreApi& api, const rcce::Layout* layout,
                            const std::vector<double>* in,
                            std::vector<double>* out) {
  Stack stack(api, *layout, Prims::kBlocking);
  co_await reduce(stack, *in, *out, rcce::ReduceOp::kSum, /*root=*/0,
                  SplitPolicy::kStandard);
}

TEST(RootedPreconditionDeathTest, ReduceRootOutputTooSmall) {
  // The root's `out` must hold the full vector; a short buffer used to be
  // silently overrun instead of tripping the contract.
  EXPECT_DEATH(
      {
        machine::SccMachine machine(small_config());
        const int p = machine.num_cores();
        const rcce::Layout layout(p);
        std::vector<std::vector<double>> in(
            static_cast<std::size_t>(p), std::vector<double>(40, 1.0));
        std::vector<double> short_out(39, 0.0);  // root buffer, one short
        std::vector<double> empty;               // non-roots may pass none
        for (int r = 0; r < p; ++r)
          machine.launch(r, bad_reduce_root(machine.core(r), &layout,
                                            &in[static_cast<std::size_t>(r)],
                                            r == 0 ? &short_out : &empty));
        machine.run();
      },
      "precondition");
}

sim::Task<> bad_scatter_root(machine::CoreApi& api, const rcce::Layout* layout,
                             const std::vector<double>* send,
                             std::vector<double>* recv) {
  Stack stack(api, *layout, Prims::kBlocking);
  co_await scatter(stack, *send, *recv, /*root=*/0);
}

TEST(RootedPreconditionDeathTest, ScatterRootSendTooSmall) {
  EXPECT_DEATH(
      {
        machine::SccMachine machine(small_config());
        const int p = machine.num_cores();
        const rcce::Layout layout(p);
        std::vector<double> send(static_cast<std::size_t>(p) * 4 - 1, 1.0);
        std::vector<std::vector<double>> recv(
            static_cast<std::size_t>(p), std::vector<double>(4, 0.0));
        std::vector<double> empty;
        for (int r = 0; r < p; ++r)
          machine.launch(r, bad_scatter_root(machine.core(r), &layout,
                                             r == 0 ? &send : &empty,
                                             &recv[static_cast<std::size_t>(r)]));
        machine.run();
      },
      "precondition");
}

sim::Task<> bad_gather_root(machine::CoreApi& api, const rcce::Layout* layout,
                            const std::vector<double>* send,
                            std::vector<double>* recv) {
  Stack stack(api, *layout, Prims::kBlocking);
  co_await gather(stack, *send, *recv, /*root=*/0);
}

TEST(RootedPreconditionDeathTest, GatherRootRecvTooSmall) {
  EXPECT_DEATH(
      {
        machine::SccMachine machine(small_config());
        const int p = machine.num_cores();
        const rcce::Layout layout(p);
        std::vector<std::vector<double>> send(
            static_cast<std::size_t>(p), std::vector<double>(4, 1.0));
        std::vector<double> recv(static_cast<std::size_t>(p) * 4 - 1, 0.0);
        std::vector<double> empty;
        for (int r = 0; r < p; ++r)
          machine.launch(r, bad_gather_root(machine.core(r), &layout,
                                            &send[static_cast<std::size_t>(r)],
                                            r == 0 ? &recv : &empty));
        machine.run();
      },
      "precondition");
}

}  // namespace
}  // namespace scc::coll
