// Communication-volume properties: the collectives must move exactly the
// data the algorithms prescribe -- a regression guard against accidental
// extra copies or dropped forwarding rounds, checked through the NoC
// traffic accounting.
#include <gtest/gtest.h>

#include <vector>

#include "coll/collectives.hpp"
#include "common/aligned.hpp"
#include "machine/scc_machine.hpp"

namespace scc::coll {
namespace {

machine::SccConfig mesh8() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;
  return config;
}

struct Buffers {
  aligned_vector<double> in;
  aligned_vector<double> out;
};

sim::Task<> allgather_prog(machine::CoreApi& api, const rcce::Layout* layout,
                           Buffers* buffers) {
  Stack stack(api, *layout, Prims::kLightweight);
  co_await allgather(stack, buffers->in, buffers->out);
}

TEST(TrafficVolume, RingAllgatherMovesExpectedLines) {
  machine::SccMachine machine(mesh8());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  const std::size_t n = 96;  // 24 lines per contribution, line-aligned
  std::vector<Buffers> buffers(static_cast<std::size_t>(p));
  for (auto& b : buffers) {
    b.in.assign(n, 1.0);
    b.out.assign(n * static_cast<std::size_t>(p), 0.0);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, allgather_prog(machine.core(r), &layout,
                                     &buffers[static_cast<std::size_t>(r)]));
  machine.run();

  // Ring allgather: p cores x (p-1) forwarding rounds x the contribution
  // size. Data lines: staged into the local MPB (local, not counted) then
  // fetched remotely (counted once per round per core). Flags are remote
  // single-line writes; sent+ready per exchange direction add a bounded
  // extra. Lower bound: the pure data volume.
  const std::uint64_t data_lines =
      static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(p - 1) *
      mem::lines_for(n * sizeof(double));
  EXPECT_GE(machine.traffic().total_lines_sent(), data_lines);
  // ... and everything beyond data is flag lines: at most 8 per exchange.
  EXPECT_LE(machine.traffic().total_lines_sent(),
            data_lines + static_cast<std::uint64_t>(p) *
                             static_cast<std::uint64_t>(p - 1) * 8);
}

sim::Task<> allreduce_prog(machine::CoreApi& api, const rcce::Layout* layout,
                           Buffers* buffers, SplitPolicy policy) {
  Stack stack(api, *layout, Prims::kLightweight);
  co_await allreduce(stack, buffers->in, buffers->out, ReduceOp::kSum,
                     policy);
}

TEST(TrafficVolume, AllreduceMovesAboutTwoVectorsPerCore) {
  // Ring ReduceScatter + ring Allgather each move ~(p-1)/p of the vector
  // per core: total data ~ 2 * n * (p-1) lines-for-blocks.
  machine::SccMachine machine(mesh8());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  const std::size_t n = 96;
  std::vector<Buffers> buffers(static_cast<std::size_t>(p));
  for (auto& b : buffers) {
    b.in.assign(n, 1.0);
    b.out.assign(n, 0.0);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, allreduce_prog(machine.core(r), &layout,
                                     &buffers[static_cast<std::size_t>(r)],
                                     SplitPolicy::kBalanced));
  machine.run();
  // 2 phases x p cores x (p-1) rounds x 3 lines per 12-double block.
  const std::uint64_t data_lines = std::uint64_t{2} *
                                   static_cast<std::uint64_t>(p) *
                                   static_cast<std::uint64_t>(p - 1) * 3;
  EXPECT_GE(machine.traffic().total_lines_sent(), data_lines);
  EXPECT_LE(machine.traffic().total_lines_sent(), data_lines * 4);
}

TEST(TrafficVolume, BalancedPolicyDoesNotChangeTotalVolume) {
  // Balancing redistributes elements between blocks; the summed data
  // volume over the whole operation is nearly unchanged (only line
  // rounding differs).
  std::uint64_t lines[2];
  int idx = 0;
  for (const SplitPolicy policy :
       {SplitPolicy::kStandard, SplitPolicy::kBalanced}) {
    machine::SccMachine machine(mesh8());
    const int p = machine.num_cores();
    const rcce::Layout layout(p);
    std::vector<Buffers> buffers(static_cast<std::size_t>(p));
    for (auto& b : buffers) {
      b.in.assign(100, 1.0);
      b.out.assign(100, 0.0);
    }
    for (int r = 0; r < p; ++r)
      machine.launch(r, allreduce_prog(machine.core(r), &layout,
                                       &buffers[static_cast<std::size_t>(r)],
                                       policy));
    machine.run();
    lines[idx++] = machine.traffic().total_lines_sent();
  }
  const double ratio = static_cast<double>(lines[0]) /
                       static_cast<double>(lines[1]);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

}  // namespace
}  // namespace scc::coll
