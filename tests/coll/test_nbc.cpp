// Direct tests of the non-blocking collective API (coll/nbc.hpp): result
// equivalence with the blocking schedules, lanes=1 timing bit-identity,
// overlapping-collectives interleave grid, ibarrier, and the overlap win
// (lower makespan than serialized blocking calls on a non-blocking stack).
#include "coll/nbc.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "coll/collectives.hpp"
#include "machine/scc_machine.hpp"

namespace scc::coll {
namespace {

using nbc::CollRequest;
using nbc::ProgressEngine;

machine::SccConfig mesh(int tx, int ty, int lanes = 1) {
  machine::SccConfig config;
  config.tiles_x = tx;
  config.tiles_y = ty;
  const int p = config.num_cores();
  config.flags_per_core =
      std::max(config.flags_per_core,
               rcce::Layout::lane(p, lanes - 1, lanes).flags_needed());
  return config;
}

std::vector<double> input_for(int rank, std::size_t n, int salt = 0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(
        (static_cast<std::size_t>(rank * 131 + salt * 17) + i * 7) % 251);
  }
  return v;
}

// --- blocking vs non-blocking equivalence --------------------------------

struct CoreBufs {
  std::vector<double> in;
  std::vector<double> out;
};

sim::Task<> blocking_allreduce_program(machine::CoreApi& api,
                                       const rcce::Layout* layout,
                                       Prims prims, CoreBufs* bufs) {
  Stack stack(api, *layout, prims);
  co_await allreduce(stack, bufs->in, bufs->out, ReduceOp::kSum,
                     SplitPolicy::kStandard);
}

sim::Task<> nbc_allreduce_program(machine::CoreApi& api, Prims prims,
                                  int lanes, CoreBufs* bufs) {
  ProgressEngine engine(api, prims, lanes);
  CollRequest req = engine.iallreduce(bufs->in, bufs->out, ReduceOp::kSum,
                                      SplitPolicy::kStandard);
  co_await req.wait();
  EXPECT_TRUE(req.done());
}

class NbcEquivalence : public ::testing::TestWithParam<Prims> {};

TEST_P(NbcEquivalence, AllreduceMatchesBlockingBitExact) {
  const Prims prims = GetParam();
  const std::size_t n = 96;
  // Blocking run.
  machine::SccMachine blocking_machine(mesh(2, 2));
  const int p = blocking_machine.num_cores();
  const rcce::Layout layout(p);
  std::vector<CoreBufs> blocking_bufs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& b = blocking_bufs[static_cast<std::size_t>(r)];
    b.in = input_for(r, n);
    b.out.assign(n, -1.0);
    blocking_machine.launch(
        r, blocking_allreduce_program(blocking_machine.core(r), &layout,
                                      prims, &b));
  }
  blocking_machine.run();
  // Non-blocking run, one lane: same wire schedule, so outputs AND final
  // simulated time must match the blocking run bit-exactly.
  machine::SccMachine nbc_machine(mesh(2, 2));
  std::vector<CoreBufs> nbc_bufs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& b = nbc_bufs[static_cast<std::size_t>(r)];
    b.in = input_for(r, n);
    b.out.assign(n, -1.0);
    nbc_machine.launch(
        r, nbc_allreduce_program(nbc_machine.core(r), prims, 1, &b));
  }
  nbc_machine.run();
  for (int r = 0; r < p; ++r) {
    const auto& want = blocking_bufs[static_cast<std::size_t>(r)].out;
    const auto& got = nbc_bufs[static_cast<std::size_t>(r)].out;
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[i], got[i]) << "rank " << r << " element " << i;
    }
  }
  EXPECT_EQ(blocking_machine.now(), nbc_machine.now())
      << "lanes=1 nbc must be timing-identical to the blocking schedule";
}

INSTANTIATE_TEST_SUITE_P(AllPrims, NbcEquivalence,
                         ::testing::ValuesIn(std::vector<Prims>(
                             kAllPrims.begin(), kAllPrims.end())),
                         [](const ::testing::TestParamInfo<Prims>& param) {
                           return std::string(prims_name(param.param));
                         });

// --- overlapping collectives (interleave grid) ---------------------------

struct GridBufs {
  std::vector<double> ag_in, ag_out;
  std::vector<double> ar_in, ar_out;
  std::vector<double> a2a_in, a2a_out;
  std::vector<double> bc_data;
};

sim::Task<> nbc_grid_program(machine::CoreApi& api, Prims prims, int lanes,
                             GridBufs* bufs) {
  ProgressEngine engine(api, prims, lanes);
  CollRequest ag = engine.iallgather(bufs->ag_in, bufs->ag_out);
  CollRequest ar = engine.iallreduce(bufs->ar_in, bufs->ar_out,
                                     ReduceOp::kSum, SplitPolicy::kStandard);
  CollRequest a2a = engine.ialltoall(bufs->a2a_in, bufs->a2a_out);
  CollRequest bc = engine.ibcast(bufs->bc_data, 1, SplitPolicy::kStandard);
  // Drive completion out of initiation order through test()+wait().
  while (!(co_await a2a.test())) {
  }
  co_await bc.wait();
  co_await ag.wait();
  co_await ar.wait();
  EXPECT_TRUE(engine.idle());
}

class NbcInterleave
    : public ::testing::TestWithParam<std::tuple<Prims, int>> {};

TEST_P(NbcInterleave, FourOverlappingCollectivesAllCorrect) {
  const auto [prims, lanes] = GetParam();
  machine::SccMachine machine(mesh(2, 2, lanes));
  const int p = machine.num_cores();
  const std::size_t n = 24;
  std::vector<GridBufs> bufs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& b = bufs[static_cast<std::size_t>(r)];
    b.ag_in = input_for(r, n, 1);
    b.ag_out.assign(n * static_cast<std::size_t>(p), -1.0);
    b.ar_in = input_for(r, n, 2);
    b.ar_out.assign(n, -1.0);
    b.a2a_in = input_for(r, n * static_cast<std::size_t>(p), 3);
    b.a2a_out.assign(n * static_cast<std::size_t>(p), -1.0);
    b.bc_data = r == 1 ? input_for(r, 4 * n, 4)
                       : std::vector<double>(4 * n, -1.0);
    machine.launch(r, nbc_grid_program(machine.core(r), prims, lanes, &b));
  }
  machine.run();
  for (int r = 0; r < p; ++r) {
    const auto& b = bufs[static_cast<std::size_t>(r)];
    for (int s = 0; s < p; ++s) {
      const auto contribution = input_for(s, n, 1);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(b.ag_out[static_cast<std::size_t>(s) * n + i],
                  contribution[i])
            << "allgather rank " << r;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      double want = 0.0;
      for (int s = 0; s < p; ++s) want += input_for(s, n, 2)[i];
      ASSERT_EQ(b.ar_out[i], want) << "allreduce rank " << r;
    }
    for (int s = 0; s < p; ++s) {
      const auto sent = input_for(s, n * static_cast<std::size_t>(p), 3);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(b.a2a_out[static_cast<std::size_t>(s) * n + i],
                  sent[static_cast<std::size_t>(r) * n + i])
            << "alltoall rank " << r;
      }
    }
    const auto root_data = input_for(1, 4 * n, 4);
    for (std::size_t i = 0; i < 4 * n; ++i) {
      ASSERT_EQ(b.bc_data[i], root_data[i]) << "broadcast rank " << r;
    }
  }
}

std::vector<std::tuple<Prims, int>> interleave_params() {
  std::vector<std::tuple<Prims, int>> params;
  for (const Prims prims : kAllPrims) {
    for (const int lanes : {1, 2, 4}) {
      // The blocking layer's synchronous handshake cannot poll-and-yield,
      // so multi-lane engines reject it (ProgressEngine ctor contract).
      if (prims == Prims::kBlocking && lanes > 1) continue;
      params.emplace_back(prims, lanes);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    PrimsByLanes, NbcInterleave, ::testing::ValuesIn(interleave_params()),
    [](const ::testing::TestParamInfo<std::tuple<Prims, int>>& param) {
      return std::string(prims_name(std::get<0>(param.param))) + "_lanes" +
             std::to_string(std::get<1>(param.param));
    });

// --- ibarrier ------------------------------------------------------------

sim::Task<> ibarrier_program(machine::CoreApi& api, Prims prims,
                             std::vector<SimTime>* after) {
  ProgressEngine engine(api, prims, prims == Prims::kBlocking ? 1 : 2);
  // Stagger arrival so the barrier has real work to do.
  co_await api.compute(static_cast<std::uint64_t>(api.rank()) * 5000);
  CollRequest req = engine.ibarrier();
  co_await req.wait();
  (*after)[static_cast<std::size_t>(api.rank())] = api.now();
}

TEST(NbcBarrier, NoCoreLeavesBeforeLastEnters) {
  for (const Prims prims : kAllPrims) {
    machine::SccMachine machine(mesh(3, 1, 2));  // 6 cores
    const int p = machine.num_cores();
    std::vector<SimTime> after(static_cast<std::size_t>(p), SimTime::zero());
    for (int r = 0; r < p; ++r) {
      machine.launch(r, ibarrier_program(machine.core(r), prims, &after));
    }
    machine.run();
    // The slowest core computes (p-1)*5000 cycles before entering; nobody
    // may leave the barrier before that point in simulated time.
    SimTime slowest_entry = SimTime::zero();
    const auto clock = machine.config().cost.hw.core_clock();
    slowest_entry = clock.cycles(static_cast<std::uint64_t>(p - 1) * 5000);
    for (int r = 0; r < p; ++r) {
      EXPECT_GE(after[static_cast<std::size_t>(r)], slowest_entry)
          << prims_name(prims) << " rank " << r;
    }
  }
}

// --- overlap win ---------------------------------------------------------

sim::Task<> serialized_pair_program(machine::CoreApi& api,
                                    const rcce::Layout* layout, Prims prims,
                                    std::span<double> a, std::span<double> b,
                                    int root_a, int root_b) {
  Stack stack(api, *layout, prims);
  co_await broadcast(stack, a, root_a, SplitPolicy::kStandard);
  co_await broadcast(stack, b, root_b, SplitPolicy::kStandard);
}

sim::Task<> overlapped_pair_program(machine::CoreApi& api, Prims prims,
                                    std::span<double> a, std::span<double> b,
                                    int root_a, int root_b) {
  ProgressEngine engine(api, prims, 2);
  CollRequest ra = engine.ibcast(a, root_a, SplitPolicy::kStandard);
  CollRequest rb = engine.ibcast(b, root_b, SplitPolicy::kStandard);
  co_await ra.wait();
  co_await rb.wait();
}

TEST(NbcOverlap, TwoCollectivesBeatSerializedBlocking) {
  // Two binomial broadcasts from opposite roots: each core is idle during
  // different rounds of each tree (leaves wait out the early rounds), so
  // overlapping the two schedules on two lanes fills real dead time.
  // Serialized back-to-back calls pay both trees' waits in full; the
  // two-lane engine must finish strictly sooner with identical results.
  const std::size_t n = 256;
  for (const Prims prims : {Prims::kIrcce, Prims::kLightweight}) {
    machine::SccMachine serial_machine(mesh(2, 2));
    const int p = serial_machine.num_cores();
    const rcce::Layout layout(p);
    const int root_a = 0;
    const int root_b = p - 1;
    const auto data_a = input_for(root_a, n, 1);
    const auto data_b = input_for(root_b, n, 2);
    std::vector<CoreBufs> sbufs(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      auto& b = sbufs[static_cast<std::size_t>(r)];
      b.in = r == root_a ? data_a : std::vector<double>(n, -1.0);
      b.out = r == root_b ? data_b : std::vector<double>(n, -1.0);
      serial_machine.launch(
          r, serialized_pair_program(serial_machine.core(r), &layout, prims,
                                     b.in, b.out, root_a, root_b));
    }
    serial_machine.run();

    machine::SccMachine nbc_machine(mesh(2, 2, 2));
    std::vector<CoreBufs> nbufs(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      auto& b = nbufs[static_cast<std::size_t>(r)];
      b.in = r == root_a ? data_a : std::vector<double>(n, -1.0);
      b.out = r == root_b ? data_b : std::vector<double>(n, -1.0);
      nbc_machine.launch(
          r, overlapped_pair_program(nbc_machine.core(r), prims, b.in, b.out,
                                     root_a, root_b));
    }
    nbc_machine.run();
    // Results identical...
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(nbufs[static_cast<std::size_t>(r)].in[i], data_a[i])
            << prims_name(prims) << " bcast A rank " << r;
        ASSERT_EQ(nbufs[static_cast<std::size_t>(r)].out[i], data_b[i])
            << prims_name(prims) << " bcast B rank " << r;
        ASSERT_EQ(sbufs[static_cast<std::size_t>(r)].in[i], data_a[i]);
        ASSERT_EQ(sbufs[static_cast<std::size_t>(r)].out[i], data_b[i]);
      }
    }
    // ...and the overlapped makespan strictly lower.
    EXPECT_LT(nbc_machine.now(), serial_machine.now())
        << prims_name(prims);
  }
}

}  // namespace
}  // namespace scc::coll
