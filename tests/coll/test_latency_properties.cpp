// Timing-shape properties of the optimizations (paper Section IV/V),
// verified on a small mesh so each check runs in milliseconds:
//  - relaxed synchronization is never slower than blocking,
//  - lightweight primitives are never slower than iRCCE,
//  - balanced splitting wins whenever n mod p != 0 and ties otherwise,
//  - the period-4 cache-line spikes exist for the RCCE-family stacks,
//  - the reduction sawtooth rises within a multiple-of-p segment.
#include <gtest/gtest.h>

#include <vector>

#include "harness/runner.hpp"

namespace scc::harness {
namespace {

machine::SccConfig mesh8() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;
  return config;
}

double latency_us(Collective coll, PaperVariant variant, std::size_t n) {
  RunSpec spec;
  spec.collective = coll;
  spec.variant = variant;
  spec.elements = n;
  spec.repetitions = 2;
  spec.warmup = 1;
  spec.verify = false;
  spec.config = mesh8();
  return run_collective(spec).mean_latency.us();
}

class NonBlockingNeverSlower : public ::testing::TestWithParam<Collective> {};

// Broadcast only benefits on its long-vector (scatter+allgather) path;
// the short binomial path has no exchanges to relax, so sizes below the
// 128-element switch are excluded for it.
std::vector<std::size_t> sizes_for(Collective coll) {
  if (coll == Collective::kBroadcast) return {160, 200};
  // Reduce's linear gather phase is one-directional (no exchange to
  // overlap), so its non-blocking gain needs enough ReduceScatter rounds
  // to show; use larger sizes there.
  if (coll == Collective::kReduce) return {100, 160};
  return {64, 100};
}

TEST_P(NonBlockingNeverSlower, IrcceBeatsBlocking) {
  const Collective coll = GetParam();
  for (const std::size_t n : sizes_for(coll)) {
    EXPECT_LT(latency_us(coll, PaperVariant::kIrcce, n),
              latency_us(coll, PaperVariant::kBlocking, n))
        << collective_name(coll) << " n=" << n;
  }
}

TEST_P(NonBlockingNeverSlower, LightweightBeatsIrcce) {
  const Collective coll = GetParam();
  for (const std::size_t n : sizes_for(coll)) {
    EXPECT_LT(latency_us(coll, PaperVariant::kLightweight, n),
              latency_us(coll, PaperVariant::kIrcce, n))
        << collective_name(coll) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCollectives, NonBlockingNeverSlower,
    ::testing::Values(Collective::kAllgather, Collective::kAlltoall,
                      Collective::kReduceScatter, Collective::kBroadcast,
                      Collective::kReduce, Collective::kAllreduce),
    [](const auto& param_info) {
      return std::string(collective_name(param_info.param));
    });

class BalancedWins : public ::testing::TestWithParam<Collective> {};

TEST_P(BalancedWins, AtWorstCaseRemainder) {
  const Collective coll = GetParam();
  // p=8: remainder 7 is the worst case for the standard split (159 for
  // broadcast, which needs its long-vector path; 95 elsewhere).
  const std::size_t n = coll == Collective::kBroadcast ? 159 : 95;
  EXPECT_LT(latency_us(coll, PaperVariant::kLwBalanced, n),
            latency_us(coll, PaperVariant::kLightweight, n));
}

TEST_P(BalancedWins, TiesWhenDivisible) {
  const Collective coll = GetParam();
  const std::size_t n = coll == Collective::kBroadcast ? 160 : 96;
  const double balanced = latency_us(coll, PaperVariant::kLwBalanced, n);
  const double standard = latency_us(coll, PaperVariant::kLightweight, n);
  EXPECT_NEAR(balanced, standard, standard * 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    SplittingCollectives, BalancedWins,
    ::testing::Values(Collective::kReduceScatter, Collective::kBroadcast,
                      Collective::kReduce, Collective::kAllreduce),
    [](const auto& param_info) {
      return std::string(collective_name(param_info.param));
    });

TEST(LatencyShape, CacheLineSpikesPeriodFour) {
  // 96 doubles divide into 8 blocks of 12 (= 3 full lines); 97 doubles
  // leave a partial line in some block -> extra transfer call.
  const double aligned = latency_us(Collective::kAllgather,
                                    PaperVariant::kLightweight, 96);
  const double spiked = latency_us(Collective::kAllgather,
                                   PaperVariant::kLightweight, 97);
  EXPECT_GT(spiked, aligned);
}

TEST(LatencyShape, RckmpiHasNoCacheLineSpikes) {
  // The packetized channel always moves whole lines: no extra-call spike.
  const double aligned = latency_us(Collective::kAllgather,
                                    PaperVariant::kRckmpi, 96);
  const double next = latency_us(Collective::kAllgather,
                                 PaperVariant::kRckmpi, 97);
  // Latency grows by at most one extra line per transfer, a tiny fraction.
  EXPECT_LT(next, aligned * 1.03);
}

TEST(LatencyShape, ReductionSawtoothRisesWithRemainder) {
  // Within a segment [k*p, (k+1)*p) the standard-split latency rises as
  // the first block absorbs a growing remainder (paper Fig. 9e/f).
  const double at_96 = latency_us(Collective::kAllreduce,
                                  PaperVariant::kLightweight, 96);
  const double at_100 = latency_us(Collective::kAllreduce,
                                   PaperVariant::kLightweight, 100);
  const double at_103 = latency_us(Collective::kAllreduce,
                                   PaperVariant::kLightweight, 103);
  EXPECT_GT(at_100, at_96);
  EXPECT_GT(at_103, at_100);
}

TEST(LatencyShape, BalancedFlattensTheSawtooth) {
  // Paper Fig. 9f: between 528 (= 11*48, perfectly even) and 552 elements
  // the standard split's first block balloons 11 -> 35 elements while the
  // balanced split's largest block only grows 11 -> 12; the balanced
  // latency must stay "qualitatively on the same level" (Section V-A).
  // Run on the full 48-core machine where the effect is first-order.
  const auto full = [](PaperVariant v, std::size_t n) {
    RunSpec spec;
    spec.collective = Collective::kAllreduce;
    spec.variant = v;
    spec.elements = n;
    spec.repetitions = 2;
    spec.warmup = 1;
    spec.verify = false;
    return run_collective(spec).mean_latency.us();
  };
  const double spread_standard =
      full(PaperVariant::kLightweight, 552) - full(PaperVariant::kLightweight, 528);
  const double spread_balanced =
      full(PaperVariant::kLwBalanced, 552) - full(PaperVariant::kLwBalanced, 528);
  EXPECT_LT(spread_balanced, spread_standard * 0.5);
}

TEST(LatencyShape, MpbAllreduceCompetitiveWithBalanced) {
  // With the arbiter-bug workaround active the MPB routine is only
  // marginally different from the lightweight+balanced stack (Section
  // IV-D measured ~10%); "competitive" here = within 30% either way.
  // On the small 8-core test mesh the word-granular direct-MPB accesses
  // weigh relatively more than at full scale, so the band is wider here;
  // the 48-core behaviour is pinned by test_paper_shape.
  const double balanced =
      latency_us(Collective::kAllreduce, PaperVariant::kLwBalanced, 96);
  const double mpb = latency_us(Collective::kAllreduce, PaperVariant::kMpb, 96);
  EXPECT_LT(mpb, balanced * 1.45);
  EXPECT_GT(mpb, balanced * 0.5);
}

TEST(LatencyShape, MpbBugAblationWidensTheGap) {
  // Without the workaround the direct-MPB data path gains more than the
  // copy-based stack does.
  machine::SccConfig bug_on = mesh8();
  machine::SccConfig bug_off = mesh8();
  bug_off.cost.hw.mpb_bug_workaround = false;

  const auto run = [](Collective c, PaperVariant v, std::size_t n,
                      const machine::SccConfig& config) {
    RunSpec spec;
    spec.collective = c;
    spec.variant = v;
    spec.elements = n;
    spec.repetitions = 2;
    spec.warmup = 1;
    spec.verify = false;
    spec.config = config;
    return run_collective(spec).mean_latency.us();
  };
  const double speedup_bug_on =
      run(Collective::kAllreduce, PaperVariant::kLwBalanced, 96, bug_on) /
      run(Collective::kAllreduce, PaperVariant::kMpb, 96, bug_on);
  const double speedup_bug_off =
      run(Collective::kAllreduce, PaperVariant::kLwBalanced, 96, bug_off) /
      run(Collective::kAllreduce, PaperVariant::kMpb, 96, bug_off);
  EXPECT_GT(speedup_bug_off, speedup_bug_on);
}

TEST(LatencyShape, DeterministicAcrossRuns) {
  const double a = latency_us(Collective::kAllreduce,
                              PaperVariant::kBlocking, 100);
  const double b = latency_us(Collective::kAllreduce,
                              PaperVariant::kBlocking, 100);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace scc::harness
