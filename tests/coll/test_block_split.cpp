#include "coll/block_split.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace scc::coll {
namespace {

void expect_partition(const std::vector<Block>& blocks, std::size_t n) {
  std::size_t offset = 0;
  for (const Block& b : blocks) {
    EXPECT_EQ(b.offset, offset);
    offset += b.count;
  }
  EXPECT_EQ(offset, n);
}

TEST(BlockSplit, EvenDivisionIdenticalForBothPolicies) {
  const auto standard = split_blocks(528, 48, SplitPolicy::kStandard);
  const auto balanced = split_blocks(528, 48, SplitPolicy::kBalanced);
  for (int b = 0; b < 48; ++b) {
    EXPECT_EQ(standard[static_cast<std::size_t>(b)].count, 11u);
    EXPECT_EQ(balanced[static_cast<std::size_t>(b)].count, 11u);
  }
}

TEST(BlockSplit, PaperFig6MiddleCase552) {
  // 552 = 48*11 + 24: standard glues 24 extra elements onto block 0.
  const auto standard = split_blocks(552, 48, SplitPolicy::kStandard);
  EXPECT_EQ(standard[0].count, 35u);
  EXPECT_EQ(standard[1].count, 11u);
  EXPECT_NEAR(imbalance_ratio(standard), 35.0 / 11.0, 1e-12);  // ~3.2:1

  const auto balanced = split_blocks(552, 48, SplitPolicy::kBalanced);
  EXPECT_EQ(balanced[0].count, 12u);
  EXPECT_EQ(balanced[23].count, 12u);
  EXPECT_EQ(balanced[24].count, 11u);
  EXPECT_NEAR(imbalance_ratio(balanced), 12.0 / 11.0, 1e-12);  // ~1.1:1
}

TEST(BlockSplit, PaperFig6WorstCase575) {
  // 575 = 48*11 + 47: worst case, block 0 is 58 elements (~5.3:1).
  const auto standard = split_blocks(575, 48, SplitPolicy::kStandard);
  EXPECT_EQ(standard[0].count, 58u);
  EXPECT_NEAR(imbalance_ratio(standard), 58.0 / 11.0, 1e-12);
  const auto balanced = split_blocks(575, 48, SplitPolicy::kBalanced);
  EXPECT_NEAR(imbalance_ratio(balanced), 12.0 / 11.0, 1e-12);
}

TEST(BlockSplit, SingleCoreGetsEverything) {
  const auto blocks = split_blocks(100, 1, SplitPolicy::kStandard);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].count, 100u);
}

TEST(BlockSplit, FewerElementsThanCores) {
  const auto standard = split_blocks(5, 8, SplitPolicy::kStandard);
  EXPECT_EQ(standard[0].count, 5u);  // all in block 0
  for (int b = 1; b < 8; ++b)
    EXPECT_EQ(standard[static_cast<std::size_t>(b)].count, 0u);
  const auto balanced = split_blocks(5, 8, SplitPolicy::kBalanced);
  for (int b = 0; b < 5; ++b)
    EXPECT_EQ(balanced[static_cast<std::size_t>(b)].count, 1u);
  for (int b = 5; b < 8; ++b)
    EXPECT_EQ(balanced[static_cast<std::size_t>(b)].count, 0u);
}

TEST(BlockSplit, ZeroElements) {
  const auto blocks = split_blocks(0, 4, SplitPolicy::kBalanced);
  expect_partition(blocks, 0);
}

struct SplitCase {
  std::size_t n;
  int p;
};

class SplitProperty : public ::testing::TestWithParam<SplitCase> {};

TEST_P(SplitProperty, PartitionInvariants) {
  const auto [n, p] = GetParam();
  for (const SplitPolicy policy :
       {SplitPolicy::kStandard, SplitPolicy::kBalanced}) {
    const auto blocks = split_blocks(n, p, policy);
    ASSERT_EQ(blocks.size(), static_cast<std::size_t>(p));
    expect_partition(blocks, n);
  }
}

TEST_P(SplitProperty, BalancedDiffersByAtMostOne) {
  const auto [n, p] = GetParam();
  const auto blocks = split_blocks(n, p, SplitPolicy::kBalanced);
  std::size_t max_c = 0, min_c = n + 1;
  for (const Block& b : blocks) {
    max_c = std::max(max_c, b.count);
    min_c = std::min(min_c, b.count);
  }
  EXPECT_LE(max_c - min_c, 1u);
}

TEST_P(SplitProperty, StandardRemainderOnBlockZero) {
  const auto [n, p] = GetParam();
  const auto blocks = split_blocks(n, p, SplitPolicy::kStandard);
  const std::size_t general = n / static_cast<std::size_t>(p);
  EXPECT_EQ(blocks[0].count, general + n % static_cast<std::size_t>(p));
  for (std::size_t b = 1; b < blocks.size(); ++b)
    EXPECT_EQ(blocks[b].count, general);
}

TEST_P(SplitProperty, BalancedNeverWorseThanStandard) {
  const auto [n, p] = GetParam();
  const auto standard = split_blocks(n, p, SplitPolicy::kStandard);
  const auto balanced = split_blocks(n, p, SplitPolicy::kBalanced);
  EXPECT_LE(imbalance_ratio(balanced), imbalance_ratio(standard) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitProperty,
    ::testing::Values(SplitCase{0, 1}, SplitCase{1, 1}, SplitCase{1, 48},
                      SplitCase{47, 48}, SplitCase{48, 48}, SplitCase{49, 48},
                      SplitCase{500, 48}, SplitCase{528, 48},
                      SplitCase{552, 48}, SplitCase{575, 48},
                      SplitCase{576, 48}, SplitCase{700, 48},
                      SplitCase{1000, 7}, SplitCase{1024, 3},
                      SplitCase{13, 5}),
    [](const auto& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_p" +
             std::to_string(param_info.param.p);
    });

// Exhaustive check of the paper's §IV-C claim on the full small range: for
// every n <= 64 and p <= 48, the balanced policy's blocks tile [0, n) in
// order, sum to n, and differ by at most one element (which is what bounds
// the imbalance at (m+1)/m, e.g. <= 1.1x for the paper's block sizes).
TEST(BlockSplit, ExhaustiveSmallRangeBalancedInvariants) {
  for (std::size_t n = 0; n <= 64; ++n) {
    for (int p = 1; p <= 48; ++p) {
      const auto blocks = split_blocks(n, p, SplitPolicy::kBalanced);
      ASSERT_EQ(blocks.size(), static_cast<std::size_t>(p));
      std::size_t offset = 0, sum = 0, max_c = 0, min_c = n + 1;
      for (const Block& b : blocks) {
        ASSERT_EQ(b.offset, offset) << "n=" << n << " p=" << p;
        offset += b.count;
        sum += b.count;
        max_c = std::max(max_c, b.count);
        min_c = std::min(min_c, b.count);
      }
      ASSERT_EQ(sum, n) << "n=" << n << " p=" << p;
      ASSERT_LE(max_c - min_c, 1u) << "n=" << n << " p=" << p;
    }
  }
}

TEST(ImbalanceRatio, EmptyAndUniformAreOne) {
  EXPECT_DOUBLE_EQ(imbalance_ratio({}), 1.0);
  EXPECT_DOUBLE_EQ(imbalance_ratio({{0, 5}, {5, 5}}), 1.0);
}

TEST(ImbalanceRatio, IgnoresEmptyBlocks) {
  EXPECT_DOUBLE_EQ(imbalance_ratio({{0, 6}, {6, 0}, {6, 3}}), 2.0);
}

}  // namespace
}  // namespace scc::coll
