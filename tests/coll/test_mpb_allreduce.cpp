#include "coll/mpb_allreduce.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "machine/scc_machine.hpp"

namespace scc::coll {
namespace {

machine::SccConfig mesh(int tx, int ty) {
  machine::SccConfig config;
  config.tiles_x = tx;
  config.tiles_y = ty;
  return config;
}

sim::Task<> run_once(machine::CoreApi& api, const rcce::Layout* layout,
                     const std::vector<double>* in, std::vector<double>* out,
                     SplitPolicy policy) {
  MpbAllreduce allreduce(api, *layout);
  co_await allreduce.run(*in, *out, rcce::ReduceOp::kSum, policy);
}

sim::Task<> run_many(machine::CoreApi& api, const rcce::Layout* layout,
                     const std::vector<double>* in, std::vector<double>* out,
                     int times) {
  // ONE persistent object across invocations: the sequence-numbered
  // double-buffer handshake requires both sides to keep counting.
  MpbAllreduce allreduce(api, *layout);
  for (int i = 0; i < times; ++i) {
    co_await allreduce.run(*in, *out, rcce::ReduceOp::kSum,
                           SplitPolicy::kBalanced);
  }
}

class MpbAllreduceSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MpbAllreduceSize, SumsCorrectly) {
  machine::SccMachine machine(mesh(2, 2));
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  const std::size_t n = GetParam();
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < p; ++r) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = static_cast<double>(static_cast<std::size_t>(r + 1) * 100 + i);
    in.push_back(std::move(v));
    out.emplace_back(n, 0.0);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, run_once(machine.core(r), &layout,
                               &in[static_cast<std::size_t>(r)],
                               &out[static_cast<std::size_t>(r)],
                               SplitPolicy::kBalanced));
  machine.run();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      double want = 0.0;
      for (int src = 0; src < p; ++src)
        want += in[static_cast<std::size_t>(src)][i];
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][i], want)
          << "core " << r << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpbAllreduceSize,
                         ::testing::Values(8, 9, 48, 52, 100, 552),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(MpbAllreduce, StandardSplitAlsoCorrect) {
  machine::SccMachine machine(mesh(2, 2));
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  const std::size_t n = 29;  // remainder 5 on 8 cores
  std::vector<std::vector<double>> in(static_cast<std::size_t>(p),
                                      std::vector<double>(n, 1.0)),
      out(static_cast<std::size_t>(p), std::vector<double>(n, 0.0));
  for (int r = 0; r < p; ++r)
    machine.launch(r, run_once(machine.core(r), &layout,
                               &in[static_cast<std::size_t>(r)],
                               &out[static_cast<std::size_t>(r)],
                               SplitPolicy::kStandard));
  machine.run();
  for (int r = 0; r < p; ++r)
    for (const double v : out[static_cast<std::size_t>(r)])
      EXPECT_DOUBLE_EQ(v, static_cast<double>(p));
}

TEST(MpbAllreduce, BackToBackInvocationsStayCorrect) {
  // Exercises the sequence-flag discipline across many reuses of the two
  // MPB buffers, including the 8-bit counter wrap (>255 events per flag
  // needs > 127 invocations of a 2-core ring; with 8 cores, 40 runs give
  // 2*40*(p-1) > 255 events).
  machine::SccMachine machine(mesh(2, 2));
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  const std::size_t n = 24;
  std::vector<std::vector<double>> in(static_cast<std::size_t>(p),
                                      std::vector<double>(n, 2.0)),
      out(static_cast<std::size_t>(p), std::vector<double>(n, 0.0));
  for (int r = 0; r < p; ++r)
    machine.launch(r, run_many(machine.core(r), &layout,
                               &in[static_cast<std::size_t>(r)],
                               &out[static_cast<std::size_t>(r)], 40));
  machine.run();
  for (int r = 0; r < p; ++r)
    for (const double v : out[static_cast<std::size_t>(r)])
      EXPECT_DOUBLE_EQ(v, 2.0 * p);
}

TEST(MpbAllreduce, TwoCoreRing) {
  machine::SccMachine machine(mesh(1, 1));  // 2 cores, one tile
  const rcce::Layout layout(2);
  std::vector<std::vector<double>> in{{1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}};
  std::vector<std::vector<double>> out{{0, 0, 0}, {0, 0, 0}};
  for (int r = 0; r < 2; ++r)
    machine.launch(r, run_once(machine.core(r), &layout,
                               &in[static_cast<std::size_t>(r)],
                               &out[static_cast<std::size_t>(r)],
                               SplitPolicy::kBalanced));
  machine.run();
  for (int r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][0], 11.0);
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][1], 22.0);
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][2], 33.0);
  }
}

sim::Task<> run_timed(machine::CoreApi& api, const rcce::Layout* layout,
                      const std::vector<double>* in, std::vector<double>* out,
                      SimTime* elapsed) {
  MpbAllreduce allreduce(api, *layout);
  const SimTime start = api.now();
  co_await allreduce.run(*in, *out, rcce::ReduceOp::kSum,
                         SplitPolicy::kBalanced);
  *elapsed = api.now() - start;
}

TEST(MpbAllreduce, FasterWithoutArbiterBug) {
  // Section IV-D: "with the hardware bug resolved, we expect significantly
  // higher speedups" -- at minimum the routine itself must get faster.
  SimTime with_bug, without_bug;
  for (const bool bug : {true, false}) {
    machine::SccConfig config = mesh(2, 2);
    config.cost.hw.mpb_bug_workaround = bug;
    machine::SccMachine machine(config);
    const int p = machine.num_cores();
    const rcce::Layout layout(p);
    std::vector<std::vector<double>> in(static_cast<std::size_t>(p),
                                        std::vector<double>(96, 1.0)),
        out(static_cast<std::size_t>(p), std::vector<double>(96, 0.0));
    std::vector<SimTime> elapsed(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r)
      machine.launch(r, run_timed(machine.core(r), &layout,
                                  &in[static_cast<std::size_t>(r)],
                                  &out[static_cast<std::size_t>(r)],
                                  &elapsed[static_cast<std::size_t>(r)]));
    machine.run();
    (bug ? with_bug : without_bug) = elapsed[0];
  }
  EXPECT_LT(without_bug, with_bug);
}

}  // namespace
}  // namespace scc::coll
