// Scatter / Gather / Allgatherv / Barrier correctness across primitive
// layers, roots and sizes.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "coll/collectives.hpp"
#include "common/aligned.hpp"
#include "machine/scc_machine.hpp"

namespace scc::coll {
namespace {

machine::SccConfig mesh8() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;
  return config;
}

struct Buffers {
  aligned_vector<double> send;
  aligned_vector<double> recv;
  aligned_vector<std::size_t> counts;
};

sim::Task<> scatter_prog(machine::CoreApi& api, const rcce::Layout* layout,
                         Prims prims, Buffers* b, int root) {
  Stack stack(api, *layout, prims);
  co_await scatter(stack, b->send, b->recv, root);
}

struct ScatterCase {
  Prims prims;
  int root;
  std::size_t n;
};

class ScatterGather : public ::testing::TestWithParam<ScatterCase> {};

TEST_P(ScatterGather, ScatterDistributesBlocks) {
  const auto [prims, root, n] = GetParam();
  machine::SccMachine machine(mesh8());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  std::vector<Buffers> buffers(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& b = buffers[static_cast<std::size_t>(r)];
    b.recv.assign(n, -1.0);
    if (r == root) {
      b.send.resize(n * static_cast<std::size_t>(p));
      std::iota(b.send.begin(), b.send.end(), 0.0);
    }
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, scatter_prog(machine.core(r), &layout, prims,
                                   &buffers[static_cast<std::size_t>(r)],
                                   root));
  machine.run();
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(buffers[static_cast<std::size_t>(r)].recv[i],
                       static_cast<double>(static_cast<std::size_t>(r) * n + i))
          << "core " << r << " element " << i;
}

sim::Task<> gather_prog(machine::CoreApi& api, const rcce::Layout* layout,
                        Prims prims, Buffers* b, int root) {
  Stack stack(api, *layout, prims);
  co_await gather(stack, b->send, b->recv, root);
}

TEST_P(ScatterGather, GatherCollectsBlocks) {
  const auto [prims, root, n] = GetParam();
  machine::SccMachine machine(mesh8());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  std::vector<Buffers> buffers(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& b = buffers[static_cast<std::size_t>(r)];
    b.send.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      b.send[i] = static_cast<double>(static_cast<std::size_t>(r) * 1000 + i);
    if (r == root) b.recv.assign(n * static_cast<std::size_t>(p), -1.0);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, gather_prog(machine.core(r), &layout, prims,
                                  &buffers[static_cast<std::size_t>(r)],
                                  root));
  machine.run();
  for (int src = 0; src < p; ++src)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(
          buffers[static_cast<std::size_t>(root)]
              .recv[static_cast<std::size_t>(src) * n + i],
          static_cast<double>(static_cast<std::size_t>(src) * 1000 + i));
}

TEST_P(ScatterGather, GatherInvertsScatter) {
  const auto [prims, root, n] = GetParam();
  machine::SccMachine machine(mesh8());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  std::vector<Buffers> buffers(static_cast<std::size_t>(p));
  aligned_vector<double> original(n * static_cast<std::size_t>(p));
  std::iota(original.begin(), original.end(), 100.0);
  struct RoundTrip {
    static sim::Task<> run(machine::CoreApi& api, const rcce::Layout* layout,
                           Prims prims, Buffers* b, int root) {
      Stack stack(api, *layout, prims);
      co_await scatter(stack, b->send, b->recv, root);
      // recv (my block) back into send position at the root.
      co_await gather(stack,
                      std::span<const double>(b->recv.data(), b->recv.size()),
                      b->send, root);
    }
  };
  for (int r = 0; r < p; ++r) {
    auto& b = buffers[static_cast<std::size_t>(r)];
    b.recv.assign(n, 0.0);
    b.send.resize(r == root ? n * static_cast<std::size_t>(p) : 0);
    if (r == root) b.send = original;
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, RoundTrip::run(machine.core(r), &layout, prims,
                                     &buffers[static_cast<std::size_t>(r)],
                                     root));
  machine.run();
  EXPECT_EQ(buffers[static_cast<std::size_t>(root)].send, original);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScatterGather,
    ::testing::Values(ScatterCase{Prims::kBlocking, 0, 12},
                      ScatterCase{Prims::kBlocking, 5, 7},
                      ScatterCase{Prims::kIrcce, 3, 12},
                      ScatterCase{Prims::kLightweight, 0, 12},
                      ScatterCase{Prims::kLightweight, 7, 33}),
    [](const auto& param_info) {
      return std::string(prims_name(param_info.param.prims)) + "_root" +
             std::to_string(param_info.param.root) + "_n" +
             std::to_string(param_info.param.n);
    });

sim::Task<> allgatherv_prog(machine::CoreApi& api, const rcce::Layout* layout,
                            Buffers* b) {
  Stack stack(api, *layout, Prims::kLightweight);
  co_await allgatherv(
      stack, std::span<const double>(b->send.data(), b->send.size()),
      std::span<const std::size_t>(b->counts.data(), b->counts.size()),
      b->recv);
}

TEST(Allgatherv, IrregularContributions) {
  machine::SccMachine machine(mesh8());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  // Counts 1, 2, ..., including a zero contributor.
  std::vector<std::size_t> counts(static_cast<std::size_t>(p));
  std::size_t total = 0;
  for (int i = 0; i < p; ++i) {
    counts[static_cast<std::size_t>(i)] =
        static_cast<std::size_t>(i == 3 ? 0 : i + 1);
    total += counts[static_cast<std::size_t>(i)];
  }
  std::vector<Buffers> buffers(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& b = buffers[static_cast<std::size_t>(r)];
    b.counts.assign(counts.begin(), counts.end());
    b.send.resize(counts[static_cast<std::size_t>(r)]);
    for (std::size_t i = 0; i < b.send.size(); ++i)
      b.send[i] = static_cast<double>(r * 100 + static_cast<int>(i));
    b.recv.assign(total, -1.0);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, allgatherv_prog(machine.core(r), &layout,
                                      &buffers[static_cast<std::size_t>(r)]));
  machine.run();
  for (int r = 0; r < p; ++r) {
    std::size_t offset = 0;
    for (int src = 0; src < p; ++src) {
      for (std::size_t i = 0; i < counts[static_cast<std::size_t>(src)]; ++i) {
        EXPECT_DOUBLE_EQ(buffers[static_cast<std::size_t>(r)].recv[offset + i],
                         static_cast<double>(src * 100 + static_cast<int>(i)));
      }
      offset += counts[static_cast<std::size_t>(src)];
    }
  }
}

sim::Task<> barrier_prog(machine::CoreApi& api, const rcce::Layout* layout,
                         std::uint64_t pre, SimTime* after) {
  Stack stack(api, *layout, Prims::kLightweight);
  co_await api.compute(pre);
  co_await barrier(stack);
  *after = api.now();
}

TEST(CollBarrier, NoCoreEscapesEarly) {
  machine::SccMachine machine(mesh8());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  std::vector<SimTime> after(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    machine.launch(r, barrier_prog(machine.core(r), &layout,
                                   static_cast<std::uint64_t>(r) * 40000,
                                   &after[static_cast<std::size_t>(r)]));
  machine.run();
  const SimTime slowest =
      Clock{533e6}.cycles(static_cast<std::uint64_t>(p - 1) * 40000);
  for (int r = 0; r < p; ++r)
    EXPECT_GE(after[static_cast<std::size_t>(r)], slowest);
}

}  // namespace
}  // namespace scc::coll
