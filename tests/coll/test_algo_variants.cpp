// Exhaustive small-grid differential coverage of the algorithm variants
// (coll/algos.hpp): every implemented algorithm of every collective that
// has an algorithm dimension -- plus the auto Selector -- must match the
// serial reference for all (n <= 64, p in {2,3,4,7,8,16,48}, stack,
// split-policy) cells. Odd core counts come from cores_per_tile = 1
// meshes, which the SCC hardware never had but the algorithms must still
// be correct on (the fold/unfold steps only trigger for non-power-of-two
// p). On top of the fixed-schedule grid, conformance cells re-check each
// (collective, algorithm) pair element-wise across all three stacks under
// 16 perturbation seeds, and a dedicated cell pins down the multi-chunk
// bidirectional-exchange regression (rcce::complete_exchange). Runs in its
// own ctest tier: `ctest -L algos` (preset "algos").
#include "coll/algos.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "harness/conformance.hpp"
#include "harness/runner.hpp"

namespace scc::coll {
namespace {

using harness::Collective;
using harness::PaperVariant;
using harness::RunResult;
using harness::RunSpec;

/// The four collectives with an algorithm dimension.
constexpr Collective kAlgoCollectives[] = {
    Collective::kAllgather, Collective::kAlltoall, Collective::kReduceScatter,
    Collective::kAllreduce};

constexpr PaperVariant kStacks[] = {PaperVariant::kBlocking,
                                    PaperVariant::kIrcce,
                                    PaperVariant::kLightweight};

struct Mesh {
  int tiles_x;
  int tiles_y;
  int cores_per_tile;
};

/// Mesh shapes for the grid's core counts. Odd p uses one core per tile;
/// the rest keep the SCC's two.
Mesh mesh_for(int p) {
  switch (p) {
    case 2: return {1, 1, 2};
    case 3: return {3, 1, 1};
    case 4: return {2, 1, 2};
    case 7: return {7, 1, 1};
    case 8: return {2, 2, 2};
    case 16: return {4, 2, 2};
    case 48: return {6, 4, 2};
    default: throw std::runtime_error("no mesh for p");
  }
}

machine::SccConfig config_for(int p) {
  const Mesh m = mesh_for(p);
  machine::SccConfig config;
  config.tiles_x = m.tiles_x;
  config.tiles_y = m.tiles_y;
  config.cores_per_tile = m.cores_per_tile;
  return config;
}

std::string sanitize(std::string name) {
  for (char& ch : name) {
    if (ch == '-') ch = '_';  // gtest parameter names must be identifiers
  }
  return name;
}

// --- fixed-schedule differential grid ------------------------------------

struct GridCase {
  Collective collective;
  Algo algo;
  PaperVariant variant;
  std::size_t n;
  int p;
  SplitPolicy split;
};

/// Whether the collective takes a split policy (the other two gather or
/// rotate fixed rank-major blocks; no split to vary).
bool algo_kind_splits(Collective c) {
  return c == Collective::kReduceScatter || c == Collective::kAllreduce;
}

std::string grid_case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  std::string name = std::string(collective_name(c.collective)) + "_" +
                     std::string(algo_name(c.algo)) + "_" +
                     std::string(variant_name(c.variant)) + "_n" +
                     std::to_string(c.n) + "_p" + std::to_string(c.p);
  if (algo_kind_splits(c.collective))
    name += c.split == SplitPolicy::kBalanced ? "_bal" : "_std";
  return sanitize(name);
}

class AlgoGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(AlgoGrid, MatchesSerialReference) {
  const GridCase& c = GetParam();
  RunSpec spec;
  spec.collective = c.collective;
  spec.variant = c.variant;
  spec.algo = c.algo;
  spec.elements = c.n;
  spec.repetitions = 1;
  spec.warmup = 0;
  spec.config = config_for(c.p);
  if (algo_kind_splits(c.collective)) spec.split_override = c.split;
  const RunResult result = harness::run_collective(spec);  // throws on error
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.mean_latency, SimTime::zero());
}

std::vector<GridCase> grid_cases() {
  std::vector<GridCase> cases;
  // Sizes <= 64 hitting: n < p (empty blocks for the splitters, the
  // zero-length exchange paths), remainder splits, and -- at p = 48 --
  // Bruck rounds whose aggregated payload spans several MPB chunks (the
  // interleaved-completion path of the non-blocking layers).
  const std::size_t sizes[] = {1, 5, 17, 64};
  const int cores[] = {2, 3, 4, 7, 8, 16, 48};
  for (const Collective coll : kAlgoCollectives) {
    const CollKind kind = *harness::algo_kind(coll);
    std::vector<Algo> algos = algos_for(kind);
    algos.push_back(Algo::kAuto);  // Selector path, end to end
    for (const Algo algo : algos) {
      for (const int p : cores) {
        for (const std::size_t n : sizes) {
          for (const PaperVariant v : kStacks) {
            if (algo_kind_splits(coll)) {
              cases.push_back({coll, algo, v, n, p, SplitPolicy::kStandard});
              cases.push_back({coll, algo, v, n, p, SplitPolicy::kBalanced});
            } else {
              cases.push_back({coll, algo, v, n, p, SplitPolicy::kStandard});
            }
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SmallGrid, AlgoGrid, ::testing::ValuesIn(grid_cases()),
                         grid_case_name);

// --- perturbed cross-stack conformance cells ------------------------------

struct ConfCase {
  Collective collective;
  Algo algo;
  int tiles_x;
  int tiles_y;
  int cores_per_tile;
  std::size_t n;
};

std::string conf_case_name(const ::testing::TestParamInfo<ConfCase>& info) {
  const ConfCase& c = info.param;
  return sanitize(std::string(collective_name(c.collective)) + "_" +
                  std::string(algo_name(c.algo)) + "_p" +
                  std::to_string(c.tiles_x * c.tiles_y * c.cores_per_tile) +
                  "_n" + std::to_string(c.n));
}

class AlgoConformance : public ::testing::TestWithParam<ConfCase> {};

TEST_P(AlgoConformance, IdenticalAcrossStacksAndSeeds) {
  const ConfCase& c = GetParam();
  harness::ConformanceSpec spec;
  spec.collective = c.collective;
  spec.algo = c.algo;
  spec.elements = c.n;
  spec.tiles_x = c.tiles_x;
  spec.tiles_y = c.tiles_y;
  spec.cores_per_tile = c.cores_per_tile;
  spec.perturb_seeds = 16;
  spec.jobs = 0;  // fan the stack x seed matrix out; report is jobs-invariant
  const harness::ConformanceReport report = harness::run_conformance(spec);
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_EQ(report.runs, 3 * (1 + 16));
}

std::vector<ConfCase> conformance_cases() {
  std::vector<ConfCase> cases;
  // Every non-paper algorithm plus the Selector, each on a power-of-two
  // mesh and on an odd-p fold/unfold mesh. (The paper algorithms' cells are
  // already the conformance suite's and soak driver's bread and butter.)
  for (const Collective coll : kAlgoCollectives) {
    const CollKind kind = *harness::algo_kind(coll);
    std::vector<Algo> algos(algos_for(kind).begin() + 1,
                            algos_for(kind).end());
    algos.push_back(Algo::kAuto);
    for (const Algo algo : algos) {
      cases.push_back({coll, algo, 2, 2, 2, 24});
      cases.push_back({coll, algo, 3, 1, 1, 10});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Cells, AlgoConformance,
                         ::testing::ValuesIn(conformance_cases()),
                         conf_case_name);

// The multi-chunk bidirectional-exchange regression: a Bruck round at
// p = 32 moves 16 blocks x 64 doubles = 8 KiB per direction, several MPB
// chunks, and the non-blocking layers' receive-before-restage completion
// used to deadlock on it (fixed by rcce::complete_exchange's interleaved
// progression). Perturbed, because the bug was an ordering bug.
TEST(AlgoConformance, MultiChunkBruckExchange) {
  harness::ConformanceSpec spec;
  spec.collective = Collective::kAllgather;
  spec.algo = Algo::kBruck;
  spec.elements = 64;
  spec.tiles_x = 4;
  spec.tiles_y = 4;
  spec.perturb_seeds = 4;
  spec.jobs = 0;
  const harness::ConformanceReport report = harness::run_conformance(spec);
  EXPECT_TRUE(report.passed()) << report.summary();
}

// --- Selector and metadata unit tests -------------------------------------

TEST(AlgoMeta, NamesRoundTrip) {
  for (const Algo a :
       {Algo::kAuto, Algo::kRing, Algo::kRecursiveHalving, Algo::kBruck,
        Algo::kRecursiveDoubling, Algo::kRingRS, Algo::kPairwise}) {
    const auto parsed = parse_algo(algo_name(a));
    ASSERT_TRUE(parsed.has_value()) << algo_name(a);
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(parse_algo("rng").has_value());
  EXPECT_FALSE(parse_algo("").has_value());
}

TEST(AlgoMeta, PaperAlgoHeadsEachList) {
  for (const CollKind kind :
       {CollKind::kAllgather, CollKind::kAlltoall, CollKind::kReduceScatter,
        CollKind::kAllreduce}) {
    const auto& algos = algos_for(kind);
    ASSERT_GE(algos.size(), 2u) << coll_kind_name(kind);
    EXPECT_EQ(paper_algo(kind), algos.front());
    for (const Algo a : algos) EXPECT_TRUE(algo_valid_for(kind, a));
    // kAuto is a request, not an implementation; it is resolved before
    // dispatch and never appears in a validity check.
    EXPECT_FALSE(algo_valid_for(kind, Algo::kAuto));
  }
  EXPECT_EQ(paper_algo(CollKind::kAllgather), Algo::kRing);
  EXPECT_EQ(paper_algo(CollKind::kAlltoall), Algo::kPairwise);
  EXPECT_EQ(paper_algo(CollKind::kReduceScatter), Algo::kRing);
  EXPECT_EQ(paper_algo(CollKind::kAllreduce), Algo::kRingRS);
  EXPECT_FALSE(algo_valid_for(CollKind::kReduceScatter, Algo::kBruck));
  EXPECT_FALSE(algo_valid_for(CollKind::kAllgather, Algo::kPairwise));
  EXPECT_FALSE(algo_valid_for(CollKind::kAlltoall, Algo::kRing));
}

TEST(AlgoMeta, HarnessKindMapping) {
  EXPECT_EQ(harness::algo_kind(Collective::kAllgather), CollKind::kAllgather);
  EXPECT_EQ(harness::algo_kind(Collective::kAlltoall), CollKind::kAlltoall);
  EXPECT_EQ(harness::algo_kind(Collective::kReduceScatter),
            CollKind::kReduceScatter);
  EXPECT_EQ(harness::algo_kind(Collective::kAllreduce), CollKind::kAllreduce);
  for (const Collective c :
       {Collective::kBroadcast, Collective::kReduce, Collective::kScatter,
        Collective::kGather, Collective::kAllgatherv}) {
    EXPECT_FALSE(harness::algo_kind(c).has_value());
  }
}

TEST(AlgoSelector, NeverReturnsAuto) {
  for (const CollKind kind :
       {CollKind::kAllgather, CollKind::kAlltoall, CollKind::kReduceScatter,
        CollKind::kAllreduce}) {
    for (const Prims prims : kAllPrims) {
      for (const std::size_t n : {std::size_t{1}, std::size_t{64},
                                  std::size_t{1000}, std::size_t{100000}}) {
        for (const int p : {2, 3, 8, 48}) {
          const Algo picked = select_algo(kind, n, p, prims);
          EXPECT_NE(picked, Algo::kAuto);
          EXPECT_TRUE(algo_valid_for(kind, picked));
        }
      }
    }
  }
}

// Pin the measured switch points (bench/tab_algo_select on the 48-core
// mesh; see DESIGN.md §12). A threshold recalibration must edit these in
// lockstep with the committed selection-table baseline.
TEST(AlgoSelector, MeasuredSwitchPoints) {
  const int p = 48;
  const Prims lw = Prims::kLightweight;
  const Prims blk = Prims::kBlocking;
  // Allgather: short vectors go log-round (Bruck for non-power-of-two p,
  // recursive doubling for power-of-two); long vectors ring.
  EXPECT_EQ(select_algo(CollKind::kAllgather, 8, p, lw), Algo::kBruck);
  EXPECT_EQ(select_algo(CollKind::kAllgather, 128, p, lw), Algo::kBruck);
  EXPECT_EQ(select_algo(CollKind::kAllgather, 129, p, lw), Algo::kRing);
  EXPECT_EQ(select_algo(CollKind::kAllgather, 8, 16, lw),
            Algo::kRecursiveDoubling);
  // Blocking serializes Bruck's shift cycles: only tiny vectors leave ring,
  // and then via recursive doubling.
  EXPECT_EQ(select_algo(CollKind::kAllgather, 8, p, blk),
            Algo::kRecursiveDoubling);
  EXPECT_EQ(select_algo(CollKind::kAllgather, 64, p, blk), Algo::kRing);
  // Two ranks: every algorithm degenerates to the same single exchange;
  // stay on the paper schedule.
  EXPECT_EQ(select_algo(CollKind::kAllgather, 8, 2, lw), Algo::kRing);
  // ReduceScatter: recursive halving wins through 2048 elements.
  EXPECT_EQ(select_algo(CollKind::kReduceScatter, 2048, p, lw),
            Algo::kRecursiveHalving);
  EXPECT_EQ(select_algo(CollKind::kReduceScatter, 2049, p, lw), Algo::kRing);
  EXPECT_EQ(select_algo(CollKind::kReduceScatter, 64, 2, lw), Algo::kRing);
  // Allreduce: recursive doubling up to 1024, ring RS+AG beyond.
  EXPECT_EQ(select_algo(CollKind::kAllreduce, 1024, p, lw),
            Algo::kRecursiveDoubling);
  EXPECT_EQ(select_algo(CollKind::kAllreduce, 1025, p, lw), Algo::kRingRS);
  EXPECT_EQ(select_algo(CollKind::kAllreduce, 64, 2, lw), Algo::kRingRS);
  // Alltoall: Bruck only pays off for short per-destination blocks on the
  // non-blocking layers (it moves log2(p)/2 times the volume).
  EXPECT_EQ(select_algo(CollKind::kAlltoall, 32, p, lw), Algo::kBruck);
  EXPECT_EQ(select_algo(CollKind::kAlltoall, 33, p, lw), Algo::kPairwise);
  EXPECT_EQ(select_algo(CollKind::kAlltoall, 8, p, blk), Algo::kPairwise);
}

// --- harness validation ----------------------------------------------------

RunSpec algo_spec(Collective c, PaperVariant v, Algo algo) {
  RunSpec spec;
  spec.collective = c;
  spec.variant = v;
  spec.algo = algo;
  spec.elements = 16;
  spec.repetitions = 1;
  spec.warmup = 0;
  spec.config = config_for(8);
  return spec;
}

TEST(AlgoHarness, RejectsVariantsWithoutStack) {
  // RCKMPI and the MPB-direct Allreduce do not go through coll::Stack; an
  // algorithm override cannot apply and must be refused loudly.
  EXPECT_THROW((void)harness::run_collective(algo_spec(
                   Collective::kAllgather, PaperVariant::kRckmpi,
                   Algo::kBruck)),
               std::runtime_error);
  EXPECT_THROW((void)harness::run_collective(algo_spec(
                   Collective::kAllreduce, PaperVariant::kMpb,
                   Algo::kRecursiveDoubling)),
               std::runtime_error);
}

TEST(AlgoHarness, RejectsCollectivesWithoutAlgorithms) {
  EXPECT_THROW((void)harness::run_collective(algo_spec(
                   Collective::kBroadcast, PaperVariant::kLightweight,
                   Algo::kAuto)),
               std::runtime_error);
}

TEST(AlgoHarness, RejectsMismatchedAlgorithm) {
  EXPECT_THROW((void)harness::run_collective(algo_spec(
                   Collective::kReduceScatter, PaperVariant::kLightweight,
                   Algo::kBruck)),
               std::runtime_error);
  EXPECT_THROW((void)harness::run_collective(algo_spec(
                   Collective::kAllgather, PaperVariant::kLightweight,
                   Algo::kPairwise)),
               std::runtime_error);
}

TEST(AlgoHarness, ExplicitPaperAlgorithmMatchesUnset) {
  // spec.algo = the paper algorithm must reproduce the Algo-less run
  // bit-for-bit (it dispatches into the identical schedule).
  RunSpec spec = algo_spec(Collective::kAllgather, PaperVariant::kLightweight,
                           Algo::kRing);
  spec.elements = 48;
  const RunResult with_algo = harness::run_collective(spec);
  spec.algo.reset();
  const RunResult without = harness::run_collective(spec);
  EXPECT_EQ(with_algo.mean_latency, without.mean_latency);
  EXPECT_EQ(with_algo.events, without.events);
  EXPECT_EQ(with_algo.lines_sent, without.lines_sent);
  EXPECT_EQ(with_algo.line_hops, without.line_hops);
}

}  // namespace
}  // namespace scc::coll
