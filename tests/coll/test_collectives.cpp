// Functional correctness of every collective under every library variant:
// the harness runs the operation on a simulated machine and verifies the
// results element-wise against a serial reference (integer-valued doubles,
// so reduction order cannot blur the comparison). A failure throws.
#include "coll/collectives.hpp"

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "machine/scc_machine.hpp"

namespace scc::coll {
namespace {

using harness::Collective;
using harness::PaperVariant;
using harness::RunResult;
using harness::RunSpec;

machine::SccConfig mesh(int tx, int ty) {
  machine::SccConfig config;
  config.tiles_x = tx;
  config.tiles_y = ty;
  return config;
}

struct Case {
  Collective collective;
  PaperVariant variant;
  std::size_t n;
  int tiles_x;
  int tiles_y;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = std::string(collective_name(c.collective)) + "_" +
                     std::string(variant_name(c.variant)) + "_n" +
                     std::to_string(c.n) + "_m" + std::to_string(c.tiles_x) +
                     "x" + std::to_string(c.tiles_y);
  for (char& ch : name) {
    if (ch == '-') ch = '_';  // gtest parameter names must be identifiers
  }
  return name;
}

class CollectiveCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(CollectiveCorrectness, MatchesSerialReference) {
  const Case& c = GetParam();
  RunSpec spec;
  spec.collective = c.collective;
  spec.variant = c.variant;
  spec.elements = c.n;
  spec.repetitions = 2;
  spec.warmup = 1;
  spec.config = mesh(c.tiles_x, c.tiles_y);
  const RunResult result = harness::run_collective(spec);  // throws on error
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.mean_latency, SimTime::zero());
}

std::vector<Case> correctness_cases() {
  std::vector<Case> cases;
  // Every collective x its paper variants, on an 8-core mesh with sizes
  // chosen to hit: even split, worst-case remainder, sub-p sizes, partial
  // cache lines.
  for (const Collective coll :
       {Collective::kAllgather, Collective::kAlltoall,
        Collective::kReduceScatter, Collective::kBroadcast,
        Collective::kReduce, Collective::kAllreduce}) {
    for (const PaperVariant v : harness::variants_for(coll)) {
      for (const std::size_t n : {std::size_t{8}, std::size_t{29},
                                  std::size_t{96}, std::size_t{103}}) {
        cases.push_back({coll, v, n, 2, 2});
      }
    }
  }
  // Sub-p vectors exercise the short-vector paths (not for alltoall /
  // allgather whose semantics don't shrink, nor MPB which needs n slots).
  for (const Collective coll : {Collective::kReduceScatter,
                                Collective::kBroadcast, Collective::kReduce,
                                Collective::kAllreduce}) {
    for (const PaperVariant v : harness::variants_for(coll)) {
      cases.push_back({coll, v, 3, 2, 2});
    }
  }
  // A couple of non-square meshes and odd core counts.
  cases.push_back({Collective::kAllreduce, PaperVariant::kLwBalanced, 55, 3, 1});
  cases.push_back({Collective::kAllreduce, PaperVariant::kMpb, 55, 3, 1});
  cases.push_back({Collective::kBroadcast, PaperVariant::kBlocking, 77, 3, 2});
  cases.push_back({Collective::kAlltoall, PaperVariant::kRckmpi, 16, 3, 2});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, CollectiveCorrectness,
                         ::testing::ValuesIn(correctness_cases()), case_name);

// --- direct API tests not covered by the harness -------------------------

sim::Task<> reduce_max_program(machine::CoreApi& api,
                               const rcce::Layout* layout,
                               const std::vector<double>* in,
                               std::vector<double>* out, int root) {
  Stack stack(api, *layout, Prims::kLightweight);
  co_await reduce(stack, *in, *out, ReduceOp::kMax, root,
                  SplitPolicy::kBalanced);
}

TEST(CollectiveOps, ReduceMaxNonZeroRoot) {
  machine::SccMachine machine(mesh(2, 2));
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  const int root = 5;
  const std::size_t n = 40;
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < p; ++r) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = static_cast<double>((static_cast<std::size_t>(r) * 31 + i * 7) % 97);
    in.push_back(std::move(v));
    out.emplace_back(n, -1.0);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, reduce_max_program(machine.core(r), &layout,
                                         &in[static_cast<std::size_t>(r)],
                                         &out[static_cast<std::size_t>(r)],
                                         root));
  machine.run();
  for (std::size_t i = 0; i < n; ++i) {
    double want = in[0][i];
    for (int r = 1; r < p; ++r)
      want = std::max(want, in[static_cast<std::size_t>(r)][i]);
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(root)][i], want);
  }
}

sim::Task<> allreduce_prod_program(machine::CoreApi& api,
                                   const rcce::Layout* layout,
                                   const std::vector<double>* in,
                                   std::vector<double>* out) {
  Stack stack(api, *layout, Prims::kIrcce);
  co_await allreduce(stack, *in, *out, ReduceOp::kProd,
                     SplitPolicy::kStandard);
}

TEST(CollectiveOps, AllreduceProduct) {
  machine::SccMachine machine(mesh(2, 1));
  const int p = machine.num_cores();  // 4 cores
  const rcce::Layout layout(p);
  const std::size_t n = 12;
  std::vector<std::vector<double>> in(static_cast<std::size_t>(p),
                                      std::vector<double>(n, 2.0)),
      out(static_cast<std::size_t>(p), std::vector<double>(n, 0.0));
  for (int r = 0; r < p; ++r)
    machine.launch(r, allreduce_prod_program(machine.core(r), &layout,
                                             &in[static_cast<std::size_t>(r)],
                                             &out[static_cast<std::size_t>(r)]));
  machine.run();
  for (int r = 0; r < p; ++r)
    for (const double v : out[static_cast<std::size_t>(r)])
      EXPECT_DOUBLE_EQ(v, 16.0);  // 2^4
}

sim::Task<> broadcast_program(machine::CoreApi& api,
                              const rcce::Layout* layout,
                              std::vector<double>* data, int root) {
  Stack stack(api, *layout, Prims::kBlocking);
  co_await broadcast(stack, *data, root, SplitPolicy::kStandard);
}

TEST(CollectiveOps, BroadcastNonZeroRoot) {
  machine::SccMachine machine(mesh(2, 2));
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  const int root = 6;
  const std::size_t n = 200;  // long path: scatter + ring allgather
  std::vector<std::vector<double>> data(static_cast<std::size_t>(p),
                                        std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i)
    data[root][i] = static_cast<double>(i * 3 + 1);
  for (int r = 0; r < p; ++r)
    machine.launch(r, broadcast_program(machine.core(r), &layout,
                                        &data[static_cast<std::size_t>(r)],
                                        root));
  machine.run();
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(r)][i],
                       static_cast<double>(i * 3 + 1));
}

TEST(Harness, MpbVariantRejectedForNonAllreduce) {
  RunSpec spec;
  spec.collective = Collective::kBroadcast;
  spec.variant = PaperVariant::kMpb;
  spec.config = mesh(2, 2);
  EXPECT_THROW(harness::run_collective(spec), std::runtime_error);
}

TEST(Harness, VariantsForMatchesPaperFigures) {
  EXPECT_EQ(harness::variants_for(Collective::kAllgather).size(), 4u);
  EXPECT_EQ(harness::variants_for(Collective::kAlltoall).size(), 4u);
  EXPECT_EQ(harness::variants_for(Collective::kReduceScatter).size(), 5u);
  EXPECT_EQ(harness::variants_for(Collective::kBroadcast).size(), 5u);
  EXPECT_EQ(harness::variants_for(Collective::kReduce).size(), 5u);
  EXPECT_EQ(harness::variants_for(Collective::kAllreduce).size(), 6u);
}

}  // namespace
}  // namespace scc::coll
