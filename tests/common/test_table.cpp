#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace scc {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "precondition");
}

TEST(Table, CsvBasic) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"c"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "c\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, WriteCsvFileRejectsBadPath) {
  Table t({"a"});
  EXPECT_THROW(t.write_csv_file("/nonexistent-dir/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace scc
