#include "common/time.hpp"

#include <gtest/gtest.h>

namespace scc {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.femtoseconds(), 0u);
  EXPECT_EQ(SimTime::zero(), SimTime{});
}

TEST(SimTime, ConversionsRoundTrip) {
  const SimTime t = SimTime::from_us(12.5);
  EXPECT_DOUBLE_EQ(t.us(), 12.5);
  EXPECT_DOUBLE_EQ(t.ns(), 12500.0);
  EXPECT_DOUBLE_EQ(t.ms(), 0.0125);
  EXPECT_DOUBLE_EQ(t.seconds(), 12.5e-6);
}

TEST(SimTime, FromNs) {
  EXPECT_EQ(SimTime::from_ns(1.0).femtoseconds(), 1000000u);
}

TEST(SimTime, Arithmetic) {
  const SimTime a{100};
  const SimTime b{40};
  EXPECT_EQ((a + b).femtoseconds(), 140u);
  EXPECT_EQ((a - b).femtoseconds(), 60u);
  EXPECT_EQ((b * 3).femtoseconds(), 120u);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime{1}, SimTime{2});
  EXPECT_GE(SimTime{5}, SimTime{5});
  EXPECT_EQ(SimTime{7}, SimTime{7});
}

TEST(SimTime, CompoundAssignment) {
  SimTime t{10};
  t += SimTime{5};
  EXPECT_EQ(t.femtoseconds(), 15u);
  t -= SimTime{15};
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTimeDeath, UnderflowAborts) {
  SimTime t{1};
  EXPECT_DEATH(t -= SimTime{2}, "invariant");
}

TEST(Clock, CoreClockCycleDuration) {
  const Clock core{533e6};
  // One 533 MHz cycle is ~1.876 ns.
  EXPECT_NEAR(core.cycles(1).ns(), 1.876, 0.001);
  EXPECT_NEAR(core.cycles(1000).ns(), 1876.2, 0.2);
}

TEST(Clock, MeshClockCycleDuration) {
  const Clock mesh{800e6};
  EXPECT_NEAR(mesh.cycles(8).ns(), 10.0, 1e-9);
}

TEST(Clock, ZeroCyclesIsZeroTime) {
  EXPECT_EQ(Clock{533e6}.cycles(0), SimTime::zero());
}

TEST(Clock, CyclesInInvertsCycles) {
  const Clock core{533e6};
  for (const std::uint64_t n : {1ull, 7ull, 533ull, 1000000ull}) {
    const std::uint64_t back = core.cycles_in(core.cycles(n));
    // Rounding may lose at most one cycle.
    EXPECT_GE(back + 1, n);
    EXPECT_LE(back, n);
  }
}

TEST(Clock, LargeCycleCountsDoNotOverflow) {
  const Clock core{533e6};
  // 1e12 cycles ~ 31 minutes of virtual time; fits easily in SimTime.
  const SimTime t = core.cycles(1'000'000'000'000ull);
  EXPECT_NEAR(t.seconds(), 1e12 / 533e6, 1.0);
}

TEST(Clock, AdditivityOfCycles) {
  const Clock mesh{800e6};
  const SimTime sum = mesh.cycles(123) + mesh.cycles(456);
  const SimTime direct = mesh.cycles(579);
  // Conversion error is sub-femtosecond per call.
  EXPECT_NEAR(static_cast<double>(sum.femtoseconds()),
              static_cast<double>(direct.femtoseconds()), 2.0);
}

}  // namespace
}  // namespace scc
