#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace scc {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyStringIsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strprintf, FormatsLikePrintf) {
  EXPECT_EQ(strprintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Strprintf, LongOutput) {
  const std::string s = strprintf("%0512d", 1);
  EXPECT_EQ(s.size(), 512u);
}

TEST(FormatMinutes, Fig10Style) {
  EXPECT_EQ(format_minutes(25 * 60 + 36.18), "25min 36.18s");
  EXPECT_EQ(format_minutes(0.0), "0min 00.00s");
  EXPECT_EQ(format_minutes(59.99), "0min 59.99s");
  EXPECT_EQ(format_minutes(3600.0), "60min 00.00s");
}

TEST(FormatDuration, PicksSensibleUnit) {
  EXPECT_EQ(format_duration_us(1.25), "1.2 us");
  EXPECT_EQ(format_duration_us(1250.0), "1.25 ms");
  EXPECT_EQ(format_duration_us(2500000.0), "2.500 s");
}

}  // namespace
}  // namespace scc
