#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace scc {
namespace {

CliFlags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliFlags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const auto flags = parse({"--n=42"});
  EXPECT_EQ(flags.get_int("n", 0), 42);
}

// The space-separated value form is intentionally unsupported (the parser
// cannot distinguish a boolean flag from a value flag without a registry):
// a token after a bare flag stays a positional.
TEST(Cli, BareFlagDoesNotSwallowPositional) {
  const auto flags = parse({"--verbose", "input.dat"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  ASSERT_EQ(flags.positionals().size(), 1u);
  EXPECT_EQ(flags.positionals()[0], "input.dat");
}

TEST(Cli, BareFlagBeforeNegativeNumber) {
  // "--n -5" used to parse as n=true plus positional "-5" OR as n="-5"
  // depending on the token's leading characters; now it is always the
  // former, and asking for an integer fails loudly instead of returning 0.
  const auto flags = parse({"--n", "-5"});
  EXPECT_THROW(static_cast<void>(flags.get_int("n", 0)), std::runtime_error);
  ASSERT_EQ(flags.positionals().size(), 1u);
  EXPECT_EQ(flags.positionals()[0], "-5");
}

TEST(Cli, NegativeValueViaEquals) {
  EXPECT_EQ(parse({"--n=-5"}).get_int("n", 0), -5);
}

TEST(Cli, BareBooleanFlag) {
  const auto flags = parse({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto flags = parse({});
  EXPECT_EQ(flags.get("name", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("n", -1), -1);
  EXPECT_DOUBLE_EQ(flags.get_double("d", 2.5), 2.5);
  EXPECT_FALSE(flags.has("anything"));
}

TEST(Cli, DoubleParsing) {
  EXPECT_DOUBLE_EQ(parse({"--d=3.25"}).get_double("d", 0.0), 3.25);
}

TEST(Cli, MalformedIntegerThrows) {
  const auto flags = parse({"--n=abc"});
  EXPECT_THROW(static_cast<void>(flags.get_int("n", 0)), std::runtime_error);
}

TEST(Cli, EmptyValueThrowsForNumbers) {
  // "--n=" used to silently yield 0 (strtoll consumed nothing but left
  // *end == '\0').
  EXPECT_THROW(static_cast<void>(parse({"--n="}).get_int("n", 7)),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(parse({"--d="}).get_double("d", 7.0)),
               std::runtime_error);
}

TEST(Cli, WhitespaceValueThrowsForNumbers) {
  EXPECT_THROW(static_cast<void>(parse({"--n= "}).get_int("n", 7)),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(parse({"--d=\t"}).get_double("d", 7.0)),
               std::runtime_error);
}

TEST(Cli, EmptyStringValueIsStillAString) {
  EXPECT_EQ(parse({"--name="}).get("name", "dflt"), "");
}

TEST(Cli, MalformedBoolThrows) {
  const auto flags = parse({"--b=maybe"});
  EXPECT_THROW(static_cast<void>(flags.get_bool("b", false)),
               std::runtime_error);
}

TEST(Cli, Positionals) {
  const auto flags = parse({"pos1", "--n=1", "pos2"});
  ASSERT_EQ(flags.positionals().size(), 2u);
  EXPECT_EQ(flags.positionals()[0], "pos1");
  EXPECT_EQ(flags.positionals()[1], "pos2");
}

TEST(Cli, DoubleDashStopsParsing) {
  const auto flags = parse({"--n=1", "--", "--ignored=2"});
  EXPECT_EQ(flags.get_int("n", 0), 1);
  EXPECT_FALSE(flags.has("ignored"));
}

TEST(Cli, GetPositiveIntFallsBackWhenAbsent) {
  EXPECT_EQ(parse({}).get_positive_int("jobs", 0), 0);
  EXPECT_EQ(parse({}).get_positive_int("workers", 3), 3);
}

TEST(Cli, GetPositiveIntParsesValidValues) {
  EXPECT_EQ(parse({"--jobs=1"}).get_positive_int("jobs", 0), 1);
  EXPECT_EQ(parse({"--workers=16"}).get_positive_int("workers", 0), 16);
}

TEST(Cli, GetPositiveIntRejectsZeroNegativeAndGarbage) {
  for (const char* arg : {"--w=0", "--w=-3", "--w=abc", "--w=", "--w=4x"}) {
    EXPECT_THROW(static_cast<void>(parse({arg}).get_positive_int("w", 1)),
                 std::runtime_error)
        << arg;
  }
}

TEST(Cli, GetPositiveIntErrorNamesTheFlag) {
  try {
    static_cast<void>(parse({"--workers=0"}).get_positive_int("workers", 0));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("--workers"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("positive integer"),
              std::string::npos)
        << e.what();
  }
}

TEST(Cli, UnconsumedReportsTypos) {
  const auto flags = parse({"--n=1", "--typo=2"});
  EXPECT_EQ(flags.get_int("n", 0), 1);
  const auto leftover = flags.unconsumed();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "typo");
}

}  // namespace
}  // namespace scc
