#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace scc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Xoshiro256 rng(3);
  for (const std::uint64_t n : {1ull, 2ull, 7ull, 48ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, JumpProducesDisjointStream) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i)
    if (from_a.count(b())) ++collisions;
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, KnownGoldenSequenceStable) {
  // Guards against accidental algorithm changes breaking reproducibility
  // of every experiment in the repository.
  Xoshiro256 rng(2012);
  const std::uint64_t first = rng();
  Xoshiro256 rng2(2012);
  EXPECT_EQ(rng2(), first);
  EXPECT_NE(rng(), first);  // stream advances
}

}  // namespace
}  // namespace scc
