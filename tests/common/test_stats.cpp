#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scc {
namespace {

TEST(RunningStats, EmptyHasZeroCount) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e12;
  for (const double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Median, OddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Median, EvenCountAverages) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, SingleElement) { EXPECT_DOUBLE_EQ(median({7.0}), 7.0); }

TEST(GeometricMean, Basic) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeometricMean, MatchesArithmeticForConstant) {
  EXPECT_NEAR(geometric_mean({5.5, 5.5, 5.5, 5.5}), 5.5, 1e-12);
}

}  // namespace
}  // namespace scc
