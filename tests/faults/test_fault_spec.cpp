// FaultSpec clause grammar: parse round-trips, canonical rendering, and
// rejection of malformed text (label: faults). Semantic validation (ranges,
// adjacency, connectivity) is FaultModel's job -- see test_fault_model.cpp.
#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/fault_spec.hpp"

namespace scc::faults {
namespace {

TEST(FaultSpec, EmptyStringIsEmptySpec) {
  const FaultSpec spec = FaultSpec::parse("");
  EXPECT_TRUE(spec.empty());
  EXPECT_EQ(spec.to_string(), "");
  EXPECT_EQ(spec, FaultSpec{});
}

TEST(FaultSpec, ParsesStraggler) {
  const FaultSpec spec = FaultSpec::parse("straggler:5x2.5");
  ASSERT_EQ(spec.stragglers.size(), 1u);
  EXPECT_EQ(spec.stragglers[0].core, 5);
  EXPECT_DOUBLE_EQ(spec.stragglers[0].factor, 2.5);
  EXPECT_FALSE(spec.empty());
}

TEST(FaultSpec, ParsesDvfs) {
  const FaultSpec spec = FaultSpec::parse("dvfs:17/2");
  ASSERT_EQ(spec.dvfs.size(), 1u);
  EXPECT_EQ(spec.dvfs[0].core, 17);
  EXPECT_EQ(spec.dvfs[0].divisor, 2);
}

TEST(FaultSpec, ParsesSlowLink) {
  const FaultSpec spec = FaultSpec::parse("slowlink:2,1-3,1x4");
  ASSERT_EQ(spec.slow_links.size(), 1u);
  EXPECT_EQ(spec.slow_links[0].link.a, (noc::TileCoord{2, 1}));
  EXPECT_EQ(spec.slow_links[0].link.b, (noc::TileCoord{3, 1}));
  EXPECT_DOUBLE_EQ(spec.slow_links[0].factor, 4.0);
}

TEST(FaultSpec, ParsesDeadLink) {
  const FaultSpec spec = FaultSpec::parse("deadlink:0,0-0,1");
  ASSERT_EQ(spec.dead_links.size(), 1u);
  EXPECT_EQ(spec.dead_links[0].a, (noc::TileCoord{0, 0}));
  EXPECT_EQ(spec.dead_links[0].b, (noc::TileCoord{0, 1}));
}

TEST(FaultSpec, ParsesCompoundSpecAndEmptyClausesAreSkipped) {
  const FaultSpec spec =
      FaultSpec::parse(";straggler:1x2;;dvfs:2/3;slowlink:0,0-1,0x8;");
  EXPECT_EQ(spec.stragglers.size(), 1u);
  EXPECT_EQ(spec.dvfs.size(), 1u);
  EXPECT_EQ(spec.slow_links.size(), 1u);
  EXPECT_TRUE(spec.dead_links.empty());
}

TEST(FaultSpec, ToStringRoundTripsExactly) {
  const char* texts[] = {
      "straggler:5x2.5",
      "dvfs:17/2",
      "slowlink:2,1-3,1x4",
      "deadlink:2,1-3,1",
      "straggler:14x2;dvfs:15/3;slowlink:2,1-3,1x4;deadlink:3,2-3,3",
  };
  for (const char* text : texts) {
    const FaultSpec spec = FaultSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(FaultSpec::parse(spec.to_string()), spec) << text;
  }
}

TEST(FaultSpec, RepeatedClausesOnOneTargetAreKept) {
  // Composition (multiplicative) is FaultModel's semantics; the spec just
  // records every clause in order.
  const FaultSpec spec = FaultSpec::parse("straggler:3x2;straggler:3x1.5");
  ASSERT_EQ(spec.stragglers.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.stragglers[0].factor, 2.0);
  EXPECT_DOUBLE_EQ(spec.stragglers[1].factor, 1.5);
}

TEST(FaultSpec, RejectsMalformedText) {
  const char* bad[] = {
      "bogus",                   // no kind separator
      "warp:1x2",                // unknown kind
      "straggler:x2",            // missing core
      "straggler:5",             // missing factor
      "straggler:5x2garbage",    // trailing junk
      "dvfs:5x2",                // wrong separator
      "dvfs:5/",                 // missing divisor
      "slowlink:2,1-3,1",        // missing factor
      "slowlink:2,1x4",          // missing second tile
      "deadlink:2,1-3",          // truncated coordinate
      "deadlink:2,1-3,1x2",      // factor on a dead link
      "straggler:5 x2",          // embedded whitespace
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)FaultSpec::parse(text), std::runtime_error) << text;
  }
}

}  // namespace
}  // namespace scc::faults
