// Fault-injection determinism and bit-identity guarantees (label: faults):
//
//   1. the same FaultSpec produces the same simulation, femtosecond for
//      femtosecond, run after run (faults add no nondeterminism);
//   2. a *neutral* spec -- factors 1.0, divisor 1 -- is bit-identical to no
//      spec at all (the scaling paths collapse to the legacy arithmetic);
//   3. faults change time but never semantics: results verify, traffic
//      volume is invariant, latency moves in the expected direction.
#include <gtest/gtest.h>

#include "faults/fault_spec.hpp"
#include "harness/runner.hpp"

namespace scc::harness {
namespace {

RunSpec base_spec(PaperVariant variant) {
  RunSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.variant = variant;
  spec.elements = 64;
  spec.repetitions = 2;
  spec.warmup = 1;
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 2;
  return spec;
}

constexpr PaperVariant kStacks[] = {PaperVariant::kBlocking,
                                    PaperVariant::kIrcce,
                                    PaperVariant::kLightweight};

TEST(FaultDeterminism, SameSpecSameSimulation) {
  RunSpec spec = base_spec(PaperVariant::kLightweight);
  spec.config.faults =
      faults::FaultSpec::parse("straggler:3x2.5;slowlink:0,0-1,0x4");
  const RunResult a = run_collective(spec);
  const RunResult b = run_collective(spec);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.lines_sent, b.lines_sent);
  EXPECT_EQ(a.line_hops, b.line_hops);
}

TEST(FaultDeterminism, NeutralSpecIsBitIdenticalToNoSpecOnEveryStack) {
  for (const PaperVariant variant : kStacks) {
    const RunResult healthy = run_collective(base_spec(variant));
    RunSpec neutral = base_spec(variant);
    // Factors of exactly 1.0 must take the legacy arithmetic path: not just
    // approximately equal, femtosecond-identical.
    neutral.config.faults = faults::FaultSpec::parse(
        "straggler:0x1;straggler:7x1;dvfs:3/1;slowlink:0,0-1,0x1");
    const RunResult degraded = run_collective(neutral);
    EXPECT_EQ(healthy.mean_latency, degraded.mean_latency)
        << variant_name(variant);
    EXPECT_EQ(healthy.min_latency, degraded.min_latency);
    EXPECT_EQ(healthy.max_latency, degraded.max_latency);
    EXPECT_EQ(healthy.events, degraded.events);
    EXPECT_EQ(healthy.lines_sent, degraded.lines_sent);
    EXPECT_EQ(healthy.line_hops, degraded.line_hops);
  }
}

TEST(FaultDeterminism, StragglerSlowsEveryStackButKeepsResultsAndVolume) {
  for (const PaperVariant variant : kStacks) {
    const RunResult healthy = run_collective(base_spec(variant));
    RunSpec slow = base_spec(variant);
    slow.config.faults = faults::FaultSpec::parse("straggler:5x3");
    const RunResult degraded = run_collective(slow);
    EXPECT_TRUE(degraded.verified) << variant_name(variant);
    EXPECT_GT(degraded.mean_latency, healthy.mean_latency)
        << variant_name(variant);
    // Degradation changes when lines move, never how many.
    EXPECT_EQ(degraded.lines_sent, healthy.lines_sent)
        << variant_name(variant);
  }
}

TEST(FaultDeterminism, SlowLinkOnTheOnlyPathIncreasesLatency) {
  // 2x1 mesh: every cross-tile transfer crosses the single mesh link, so an
  // 8x link cannot hide in schedule slack.
  RunSpec spec = base_spec(PaperVariant::kLightweight);
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 1;
  const RunResult healthy = run_collective(spec);
  spec.config.faults = faults::FaultSpec::parse("slowlink:0,0-1,0x8");
  const RunResult degraded = run_collective(spec);
  EXPECT_TRUE(degraded.verified);
  EXPECT_GT(degraded.mean_latency, healthy.mean_latency);
  EXPECT_EQ(degraded.lines_sent, healthy.lines_sent);
}

TEST(FaultDeterminism, DeadLinkDetourShowsUpInLineHops) {
  // Killing (0,0)-(1,0) on a 2x2 mesh forces the 3-hop detour through row
  // 1: volume (lines_sent) is unchanged, but distance (line_hops) grows.
  RunSpec spec = base_spec(PaperVariant::kLightweight);
  const RunResult healthy = run_collective(spec);
  spec.config.faults = faults::FaultSpec::parse("deadlink:0,0-1,0");
  const RunResult degraded = run_collective(spec);
  EXPECT_TRUE(degraded.verified);
  EXPECT_EQ(degraded.lines_sent, healthy.lines_sent);
  EXPECT_GT(degraded.line_hops, healthy.line_hops);
}

TEST(FaultDeterminism, DvfsStepSlowsTheSteppedCore) {
  RunSpec spec = base_spec(PaperVariant::kBlocking);
  const RunResult healthy = run_collective(spec);
  spec.config.faults = faults::FaultSpec::parse("dvfs:2/2;dvfs:3/2");
  const RunResult degraded = run_collective(spec);
  EXPECT_TRUE(degraded.verified);
  EXPECT_GT(degraded.mean_latency, healthy.mean_latency);
}

TEST(FaultDeterminism, FaultsComposeWithContentionModel) {
  RunSpec spec = base_spec(PaperVariant::kLightweight);
  spec.config.cost.hw.model_link_contention = true;
  const RunResult healthy = run_collective(spec);
  spec.config.faults =
      faults::FaultSpec::parse("slowlink:0,0-1,0x4;deadlink:0,1-1,1");
  const RunResult degraded = run_collective(spec);
  EXPECT_TRUE(degraded.verified);
  EXPECT_GT(degraded.mean_latency, healthy.mean_latency);
  // Determinism holds under contention + faults too.
  EXPECT_EQ(run_collective(spec).mean_latency, degraded.mean_latency);
}

}  // namespace
}  // namespace scc::harness
