// Differential conformance on a degraded machine (label: faults): all four
// cells (three RCCE stacks + the RCKMPI baseline), unperturbed baseline
// plus 16 perturbation seeds each, simulated on
// the SAME faulted machine. Faults move timings and therefore schedules --
// that is the point -- but results must stay element-wise identical across
// stacks and seeds, volume-type counters must stay schedule-invariant, and
// no interleaving on the degraded machine may deadlock. The dead-link cases
// double as a reroute deadlock-freedom check: 16 interleavings per stack
// all draining through detoured paths.
#include <gtest/gtest.h>

#include "harness/conformance.hpp"

namespace scc::harness {
namespace {

struct FaultCase {
  Collective collective;
  std::size_t elements;
  const char* faults;
  std::uint64_t max_delay_fs;
  const char* tag;
};

// 2x2 mesh throughout: big enough for real routes and detours, small enough
// that 3 stacks x 17 runs x 5 cases stays inside the tier budget. Delays of
// ~1 core cycle (1'876'173 fs) stress timing, not just equal-time ties.
constexpr FaultCase kCases[] = {
    {Collective::kAllreduce, 52, "straggler:3x2.5", 0, "straggler"},
    {Collective::kAllgather, 23, "dvfs:2/2;dvfs:3/2", 1'876'173,
     "dvfs_jitter"},
    {Collective::kReduceScatter, 53, "slowlink:0,0-1,0x8", 0, "slowlink"},
    {Collective::kAlltoall, 9, "deadlink:0,0-1,0", 1'876'173,
     "deadlink_jitter"},
    {Collective::kAllreduce, 40, "straggler:1x2;slowlink:0,0-0,1x4;deadlink:1,0-1,1",
     0, "combo"},
};

class FaultConformance : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultConformance, AllStacksAgreeOnTheDegradedMachine) {
  const FaultCase& c = GetParam();
  ConformanceSpec spec;
  spec.collective = c.collective;
  spec.elements = c.elements;
  spec.tiles_x = 2;
  spec.tiles_y = 2;
  spec.perturb_seeds = 16;
  spec.max_delay_fs = c.max_delay_fs;
  spec.faults = faults::FaultSpec::parse(c.faults);
  const ConformanceReport report = run_conformance(spec);
  // Three RCCE stacks + the RCKMPI cell (every case here has an MPI
  // counterpart), baseline + 16 perturbation seeds each.
  EXPECT_EQ(report.runs, 4 * (16 + 1));
  EXPECT_TRUE(report.passed()) << report.summary();
  // The report names the degradation it ran under (soak-log greppability).
  EXPECT_NE(report.configuration.find("faults="), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Cases, FaultConformance, ::testing::ValuesIn(kCases),
                         [](const auto& param_info) {
                           return std::string(param_info.param.tag);
                         });

TEST(FaultConformance, SelectorResolvesOnceUnderFaults) {
  // Algo::kAuto with faults: the Selector's analytic pick is resolved once
  // per cell (it is blind to faults by design), and every stack runs that
  // same algorithm on the same degraded machine.
  ConformanceSpec spec;
  spec.collective = Collective::kAllreduce;
  spec.elements = 96;
  spec.tiles_x = 2;
  spec.tiles_y = 2;
  spec.algo = coll::Algo::kAuto;
  spec.perturb_seeds = 16;
  spec.faults = faults::FaultSpec::parse("straggler:0x4;deadlink:0,0-0,1");
  const ConformanceReport report = run_conformance(spec);
  EXPECT_TRUE(report.passed()) << report.summary();
}

}  // namespace
}  // namespace scc::harness
