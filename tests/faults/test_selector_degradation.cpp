// Selector-under-degradation grid (label: faults): every algorithm variant
// of every collective that has one -- plus the analytic Selector's kAuto
// pick -- must still produce element-wise correct results on a degraded
// machine. Robustness of the *ranking* (is the pick still fastest?) is a
// bench question (bench/abl_degradation); correctness of every variant on
// every degraded machine is a test question, answered here.
#include <gtest/gtest.h>

#include "coll/algos.hpp"
#include "harness/runner.hpp"

namespace scc::harness {
namespace {

constexpr Collective kAlgoCollectives[] = {
    Collective::kAllgather, Collective::kAlltoall, Collective::kReduceScatter,
    Collective::kAllreduce};

constexpr const char* kScenarios[] = {
    "straggler:4x3",
    "dvfs:2/2;dvfs:3/2",
    "slowlink:0,0-1,0x8",
    "deadlink:0,0-1,0",
    "straggler:1x2;slowlink:1,0-2,0x4;deadlink:0,0-0,1",
};

class SelectorDegradation : public ::testing::TestWithParam<const char*> {};

TEST_P(SelectorDegradation, EveryAlgorithmVerifiesOnTheDegradedMachine) {
  RunSpec base;
  base.variant = PaperVariant::kLightweight;
  base.elements = 45;  // not a multiple of p: wraparound + ragged blocks
  base.repetitions = 1;
  base.warmup = 1;
  base.config.tiles_x = 3;
  base.config.tiles_y = 2;
  base.config.faults = faults::FaultSpec::parse(GetParam());
  for (const Collective c : kAlgoCollectives) {
    const auto kind = algo_kind(c);
    ASSERT_TRUE(kind.has_value());
    std::vector<coll::Algo> algos(coll::algos_for(*kind).begin(),
                                  coll::algos_for(*kind).end());
    algos.push_back(coll::Algo::kAuto);
    for (const coll::Algo a : algos) {
      RunSpec spec = base;
      spec.collective = c;
      spec.algo = a;
      SCOPED_TRACE(std::string(collective_name(c)) + "/" +
                   std::string(coll::algo_name(a)) + " faults=" + GetParam());
      const RunResult result = run_collective(spec);  // throws on mismatch
      EXPECT_TRUE(result.verified);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SelectorDegradation,
                         ::testing::ValuesIn(kScenarios),
                         [](const auto& param_info) {
                           return "scenario" +
                                  std::to_string(param_info.index);
                         });

// The Selector's pick is analytic -- a pure function of (kind, n, p, prims)
// -- so injecting faults must not change which algorithm kAuto resolves to
// (reproducibility of runs labelled kAuto, and the premise of the
// abl_degradation pick_ok column).
TEST(SelectorDegradation, AnalyticPickIsFaultBlind) {
  for (const Collective c : kAlgoCollectives) {
    const auto kind = algo_kind(c);
    ASSERT_TRUE(kind.has_value());
    for (const std::size_t n : {4u, 48u, 192u, 1536u}) {
      const coll::Algo pick =
          coll::select_algo(*kind, n, 12, coll::Prims::kLightweight);
      // select_algo takes no machine: nothing about a FaultSpec can reach
      // it. This test pins the signature assumption the bench relies on.
      EXPECT_EQ(pick, coll::select_algo(*kind, n, 12,
                                        coll::Prims::kLightweight));
    }
  }
}

}  // namespace
}  // namespace scc::harness
