// FaultModel semantics: per-core/per-link factors, static reroute around
// dead links, determinism of the compiled model, and SCC_EXPECTS contract
// death on semantically invalid specs (label: faults).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "faults/fault_model.hpp"

namespace scc::faults {
namespace {

TEST(FaultModel, EmptySpecIsTheHealthyMachine) {
  const noc::Topology topo(3, 2);
  const FaultModel fm(FaultSpec{}, topo);
  for (int core = 0; core < topo.num_cores(); ++core) {
    EXPECT_DOUBLE_EQ(fm.core_factor(core), 1.0);
  }
  EXPECT_FALSE(fm.rerouted());
  for (noc::CoreId a = 0; a < topo.num_cores(); ++a) {
    for (noc::CoreId b = 0; b < topo.num_cores(); ++b) {
      EXPECT_EQ(fm.route(a, b), topo.route(a, b));
      EXPECT_DOUBLE_EQ(fm.weighted_hops(a, b),
                       static_cast<double>(topo.hops(a, b)));
    }
  }
}

TEST(FaultModel, StragglerAndDvfsComposeMultiplicatively) {
  const noc::Topology topo(3, 2);
  const FaultModel fm(FaultSpec::parse("straggler:5x2.5;dvfs:5/2;dvfs:3/3"),
                      topo);
  EXPECT_DOUBLE_EQ(fm.core_factor(5), 2.5 * 2.0);
  EXPECT_DOUBLE_EQ(fm.core_factor(3), 3.0);
  EXPECT_DOUBLE_EQ(fm.core_factor(0), 1.0);
}

TEST(FaultModel, SlowLinkAppliesToBothDirectionsAndComposes) {
  const noc::Topology topo(3, 2);
  const FaultModel fm(
      FaultSpec::parse("slowlink:0,0-1,0x4;slowlink:1,0-0,0x2"), topo);
  // Either naming order targets the same physical channel; repeated clauses
  // compose multiplicatively on both directed links.
  EXPECT_DOUBLE_EQ(fm.link_factor({{0, 0}, {1, 0}}), 8.0);
  EXPECT_DOUBLE_EQ(fm.link_factor({{1, 0}, {0, 0}}), 8.0);
  EXPECT_DOUBLE_EQ(fm.link_factor({{1, 0}, {2, 0}}), 1.0);
  // Slow links never change paths, only their weight.
  EXPECT_FALSE(fm.rerouted());
  EXPECT_EQ(fm.route(0, 2), topo.route(0, 2));
  EXPECT_DOUBLE_EQ(fm.weighted_hops(0, 2), 8.0);  // one hop at composed 8x
}

TEST(FaultModel, WeightedHopsSumLinkFactorsAlongTheRoute) {
  const noc::Topology topo(3, 2);
  const FaultModel fm(FaultSpec::parse("slowlink:0,0-1,0x4"), topo);
  // Core 0 (tile 0,0) to core 4 (tile 2,0): two hops, the first at 4x.
  EXPECT_DOUBLE_EQ(fm.weighted_hops(0, 4), 4.0 + 1.0);
  // Same tile: no hops.
  EXPECT_DOUBLE_EQ(fm.weighted_hops(0, 1), 0.0);
}

TEST(FaultModel, DeadLinkReroutesMinimallyAndDeterministically) {
  const noc::Topology topo(2, 2);
  const FaultModel fm(FaultSpec::parse("deadlink:0,0-1,0"), topo);
  EXPECT_TRUE(fm.rerouted());
  // Tile (0,0) to tile (1,0): the direct hop is dead, so the minimal
  // surviving route detours through row 1 (3 hops), in both directions.
  const auto& forward = fm.route(0, 2);   // cores 0 -> 2 (tiles 0 -> 1)
  const auto& backward = fm.route(2, 0);
  ASSERT_EQ(forward.size(), 3u);
  ASSERT_EQ(backward.size(), 3u);
  const noc::LinkId dead_fwd{{0, 0}, {1, 0}};
  const noc::LinkId dead_bwd{{1, 0}, {0, 0}};
  for (const noc::LinkId& l : forward) {
    EXPECT_FALSE(l == dead_fwd || l == dead_bwd);
  }
  // Routes are contiguous walks from source router to destination router.
  EXPECT_EQ(forward.front().from, (noc::TileCoord{0, 0}));
  EXPECT_EQ(forward.back().to, (noc::TileCoord{1, 0}));
  for (std::size_t i = 1; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].from, forward[i - 1].to);
  }
  EXPECT_DOUBLE_EQ(fm.weighted_hops(0, 2), 3.0);
  // Pairs with a surviving same-length alternative stay at Manhattan
  // distance: (0,0) -> (1,1) can route via (0,1).
  EXPECT_DOUBLE_EQ(fm.weighted_hops(0, 6), 2.0);

  // The compiled model is a pure function of (spec, topology).
  const FaultModel again(FaultSpec::parse("deadlink:0,0-1,0"), topo);
  for (noc::CoreId a = 0; a < topo.num_cores(); ++a) {
    for (noc::CoreId b = 0; b < topo.num_cores(); ++b) {
      EXPECT_EQ(fm.route(a, b), again.route(a, b));
    }
  }
}

TEST(FaultModel, WeightedHopsToMatchesMcDistanceOnHealthyMesh) {
  const noc::Topology topo(6, 4);
  const FaultModel fm(FaultSpec{}, topo);
  for (noc::CoreId core = 0; core < topo.num_cores(); ++core) {
    EXPECT_DOUBLE_EQ(
        fm.weighted_hops_to(core, topo.mc_coord(topo.mc_of(core))),
        static_cast<double>(topo.hops_to_mc(core)))
        << "core " << core;
  }
}

TEST(FaultModel, CheckReportsTheFirstProblem) {
  const noc::Topology topo(3, 2);
  EXPECT_FALSE(FaultModel::check(FaultSpec{}, topo).has_value());
  EXPECT_FALSE(
      FaultModel::check(FaultSpec::parse("straggler:11x2"), topo).has_value());
  const struct {
    const char* text;
    const char* why;
  } bad[] = {
      {"straggler:12x2", "out of range"},     // cores are 0..11 on 3x2
      {"straggler:3x0.5", "factor"},          // speedups are not faults
      {"dvfs:3/0", "divisor"},                // zero frequency
      {"slowlink:0,0-2,0x2", "adjacent"},     // not neighbours
      {"slowlink:0,0-0,2x2", "mesh"},         // tile (0,2) off a 3x2 mesh
      {"deadlink:0,0-1,0;deadlink:0,1-1,1;deadlink:0,0-0,1", "disconnect"},
  };
  for (const auto& c : bad) {
    const auto err = FaultModel::check(FaultSpec::parse(c.text), topo);
    ASSERT_TRUE(err.has_value()) << c.text;
    EXPECT_NE(err->find(c.why), std::string::npos)
        << c.text << " -> " << *err;
  }
}

using FaultModelDeathTest = ::testing::Test;

TEST(FaultModelDeathTest, ConstructorEnforcesCheckWithContracts) {
  const noc::Topology topo(3, 2);
  // Every condition check() reports is an SCC_EXPECTS precondition of the
  // constructor: malformed --faults= specs that slip past the CLI guard die
  // loudly instead of simulating a nonsense machine.
  EXPECT_DEATH(FaultModel(FaultSpec::parse("straggler:99x2"), topo),
               "precondition");
  EXPECT_DEATH(FaultModel(FaultSpec::parse("straggler:0x0.5"), topo),
               "precondition");
  EXPECT_DEATH(FaultModel(FaultSpec::parse("dvfs:0/0"), topo), "precondition");
  EXPECT_DEATH(FaultModel(FaultSpec::parse("slowlink:0,0-2,0x2"), topo),
               "precondition");
  EXPECT_DEATH(FaultModel(FaultSpec::parse("deadlink:0,0-5,5"), topo),
               "precondition");
  // A 2x1 mesh has a single link: killing it disconnects the tile graph.
  const noc::Topology line(2, 1);
  EXPECT_DEATH(FaultModel(FaultSpec::parse("deadlink:0,0-1,0"), line),
               "precondition");
}

}  // namespace
}  // namespace scc::faults
