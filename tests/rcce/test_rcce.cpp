#include "rcce/rcce.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "machine/scc_machine.hpp"
#include "rcce/layout.hpp"

namespace scc::rcce {
namespace {

machine::SccConfig small_config() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;  // 8 cores
  return config;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 13 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

TEST(Layout, GeometryAccounting) {
  const Layout layout(48);
  EXPECT_EQ(layout.payload_offset(), 48u * 32u);
  EXPECT_EQ(layout.payload_bytes(), 8192u - 1536u);
  EXPECT_EQ(layout.chunk_bytes(), 6656u);
  EXPECT_EQ(layout.flags_needed(), 2 * 48 + 18);
}

TEST(Layout, PaperVectorsFitOneChunk) {
  const Layout layout(48);
  // The Fig. 9 sweep tops out at 700 doubles = 5600 bytes.
  EXPECT_GE(layout.chunk_bytes(), 700u * sizeof(double));
}

TEST(Layout, FlagRefsDisjoint) {
  const Layout layout(8);
  EXPECT_NE(layout.sent_flag(1, 2).index, layout.ready_flag(1, 2).index);
  EXPECT_NE(layout.sent_flag(1, 2).index, layout.sent_flag(1, 3).index);
  EXPECT_NE(layout.barrier_flag(0, 0).index, layout.ready_flag(0, 7).index);
  EXPECT_NE(layout.mpb_filled_flag(0, 0).index,
            layout.mpb_free_flag(0, 0).index);
}

sim::Task<> sender(machine::CoreApi& api, const Layout* layout,
                   const std::vector<std::byte>* data, int dest) {
  Rcce rcce(api, *layout);
  co_await rcce.send(*data, dest);
}

sim::Task<> receiver(machine::CoreApi& api, const Layout* layout,
                     std::vector<std::byte>* data, int src) {
  Rcce rcce(api, *layout);
  co_await rcce.recv(*data, src);
}

class SendRecvSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SendRecvSize, DataArrivesIntact) {
  machine::SccMachine machine(small_config());
  const Layout layout(machine.num_cores());
  const auto data = pattern(GetParam(), 42);
  std::vector<std::byte> received(GetParam());
  machine.launch(0, sender(machine.core(0), &layout, &data, 5));
  machine.launch(5, receiver(machine.core(5), &layout, &received, 0));
  machine.run();
  EXPECT_EQ(received, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SendRecvSize,
                         ::testing::Values(0, 1, 8, 31, 32, 33, 100, 4096,
                                           6656,    // exactly one chunk
                                           6657,    // chunk + 1 byte
                                           20000),  // multiple chunks
                         [](const auto& param_info) {
                           return "bytes_" + std::to_string(param_info.param);
                         });

sim::Task<> exchange_all(machine::CoreApi& api, const Layout* layout,
                         std::vector<std::byte>* in,
                         std::vector<std::byte>* out) {
  // Odd-even ordered neighbour exchange in a ring: classic deadlock-free
  // blocking pattern (paper Fig. 4).
  Rcce rcce(api, *layout);
  const int p = rcce.num_cores();
  const int right = (rcce.rank() + 1) % p;
  const int left = (rcce.rank() + p - 1) % p;
  if (rcce.rank() % 2 == 1) {
    co_await rcce.recv(*out, left);
    co_await rcce.send(*in, right);
  } else {
    co_await rcce.send(*in, right);
    co_await rcce.recv(*out, left);
  }
}

TEST(Rcce, OddEvenRingExchangeCompletes) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const Layout layout(p);
  std::vector<std::vector<std::byte>> in, out;
  for (int r = 0; r < p; ++r) {
    in.push_back(pattern(200, r));
    out.emplace_back(200);
  }
  for (int r = 0; r < p; ++r) {
    machine.launch(r, exchange_all(machine.core(r), &layout,
                                   &in[static_cast<std::size_t>(r)],
                                   &out[static_cast<std::size_t>(r)]));
  }
  machine.run();
  for (int r = 0; r < p; ++r) {
    const int left = (r + p - 1) % p;
    EXPECT_EQ(out[static_cast<std::size_t>(r)],
              in[static_cast<std::size_t>(left)]);
  }
}

sim::Task<> naive_ring_send_first(machine::CoreApi& api, const Layout* layout,
                                  std::vector<std::byte>* in,
                                  std::vector<std::byte>* out) {
  // EVERY core sends first: with blocking primitives this must deadlock
  // (the motivation for the odd-even ordering).
  Rcce rcce(api, *layout);
  const int p = rcce.num_cores();
  co_await rcce.send(*in, (rcce.rank() + 1) % p);
  co_await rcce.recv(*out, (rcce.rank() + p - 1) % p);
}

TEST(Rcce, AllSendFirstRingDeadlocks) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const Layout layout(p);
  std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(p),
                                         pattern(64, 1)),
      out(static_cast<std::size_t>(p), std::vector<std::byte>(64));
  for (int r = 0; r < p; ++r) {
    machine.launch(r, naive_ring_send_first(machine.core(r), &layout,
                                            &in[static_cast<std::size_t>(r)],
                                            &out[static_cast<std::size_t>(r)]));
  }
  EXPECT_FALSE(machine.run_detect_deadlock());
}

sim::Task<> barrier_n_times(machine::CoreApi& api, const Layout* layout,
                            int times, SimTime* finish) {
  Rcce rcce(api, *layout);
  for (int i = 0; i < times; ++i) co_await rcce.barrier();
  *finish = api.now();
}

TEST(Rcce, RepeatedBarriersStayAligned) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const Layout layout(p);
  std::vector<SimTime> finish(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    machine.launch(r, barrier_n_times(machine.core(r), &layout, 300,
                                      &finish[static_cast<std::size_t>(r)]));
  }
  machine.run();  // 300 barriers exercise the epoch wrap (mod 255)
  SUCCEED();
}

sim::Task<> bcast_program(machine::CoreApi& api, const Layout* layout,
                          std::vector<std::byte>* data, int root) {
  Rcce rcce(api, *layout);
  co_await rcce.bcast_naive(*data, root);
}

TEST(Rcce, NaiveBroadcastDistributesData) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const Layout layout(p);
  const int root = 3;
  std::vector<std::vector<std::byte>> data(static_cast<std::size_t>(p),
                                           std::vector<std::byte>(96));
  data[root] = pattern(96, 9);
  for (int r = 0; r < p; ++r)
    machine.launch(r, bcast_program(machine.core(r), &layout,
                                    &data[static_cast<std::size_t>(r)], root));
  machine.run();
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(data[static_cast<std::size_t>(r)], data[root]);
}

sim::Task<> naive_reduce_program(machine::CoreApi& api, const Layout* layout,
                                 const std::vector<double>* in,
                                 std::vector<double>* out, bool all) {
  Rcce rcce(api, *layout);
  co_await rcce.reduce_naive(*in, *out, ReduceOp::kSum, 0, all);
}

TEST(Rcce, NaiveReduceSumsAtRoot) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const Layout layout(p);
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < p; ++r) {
    in.emplace_back(10, static_cast<double>(r + 1));
    out.emplace_back(10, 0.0);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, naive_reduce_program(machine.core(r), &layout,
                                           &in[static_cast<std::size_t>(r)],
                                           &out[static_cast<std::size_t>(r)],
                                           false));
  machine.run();
  const double want = p * (p + 1) / 2.0;
  for (double v : out[0]) EXPECT_DOUBLE_EQ(v, want);
}

TEST(Rcce, NaiveAllreduceGivesEveryoneTheSum) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const Layout layout(p);
  std::vector<std::vector<double>> in, out;
  for (int r = 0; r < p; ++r) {
    in.emplace_back(5, static_cast<double>(r));
    out.emplace_back(5, 0.0);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, naive_reduce_program(machine.core(r), &layout,
                                           &in[static_cast<std::size_t>(r)],
                                           &out[static_cast<std::size_t>(r)],
                                           true));
  machine.run();
  const double want = p * (p - 1) / 2.0;
  for (int r = 0; r < p; ++r)
    for (double v : out[static_cast<std::size_t>(r)])
      EXPECT_DOUBLE_EQ(v, want);
}

TEST(Rcce, PartialLineMessagesCostMore) {
  // The period-4 spike mechanism: 5 doubles need an extra transfer call
  // compared to 4 doubles even though only one extra line moves.
  const auto latency_for = [](std::size_t bytes) {
    machine::SccMachine machine(small_config());
    const Layout layout(machine.num_cores());
    std::vector<std::byte> data = pattern(bytes, 1);
    std::vector<std::byte> sink(bytes);
    machine.launch(0, sender(machine.core(0), &layout, &data, 5));
    machine.launch(5, receiver(machine.core(5), &layout, &sink, 0));
    machine.run();
    return machine.engine().now();
  };
  const SimTime full_line = latency_for(4 * sizeof(double));
  const SimTime spill = latency_for(5 * sizeof(double));
  const SimTime next_full = latency_for(8 * sizeof(double));
  EXPECT_GT(spill, full_line);
  // The spilled message is even more expensive than the next full line
  // because of the extra internal call on both sides.
  EXPECT_GT(spill, next_full);
}

}  // namespace
}  // namespace scc::rcce
