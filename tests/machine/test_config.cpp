// Pins the SccConfig defaults that the rest of the repo (and the committed
// bench baselines) assume. mpb_bug_workaround in particular has three
// sites that must agree: mem::HwCostModel's member default is THE
// authoritative value (true -- the paper's chip has the tile-arbiter bug),
// SccConfig::paper_default() inherits it unchanged, and
// SccConfig::bug_fixed() is the one deliberate opt-out. If any of the three
// drifts, every latency in the committed baselines silently shifts.
#include <gtest/gtest.h>

#include "machine/config.hpp"
#include "mem/cost_model.hpp"

namespace scc::machine {
namespace {

TEST(SccConfig, MpbBugWorkaroundDefaultsAgreeAcrossAllThreeSites) {
  EXPECT_TRUE(mem::HwCostModel{}.mpb_bug_workaround);
  EXPECT_TRUE(SccConfig{}.cost.hw.mpb_bug_workaround);
  EXPECT_TRUE(SccConfig::paper_default().cost.hw.mpb_bug_workaround);
  EXPECT_FALSE(SccConfig::bug_fixed().cost.hw.mpb_bug_workaround);
}

TEST(SccConfig, BugFixedDiffersFromPaperDefaultOnlyInTheWorkaround) {
  SccConfig fixed = SccConfig::bug_fixed();
  const SccConfig paper = SccConfig::paper_default();
  EXPECT_NE(fixed.cost.hw.mpb_bug_workaround,
            paper.cost.hw.mpb_bug_workaround);
  fixed.cost.hw.mpb_bug_workaround = paper.cost.hw.mpb_bug_workaround;
  // Everything else must match the paper machine (shape, clocks, faults).
  EXPECT_EQ(fixed.tiles_x, paper.tiles_x);
  EXPECT_EQ(fixed.tiles_y, paper.tiles_y);
  EXPECT_EQ(fixed.cores_per_tile, paper.cores_per_tile);
  EXPECT_EQ(fixed.faults, paper.faults);
}

TEST(SccConfig, PaperDefaultIsTheHealthy48CoreMachine) {
  const SccConfig config = SccConfig::paper_default();
  EXPECT_EQ(config.num_cores(), 48);
  EXPECT_TRUE(config.faults.empty());
  EXPECT_FALSE(config.cost.hw.model_link_contention);
  EXPECT_FALSE(config.perturb_seed.has_value());
}

}  // namespace
}  // namespace scc::machine
