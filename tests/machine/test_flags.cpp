#include "machine/flags.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace scc::machine {
namespace {

TEST(FlagFile, InitiallyZero) {
  sim::Engine engine;
  FlagFile flags(engine, 4, 8);
  for (int c = 0; c < 4; ++c)
    for (int i = 0; i < 8; ++i) EXPECT_EQ(flags.value({c, i}), 0);
}

TEST(FlagFile, DepositSetsValue) {
  sim::Engine engine;
  FlagFile flags(engine, 2, 4);
  flags.deposit({1, 2}, 7);
  EXPECT_EQ(flags.value({1, 2}), 7);
  EXPECT_EQ(flags.value({1, 1}), 0);
  EXPECT_EQ(flags.value({0, 2}), 0);
}

TEST(FlagFile, DepositAddAccumulatesAndWraps) {
  sim::Engine engine;
  FlagFile flags(engine, 1, 1);
  EXPECT_EQ(flags.deposit_add({0, 0}, 200), 200);
  EXPECT_EQ(flags.deposit_add({0, 0}, 100), 44);  // mod 256
}

sim::Task<> wait_for_value(FlagFile* flags, FlagRef ref, FlagValue v,
                           bool* done) {
  while (flags->value(ref) != v) co_await flags->waiters(ref).wait();
  *done = true;
}

TEST(FlagFile, DepositWakesWaiters) {
  sim::Engine engine;
  FlagFile flags(engine, 1, 1);
  bool done = false;
  engine.spawn(wait_for_value(&flags, {0, 0}, 3, &done), "waiter");
  engine.schedule_call(SimTime{100}, [&] { flags.deposit({0, 0}, 3); });
  engine.run();
  EXPECT_TRUE(done);
}

TEST(FlagFile, WrongValueKeepsWaiting) {
  sim::Engine engine;
  FlagFile flags(engine, 1, 1);
  bool done = false;
  engine.spawn(wait_for_value(&flags, {0, 0}, 3, &done), "waiter");
  engine.schedule_call(SimTime{100}, [&] { flags.deposit({0, 0}, 2); });
  EXPECT_FALSE(engine.run_detect_deadlock());
  EXPECT_FALSE(done);
}

TEST(FlagFileDeath, OutOfRangeRejected) {
  sim::Engine engine;
  FlagFile flags(engine, 2, 4);
  EXPECT_DEATH(flags.deposit({2, 0}, 1), "precondition");
  EXPECT_DEATH(flags.deposit({0, 4}, 1), "precondition");
  EXPECT_DEATH(flags.deposit({-1, 0}, 1), "precondition");
}

}  // namespace
}  // namespace scc::machine
