#include "machine/core_api.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "machine/scc_machine.hpp"

namespace scc::machine {
namespace {

SccConfig small_config() {
  SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;
  return config;  // 8 cores
}

sim::Task<> compute_program(CoreApi& api, std::uint64_t cycles,
                            SimTime* elapsed) {
  const SimTime start = api.now();
  co_await api.compute(cycles);
  *elapsed = api.now() - start;
}

TEST(CoreApi, ComputeAdvancesTimeByCoreCycles) {
  SccMachine machine(small_config());
  SimTime elapsed;
  machine.launch(0, compute_program(machine.core(0), 533, &elapsed));
  machine.run();
  EXPECT_NEAR(elapsed.us(), 1.0, 1e-6);  // 533 cycles at 533 MHz = 1 us
}

TEST(CoreApi, ComputeAttributedToProfile) {
  SccMachine machine(small_config());
  SimTime elapsed;
  machine.launch(0, compute_program(machine.core(0), 1000, &elapsed));
  machine.run();
  EXPECT_EQ(machine.core(0).profile().get(Phase::kCompute), elapsed);
  EXPECT_EQ(machine.core(0).profile().get(Phase::kSwOverhead),
            SimTime::zero());
}

sim::Task<> put_get_program(CoreApi& api, std::vector<std::byte>* out) {
  std::vector<std::byte> data(64);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i);
  co_await api.mpb_put({3, 128}, data);
  out->resize(64);
  co_await api.mpb_get({3, 128}, *out);
}

TEST(CoreApi, MpbPutGetMovesRealBytes) {
  SccMachine machine(small_config());
  std::vector<std::byte> out;
  machine.launch(0, put_get_program(machine.core(0), &out));
  machine.run();
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<std::byte>(i));
  EXPECT_GT(machine.core(0).profile().get(Phase::kMpbTransfer),
            SimTime::zero());
}

TEST(CoreApi, RemoteMpbTrafficRecorded) {
  SccMachine machine(small_config());
  std::vector<std::byte> out;
  machine.launch(0, put_get_program(machine.core(0), &out));
  machine.run();
  // Core 0 -> core 3's MPB (different tile): 2 lines each way.
  EXPECT_EQ(machine.traffic().total_lines_sent(), 4u);
}

sim::Task<> flag_producer(CoreApi& api, FlagRef ref) {
  co_await api.compute(1000);
  co_await api.flag_set(ref, 1);
}

sim::Task<> flag_consumer(CoreApi& api, FlagRef ref, SimTime* when) {
  co_await api.flag_wait(ref, 1);
  *when = api.now();
}

TEST(CoreApi, FlagWaitBlocksUntilSet) {
  SccMachine machine(small_config());
  const FlagRef ref{1, 0};
  SimTime when;
  machine.launch(0, flag_producer(machine.core(0), ref));
  machine.launch(1, flag_consumer(machine.core(1), ref, &when));
  machine.run();
  // Consumer finished only after the producer's 1000 compute cycles plus
  // the flag write and detection charges.
  EXPECT_GT(when, Clock{533e6}.cycles(1000));
  EXPECT_GT(machine.core(1).profile().get(Phase::kFlagWait), SimTime::zero());
}

sim::Task<> wait_change_program(CoreApi& api, FlagRef ref, FlagValue* seen) {
  *seen = co_await api.flag_wait_change(ref, 0);
}

TEST(CoreApi, FlagWaitChangeReturnsNewValue) {
  SccMachine machine(small_config());
  const FlagRef ref{1, 3};
  FlagValue seen = 0;
  machine.launch(1, wait_change_program(machine.core(1), ref, &seen));
  machine.launch(0, flag_producer(machine.core(0), ref));
  machine.run();
  EXPECT_EQ(seen, 1);
}

sim::Task<> priv_toucher(CoreApi& api, const std::vector<double>* buf,
                         SimTime* cold, SimTime* warm) {
  SimTime t0 = api.now();
  co_await api.priv_read(buf->data(), buf->size() * sizeof(double));
  *cold = api.now() - t0;
  t0 = api.now();
  co_await api.priv_read(buf->data(), buf->size() * sizeof(double));
  *warm = api.now() - t0;
}

TEST(CoreApi, PrivateMemoryCachesAfterFirstTouch) {
  // The paper's Section IV-D argument: only the first access goes off-chip.
  SccMachine machine(small_config());
  std::vector<double> buf(256);
  SimTime cold, warm;
  machine.launch(0, priv_toucher(machine.core(0), &buf, &cold, &warm));
  machine.run();
  EXPECT_GT(cold, warm * 2);
}

sim::Task<> barrier_program(CoreApi& api, std::uint64_t pre_cycles,
                            SimTime* after) {
  co_await api.compute(pre_cycles);
  co_await api.sync_barrier();
  *after = api.now();
}

TEST(CoreApi, SyncBarrierAlignsAllCores) {
  SccMachine machine(small_config());
  const int p = machine.num_cores();
  std::vector<SimTime> after(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    machine.launch(r, barrier_program(machine.core(r),
                                      static_cast<std::uint64_t>(r) * 100,
                                      &after[static_cast<std::size_t>(r)]));
  }
  machine.run();
  for (int r = 1; r < p; ++r)
    EXPECT_EQ(after[static_cast<std::size_t>(r)], after[0]);
  // All resumed at the slowest core's arrival time.
  EXPECT_EQ(after[0], Clock{533e6}.cycles(static_cast<std::uint64_t>(p - 1) * 100));
}

TEST(Machine, FlushCachesRestoresColdState) {
  SccMachine machine(small_config());
  std::vector<double> buf(64);
  SimTime cold1, warm;
  machine.launch(0, priv_toucher(machine.core(0), &buf, &cold1, &warm));
  machine.run();
  machine.flush_caches();
  EXPECT_EQ(machine.cache(0).resident_lines(), 0u);
}

TEST(Machine, PaperDefaultHas48Cores) {
  SccMachine machine;
  EXPECT_EQ(machine.num_cores(), 48);
  EXPECT_TRUE(machine.config().cost.hw.mpb_bug_workaround);
}

TEST(Machine, BugFixedConfigDisablesWorkaround) {
  SccMachine machine(SccConfig::bug_fixed());
  EXPECT_FALSE(machine.config().cost.hw.mpb_bug_workaround);
}

}  // namespace
}  // namespace scc::machine
