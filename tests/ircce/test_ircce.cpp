#include "ircce/ircce.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "machine/scc_machine.hpp"

namespace scc::ircce {
namespace {

machine::SccConfig small_config() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;  // 8 cores
  return config;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 7 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

sim::Task<> isend_wait(machine::CoreApi& api, const rcce::Layout* layout,
                       const std::vector<std::byte>* data, int dest) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.isend(*data, dest);
  co_await ircce.wait(id);
  EXPECT_EQ(ircce.pending_requests(), 0u);
}

sim::Task<> irecv_wait(machine::CoreApi& api, const rcce::Layout* layout,
                       std::vector<std::byte>* data, int src) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.irecv(*data, src);
  co_await ircce.wait(id);
}

TEST(Ircce, BasicTransfer) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(500, 3);
  std::vector<std::byte> received(500);
  machine.launch(0, isend_wait(machine.core(0), &layout, &data, 6));
  machine.launch(6, irecv_wait(machine.core(6), &layout, &received, 0));
  machine.run();
  EXPECT_EQ(received, data);
}

TEST(Ircce, OversizedMessageChunks) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(15000, 5);  // > one MPB chunk
  std::vector<std::byte> received(15000);
  machine.launch(0, isend_wait(machine.core(0), &layout, &data, 1));
  machine.launch(1, irecv_wait(machine.core(1), &layout, &received, 0));
  machine.run();
  EXPECT_EQ(received, data);
}

sim::Task<> two_isends(machine::CoreApi& api, const rcce::Layout* layout,
                       const std::vector<std::byte>* a,
                       const std::vector<std::byte>* b, int dest) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  // Two outstanding sends to one destination: FIFO staging discipline.
  const RequestId id_a = co_await ircce.isend(*a, dest);
  const RequestId id_b = co_await ircce.isend(*b, dest);
  const std::array<RequestId, 2> ids{id_a, id_b};
  co_await ircce.wait_all(ids);
}

sim::Task<> two_irecvs(machine::CoreApi& api, const rcce::Layout* layout,
                       std::vector<std::byte>* a, std::vector<std::byte>* b,
                       int src) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id_a = co_await ircce.irecv(*a, src);
  const RequestId id_b = co_await ircce.irecv(*b, src);
  co_await ircce.wait(id_a);
  co_await ircce.wait(id_b);
}

TEST(Ircce, MultipleOutstandingSendsArriveInOrder) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto first = pattern(100, 1);
  const auto second = pattern(100, 2);
  std::vector<std::byte> r1(100), r2(100);
  machine.launch(0, two_isends(machine.core(0), &layout, &first, &second, 2));
  machine.launch(2, two_irecvs(machine.core(2), &layout, &r1, &r2, 0));
  machine.run();
  EXPECT_EQ(r1, first);
  EXPECT_EQ(r2, second);
}

sim::Task<> wildcard_recv(machine::CoreApi& api, const rcce::Layout* layout,
                          std::vector<std::byte>* data, int* source) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.irecv(*data, kAnySource);
  co_await ircce.wait(id);
  *source = ircce.source_of(id);
}

sim::Task<> delayed_send(machine::CoreApi& api, const rcce::Layout* layout,
                         const std::vector<std::byte>* data, int dest,
                         std::uint64_t delay_cycles) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  co_await api.compute(delay_cycles);
  const RequestId id = co_await ircce.isend(*data, dest);
  co_await ircce.wait(id);
}

TEST(Ircce, WildcardReceiveResolvesSource) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(64, 8);
  std::vector<std::byte> received(64);
  int source = -2;
  machine.launch(4, wildcard_recv(machine.core(4), &layout, &received, &source));
  machine.launch(7, delayed_send(machine.core(7), &layout, &data, 4, 5000));
  machine.run();
  EXPECT_EQ(received, data);
  EXPECT_EQ(source, 7);
}

sim::Task<> cancel_unstarted(machine::CoreApi& api,
                             const rcce::Layout* layout, bool* cancelled) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  std::vector<std::byte> buf(32);
  const RequestId id = co_await ircce.irecv(buf, 3);
  *cancelled = co_await ircce.cancel(id);
  EXPECT_EQ(ircce.pending_requests(), 0u);
}

TEST(Ircce, CancelPendingRecv) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  bool cancelled = false;
  machine.launch(0, cancel_unstarted(machine.core(0), &layout, &cancelled));
  machine.run();
  EXPECT_TRUE(cancelled);
}

sim::Task<> cancel_staged_send(machine::CoreApi& api,
                               const rcce::Layout* layout,
                               const std::vector<std::byte>* data,
                               bool* cancelled) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.isend(*data, 3);
  // isend stages immediately (chunk free) -> already on the wire.
  *cancelled = co_await ircce.cancel(id);
  co_await ircce.wait(id);
}

sim::Task<> plain_recv(machine::CoreApi& api, const rcce::Layout* layout,
                       std::vector<std::byte>* data, int src) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.irecv(*data, src);
  co_await ircce.wait(id);
}

TEST(Ircce, CannotCancelStagedSend) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(64, 4);
  std::vector<std::byte> received(64);
  bool cancelled = true;
  machine.launch(0, cancel_staged_send(machine.core(0), &layout, &data,
                                       &cancelled));
  machine.launch(3, plain_recv(machine.core(3), &layout, &received, 0));
  machine.run();
  EXPECT_FALSE(cancelled);
  EXPECT_EQ(received, data);
}

sim::Task<> test_until_done(machine::CoreApi& api, const rcce::Layout* layout,
                            std::vector<std::byte>* data, int src,
                            int* test_calls) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.irecv(*data, src);
  *test_calls = 0;
  while (!co_await ircce.test(id)) {
    ++*test_calls;
    co_await api.compute(500);
  }
}

TEST(Ircce, TestPollsUntilCompletion) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(64, 4);
  std::vector<std::byte> received(64);
  int test_calls = -1;
  machine.launch(0, test_until_done(machine.core(0), &layout, &received, 5,
                                    &test_calls));
  machine.launch(5, delayed_send(machine.core(5), &layout, &data, 0, 50000));
  machine.run();
  EXPECT_EQ(received, data);
  EXPECT_GT(test_calls, 0);  // the sender was delayed, so test() failed first
}

TEST(Ircce, TestOnUnknownIdIsTrue) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  bool result = false;
  struct Probe {
    static sim::Task<> run(machine::CoreApi& api, const rcce::Layout* l,
                           bool* out) {
      rcce::Rcce rcce(api, *l);
      Ircce ircce(rcce);
      *out = co_await ircce.test(RequestId{999});
    }
  };
  machine.launch(0, Probe::run(machine.core(0), &layout, &result));
  machine.run();
  EXPECT_TRUE(result);
}

}  // namespace
}  // namespace scc::ircce
