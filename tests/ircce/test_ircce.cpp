#include "ircce/ircce.hpp"

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "machine/scc_machine.hpp"

namespace scc::ircce {
namespace {

machine::SccConfig small_config() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;  // 8 cores
  return config;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 7 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

sim::Task<> isend_wait(machine::CoreApi& api, const rcce::Layout* layout,
                       const std::vector<std::byte>* data, int dest) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.isend(*data, dest);
  co_await ircce.wait(id);
  EXPECT_EQ(ircce.pending_requests(), 0u);
}

sim::Task<> irecv_wait(machine::CoreApi& api, const rcce::Layout* layout,
                       std::vector<std::byte>* data, int src) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.irecv(*data, src);
  co_await ircce.wait(id);
}

TEST(Ircce, BasicTransfer) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(500, 3);
  std::vector<std::byte> received(500);
  machine.launch(0, isend_wait(machine.core(0), &layout, &data, 6));
  machine.launch(6, irecv_wait(machine.core(6), &layout, &received, 0));
  machine.run();
  EXPECT_EQ(received, data);
}

TEST(Ircce, OversizedMessageChunks) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(15000, 5);  // > one MPB chunk
  std::vector<std::byte> received(15000);
  machine.launch(0, isend_wait(machine.core(0), &layout, &data, 1));
  machine.launch(1, irecv_wait(machine.core(1), &layout, &received, 0));
  machine.run();
  EXPECT_EQ(received, data);
}

sim::Task<> two_isends(machine::CoreApi& api, const rcce::Layout* layout,
                       const std::vector<std::byte>* a,
                       const std::vector<std::byte>* b, int dest) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  // Two outstanding sends to one destination: FIFO staging discipline.
  const RequestId id_a = co_await ircce.isend(*a, dest);
  const RequestId id_b = co_await ircce.isend(*b, dest);
  const std::array<RequestId, 2> ids{id_a, id_b};
  co_await ircce.wait_all(ids);
}

sim::Task<> two_irecvs(machine::CoreApi& api, const rcce::Layout* layout,
                       std::vector<std::byte>* a, std::vector<std::byte>* b,
                       int src) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id_a = co_await ircce.irecv(*a, src);
  const RequestId id_b = co_await ircce.irecv(*b, src);
  co_await ircce.wait(id_a);
  co_await ircce.wait(id_b);
}

TEST(Ircce, MultipleOutstandingSendsArriveInOrder) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto first = pattern(100, 1);
  const auto second = pattern(100, 2);
  std::vector<std::byte> r1(100), r2(100);
  machine.launch(0, two_isends(machine.core(0), &layout, &first, &second, 2));
  machine.launch(2, two_irecvs(machine.core(2), &layout, &r1, &r2, 0));
  machine.run();
  EXPECT_EQ(r1, first);
  EXPECT_EQ(r2, second);
}

sim::Task<> wildcard_recv(machine::CoreApi& api, const rcce::Layout* layout,
                          std::vector<std::byte>* data, int* source) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.irecv(*data, kAnySource);
  co_await ircce.wait(id);
  *source = ircce.source_of(id);
}

sim::Task<> delayed_send(machine::CoreApi& api, const rcce::Layout* layout,
                         const std::vector<std::byte>* data, int dest,
                         std::uint64_t delay_cycles) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  co_await api.compute(delay_cycles);
  const RequestId id = co_await ircce.isend(*data, dest);
  co_await ircce.wait(id);
}

TEST(Ircce, WildcardReceiveResolvesSource) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(64, 8);
  std::vector<std::byte> received(64);
  int source = -2;
  machine.launch(4, wildcard_recv(machine.core(4), &layout, &received, &source));
  machine.launch(7, delayed_send(machine.core(7), &layout, &data, 4, 5000));
  machine.run();
  EXPECT_EQ(received, data);
  EXPECT_EQ(source, 7);
}

sim::Task<> cancel_unstarted(machine::CoreApi& api,
                             const rcce::Layout* layout, bool* cancelled) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  std::vector<std::byte> buf(32);
  const RequestId id = co_await ircce.irecv(buf, 3);
  *cancelled = co_await ircce.cancel(id);
  EXPECT_EQ(ircce.pending_requests(), 0u);
}

TEST(Ircce, CancelPendingRecv) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  bool cancelled = false;
  machine.launch(0, cancel_unstarted(machine.core(0), &layout, &cancelled));
  machine.run();
  EXPECT_TRUE(cancelled);
}

sim::Task<> cancel_staged_send(machine::CoreApi& api,
                               const rcce::Layout* layout,
                               const std::vector<std::byte>* data,
                               bool* cancelled) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.isend(*data, 3);
  // isend stages immediately (chunk free) -> already on the wire.
  *cancelled = co_await ircce.cancel(id);
  co_await ircce.wait(id);
}

sim::Task<> plain_recv(machine::CoreApi& api, const rcce::Layout* layout,
                       std::vector<std::byte>* data, int src) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.irecv(*data, src);
  co_await ircce.wait(id);
}

TEST(Ircce, CannotCancelStagedSend) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(64, 4);
  std::vector<std::byte> received(64);
  bool cancelled = true;
  machine.launch(0, cancel_staged_send(machine.core(0), &layout, &data,
                                       &cancelled));
  machine.launch(3, plain_recv(machine.core(3), &layout, &received, 0));
  machine.run();
  EXPECT_FALSE(cancelled);
  EXPECT_EQ(received, data);
}

sim::Task<> test_until_done(machine::CoreApi& api, const rcce::Layout* layout,
                            std::vector<std::byte>* data, int src,
                            int* test_calls) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId id = co_await ircce.irecv(*data, src);
  *test_calls = 0;
  while (!co_await ircce.test(id)) {
    ++*test_calls;
    co_await api.compute(500);
  }
}

TEST(Ircce, TestPollsUntilCompletion) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(64, 4);
  std::vector<std::byte> received(64);
  int test_calls = -1;
  machine.launch(0, test_until_done(machine.core(0), &layout, &received, 5,
                                    &test_calls));
  machine.launch(5, delayed_send(machine.core(5), &layout, &data, 0, 50000));
  machine.run();
  EXPECT_EQ(received, data);
  EXPECT_GT(test_calls, 0);  // the sender was delayed, so test() failed first
}

// --- FIFO-fair wildcard/directed matching (regression) -------------------
//
// MPI envelope order: a staged message belongs to the EARLIEST still-posted
// receive that can match its source. Before the fix, whichever request was
// polled first claimed the channel head -- a later directed receive could
// steal the message an earlier wildcard was owed (and vice versa), flipping
// the completion set with perturbation seeds.

struct FifoFairResult {
  std::vector<std::byte> wdata, ddata;
  int wsource = -2;
  bool directed_test_while_blocked = true;
};

sim::Task<> wildcard_then_directed(machine::CoreApi& api,
                                   const rcce::Layout* layout,
                                   FifoFairResult* out, int src) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId w = co_await ircce.irecv(out->wdata, kAnySource);
  const RequestId d = co_await ircce.irecv(out->ddata, src);
  // Let the sender stage its first message, then probe the DIRECTED
  // request: the channel head belongs to the earlier wildcard, so test()
  // must answer false rather than steal it or drain the blocker.
  co_await api.compute(50000);
  out->directed_test_while_blocked = co_await ircce.test(d);
  co_await ircce.wait(w);
  out->wsource = ircce.source_of(w);
  co_await ircce.wait(d);
}

TEST(Ircce, WildcardPostedFirstKeepsTheChannelHead) {
  const auto m1 = pattern(64, 11);
  const auto m2 = pattern(64, 22);
  // Identical outcome unperturbed and under every perturbation seed: the
  // matching rule is part of the protocol, not of the schedule.
  for (const std::optional<std::uint64_t> seed :
       {std::optional<std::uint64_t>{}, std::optional<std::uint64_t>{1},
        std::optional<std::uint64_t>{2}, std::optional<std::uint64_t>{3}}) {
    machine::SccConfig config = small_config();
    config.perturb_seed = seed;
    machine::SccMachine machine(config);
    const rcce::Layout layout(machine.num_cores());
    FifoFairResult out;
    out.wdata.resize(64);
    out.ddata.resize(64);
    machine.launch(0, wildcard_then_directed(machine.core(0), &layout, &out,
                                             /*src=*/1));
    machine.launch(1, two_isends(machine.core(1), &layout, &m1, &m2, 0));
    machine.run();
    const std::string tag =
        seed ? "seed " + std::to_string(*seed) : "unperturbed";
    EXPECT_FALSE(out.directed_test_while_blocked) << tag;
    EXPECT_EQ(out.wdata, m1) << tag;  // wildcard posted first -> first msg
    EXPECT_EQ(out.wsource, 1) << tag;
    EXPECT_EQ(out.ddata, m2) << tag;  // directed gets the second
  }
}

sim::Task<> directed_then_wildcard(machine::CoreApi& api,
                                   const rcce::Layout* layout,
                                   FifoFairResult* out, int claimed_src) {
  rcce::Rcce rcce(api, *layout);
  Ircce ircce(rcce);
  const RequestId d = co_await ircce.irecv(out->ddata, claimed_src);
  const RequestId w = co_await ircce.irecv(out->wdata, kAnySource);
  // Wait on the wildcard FIRST, with claimed_src's message already staged
  // and tempting: the channel head belongs to the earlier directed
  // receive, so the wildcard must poll past it and take the other sender.
  co_await api.compute(50000);
  co_await ircce.wait(w);
  out->wsource = ircce.source_of(w);
  co_await ircce.wait(d);
}

TEST(Ircce, LaterWildcardSkipsChannelsClaimedByDirectedRecvs) {
  const auto claimed = pattern(64, 33);
  const auto other = pattern(64, 44);
  for (const std::optional<std::uint64_t> seed :
       {std::optional<std::uint64_t>{}, std::optional<std::uint64_t>{1},
        std::optional<std::uint64_t>{2}, std::optional<std::uint64_t>{3}}) {
    machine::SccConfig config = small_config();
    config.perturb_seed = seed;
    machine::SccMachine machine(config);
    const rcce::Layout layout(machine.num_cores());
    FifoFairResult out;
    out.wdata.resize(64);
    out.ddata.resize(64);
    machine.launch(0, directed_then_wildcard(machine.core(0), &layout, &out,
                                             /*claimed_src=*/1));
    // Rank 1's message arrives first; rank 5's much later. The wildcard
    // must still end up with rank 5's.
    machine.launch(1, delayed_send(machine.core(1), &layout, &claimed, 0, 0));
    machine.launch(5,
                   delayed_send(machine.core(5), &layout, &other, 0, 200000));
    machine.run();
    const std::string tag =
        seed ? "seed " + std::to_string(*seed) : "unperturbed";
    EXPECT_EQ(out.wsource, 5) << tag;
    EXPECT_EQ(out.wdata, other) << tag;
    EXPECT_EQ(out.ddata, claimed) << tag;
  }
}

TEST(Ircce, TestOnUnknownIdIsTrue) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  bool result = false;
  struct Probe {
    static sim::Task<> run(machine::CoreApi& api, const rcce::Layout* l,
                           bool* out) {
      rcce::Rcce rcce(api, *l);
      Ircce ircce(rcce);
      *out = co_await ircce.test(RequestId{999});
    }
  };
  machine.launch(0, Probe::run(machine.core(0), &layout, &result));
  machine.run();
  EXPECT_TRUE(result);
}

}  // namespace
}  // namespace scc::ircce
