// Unit tests for the conservative-PDES coordinator: window protocol
// semantics, the deterministic (target, source, FIFO) merge, the enforced
// lookahead contract, root-task bookkeeping, and the lookahead derivation
// helpers in noc::Topology / mem::LatencyCalculator / machine::.
#include "sim/pdes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/fault_model.hpp"
#include "machine/scc_machine.hpp"
#include "mem/cost_model.hpp"
#include "mem/latency.hpp"
#include "noc/topology.hpp"
#include "sim/wait_queue.hpp"

namespace scc::sim {
namespace {

// Free coroutine functions (not lambdas): parameters are copied into the
// frame, so nothing dangles once the spawning statement ends.
Task<> sleep_then_throw(Engine* engine) {
  co_await engine->sleep_for(SimTime{5});
  throw std::runtime_error("partition-0 root boom");
}

Task<> waits_forever(WaitQueue* queue) { co_await queue->wait(); }

PdesConfig two_partitions(SimTime lookahead = SimTime{100}) {
  PdesConfig config;
  config.partitions = 2;
  config.workers = 2;
  config.lookahead = lookahead;
  return config;
}

TEST(PdesEngine, SinglePartitionMatchesPlainEngine) {
  const auto schedule = [](Engine& engine, std::vector<int>* order) {
    for (int i = 0; i < 16; ++i) {
      engine.schedule_call(SimTime{static_cast<std::uint64_t>(
                               (i * 37) % 7 + 1)},
                           [order, i] { order->push_back(i); });
    }
  };
  Engine plain;
  std::vector<int> plain_order;
  schedule(plain, &plain_order);
  plain.run();

  PdesConfig config;
  config.partitions = 1;
  config.lookahead = SimTime{5};
  PdesEngine pdes(config);
  std::vector<int> pdes_order;
  schedule(pdes.partition(0), &pdes_order);
  pdes.run();

  EXPECT_EQ(pdes_order, plain_order);
  EXPECT_EQ(pdes.events_processed(), plain.events_processed());
  EXPECT_EQ(pdes.now(), plain.now());
}

TEST(PdesEngine, CrossPartitionPostsRunAtTheirTimestamp) {
  PdesEngine pdes(two_partitions());
  std::vector<std::string> log;
  pdes.partition(0).schedule_call(SimTime{10}, [&] {
    const SimTime when = pdes.partition(0).now() + pdes.lookahead();
    pdes.post(0, 1, when, [&] {
      log.push_back("remote@" +
                    std::to_string(pdes.partition(1).now().femtoseconds()));
    });
    log.push_back("local");
  });
  pdes.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "local");
  EXPECT_EQ(log[1], "remote@110");
  EXPECT_EQ(pdes.stats().posts_delivered, 1u);
  EXPECT_GE(pdes.stats().windows, 1u);
}

TEST(PdesEngine, SamePartitionPostDegeneratesToScheduleCall) {
  // A same-partition post needs no conservatism: it may land inside the
  // current window, closer than the lookahead.
  PdesEngine pdes(two_partitions());
  bool ran = false;
  pdes.partition(0).schedule_call(SimTime{10}, [&] {
    pdes.post(0, 0, pdes.partition(0).now() + SimTime{1},
              [&] { ran = true; });
  });
  pdes.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(pdes.stats().posts_delivered, 0u);  // never crossed an outbox
}

TEST(PdesEngine, SetupPostsBeforeRunAreDelivered) {
  // post() before run(), with every heap still empty: the stray-post merge
  // must seed the heaps rather than losing the events.
  PdesEngine pdes(two_partitions());
  std::vector<int> order;
  pdes.post(0, 1, SimTime{50}, [&] { order.push_back(1); });
  pdes.post(1, 0, SimTime{20}, [&] { order.push_back(0); });
  pdes.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(pdes.stats().posts_delivered, 2u);
}

TEST(PdesEngine, MergeOrderIsSourceFifoPerTarget) {
  // Two sources post equal-timestamp events into partition 2 during the
  // same window; the merge must enqueue them in (source, FIFO) order, so
  // the target's tie-break fires source 0's posts first -- regardless of
  // which worker drained which source when.
  PdesConfig config;
  config.partitions = 3;
  config.workers = 3;
  config.lookahead = SimTime{100};
  PdesEngine pdes(config);
  std::vector<std::string> order;
  const SimTime when{200};  // >= horizon of the t=10 window either way
  pdes.partition(1).schedule_call(SimTime{10}, [&] {
    pdes.post(1, 2, when, [&] { order.push_back("s1a"); });
    pdes.post(1, 2, when, [&] { order.push_back("s1b"); });
  });
  pdes.partition(0).schedule_call(SimTime{10}, [&] {
    pdes.post(0, 2, when, [&] { order.push_back("s0a"); });
    pdes.post(0, 2, when, [&] { order.push_back("s0b"); });
  });
  pdes.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"s0a", "s0b", "s1a", "s1b"}));
}

TEST(PdesEngine, ChainedWindowsAdvanceAcrossPartitions) {
  // Ping-pong: each delivery posts back, always lookahead ahead. The
  // window loop must keep making progress until the chain runs out.
  PdesEngine pdes(two_partitions(SimTime{10}));
  int deliveries = 0;
  struct Bouncer {
    PdesEngine* pdes;
    int* count;
    void bounce(int from, int hops_left) const {
      if (hops_left == 0) return;
      const int to = 1 - from;
      const SimTime when = pdes->partition(from).now() + pdes->lookahead();
      const Bouncer self = *this;
      pdes->post(from, to, when, [self, to, hops_left] {
        ++*self.count;
        self.bounce(to, hops_left - 1);
      });
    }
  };
  const Bouncer bouncer{&pdes, &deliveries};
  pdes.partition(0).schedule_call(SimTime{1},
                                  [&] { bouncer.bounce(0, 32); });
  pdes.run();
  EXPECT_EQ(deliveries, 32);
  EXPECT_EQ(pdes.stats().posts_delivered, 32u);
  EXPECT_GE(pdes.stats().windows, 32u);  // each hop needs a fresh window
  EXPECT_EQ(pdes.now(), SimTime{1} + SimTime{10} * 32u);
}

TEST(PdesEngine, RootTasksRunAndExceptionsSurface) {
  PdesEngine pdes(two_partitions());
  pdes.partition(0).spawn(sleep_then_throw(&pdes.partition(0)), "p0-root");
  EXPECT_THROW(pdes.run(), std::runtime_error);
}

TEST(PdesEngine, DeadlockedRootsAreDiagnosed) {
  PdesEngine pdes(two_partitions());
  WaitQueue queue(pdes.partition(1));
  pdes.partition(1).spawn(waits_forever(&queue), "stuck-p1");
  try {
    pdes.run();
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stuck-p1"), std::string::npos);
  }
}

TEST(PdesEngineDeathTest, LookaheadContractViolationAborts) {
  // Posting closer than the lookahead is a correctness bug (the window
  // already executed past that time on the target); the merge must abort,
  // not silently reorder.
  EXPECT_DEATH(
      {
        PdesEngine pdes(two_partitions(SimTime{100}));
        pdes.partition(0).schedule_call(SimTime{10}, [&] {
          pdes.post(0, 1, pdes.partition(0).now() + SimTime{1}, [] {});
        });
        pdes.run();
      },
      "precondition");
}

TEST(PdesEngineDeathTest, ZeroLookaheadIsRejected) {
  EXPECT_DEATH(
      {
        PdesConfig config;
        config.partitions = 2;
        config.lookahead = SimTime::zero();
        PdesEngine pdes(config);
      },
      "precondition");
}

TEST(PdesLookahead, TopologyPartitionsAreBalancedColumnSlabs) {
  const noc::Topology topo(8, 4, 1);
  int last = 0;
  std::vector<int> cores_per_partition(4, 0);
  for (int core = 0; core < topo.num_cores(); ++core) {
    const int p = topo.partition_of(core, 4);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
    // Column slabs: partition is a function of x only, monotone in x.
    EXPECT_EQ(p, topo.coord_of(core).x * 4 / topo.tiles_x());
    last = p;
    ++cores_per_partition[static_cast<std::size_t>(p)];
  }
  EXPECT_EQ(last, 3);
  for (const int count : cores_per_partition) EXPECT_EQ(count, 8);
  EXPECT_EQ(topo.min_partition_separation_hops(1), 0);
  EXPECT_EQ(topo.min_partition_separation_hops(4), 1);
}

/// Brute-forced minimum cross-partition interaction charge: the smallest
/// value any cross-post's lookahead audit compares against, recomputed
/// here from the public LatencyCalculator formulas (reads pay the slab
/// boundary twice -- request and owner-side copy-out -- so they bound the
/// lookahead at half weight).
SimTime min_cross_partition_charge(const mem::LatencyCalculator& latency,
                                   const noc::Topology& topo,
                                   int partitions) {
  SimTime best = SimTime::max();
  for (int a = 0; a < topo.num_cores(); ++a) {
    for (int b = 0; b < topo.num_cores(); ++b) {
      if (topo.partition_of(a, partitions) ==
          topo.partition_of(b, partitions)) {
        continue;
      }
      const SimTime write = latency.mpb_line_access(a, b, /*is_read=*/false);
      const SimTime word = latency.mpb_word_stream(
          a, b, sizeof(std::uint32_t), /*is_read=*/false);
      const SimTime half_read =
          SimTime{latency.mpb_line_access(a, b, /*is_read=*/true)
                      .femtoseconds() /
                  2};
      const SimTime half_word =
          SimTime{latency.mpb_word_stream(a, b, sizeof(std::uint32_t),
                                          /*is_read=*/true)
                      .femtoseconds() /
                  2};
      best = std::min({best, write, word, half_read, half_word});
    }
  }
  return best;
}

TEST(PdesLookahead, MachineLookaheadTightensAboveHopFloor) {
  const noc::Topology topo(6, 4, 2);
  const mem::HwCostModel hw;
  const mem::LatencyCalculator latency(hw, topo);
  const SimTime hop = hw.mesh_clock().cycles(hw.mesh_cycles_per_hop);
  const SimTime lookahead = machine::pdes_lookahead(latency, topo, 4);
  // Partitioned: the bound is the true minimum cross-partition interaction
  // charge, which includes the MPB access cost on top of the transit and
  // therefore sits strictly above the pure hop floor the seed used.
  EXPECT_GT(lookahead, hop);
  EXPECT_EQ(lookahead, min_cross_partition_charge(latency, topo, 4));
  // Single partition: no boundary to audit against; the positive hop floor
  // keeps PdesConfig's lookahead > 0 precondition satisfied.
  EXPECT_EQ(machine::pdes_lookahead(latency, topo, 1), hop);
}

TEST(PdesLookahead, MachineLookaheadClampsToFaultEffectiveCharges) {
  const noc::Topology topo(6, 4, 2);
  const mem::HwCostModel hw;
  const mem::LatencyCalculator healthy(hw, topo);

  // Slow every link and throttle every core: all cross-partition charges
  // rise, so the fault-effective bound must rise with them -- but never
  // above the smallest charge an audit will actually see.
  faults::FaultSpec spec;
  for (int x = 0; x < topo.tiles_x() - 1; ++x) {
    for (int y = 0; y < topo.tiles_y(); ++y) {
      spec.slow_links.push_back({{{x, y}, {x + 1, y}}, 3.0});
    }
  }
  for (int core = 0; core < topo.num_cores(); ++core) {
    spec.stragglers.push_back({core, 2.0});
  }
  const faults::FaultModel faults(spec, topo);
  const mem::LatencyCalculator degraded(hw, topo, &faults);

  const SimTime healthy_bound = machine::pdes_lookahead(healthy, topo, 4);
  const SimTime fault_bound = machine::pdes_lookahead(degraded, topo, 4);
  EXPECT_GE(fault_bound, healthy_bound);
  EXPECT_GT(fault_bound, healthy_bound);  // every boundary link is slowed
  EXPECT_EQ(fault_bound, min_cross_partition_charge(degraded, topo, 4));
}

TEST(PdesLookaheadDeathTest, SpeedupFaultFactorsAreRejected) {
  // The lookahead stays a LOWER bound under faults only because fault
  // factors can never accelerate a charge. A factor < 1 must be rejected
  // at FaultModel construction, not discovered as a lookahead-contract
  // abort mid-drain.
  const noc::Topology topo(6, 4, 2);
  faults::FaultSpec spec;
  spec.stragglers.push_back({0, 0.5});
  const auto error = faults::FaultModel::check(spec, topo);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("must be >= 1"), std::string::npos);
  EXPECT_DEATH({ const faults::FaultModel model(spec, topo); }, "");
}

}  // namespace
}  // namespace scc::sim
