// Unit tests for the engine's hot-path building blocks: the move-based
// event heap (pop order must equal std::priority_queue's under a total
// order) and the small-buffer move-only callable that replaced
// std::function per event.
#include "sim/event_heap.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/callable.hpp"

namespace scc::sim {
namespace {

TEST(MoveHeap, PopsAscendingUnderTotalOrder) {
  MoveHeap<int, std::greater<>> heap;
  Xoshiro256 rng(7);
  std::vector<int> values;
  for (int i = 0; i < 1000; ++i)
    values.push_back(static_cast<int>(rng.below(1 << 20)));
  for (int v : values) heap.push(std::move(v));
  ASSERT_EQ(heap.size(), values.size());
  int prev = -1;
  while (!heap.empty()) {
    const int got = heap.pop_min();
    EXPECT_LE(prev, got);
    prev = got;
  }
}

TEST(MoveHeap, MatchesPriorityQueuePopOrderUnderInterleavedChurn) {
  // The engine interleaves pushes and pops; with unique keys both heap
  // implementations must agree on every pop (this is the determinism
  // argument for swapping std::priority_queue out of the engine).
  MoveHeap<std::uint64_t, std::greater<>> heap;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      reference;
  Xoshiro256 rng(11);
  std::uint64_t unique = 0;
  for (int round = 0; round < 2000; ++round) {
    if (reference.empty() || rng.below(3) != 0) {
      // Unique key: (random << 16) | counter.
      const std::uint64_t key = (rng.below(1 << 12) << 16) | unique++;
      std::uint64_t copy = key;
      heap.push(std::move(copy));
      reference.push(key);
    } else {
      ASSERT_FALSE(heap.empty());
      EXPECT_EQ(heap.pop_min(), reference.top());
      reference.pop();
    }
  }
  while (!reference.empty()) {
    EXPECT_EQ(heap.pop_min(), reference.top());
    reference.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(MoveHeap, MovesElementsInsteadOfCopying) {
  // unique_ptr is move-only: this does not compile, let alone run, if the
  // heap ever copies.
  MoveHeap<std::unique_ptr<int>, decltype([](const std::unique_ptr<int>& a,
                                             const std::unique_ptr<int>& b) {
             // Empty slots (the transient hole) sort last.
             if (!a || !b) return static_cast<bool>(b);
             return *a > *b;
           })>
      heap;
  for (int v : {5, 1, 4, 2, 3}) heap.push(std::make_unique<int>(v));
  for (int want = 1; want <= 5; ++want) {
    const std::unique_ptr<int> got = heap.pop_min();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, want);
  }
}

TEST(MoveHeap, RandomizedDifferentialAgainstPriorityQueueWithTies) {
  // Property test of the engine's real element shape: move-only payloads
  // under a (key, seq) total order where keys COLLIDE on purpose -- the
  // engine's equal-time batches -- across randomized interleaved push/pop
  // schedules. The reference is std::priority_queue over the same (key,
  // seq) pairs; every pop must agree on the key, the tie-breaking seq, and
  // the payload carried by the move-only box.
  struct Item {
    std::uint64_t key = 0;
    std::uint64_t seq = 0;
    std::unique_ptr<std::uint64_t> payload;  // forces move-only handling
  };
  struct Greater {
    bool operator()(const Item& a, const Item& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };
  for (const std::uint64_t seed : {3u, 17u, 101u}) {
    MoveHeap<Item, Greater> heap;
    std::priority_queue<std::pair<std::uint64_t, std::uint64_t>,
                        std::vector<std::pair<std::uint64_t, std::uint64_t>>,
                        std::greater<>>
        reference;
    Xoshiro256 rng(seed);
    std::uint64_t seq = 0;
    for (int round = 0; round < 5000; ++round) {
      if (reference.empty() || rng.below(5) < 3) {
        // 8 distinct keys over thousands of pushes: every key is a big
        // equal-time batch, so the seq tie-break does the real ordering.
        const std::uint64_t key = rng.below(8);
        heap.push(Item{key, seq,
                       std::make_unique<std::uint64_t>(key * 1000 + seq)});
        reference.emplace(key, seq);
        ++seq;
      } else {
        const Item got = heap.pop_min();
        ASSERT_EQ(got.key, reference.top().first) << "seed " << seed;
        ASSERT_EQ(got.seq, reference.top().second) << "seed " << seed;
        ASSERT_TRUE(got.payload);
        EXPECT_EQ(*got.payload, got.key * 1000 + got.seq);
        reference.pop();
      }
    }
    while (!reference.empty()) {
      const Item got = heap.pop_min();
      ASSERT_EQ(got.key, reference.top().first) << "seed " << seed;
      ASSERT_EQ(got.seq, reference.top().second) << "seed " << seed;
      reference.pop();
    }
    EXPECT_TRUE(heap.empty());
  }
}

TEST(MoveHeap, MinPeeksWithoutPopping) {
  MoveHeap<int, std::greater<>> heap;
  for (int v : {9, 2, 7}) heap.push(std::move(v));
  EXPECT_EQ(heap.min(), 2);
  EXPECT_EQ(heap.size(), 3u);  // peek must not consume
  EXPECT_EQ(heap.pop_min(), 2);
  EXPECT_EQ(heap.min(), 7);
}

struct KeyedItem {
  std::uint64_t key = 0;
  std::uint64_t seq = 0;
};
struct KeyedLess {
  bool operator()(const KeyedItem& a, const KeyedItem& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  }
};
struct KeyedKey {
  std::uint64_t operator()(const KeyedItem& a) const { return a.key; }
};

TEST(CalendarQueue, PopsAscendingWithSeqTieBreak) {
  CalendarQueue<KeyedItem, KeyedLess, KeyedKey> calendar;
  Xoshiro256 rng(23);
  for (std::uint64_t seq = 0; seq < 2000; ++seq)
    calendar.push(KeyedItem{rng.below(64), seq});  // heavy key collisions
  KeyedItem prev{0, 0};
  bool first = true;
  std::size_t popped = 0;
  while (!calendar.empty()) {
    const KeyedItem got = calendar.pop_min();
    if (!first) EXPECT_TRUE(KeyedLess{}(prev, got));
    prev = got;
    first = false;
    ++popped;
  }
  EXPECT_EQ(popped, 2000u);
}

TEST(CalendarQueue, DifferentialAgainstMoveHeapUnderChurn) {
  // The calendar must agree with the engine's MoveHeap on EVERY pop across
  // randomized interleaved schedules -- including same-key ties resolved
  // by seq, advancing key fronts (a simulation's usual pattern), and the
  // occasional far-future outlier that forces the sparse direct-scan path.
  struct Greater {
    bool operator()(const KeyedItem& a, const KeyedItem& b) const {
      return KeyedLess{}(b, a);
    }
  };
  for (const std::uint64_t seed : {5u, 29u, 71u}) {
    CalendarQueue<KeyedItem, KeyedLess, KeyedKey> calendar;
    MoveHeap<KeyedItem, Greater> heap;
    Xoshiro256 rng(seed);
    std::uint64_t seq = 0;
    std::uint64_t front = 0;  // keys mostly advance, like virtual time
    for (int round = 0; round < 6000; ++round) {
      if (heap.empty() || rng.below(5) < 3) {
        front += rng.below(3);
        const std::uint64_t key =
            rng.below(50) == 0 ? front + 100000 + rng.below(1000)  // outlier
                               : front + rng.below(16);
        calendar.push(KeyedItem{key, seq});
        heap.push(KeyedItem{key, seq});
        ++seq;
      } else {
        const KeyedItem want = heap.pop_min();
        const KeyedItem got = calendar.pop_min();
        ASSERT_EQ(got.key, want.key) << "seed " << seed;
        ASSERT_EQ(got.seq, want.seq) << "seed " << seed;
      }
      ASSERT_EQ(calendar.size(), heap.size());
    }
    while (!heap.empty()) {
      const KeyedItem want = heap.pop_min();
      const KeyedItem got = calendar.pop_min();
      ASSERT_EQ(got.key, want.key) << "seed " << seed;
      ASSERT_EQ(got.seq, want.seq) << "seed " << seed;
    }
    EXPECT_TRUE(calendar.empty());
  }
}

TEST(CalendarQueue, MovesElementsInsteadOfCopying) {
  struct Box {
    std::uint64_t key = 0;
    std::unique_ptr<std::uint64_t> payload;
  };
  struct BoxLess {
    bool operator()(const Box& a, const Box& b) const { return a.key < b.key; }
  };
  struct BoxKey {
    std::uint64_t operator()(const Box& a) const { return a.key; }
  };
  CalendarQueue<Box, BoxLess, BoxKey> calendar;
  for (const std::uint64_t k : {5u, 1u, 4u, 2u, 3u})
    calendar.push(Box{k, std::make_unique<std::uint64_t>(k * 10)});
  for (std::uint64_t want = 1; want <= 5; ++want) {
    const Box got = calendar.pop_min();
    EXPECT_EQ(got.key, want);
    ASSERT_TRUE(got.payload);
    EXPECT_EQ(*got.payload, want * 10);
  }
}

TEST(SmallCallable, InvokesInlineCapture) {
  int hits = 0;
  SmallCallable fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallCallable, MoveTransfersOwnership) {
  int hits = 0;
  SmallCallable a([&hits] { ++hits; });
  SmallCallable b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  SmallCallable c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallCallable, OversizedCaptureFallsBackToHeapAndStillRuns) {
  // > kInlineBytes of capture: must take the heap path transparently.
  std::array<std::uint64_t, 16> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = i * 3 + 1;
  static_assert(sizeof(payload) > SmallCallable::kInlineBytes);
  std::uint64_t sum = 0;
  SmallCallable fn([payload, &sum] {
    for (const std::uint64_t v : payload) sum += v;
  });
  SmallCallable moved = std::move(fn);
  moved();
  EXPECT_EQ(sum, 376u);  // sum of 3i+1 for i in [0, 16)
}

TEST(SmallCallable, DestroysCaptureExactlyOnce) {
  int alive = 0;
  struct Tracker {
    int* alive;
    explicit Tracker(int* a) : alive(a) { ++*alive; }
    Tracker(const Tracker& o) : alive(o.alive) { ++*alive; }
    Tracker(Tracker&& o) noexcept : alive(o.alive) { ++*alive; }
    ~Tracker() { --*alive; }
    void operator()() const {}
  };
  {
    SmallCallable fn(Tracker{&alive});
    EXPECT_EQ(alive, 1);
    SmallCallable moved = std::move(fn);
    EXPECT_EQ(alive, 1);  // relocate destroys the source capture
    moved();
    EXPECT_EQ(alive, 1);
  }
  EXPECT_EQ(alive, 0);  // both wrappers gone, no leak / double destroy
}

}  // namespace
}  // namespace scc::sim
