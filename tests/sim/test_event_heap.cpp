// Unit tests for the engine's hot-path building blocks: the move-based
// event heap (pop order must equal std::priority_queue's under a total
// order) and the small-buffer move-only callable that replaced
// std::function per event.
#include "sim/event_heap.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "sim/callable.hpp"

namespace scc::sim {
namespace {

TEST(MoveHeap, PopsAscendingUnderTotalOrder) {
  MoveHeap<int, std::greater<>> heap;
  Xoshiro256 rng(7);
  std::vector<int> values;
  for (int i = 0; i < 1000; ++i)
    values.push_back(static_cast<int>(rng.below(1 << 20)));
  for (int v : values) heap.push(std::move(v));
  ASSERT_EQ(heap.size(), values.size());
  int prev = -1;
  while (!heap.empty()) {
    const int got = heap.pop_min();
    EXPECT_LE(prev, got);
    prev = got;
  }
}

TEST(MoveHeap, MatchesPriorityQueuePopOrderUnderInterleavedChurn) {
  // The engine interleaves pushes and pops; with unique keys both heap
  // implementations must agree on every pop (this is the determinism
  // argument for swapping std::priority_queue out of the engine).
  MoveHeap<std::uint64_t, std::greater<>> heap;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      reference;
  Xoshiro256 rng(11);
  std::uint64_t unique = 0;
  for (int round = 0; round < 2000; ++round) {
    if (reference.empty() || rng.below(3) != 0) {
      // Unique key: (random << 16) | counter.
      const std::uint64_t key = (rng.below(1 << 12) << 16) | unique++;
      std::uint64_t copy = key;
      heap.push(std::move(copy));
      reference.push(key);
    } else {
      ASSERT_FALSE(heap.empty());
      EXPECT_EQ(heap.pop_min(), reference.top());
      reference.pop();
    }
  }
  while (!reference.empty()) {
    EXPECT_EQ(heap.pop_min(), reference.top());
    reference.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(MoveHeap, MovesElementsInsteadOfCopying) {
  // unique_ptr is move-only: this does not compile, let alone run, if the
  // heap ever copies.
  MoveHeap<std::unique_ptr<int>, decltype([](const std::unique_ptr<int>& a,
                                             const std::unique_ptr<int>& b) {
             // Empty slots (the transient hole) sort last.
             if (!a || !b) return static_cast<bool>(b);
             return *a > *b;
           })>
      heap;
  for (int v : {5, 1, 4, 2, 3}) heap.push(std::make_unique<int>(v));
  for (int want = 1; want <= 5; ++want) {
    const std::unique_ptr<int> got = heap.pop_min();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, want);
  }
}

TEST(SmallCallable, InvokesInlineCapture) {
  int hits = 0;
  SmallCallable fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallCallable, MoveTransfersOwnership) {
  int hits = 0;
  SmallCallable a([&hits] { ++hits; });
  SmallCallable b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  SmallCallable c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallCallable, OversizedCaptureFallsBackToHeapAndStillRuns) {
  // > kInlineBytes of capture: must take the heap path transparently.
  std::array<std::uint64_t, 16> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = i * 3 + 1;
  static_assert(sizeof(payload) > SmallCallable::kInlineBytes);
  std::uint64_t sum = 0;
  SmallCallable fn([payload, &sum] {
    for (const std::uint64_t v : payload) sum += v;
  });
  SmallCallable moved = std::move(fn);
  moved();
  EXPECT_EQ(sum, 376u);  // sum of 3i+1 for i in [0, 16)
}

TEST(SmallCallable, DestroysCaptureExactlyOnce) {
  int alive = 0;
  struct Tracker {
    int* alive;
    explicit Tracker(int* a) : alive(a) { ++*alive; }
    Tracker(const Tracker& o) : alive(o.alive) { ++*alive; }
    Tracker(Tracker&& o) noexcept : alive(o.alive) { ++*alive; }
    ~Tracker() { --*alive; }
    void operator()() const {}
  };
  {
    SmallCallable fn(Tracker{&alive});
    EXPECT_EQ(alive, 1);
    SmallCallable moved = std::move(fn);
    EXPECT_EQ(alive, 1);  // relocate destroys the source capture
    moved();
    EXPECT_EQ(alive, 1);
  }
  EXPECT_EQ(alive, 0);  // both wrappers gone, no leak / double destroy
}

}  // namespace
}  // namespace scc::sim
