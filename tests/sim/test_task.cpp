#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <coroutine>
#include <cstdint>
#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/frame_arena.hpp"

// NOTE: no lambda coroutines here -- a capturing lambda's closure dies at
// the end of the spawning statement while the frame lives on (the classic
// dangling-closure pitfall); free coroutine functions copy their
// parameters into the frame and are safe.

namespace scc::sim {
namespace {

Task<int> returns_int(int v) { co_return v; }

Task<int> adds(int a, int b) {
  const int x = co_await returns_int(a);
  const int y = co_await returns_int(b);
  co_return x + y;
}

Task<> throws_logic_error() {
  throw std::logic_error("boom");
  co_return;  // unreachable; makes this a coroutine
}

Task<int> deep_chain(int depth) {
  if (depth == 0) co_return 0;
  co_return 1 + co_await deep_chain(depth - 1);
}

Task<> run_flag(bool* ran) {
  *ran = true;
  co_return;
}

Task<> store_add(int a, int b, int* out) { *out = co_await adds(a, b); }

Task<> catch_logic_error(bool* caught) {
  try {
    co_await throws_logic_error();
  } catch (const std::logic_error&) {
    *caught = true;
  }
}

Task<> store_deep(int depth, int* out) { *out = co_await deep_chain(depth); }

Task<int> big_frame(int v) {
  std::uint64_t words[1024] = {};  // 8 KB of locals forced into the frame
  words[7] = static_cast<std::uint64_t>(v);
  co_await std::suspend_never{};
  co_return static_cast<int>(words[7]);
}

Task<> store_big(int v, int* out) { *out = co_await big_frame(v); }

TEST(Task, LazyUntilAwaited) {
  bool ran = false;
  Task<> t = run_flag(&ran);
  EXPECT_FALSE(ran);  // initial_suspend is suspend_always
  Engine engine;
  engine.spawn(std::move(t), "t");
  engine.run();
  EXPECT_TRUE(ran);
}

TEST(Task, ValuePropagatesThroughAwait) {
  Engine engine;
  int result = 0;
  engine.spawn(store_add(20, 22, &result), "adder");
  engine.run();
  EXPECT_EQ(result, 42);
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Engine engine;
  bool caught = false;
  engine.spawn(catch_logic_error(&caught), "catcher");
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(Task, RootExceptionRethrownByRun) {
  Engine engine;
  engine.spawn(throws_logic_error(), "thrower");
  EXPECT_THROW(engine.run(), std::logic_error);
}

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SCC_TEST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define SCC_TEST_ASAN 1
#endif

TEST(Task, DeepCallChainsUseSymmetricTransfer) {
#ifdef SCC_TEST_ASAN
  // ASan instrumentation suppresses the tail-call that makes symmetric
  // transfer O(1) stack, so the resume chain genuinely recurses and a
  // 100k-deep chain overflows. Nothing to test in that configuration.
  GTEST_SKIP() << "symmetric transfer is not a tail call under ASan";
#endif
  // 100k-deep chains would overflow the stack without symmetric transfer.
  Engine engine;
  int result = 0;
  engine.spawn(store_deep(100000, &result), "deep");
  engine.run();
  EXPECT_EQ(result, 100000);
}

TEST(Task, MoveTransfersOwnership) {
  Task<int> a = returns_int(5);
  EXPECT_TRUE(a.valid());
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): on purpose
  EXPECT_TRUE(b.valid());
}

TEST(Task, DestroyingUnstartedTaskIsSafe) {
  { Task<int> t = returns_int(1); }  // never awaited; frame must be freed
  SUCCEED();
}

TEST(Task, MoveAssignReplacesAndDestroysOld) {
  Task<int> a = returns_int(1);
  Task<int> b = returns_int(2);
  a = std::move(b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
}

TEST(Task, FrameArenaReusesFramesInSteadyState) {
  // Coroutine frames allocate through the per-thread frame arena
  // (PromiseBase::operator new). After a warm-up task has populated the
  // free lists, same-shaped tasks must be served from them -- the steady
  // state of a long simulation allocates no frame memory.
  {
    // Warm-up: create and destroy one frame of each shape used below.
    Engine engine;
    int sink = 0;
    engine.spawn(store_add(1, 2, &sink), "warmup");
    engine.run();
  }
  const std::uint64_t allocs_before = frame_arena_stats().allocs;
  const std::uint64_t reuses_before = frame_arena_stats().reuses;
  constexpr int kRuns = 50;
  for (int i = 0; i < kRuns; ++i) {
    Engine engine;
    int sink = 0;
    engine.spawn(store_add(i, i, &sink), "steady");
    engine.run();
    EXPECT_EQ(sink, 2 * i);
  }
  const std::uint64_t allocs = frame_arena_stats().allocs - allocs_before;
  const std::uint64_t reuses = frame_arena_stats().reuses - reuses_before;
  EXPECT_GT(allocs, 0u);
  // Every allocation after warm-up hits a free list (all shapes repeat).
  EXPECT_EQ(reuses, allocs);
}

TEST(Task, FrameArenaOversizeFramesFallBackToHeap) {
  // A frame beyond the arena's largest class must transparently take the
  // plain operator new path (and come back alive).
  const std::uint64_t oversize_before = frame_arena_stats().oversize;
  Engine engine;
  int result = 0;
  engine.spawn(store_big(41, &result), "big");
  engine.run();
  EXPECT_EQ(result, 41);
  EXPECT_GT(frame_arena_stats().oversize, oversize_before);
}

}  // namespace
}  // namespace scc::sim
