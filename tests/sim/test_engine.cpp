#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/wait_queue.hpp"

namespace scc::sim {
namespace {

Task<> sleep_then_record(Engine* engine, SimTime delay, int id,
                         std::vector<int>* order) {
  co_await engine->sleep_for(delay);
  order->push_back(id);
}

Task<> record_at_times(Engine* engine, std::vector<std::uint64_t>* log) {
  co_await engine->sleep_for(SimTime{100});
  log->push_back(engine->now().femtoseconds());
  co_await engine->sleep_for(SimTime{50});
  log->push_back(engine->now().femtoseconds());
}

TEST(Engine, TimeStartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), SimTime::zero());
}

TEST(Engine, SleepAdvancesVirtualTime) {
  Engine engine;
  std::vector<std::uint64_t> log;
  engine.spawn(record_at_times(&engine, &log), "t");
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 100u);
  EXPECT_EQ(log[1], 150u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.spawn(sleep_then_record(&engine, SimTime{300}, 3, &order), "a");
  engine.spawn(sleep_then_record(&engine, SimTime{100}, 1, &order), "b");
  engine.spawn(sleep_then_record(&engine, SimTime{200}, 2, &order), "c");
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.spawn(sleep_then_record(&engine, SimTime{100}, i, &order),
                 "same-time");
  }
  engine.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ZeroDelaySleepStillYields) {
  Engine engine;
  std::vector<int> order;
  engine.spawn(sleep_then_record(&engine, SimTime::zero(), 1, &order), "a");
  engine.spawn(sleep_then_record(&engine, SimTime::zero(), 2, &order), "b");
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, ScheduleCallRunsFunctions) {
  Engine engine;
  bool called = false;
  engine.schedule_call(SimTime{10}, [&] { called = true; });
  engine.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(engine.now(), SimTime{10});
}

TEST(Engine, EventsProcessedCounter) {
  Engine engine;
  engine.schedule_call(SimTime{1}, [] {});
  engine.schedule_call(SimTime{2}, [] {});
  engine.run();
  EXPECT_EQ(engine.events_processed(), 2u);
}

Task<> waits_forever(WaitQueue* queue) { co_await queue->wait(); }

TEST(Engine, DeadlockDetectedAndNamed) {
  Engine engine;
  WaitQueue queue(engine);
  engine.spawn(waits_forever(&queue), "stuck-core");
  try {
    engine.run();
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stuck-core"), std::string::npos);
  }
}

// Regression: the deadlock diagnostic must name every stuck task AND the
// perturbation seed, because replaying a deadlock found during perturbed
// runs requires the exact (program, seed) pair.
TEST(Engine, DeadlockDiagnosticsListTasksAndPerturbationSeed) {
  Engine engine;
  engine.enable_perturbation(PerturbConfig{77, SimTime::zero()});
  WaitQueue queue(engine);
  engine.spawn(waits_forever(&queue), "stuck-a");
  engine.spawn(waits_forever(&queue), "stuck-b");
  try {
    engine.run();
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stuck-a"), std::string::npos) << what;
    EXPECT_NE(what.find("stuck-b"), std::string::npos) << what;
    EXPECT_NE(what.find("perturbation seed 77"), std::string::npos) << what;
  }
}

TEST(Engine, DeadlockDiagnosticsSayPerturbationOffWhenUnperturbed) {
  Engine engine;
  WaitQueue queue(engine);
  engine.spawn(waits_forever(&queue), "stuck");
  try {
    engine.run();
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("perturbation off"),
              std::string::npos);
  }
}

TEST(Engine, RunDetectDeadlockReturnsFalse) {
  Engine engine;
  WaitQueue queue(engine);
  engine.spawn(waits_forever(&queue), "stuck");
  EXPECT_FALSE(engine.run_detect_deadlock());
}

TEST(Engine, RunDetectDeadlockTrueWhenClean) {
  Engine engine;
  std::vector<int> order;
  engine.spawn(sleep_then_record(&engine, SimTime{5}, 1, &order), "ok");
  EXPECT_TRUE(engine.run_detect_deadlock());
}

Task<> notify_after(Engine* engine, WaitQueue* queue, SimTime when) {
  co_await engine->sleep_for(when);
  queue->notify_all();
}

Task<> wait_and_stamp(Engine* engine, WaitQueue* queue,
                      std::uint64_t* stamp) {
  co_await queue->wait();
  *stamp = engine->now().femtoseconds();
}

TEST(WaitQueue, NotifyWakesAllWaitersAtNotifierTime) {
  Engine engine;
  WaitQueue queue(engine);
  std::uint64_t stamp1 = 0, stamp2 = 0;
  engine.spawn(wait_and_stamp(&engine, &queue, &stamp1), "w1");
  engine.spawn(wait_and_stamp(&engine, &queue, &stamp2), "w2");
  engine.spawn(notify_after(&engine, &queue, SimTime{500}), "n");
  engine.run();
  EXPECT_EQ(stamp1, 500u);
  EXPECT_EQ(stamp2, 500u);
}

TEST(WaitQueue, WaiterCountTracksParkedTasks) {
  Engine engine;
  WaitQueue queue(engine);
  engine.spawn(waits_forever(&queue), "w");
  engine.schedule_call(SimTime{1}, [&] {
    EXPECT_EQ(queue.waiter_count(), 1u);
    queue.notify_all();
    EXPECT_EQ(queue.waiter_count(), 0u);
  });
  engine.run();
}

TEST(Engine, EqualTimeCallsStayFifoUnderHeapChurn) {
  // Regression test for the move-heap swap: equal-timestamp events must
  // fire in scheduling order even while the heap is churning (pops
  // interleaved with pushes exercise both sift directions). Each batch
  // schedules its members out of a callback, so insertion happens at many
  // different heap shapes.
  Engine engine;
  std::vector<int> order;
  for (int batch = 0; batch < 8; ++batch) {
    engine.schedule_call(SimTime{static_cast<std::uint64_t>(batch) * 100},
                         [&engine, &order, batch] {
                           const SimTime when{
                               static_cast<std::uint64_t>(batch) * 100 + 50};
                           for (int i = 0; i < 16; ++i) {
                             engine.schedule_call(when, [&order, batch, i] {
                               order.push_back(batch * 16 + i);
                             });
                           }
                         });
  }
  engine.run();
  ASSERT_EQ(order.size(), 8u * 16u);
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i], static_cast<int>(i));
}

TEST(Engine, PerturbedEqualTimeOrderIsSeedReproducible) {
  // Under perturbation the equal-time tie-break is a seeded permutation:
  // the same seed must replay the identical order, and some seed must
  // produce a non-FIFO order (otherwise perturbation explores nothing).
  const auto run_once = [](std::uint64_t seed) {
    Engine engine;
    engine.enable_perturbation(PerturbConfig{seed, SimTime::zero()});
    std::vector<int> order;
    for (int i = 0; i < 12; ++i) {
      engine.schedule_call(SimTime{100}, [&order, i] { order.push_back(i); });
    }
    engine.run();
    return order;
  };
  bool any_permuted = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::vector<int> first = run_once(seed);
    EXPECT_EQ(first, run_once(seed)) << "seed " << seed;
    std::vector<int> fifo(12);
    for (int i = 0; i < 12; ++i) fifo[static_cast<std::size_t>(i)] = i;
    if (first != fifo) any_permuted = true;
  }
  EXPECT_TRUE(any_permuted);
}

TEST(Engine, ThrowingCallableLeavesEngineRunnable) {
  // Regression: drain() used to set running_ = true and only reset it on
  // the normal exit path, so a throwing event handler latched the engine
  // into "running" forever and every later run() died on its !running_
  // precondition. The scope guard must reset the flag on the exception
  // path too.
  Engine engine;
  engine.schedule_call(SimTime{10}, [] {
    throw std::runtime_error("handler boom");
  });
  EXPECT_THROW(engine.run(), std::runtime_error);
  bool ran_after = false;
  engine.schedule_call(engine.now() + SimTime{5}, [&] { ran_after = true; });
  engine.run();  // must not abort on a stale running_ flag
  EXPECT_TRUE(ran_after);
}

Task<> throws_after(Engine* engine, SimTime delay, const char* what) {
  co_await engine->sleep_for(delay);
  throw std::runtime_error(what);
}

TEST(Engine, RunDetectDeadlockSurfacesRootExceptionOverDeadlock) {
  // Regression: a root task completing *with an exception* while another
  // root is stuck used to be swallowed -- run_detect_deadlock() saw "some
  // root unfinished", returned false, and the exception vanished with the
  // cleared roots. The exception is the more specific diagnosis of the
  // double fault and must be rethrown.
  Engine engine;
  WaitQueue queue(engine);
  engine.spawn(throws_after(&engine, SimTime{5}, "root boom"), "thrower");
  engine.spawn(waits_forever(&queue), "stuck");
  try {
    (void)engine.run_detect_deadlock();
    FAIL() << "expected the root exception to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "root boom");
  }
}

TEST(Engine, RunDetectDeadlockRethrowsFirstRootExceptionInSpawnOrder) {
  Engine engine;
  engine.spawn(throws_after(&engine, SimTime{9}, "second spawned"), "late");
  engine.spawn(throws_after(&engine, SimTime{3}, "first spawned"), "early");
  try {
    (void)engine.run_detect_deadlock();
    FAIL() << "expected a root exception";
  } catch (const std::runtime_error& e) {
    // Spawn order, not completion order: "late" was spawned first.
    EXPECT_STREQ(e.what(), "second spawned");
  }
}

TEST(Engine, PerturbationDelayClampsNearTimeMax) {
  // Regression: the injected perturbation delay was added with SimTime's
  // checked +=, so an event legally scheduled near SimTime::max() could
  // abort on overflow purely because the testing mode drew a large delay.
  // The delay must clamp to the available headroom instead.
  Engine engine;
  engine.enable_perturbation(PerturbConfig{123, SimTime::from_ns(1000)});
  bool fired = false;
  engine.schedule_call(SimTime::max() - SimTime{5}, [&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_GE(engine.now(), SimTime::max() - SimTime{5});
}

TEST(Engine, PerturbationClampDoesNotShiftTheDelayStream) {
  // The clamp must happen after the RNG draw, so an earlier clamped event
  // does not change which delays later events receive (seed
  // reproducibility of the whole trace, clamped or not). Both runs push a
  // lead event then a probe; only the lead's position differs, so the
  // probe's injected delay must be identical.
  const auto probe_delay = [](SimTime lead_when) {
    Engine engine;
    engine.enable_perturbation(PerturbConfig{99, SimTime::from_ns(10)});
    engine.schedule_call(lead_when, [] {});
    SimTime fired_at;
    engine.schedule_call(SimTime{1000}, [&engine, &fired_at] {
      fired_at = engine.now();
    });
    engine.run();
    return fired_at.femtoseconds() - 1000;
  };
  EXPECT_EQ(probe_delay(SimTime::max() - SimTime{1}),  // clamped lead
            probe_delay(SimTime{2}));                  // ordinary lead
}

TEST(EngineDeathTest, UnperturbedTimeOverflowStillAborts) {
  // The clamp is perturbation-specific: ordinary virtual-time arithmetic
  // keeps its checked-overflow contract.
  EXPECT_DEATH(
      {
        Engine engine;
        engine.schedule_call(SimTime{1}, [&engine] {
          (void)engine.sleep_for(SimTime::max());  // now() + max overflows
        });
        engine.run();
      },
      "invariant");
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      engine.spawn(
          sleep_then_record(&engine, SimTime{static_cast<std::uint64_t>(
                                         (i * 37) % 7)},
                            i, &order),
          "t");
    }
    engine.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace scc::sim
