#include "mem/mpb.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace scc::mem {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

TEST(Mpb, GeometryDefaults) {
  const MpbStorage mpb(48);
  EXPECT_EQ(mpb.num_cores(), 48);
  EXPECT_EQ(mpb.bytes_per_core(), kMpbBytesPerCore);
}

TEST(Mpb, WriteReadRoundTrip) {
  MpbStorage mpb(4);
  const auto data = pattern(100);
  mpb.write({2, 10}, data);
  std::vector<std::byte> out(100);
  mpb.read({2, 10}, out);
  EXPECT_EQ(out, data);
}

TEST(Mpb, CoresAreIsolated) {
  MpbStorage mpb(2, 64);
  const auto a = pattern(64, 1);
  const auto b = pattern(64, 2);
  mpb.write({0, 0}, a);
  mpb.write({1, 0}, b);
  std::vector<std::byte> out(64);
  mpb.read({0, 0}, out);
  EXPECT_EQ(out, a);
  mpb.read({1, 0}, out);
  EXPECT_EQ(out, b);
}

TEST(Mpb, CopyBetweenCores) {
  MpbStorage mpb(3, 256);
  const auto data = pattern(128);
  mpb.write({0, 64}, data);
  mpb.copy({0, 64}, {2, 0}, 128);
  std::vector<std::byte> out(128);
  mpb.read({2, 0}, out);
  EXPECT_EQ(out, data);
}

TEST(Mpb, OverlappingCopyWithinCore) {
  MpbStorage mpb(1, 256);
  const auto data = pattern(64);
  mpb.write({0, 0}, data);
  mpb.copy({0, 0}, {0, 32}, 64);  // overlap handled via memmove
  std::vector<std::byte> out(64);
  mpb.read({0, 32}, out);
  EXPECT_EQ(out, data);
}

TEST(Mpb, PoisonFillsWholeBuffer) {
  MpbStorage mpb(2, 128);
  mpb.poison(0, std::byte{0xCD});
  std::vector<std::byte> out(128);
  mpb.read({0, 0}, out);
  for (const std::byte b : out) EXPECT_EQ(b, std::byte{0xCD});
}

TEST(Mpb, ExactEndOfBufferAllowed) {
  MpbStorage mpb(1, 64);
  const auto data = pattern(32);
  mpb.write({0, 32}, data);  // [32, 64) fits exactly
  std::vector<std::byte> out(32);
  mpb.read({0, 32}, out);
  EXPECT_EQ(out, data);
}

TEST(MpbDeath, OutOfBoundsRejected) {
  MpbStorage mpb(1, 64);
  std::vector<std::byte> buf(65);
  EXPECT_DEATH(mpb.write({0, 0}, buf), "precondition");
  std::vector<std::byte> small(2);
  EXPECT_DEATH(mpb.write({0, 63}, small), "precondition");
}

TEST(MpbDeath, BadCoreRejected) {
  MpbStorage mpb(2, 64);
  std::vector<std::byte> buf(1);
  EXPECT_DEATH(mpb.write({2, 0}, buf), "precondition");
  EXPECT_DEATH(mpb.write({-1, 0}, buf), "precondition");
}

TEST(Mpb, ZeroByteOperationsAreNoops) {
  MpbStorage mpb(1, 64);
  mpb.write({0, 0}, {});
  std::vector<std::byte> empty;
  mpb.read({0, 0}, empty);
  SUCCEED();
}

}  // namespace
}  // namespace scc::mem
