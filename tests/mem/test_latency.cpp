// Checks the latency calculator against the documented SCC formulas
// (paper Section IV-D and the SCC Programmer's Guide values).
#include "mem/latency.hpp"

#include <gtest/gtest.h>

namespace scc::mem {
namespace {

class LatencyTest : public ::testing::Test {
 protected:
  noc::Topology topo_;
  HwCostModel hw_;
};

double core_cc_ns(const HwCostModel& hw, double cc) {
  return cc / hw.core_hz * 1e9;
}
double mesh_cc_ns(const HwCostModel& hw, double cc) {
  return cc / hw.mesh_hz * 1e9;
}

TEST_F(LatencyTest, LocalMpbWithBugWorkaround) {
  hw_.mpb_bug_workaround = true;
  const LatencyCalculator calc(hw_, topo_);
  // 45 core cycles + 8 mesh cycles (cores 0 and 1 share tile 0).
  const double want = core_cc_ns(hw_, 45) + mesh_cc_ns(hw_, 8);
  EXPECT_NEAR(calc.mpb_line_access(0, 1, true).ns(), want, 0.01);
  EXPECT_NEAR(calc.mpb_line_access(0, 0, true).ns(), want, 0.01);
}

TEST_F(LatencyTest, LocalMpbWithoutBug) {
  hw_.mpb_bug_workaround = false;
  const LatencyCalculator calc(hw_, topo_);
  EXPECT_NEAR(calc.mpb_line_access(0, 1, true).ns(), core_cc_ns(hw_, 15),
              0.01);
}

TEST_F(LatencyTest, RemoteReadIsRoundTrip) {
  const LatencyCalculator calc(hw_, topo_);
  // Core 0 (tile 0) -> core 47 (tile 23): 8 hops, 4 mesh cycles per hop,
  // both directions for a read.
  const double want = core_cc_ns(hw_, 45) + mesh_cc_ns(hw_, 2 * 8 * 4);
  EXPECT_NEAR(calc.mpb_line_access(0, 47, true).ns(), want, 0.01);
}

TEST_F(LatencyTest, RemoteWriteIsPosted) {
  const LatencyCalculator calc(hw_, topo_);
  const double want = core_cc_ns(hw_, 45) + mesh_cc_ns(hw_, 8 * 4);
  EXPECT_NEAR(calc.mpb_line_access(0, 47, false).ns(), want, 0.01);
}

TEST_F(LatencyTest, ReadCostsMoreThanWriteRemotely) {
  const LatencyCalculator calc(hw_, topo_);
  EXPECT_GT(calc.mpb_line_access(0, 47, true),
            calc.mpb_line_access(0, 47, false));
}

TEST_F(LatencyTest, FartherCoresCostMore) {
  const LatencyCalculator calc(hw_, topo_);
  EXPECT_LT(calc.mpb_line_access(0, 2, true),
            calc.mpb_line_access(0, 47, true));
}

TEST_F(LatencyTest, BulkPipelinesAfterFirstLine) {
  const LatencyCalculator calc(hw_, topo_);
  const SimTime one = calc.mpb_bulk(0, 47, 32, true);
  const SimTime four = calc.mpb_bulk(0, 47, 128, true);
  const double extra_ns = four.ns() - one.ns();
  EXPECT_NEAR(extra_ns, core_cc_ns(hw_, 3 * hw_.mpb_pipelined_line_core_cycles),
              0.01);
}

TEST_F(LatencyTest, BulkZeroBytesIsFree) {
  const LatencyCalculator calc(hw_, topo_);
  EXPECT_EQ(calc.mpb_bulk(0, 47, 0, true), SimTime::zero());
}

TEST_F(LatencyTest, BulkPartialLineRoundsUp) {
  const LatencyCalculator calc(hw_, topo_);
  EXPECT_EQ(calc.mpb_bulk(0, 47, 33, true), calc.mpb_bulk(0, 47, 64, true));
}

TEST_F(LatencyTest, WordStreamScalesPerWord) {
  const LatencyCalculator calc(hw_, topo_);
  const SimTime w1 = calc.mpb_word_stream(0, 0, 4, false);
  const SimTime w10 = calc.mpb_word_stream(0, 0, 40, false);
  EXPECT_NEAR(w10.ns(), 10 * w1.ns(), 0.01);
}

TEST_F(LatencyTest, WordStreamCheaperWithoutBug) {
  HwCostModel fixed = hw_;
  fixed.mpb_bug_workaround = false;
  const LatencyCalculator with_bug(hw_, topo_);
  const LatencyCalculator without(fixed, topo_);
  EXPECT_GT(with_bug.mpb_word_stream(0, 0, 96, false),
            without.mpb_word_stream(0, 0, 96, false));
}

TEST_F(LatencyTest, PrivAccessHitsAreCheap) {
  const LatencyCalculator calc(hw_, topo_);
  CacheAccessResult hits;
  hits.hits = 4;
  CacheAccessResult misses;
  misses.misses = 4;
  EXPECT_LT(calc.priv_access(0, hits), calc.priv_access(0, misses));
  EXPECT_NEAR(calc.priv_access(0, hits).ns(),
              core_cc_ns(hw_, 4 * hw_.cache_hit_core_cycles), 0.01);
}

TEST_F(LatencyTest, PrivMissIncludesDramAndMeshTerms) {
  const LatencyCalculator calc(hw_, topo_);
  CacheAccessResult one_miss;
  one_miss.misses = 1;
  const int d = topo_.hops_to_mc(0);
  const double want = core_cc_ns(hw_, hw_.dram_core_cycles) +
                      mesh_cc_ns(hw_, static_cast<double>(d) *
                                          hw_.dram_mesh_cycles_per_hop) +
                      hw_.dram_service_dram_cycles / hw_.dram_hz * 1e9;
  EXPECT_NEAR(calc.priv_access(0, one_miss).ns(), want, 0.01);
}

TEST_F(LatencyTest, MeshTransitProportionalToHops) {
  const LatencyCalculator calc(hw_, topo_);
  EXPECT_EQ(calc.mesh_transit(0, 1), SimTime::zero());
  EXPECT_NEAR(calc.mesh_transit(0, 47).ns(), mesh_cc_ns(hw_, 8 * 4), 0.01);
}

TEST(LatencyHelpers, LinesFor) {
  EXPECT_EQ(lines_for(0), 0u);
  EXPECT_EQ(lines_for(1), 1u);
  EXPECT_EQ(lines_for(32), 1u);
  EXPECT_EQ(lines_for(33), 2u);
  EXPECT_EQ(lines_for(5600), 175u);
}

TEST(LatencyHelpers, PartialLineDetection) {
  // 4 doubles (32 bytes) fill a line exactly -> no spike; 5 doubles spill.
  EXPECT_FALSE(has_partial_line(4 * sizeof(double)));
  EXPECT_TRUE(has_partial_line(5 * sizeof(double)));
  EXPECT_FALSE(has_partial_line(600 * sizeof(double)));
  EXPECT_TRUE(has_partial_line(601 * sizeof(double)));
}

}  // namespace
}  // namespace scc::mem
