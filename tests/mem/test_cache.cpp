#include "mem/cache.hpp"

#include <gtest/gtest.h>

namespace scc::mem {
namespace {

HwCostModel tiny_cache() {
  HwCostModel hw;
  hw.cache_bytes = 8 * kCacheLineBytes;  // capacity: 8 lines
  return hw;
}

TEST(Cache, ColdReadMisses) {
  CacheModel cache{HwCostModel{}};
  const auto r = cache.touch_read(0x1000, 64);
  EXPECT_EQ(r.misses, 2u);
  EXPECT_EQ(r.hits, 0u);
}

TEST(Cache, RepeatedReadHits) {
  CacheModel cache{HwCostModel{}};
  cache.touch_read(0x1000, 64);
  const auto r = cache.touch_read(0x1000, 64);
  EXPECT_EQ(r.hits, 2u);
  EXPECT_EQ(r.misses, 0u);
}

TEST(Cache, PartialLineCountsWholeLine) {
  CacheModel cache{HwCostModel{}};
  const auto r = cache.touch_read(0x1001, 1);  // 1 byte still fills a line
  EXPECT_EQ(r.misses, 1u);
  const auto r2 = cache.touch_read(0x1000, 32);
  EXPECT_EQ(r2.hits, 1u);
}

TEST(Cache, StraddlingAccessTouchesBothLines) {
  CacheModel cache{HwCostModel{}};
  const auto r = cache.touch_read(0x101E, 4);  // crosses a 32 B boundary
  EXPECT_EQ(r.misses, 2u);
}

TEST(Cache, WriteMissDoesNotAllocate) {
  CacheModel cache{HwCostModel{}};
  const auto w = cache.touch_write(0x2000, 32);
  EXPECT_EQ(w.uncached_writes, 1u);
  EXPECT_EQ(w.hits, 0u);
  // Non-write-allocate: a following read still misses.
  const auto r = cache.touch_read(0x2000, 32);
  EXPECT_EQ(r.misses, 1u);
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  CacheModel cache = CacheModel{tiny_cache()};
  cache.touch_read(0x0, 32);                    // fill line 0
  EXPECT_EQ(cache.touch_write(0x0, 32).hits, 1u);  // dirty it
  // Fill 8 more lines; line 0 is the LRU victim.
  const auto r = cache.touch_read(0x100, 8 * 32);
  EXPECT_EQ(r.misses, 8u);
  EXPECT_EQ(r.writebacks, 1u);
  // Line 0 is gone.
  EXPECT_EQ(cache.touch_read(0x0, 32).misses, 1u);
}

TEST(Cache, LruKeepsRecentlyTouchedLines) {
  CacheModel cache = CacheModel{tiny_cache()};  // 8 lines
  for (std::uintptr_t a = 0; a < 8 * 32; a += 32) cache.touch_read(a, 32);
  // Refresh line 0, then insert a ninth line: line at 32 is evicted.
  cache.touch_read(0, 32);
  cache.touch_read(0x1000, 32);
  EXPECT_EQ(cache.touch_read(0, 32).hits, 1u);
  EXPECT_EQ(cache.touch_read(32, 32).misses, 1u);
}

TEST(Cache, FlushAllDropsEverything) {
  CacheModel cache{HwCostModel{}};
  cache.touch_read(0x1000, 320);
  EXPECT_GT(cache.resident_lines(), 0u);
  cache.flush_all();
  EXPECT_EQ(cache.resident_lines(), 0u);
  EXPECT_EQ(cache.touch_read(0x1000, 32).misses, 1u);
}

TEST(Cache, ZeroByteTouchIsNoop) {
  CacheModel cache{HwCostModel{}};
  const auto r = cache.touch_read(0x1000, 0);
  EXPECT_EQ(r.hits + r.misses, 0u);
}

TEST(Cache, CapacityBoundRespected) {
  CacheModel cache{HwCostModel{}};  // 256 KB = 8192 lines
  for (std::uintptr_t line = 0; line < 10000; ++line)
    cache.touch_read(line * kCacheLineBytes, 1);
  EXPECT_EQ(cache.resident_lines(), cache.capacity_lines());
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  CacheModel cache{HwCostModel{}};
  const std::size_t big = 512 * 1024;  // 2x the cache
  cache.touch_read(0, big);
  // Re-reading from the start misses again (LRU evicted the head).
  const auto r = cache.touch_read(0, 32);
  EXPECT_EQ(r.misses, 1u);
}

TEST(Cache, DeterministicForShiftedAddresses) {
  // The timing-relevant classification depends only on the ACCESS PATTERN,
  // not on where the allocator placed the buffer (full associativity) --
  // this is what makes the whole simulation reproducible run to run.
  const auto classify = [](std::uintptr_t base) {
    CacheModel cache = CacheModel{tiny_cache()};
    std::uint64_t misses = 0;
    for (int rep = 0; rep < 3; ++rep)
      for (std::uintptr_t off = 0; off < 6 * 32; off += 32)
        misses += cache.touch_read(base + off, 32).misses;
    return misses;
  };
  EXPECT_EQ(classify(0x10000), classify(0x73420));
}

}  // namespace
}  // namespace scc::mem
