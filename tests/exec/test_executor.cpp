// Tests for the host-thread parallel executor: index coverage, result
// ordering, index-ordered exception propagation, and the --jobs CLI
// contract (src/exec/executor.hpp).
#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"

namespace scc::exec {
namespace {

TEST(Executor, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(default_jobs(), 1);
}

TEST(Executor, ResolveJobsMapsZeroToDefault) {
  EXPECT_EQ(resolve_jobs(0), default_jobs());
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(Executor, ForEachIndexCoversEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(101);
    for_each_index(hits.size(), jobs, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
  }
}

TEST(Executor, ZeroCountNeverInvokes) {
  bool called = false;
  for_each_index(0, 8, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Executor, JobsOneRunsInlineInIndexOrder) {
  // The serial path must be exactly the serial path: same thread, indices
  // ascending (an unsynchronized vector would race under real threads).
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> seen;
  for_each_index(32, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    seen.push_back(i);
  });
  ASSERT_EQ(seen.size(), 32u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(Executor, ParallelMapReturnsResultsInIndexOrder) {
  for (const int jobs : {1, 2, 8}) {
    const std::vector<std::size_t> squares =
        parallel_map<std::size_t>(50, jobs,
                                  [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 50u);
    for (std::size_t i = 0; i < squares.size(); ++i)
      EXPECT_EQ(squares[i], i * i) << "jobs " << jobs;
  }
}

TEST(Executor, FirstExceptionByIndexWinsRegardlessOfSchedule) {
  // Indices 30 and 3 both throw; 30 is dispatched first and sleeps so a
  // completion-order policy would surface it, but the surfaced error must
  // be index 3's (what the serial run would have hit first).
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      for_each_index(40, 4, [&](std::size_t i) {
        if (i == 30) throw std::runtime_error("late index");
        if (i == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          throw std::runtime_error("early index");
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "early index");
    }
  }
}

TEST(Executor, MoreJobsThanWorkStillCompletes) {
  std::atomic<int> calls{0};
  for_each_index(3, 64, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(WorkerPool, RunRoundCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    WorkerPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::vector<std::atomic<int>> hits(97);
    pool.run_round(hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(WorkerPool, PersistentThreadsSurviveManyRounds) {
  // The point of the pool over for_each_index: the same parked helpers
  // serve round after round (the PDES drain runs thousands of windows).
  WorkerPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.run_round(8, [&](std::size_t i) {
      total.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 500u * (8u * 9u / 2u));
}

TEST(WorkerPool, ZeroCountReturnsWithoutInvoking) {
  WorkerPool pool(4);
  bool called = false;
  pool.run_round(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(WorkerPool, FirstExceptionByIndexWinsAndPoolStaysUsable) {
  WorkerPool pool(4);
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      pool.run_round(40, [&](std::size_t i) {
        if (i == 30) throw std::runtime_error("late index");
        if (i == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          throw std::runtime_error("early index");
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "early index");
    }
    // A throwing round must not wedge the pool: the next round still runs.
    std::atomic<int> calls{0};
    pool.run_round(16, [&](std::size_t) {
      calls.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(calls.load(), 16);
  }
}

TEST(WorkerPool, CallerThreadParticipatesWhenSingleThreaded) {
  WorkerPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> seen;
  pool.run_round(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    seen.push_back(i);
  });
  ASSERT_EQ(seen.size(), 16u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(WorkerPool, DestructsCleanlyWithoutEverRunningARound) {
  WorkerPool pool(8);
  EXPECT_EQ(pool.threads(), 8);
}

CliFlags parse_flags(const std::vector<const char*>& args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliFlags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Executor, JobsFlagAbsentMeansAuto) {
  EXPECT_EQ(jobs_flag(parse_flags({})), 0);
}

TEST(Executor, JobsFlagParsesPositiveValues) {
  EXPECT_EQ(jobs_flag(parse_flags({"--jobs=1"})), 1);
  EXPECT_EQ(jobs_flag(parse_flags({"--jobs=16"})), 16);
}

TEST(Executor, JobsFlagRejectsZeroNegativeAndGarbage) {
  for (const char* arg :
       {"--jobs=0", "--jobs=-2", "--jobs=abc", "--jobs=", "--jobs=4x"}) {
    EXPECT_THROW((void)jobs_flag(parse_flags({arg})), std::runtime_error)
        << arg;
  }
}

TEST(Executor, WorkersFlagAbsentMeansSerialMachines) {
  EXPECT_EQ(workers_flag(parse_flags({})), 0);
}

TEST(Executor, WorkersFlagParsesPositiveValues) {
  EXPECT_EQ(workers_flag(parse_flags({"--workers=1"})), 1);
  EXPECT_EQ(workers_flag(parse_flags({"--workers=8"})), 8);
}

TEST(Executor, WorkersFlagRejectsZeroNegativeAndGarbage) {
  // Same shared get_positive_int validation path as --jobs: an explicit
  // worker count must be a well-formed integer >= 1.
  for (const char* arg : {"--workers=0", "--workers=-1", "--workers=auto",
                          "--workers=", "--workers=2.5"}) {
    EXPECT_THROW((void)workers_flag(parse_flags({arg})), std::runtime_error)
        << arg;
  }
}

}  // namespace
}  // namespace scc::exec
