#include "lwnb/lwnb.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "ircce/ircce.hpp"
#include "machine/scc_machine.hpp"

namespace scc::lwnb {
namespace {

machine::SccConfig small_config() {
  machine::SccConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;
  return config;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 11 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

sim::Task<> send_side(machine::CoreApi& api, const rcce::Layout* layout,
                      const std::vector<std::byte>* data, int dest) {
  rcce::Rcce rcce(api, *layout);
  Lwnb lwnb(rcce);
  EXPECT_FALSE(lwnb.send_pending());
  co_await lwnb.isend(*data, dest);
  EXPECT_TRUE(lwnb.send_pending());
  co_await lwnb.wait_send();
  EXPECT_FALSE(lwnb.send_pending());
}

sim::Task<> recv_side(machine::CoreApi& api, const rcce::Layout* layout,
                      std::vector<std::byte>* data, int src) {
  rcce::Rcce rcce(api, *layout);
  Lwnb lwnb(rcce);
  co_await lwnb.irecv(*data, src);
  EXPECT_TRUE(lwnb.recv_pending());
  co_await lwnb.wait_recv();
  EXPECT_FALSE(lwnb.recv_pending());
}

TEST(Lwnb, BasicTransfer) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(300, 2);
  std::vector<std::byte> received(300);
  machine.launch(0, send_side(machine.core(0), &layout, &data, 7));
  machine.launch(7, recv_side(machine.core(7), &layout, &received, 0));
  machine.run();
  EXPECT_EQ(received, data);
}

TEST(Lwnb, OversizedMessageChunks) {
  machine::SccMachine machine(small_config());
  const rcce::Layout layout(machine.num_cores());
  const auto data = pattern(14000, 6);
  std::vector<std::byte> received(14000);
  machine.launch(0, send_side(machine.core(0), &layout, &data, 1));
  machine.launch(1, recv_side(machine.core(1), &layout, &received, 0));
  machine.run();
  EXPECT_EQ(received, data);
}

sim::Task<> ring_round(machine::CoreApi& api, const rcce::Layout* layout,
                       const std::vector<std::byte>* sbuf,
                       std::vector<std::byte>* rbuf) {
  // isend + irecv + wait_both in ANY issue order: the whole point of the
  // non-blocking primitives is that no odd-even discipline is needed.
  rcce::Rcce rcce(api, *layout);
  Lwnb lwnb(rcce);
  const int p = rcce.num_cores();
  co_await lwnb.isend(*sbuf, (rcce.rank() + 1) % p);
  co_await lwnb.irecv(*rbuf, (rcce.rank() + p - 1) % p);
  co_await lwnb.wait_both();
}

TEST(Lwnb, UnorderedRingDoesNotDeadlock) {
  machine::SccMachine machine(small_config());
  const int p = machine.num_cores();
  const rcce::Layout layout(p);
  std::vector<std::vector<std::byte>> in, out;
  for (int r = 0; r < p; ++r) {
    in.push_back(pattern(256, r));
    out.emplace_back(256);
  }
  for (int r = 0; r < p; ++r)
    machine.launch(r, ring_round(machine.core(r), &layout,
                                 &in[static_cast<std::size_t>(r)],
                                 &out[static_cast<std::size_t>(r)]));
  machine.run();
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(out[static_cast<std::size_t>(r)],
              in[static_cast<std::size_t>((r + p - 1) % p)]);
  }
}

sim::Task<> double_isend(machine::CoreApi& api, const rcce::Layout* layout) {
  rcce::Rcce rcce(api, *layout);
  Lwnb lwnb(rcce);
  std::vector<std::byte> buf(8);
  co_await lwnb.isend(buf, 1);
  co_await lwnb.isend(buf, 2);  // must die: single-slot engine
}

TEST(LwnbDeath, SecondOutstandingSendRejected) {
  EXPECT_DEATH(
      {
        machine::SccMachine machine(small_config());
        const rcce::Layout layout(machine.num_cores());
        machine.launch(0, double_isend(machine.core(0), &layout));
        machine.run();
      },
      "precondition");
}

sim::Task<> measure_round(machine::CoreApi& api, const rcce::Layout* layout,
                          bool use_lwnb, const std::vector<std::byte>* sbuf,
                          std::vector<std::byte>* rbuf, SimTime* sw_overhead) {
  rcce::Rcce rcce(api, *layout);
  const int p = rcce.num_cores();
  const int right = (rcce.rank() + 1) % p;
  const int left = (rcce.rank() + p - 1) % p;
  if (use_lwnb) {
    Lwnb lwnb(rcce);
    co_await lwnb.isend(*sbuf, right);
    co_await lwnb.irecv(*rbuf, left);
    co_await lwnb.wait_both();
  } else {
    ircce::Ircce ircce(rcce);
    const auto sid = co_await ircce.isend(*sbuf, right);
    const auto rid = co_await ircce.irecv(*rbuf, left);
    const std::array<ircce::RequestId, 2> ids{sid, rid};
    co_await ircce.wait_all(ids);
  }
  *sw_overhead = api.profile().get(machine::Phase::kSwOverhead);
}

TEST(Lwnb, LessSoftwareOverheadThanIrcce) {
  // Section IV-B's core claim, measured directly from the profiles.
  SimTime lwnb_overhead, ircce_overhead;
  for (const bool use_lwnb : {false, true}) {
    machine::SccMachine machine(small_config());
    const int p = machine.num_cores();
    const rcce::Layout layout(p);
    std::vector<std::vector<std::byte>> in(
        static_cast<std::size_t>(p), pattern(96, 1)),
        out(static_cast<std::size_t>(p), std::vector<std::byte>(96));
    std::vector<SimTime> overheads(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r)
      machine.launch(r, measure_round(machine.core(r), &layout, use_lwnb,
                                      &in[static_cast<std::size_t>(r)],
                                      &out[static_cast<std::size_t>(r)],
                                      &overheads[static_cast<std::size_t>(r)]));
    machine.run();
    (use_lwnb ? lwnb_overhead : ircce_overhead) = overheads[0];
  }
  EXPECT_LT(lwnb_overhead * 2, ircce_overhead);
}

}  // namespace
}  // namespace scc::lwnb
