#include "noc/traffic.hpp"

#include <gtest/gtest.h>

namespace scc::noc {
namespace {

TEST(Traffic, StartsEmpty) {
  const Topology topo;
  const TrafficMatrix traffic(topo);
  EXPECT_EQ(traffic.total_lines_sent(), 0u);
  EXPECT_EQ(traffic.total_line_hops(), 0u);
  EXPECT_EQ(traffic.max_link_load(), 0u);
}

TEST(Traffic, LineHopsEqualLinesTimesDistance) {
  const Topology topo;
  TrafficMatrix traffic(topo);
  traffic.record_transfer(0, 47, 10);  // 8 hops
  EXPECT_EQ(traffic.total_lines_sent(), 10u);
  EXPECT_EQ(traffic.total_line_hops(), 80u);
}

TEST(Traffic, SameTileTransferHasNoHops) {
  const Topology topo;
  TrafficMatrix traffic(topo);
  traffic.record_transfer(0, 1, 100);
  EXPECT_EQ(traffic.total_lines_sent(), 100u);
  EXPECT_EQ(traffic.total_line_hops(), 0u);
}

TEST(Traffic, SharedLinksAccumulate) {
  const Topology topo;
  TrafficMatrix traffic(topo);
  // Both transfers traverse the (0,0)->(1,0) link first.
  traffic.record_transfer(0, 2, 5);
  traffic.record_transfer(0, 4, 5);
  EXPECT_EQ(traffic.max_link_load(), 10u);
}

TEST(Traffic, LoadsSortedDescending) {
  const Topology topo;
  TrafficMatrix traffic(topo);
  traffic.record_transfer(0, 2, 3);
  traffic.record_transfer(0, 4, 3);
  const auto loads = traffic.loads();
  ASSERT_GE(loads.size(), 2u);
  for (std::size_t i = 1; i < loads.size(); ++i)
    EXPECT_GE(loads[i - 1].lines, loads[i].lines);
}

TEST(Traffic, ResetClears) {
  const Topology topo;
  TrafficMatrix traffic(topo);
  traffic.record_transfer(0, 10, 7);
  traffic.reset();
  EXPECT_EQ(traffic.total_lines_sent(), 0u);
  EXPECT_TRUE(traffic.loads().empty());
}

TEST(Traffic, DirectedLinksDistinct) {
  const Topology topo;
  TrafficMatrix traffic(topo);
  traffic.record_transfer(0, 2, 1);
  traffic.record_transfer(2, 0, 1);
  // Opposite directions are different links.
  EXPECT_EQ(traffic.loads().size(), 2u);
  EXPECT_EQ(traffic.max_link_load(), 1u);
}

}  // namespace
}  // namespace scc::noc
