#include "noc/contention.hpp"

#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace scc::noc {
namespace {

TEST(Contention, FirstTransferIsNotDelayed) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3, 4);
  EXPECT_EQ(model.occupy(0, 47, 100, SimTime::zero()), SimTime::zero());
  EXPECT_EQ(model.delayed_transfers(), 0u);
}

TEST(Contention, SecondTransferOnSameLinkQueues) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3, 4);
  model.occupy(0, 4, 100, SimTime::zero());  // occupies (0,0)->(1,0)...
  const SimTime delay = model.occupy(0, 4, 100, SimTime::zero());
  EXPECT_GT(delay, SimTime::zero());
  EXPECT_EQ(model.delayed_transfers(), 1u);
}

TEST(Contention, DisjointRoutesDoNotInteract) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3, 4);
  model.occupy(0, 2, 1000, SimTime::zero());   // row 0, eastbound
  const SimTime delay = model.occupy(47, 45, 1000, SimTime::zero());  // row 3, westbound
  EXPECT_EQ(delay, SimTime::zero());
}

TEST(Contention, OppositeDirectionsAreSeparateLinks) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3, 4);
  model.occupy(0, 2, 1000, SimTime::zero());
  EXPECT_EQ(model.occupy(2, 0, 1000, SimTime::zero()), SimTime::zero());
}

TEST(Contention, BusyLinksDrainOverTime) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3, 4);
  model.occupy(0, 2, 8, SimTime::zero());  // 8 lines * 3 mesh cycles
  const SimTime much_later = SimTime::from_us(1000.0);
  EXPECT_EQ(model.occupy(0, 2, 8, much_later), SimTime::zero());
}

TEST(Contention, SameTileTransferNeverQueues) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3, 4);
  model.occupy(0, 1, 1000, SimTime::zero());
  EXPECT_EQ(model.occupy(0, 1, 1000, SimTime::zero()), SimTime::zero());
}

TEST(Contention, ResetClearsState) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3, 4);
  model.occupy(0, 4, 100, SimTime::zero());
  model.occupy(0, 4, 100, SimTime::zero());
  model.reset();
  EXPECT_EQ(model.total_delay(), SimTime::zero());
  EXPECT_EQ(model.occupy(0, 4, 100, SimTime::zero()), SimTime::zero());
}

// --- hop-offset (wormhole) window timing ---------------------------------
//
// Link i of a route is occupied starting hop_latency * i after the
// transfer departs, not at departure. Both tests pin exact delays.

constexpr std::uint64_t kLines = 8;
const SimTime kService = Clock{800e6}.cycles(kLines * 3);  // per-link window
const SimTime kHop = Clock{800e6}.cycles(4);               // head hop latency

TEST(Contention, TrailingLinkOccupiedAfterHeadTraversal) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3, 4);
  // Core 0 (tile (0,0)) -> core 14 (tile (1,1)): XY route is (0,0)->(1,0)
  // then (1,0)->(1,1); the second link's window is [kHop, kHop + kService].
  model.occupy(0, 14, kLines, SimTime::zero());
  // Core 2 (tile (1,0)) -> core 14 crosses only (1,0)->(1,1) -- the first
  // transfer's *second* hop. Entering at exactly kService would be free
  // under a start-everything-at-departure model; with the offset the link
  // is busy until kHop + kService, so the residual delay is exactly kHop.
  const SimTime delay = model.occupy(2, 14, kLines, kService);
  EXPECT_EQ(delay, kHop);
}

TEST(Contention, FarLinkFreeBeforeHeadArrives) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3, 4);
  // Core 2 (tile (1,0)) -> core 14 (tile (1,1)): occupies (1,0)->(1,1) over
  // [0, kService].
  model.occupy(2, 14, kLines, SimTime::zero());
  // Core 0 -> core 14 departs at 0 but its head reaches (1,0)->(1,1) only
  // at kHop, so the residual busy time there is kService - kHop (a model
  // without the offset would charge the full kService).
  const SimTime delay = model.occupy(0, 14, kLines, SimTime::zero());
  EXPECT_EQ(delay, kService - kHop);
}

// --- integration with the full stack ------------------------------------

double alltoall_us(bool contention) {
  harness::RunSpec spec;
  spec.collective = harness::Collective::kAlltoall;
  spec.variant = harness::PaperVariant::kLightweight;
  spec.elements = 64;
  spec.repetitions = 2;
  spec.warmup = 1;
  spec.verify = false;
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 2;
  spec.config.cost.hw.model_link_contention = contention;
  return harness::run_collective(spec).mean_latency.us();
}

TEST(Contention, AlltoallSlowerWithContentionModeled) {
  EXPECT_GT(alltoall_us(true), alltoall_us(false));
}

TEST(Contention, DeterministicWhenEnabled) {
  EXPECT_DOUBLE_EQ(alltoall_us(true), alltoall_us(true));
}

TEST(Contention, ResultsStillCorrectWithContention) {
  harness::RunSpec spec;
  spec.collective = harness::Collective::kAlltoall;
  spec.variant = harness::PaperVariant::kLightweight;
  spec.elements = 32;
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 2;
  spec.config.cost.hw.model_link_contention = true;
  EXPECT_TRUE(harness::run_collective(spec).verified);
}

}  // namespace
}  // namespace scc::noc
