#include "noc/contention.hpp"

#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace scc::noc {
namespace {

TEST(Contention, FirstTransferIsNotDelayed) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3);
  EXPECT_EQ(model.occupy(0, 47, 100, SimTime::zero()), SimTime::zero());
  EXPECT_EQ(model.delayed_transfers(), 0u);
}

TEST(Contention, SecondTransferOnSameLinkQueues) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3);
  model.occupy(0, 4, 100, SimTime::zero());  // occupies (0,0)->(1,0)...
  const SimTime delay = model.occupy(0, 4, 100, SimTime::zero());
  EXPECT_GT(delay, SimTime::zero());
  EXPECT_EQ(model.delayed_transfers(), 1u);
}

TEST(Contention, DisjointRoutesDoNotInteract) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3);
  model.occupy(0, 2, 1000, SimTime::zero());   // row 0, eastbound
  const SimTime delay = model.occupy(47, 45, 1000, SimTime::zero());  // row 3, westbound
  EXPECT_EQ(delay, SimTime::zero());
}

TEST(Contention, OppositeDirectionsAreSeparateLinks) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3);
  model.occupy(0, 2, 1000, SimTime::zero());
  EXPECT_EQ(model.occupy(2, 0, 1000, SimTime::zero()), SimTime::zero());
}

TEST(Contention, BusyLinksDrainOverTime) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3);
  model.occupy(0, 2, 8, SimTime::zero());  // 8 lines * 3 mesh cycles
  const SimTime much_later = SimTime::from_us(1000.0);
  EXPECT_EQ(model.occupy(0, 2, 8, much_later), SimTime::zero());
}

TEST(Contention, SameTileTransferNeverQueues) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3);
  model.occupy(0, 1, 1000, SimTime::zero());
  EXPECT_EQ(model.occupy(0, 1, 1000, SimTime::zero()), SimTime::zero());
}

TEST(Contention, ResetClearsState) {
  const Topology topo;
  LinkContention model(topo, Clock{800e6}, 3);
  model.occupy(0, 4, 100, SimTime::zero());
  model.occupy(0, 4, 100, SimTime::zero());
  model.reset();
  EXPECT_EQ(model.total_delay(), SimTime::zero());
  EXPECT_EQ(model.occupy(0, 4, 100, SimTime::zero()), SimTime::zero());
}

// --- integration with the full stack ------------------------------------

double alltoall_us(bool contention) {
  harness::RunSpec spec;
  spec.collective = harness::Collective::kAlltoall;
  spec.variant = harness::PaperVariant::kLightweight;
  spec.elements = 64;
  spec.repetitions = 2;
  spec.warmup = 1;
  spec.verify = false;
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 2;
  spec.config.cost.hw.model_link_contention = contention;
  return harness::run_collective(spec).mean_latency.us();
}

TEST(Contention, AlltoallSlowerWithContentionModeled) {
  EXPECT_GT(alltoall_us(true), alltoall_us(false));
}

TEST(Contention, DeterministicWhenEnabled) {
  EXPECT_DOUBLE_EQ(alltoall_us(true), alltoall_us(true));
}

TEST(Contention, ResultsStillCorrectWithContention) {
  harness::RunSpec spec;
  spec.collective = harness::Collective::kAlltoall;
  spec.variant = harness::PaperVariant::kLightweight;
  spec.elements = 32;
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 2;
  spec.config.cost.hw.model_link_contention = true;
  EXPECT_TRUE(harness::run_collective(spec).verified);
}

}  // namespace
}  // namespace scc::noc
