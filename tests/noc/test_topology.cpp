#include "noc/topology.hpp"

#include <gtest/gtest.h>

namespace scc::noc {
namespace {

TEST(Topology, SccDefaultGeometry) {
  const Topology t;
  EXPECT_EQ(t.tiles_x(), 6);
  EXPECT_EQ(t.tiles_y(), 4);
  EXPECT_EQ(t.num_tiles(), 24);
  EXPECT_EQ(t.num_cores(), 48);
  EXPECT_EQ(t.cores_per_tile(), 2);
}

TEST(Topology, TileOfPairsCores) {
  const Topology t;
  EXPECT_EQ(t.tile_of(0), 0);
  EXPECT_EQ(t.tile_of(1), 0);
  EXPECT_EQ(t.tile_of(2), 1);
  EXPECT_EQ(t.tile_of(47), 23);
}

TEST(Topology, CoordsRowMajor) {
  const Topology t;
  EXPECT_EQ(t.coord_of_tile(0), (TileCoord{0, 0}));
  EXPECT_EQ(t.coord_of_tile(5), (TileCoord{5, 0}));
  EXPECT_EQ(t.coord_of_tile(6), (TileCoord{0, 1}));
  EXPECT_EQ(t.coord_of_tile(23), (TileCoord{5, 3}));
}

TEST(Topology, HopsSameTileIsZero) {
  const Topology t;
  EXPECT_EQ(t.hops(0, 1), 0);
  EXPECT_EQ(t.hops(46, 47), 0);
}

TEST(Topology, HopsManhattanDistance) {
  const Topology t;
  // Core 0 at tile (0,0); core 47 at tile (5,3).
  EXPECT_EQ(t.hops(0, 47), 8);
  // Core 0 -> core 2 (tile 1, adjacent).
  EXPECT_EQ(t.hops(0, 2), 1);
}

TEST(Topology, HopsSymmetric) {
  const Topology t;
  for (int a = 0; a < t.num_cores(); a += 7)
    for (int b = 0; b < t.num_cores(); b += 5)
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
}

TEST(Topology, HopsTriangleInequality) {
  const Topology t;
  for (int a = 0; a < t.num_cores(); a += 9)
    for (int b = 0; b < t.num_cores(); b += 7)
      for (int c = 0; c < t.num_cores(); c += 11)
        EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
}

TEST(Topology, McCoordsOnEdges) {
  const Topology t;
  EXPECT_EQ(t.mc_coord(0), (TileCoord{0, 0}));
  EXPECT_EQ(t.mc_coord(1), (TileCoord{5, 0}));
  EXPECT_EQ(t.mc_coord(2), (TileCoord{0, 2}));
  EXPECT_EQ(t.mc_coord(3), (TileCoord{5, 2}));
}

TEST(Topology, EveryCoreHasAnMcInItsQuadrant) {
  const Topology t;
  for (int c = 0; c < t.num_cores(); ++c) {
    const int mc = t.mc_of(c);
    EXPECT_GE(mc, 0);
    EXPECT_LT(mc, 4);
    EXPECT_LE(t.hops_to_mc(c), 4);  // worst case inside a 3x2 quadrant
  }
}

TEST(Topology, RouteLengthEqualsHops) {
  const Topology t;
  for (int a = 0; a < t.num_cores(); a += 3)
    for (int b = 0; b < t.num_cores(); b += 5)
      EXPECT_EQ(static_cast<int>(t.route(a, b).size()), t.hops(a, b));
}

TEST(Topology, RouteIsXThenY) {
  const Topology t;
  // Core 0 (0,0) -> core 47 (5,3): first 5 X-links, then 3 Y-links.
  const auto links = t.route(0, 47);
  ASSERT_EQ(links.size(), 8u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(links[static_cast<std::size_t>(i)].from.x,
              links[static_cast<std::size_t>(i)].to.x);
    EXPECT_EQ(links[static_cast<std::size_t>(i)].from.y,
              links[static_cast<std::size_t>(i)].to.y);
  }
  for (int i = 5; i < 8; ++i) {
    EXPECT_EQ(links[static_cast<std::size_t>(i)].from.x,
              links[static_cast<std::size_t>(i)].to.x);
    EXPECT_NE(links[static_cast<std::size_t>(i)].from.y,
              links[static_cast<std::size_t>(i)].to.y);
  }
}

TEST(Topology, CustomShape) {
  const Topology t(3, 2, 2);
  EXPECT_EQ(t.num_cores(), 12);
  EXPECT_EQ(t.coord_of(11), (TileCoord{2, 1}));
}

TEST(Topology, SingleTileMesh) {
  const Topology t(1, 1, 2);
  EXPECT_EQ(t.num_cores(), 2);
  EXPECT_EQ(t.hops(0, 1), 0);
  EXPECT_TRUE(t.route(0, 1).empty());
}

}  // namespace
}  // namespace scc::noc
