#include "trace/recorder.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>

#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "machine/profile.hpp"
#include "trace/chrome_export.hpp"

namespace scc::trace {
namespace {

// --- recorder basics -----------------------------------------------------

TEST(Recorder, RecordsIntervalsInstantsAndWindows) {
  Recorder rec;
  rec.interval(3, "compute", SimTime{10}, SimTime{30}, "detail");
  rec.instant(kEnginePid, "tasks", "spawn", SimTime{5});
  rec.link_window(rec.intern("(0,0)->(1,0)"), SimTime{0}, SimTime{8},
                  SimTime{2});
  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0].kind, EventKind::kInterval);
  EXPECT_EQ(rec.events()[0].pid, 3);
  EXPECT_EQ(rec.events()[1].pid, kEnginePid);
  EXPECT_EQ(rec.events()[2].pid, kLinkPid);
  EXPECT_EQ(rec.events()[2].extra, SimTime{2});
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Recorder, CapacityBoundsMemoryAndCountsDrops) {
  Recorder rec(4);
  for (int i = 0; i < 10; ++i)
    rec.instant(0, "lane", "e", SimTime{static_cast<std::uint64_t>(i)});
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Recorder, RunScopesStampEvents) {
  Recorder rec;
  rec.instant(0, "l", "a", SimTime{1});
  rec.begin_run("second");
  rec.instant(0, "l", "b", SimTime{2});
  EXPECT_EQ(rec.events()[0].run, 0);
  EXPECT_EQ(rec.events()[1].run, 1);
  ASSERT_EQ(rec.run_labels().size(), 2u);
  EXPECT_EQ(rec.run_labels()[1], "second");
}

TEST(Recorder, InternedViewsAreStableAndShared) {
  Recorder rec;
  const std::string_view a = rec.intern("same-name");
  std::string_view b;
  for (int i = 0; i < 1000; ++i) b = rec.intern(std::string("name") + std::to_string(i));
  EXPECT_EQ(rec.intern("same-name").data(), a.data());
  EXPECT_EQ(a, "same-name");
}

// --- exact-decimal timestamp formatting ----------------------------------

TEST(ChromeExport, FormatUsIsExactDecimal) {
  EXPECT_EQ(format_us(SimTime::zero()), "0.000000000");
  EXPECT_EQ(format_us(SimTime{1'234'567'890'123}), "1234.567890123");
  EXPECT_EQ(format_us(SimTime{1}), "0.000000001");  // one femtosecond
}

/// Parses a format_us string back to femtoseconds (exactness check).
std::uint64_t parse_us(const std::string& s) {
  const std::size_t dot = s.find('.');
  EXPECT_NE(dot, std::string::npos);
  EXPECT_EQ(s.size() - dot - 1, 9u);  // always 9 fractional digits
  return std::stoull(s.substr(0, dot)) * 1'000'000'000 +
         std::stoull(s.substr(dot + 1));
}

TEST(ChromeExport, FormatUsRoundTrips) {
  for (const std::uint64_t fs :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{999'999'999},
        std::uint64_t{1'000'000'000}, std::uint64_t{123'456'789'012'345}}) {
    EXPECT_EQ(parse_us(format_us(SimTime{fs})), fs);
  }
}

// --- a tiny JSON validator -----------------------------------------------
//
// Recursive-descent acceptor for the JSON grammar -- enough to prove the
// exporter's output is well-formed without a JSON library dependency.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (depth_ > 64 || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  [[nodiscard]] bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }
  [[nodiscard]] bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }
  [[nodiscard]] bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && text_[start] != '-' ? true : pos_ > start + 1;
  }
  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

TEST(JsonValidator, AcceptsAndRejectsCorrectly) {
  EXPECT_TRUE(JsonValidator(R"({"a":[1,2.5,-3e2],"b":"x\n\"","c":null})").valid());
  EXPECT_TRUE(JsonValidator("{}").valid());
  EXPECT_FALSE(JsonValidator("{").valid());
  EXPECT_FALSE(JsonValidator(R"({"a":})").valid());
  EXPECT_FALSE(JsonValidator(R"(["unterminated)").valid());
  EXPECT_FALSE(JsonValidator("{} trailing").valid());
}

// --- integration: traced harness runs ------------------------------------

harness::RunSpec small_spec() {
  harness::RunSpec spec;
  spec.collective = harness::Collective::kAllreduce;
  spec.variant = harness::PaperVariant::kLightweight;
  spec.elements = 64;
  spec.repetitions = 2;
  spec.warmup = 1;
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 2;
  return spec;
}

TEST(Trace, ExportedJsonIsWellFormed) {
  Recorder rec;
  harness::RunSpec spec = small_spec();
  spec.trace = &rec;
  spec.config.cost.hw.model_link_contention = true;  // exercise link tracks
  static_cast<void>(harness::run_collective(spec));
  ASSERT_FALSE(rec.events().empty());
  std::ostringstream os;
  write_chrome_json(rec, os);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str().substr(0, 2000);
}

// The acceptance criterion: summing a core's per-phase intervals from the
// trace reproduces its CoreProfile totals EXACTLY (femtosecond-level).
TEST(Trace, IntervalSumsMatchCoreProfileTotals) {
  Recorder rec;
  harness::RunSpec spec = small_spec();
  spec.trace = &rec;
  spec.collect_profiles = true;
  const harness::RunResult result = harness::run_collective(spec);
  ASSERT_EQ(rec.dropped(), 0u) << "capacity too small for exact accounting";

  std::map<std::pair<int, std::string_view>, SimTime> sums;
  for (const Event& e : rec.events()) {
    if (e.kind == EventKind::kInterval) sums[{e.pid, e.lane}] += e.t1 - e.t0;
  }
  using machine::Phase;
  for (int core = 0; core < static_cast<int>(result.profiles.size()); ++core) {
    const machine::CoreProfile& profile =
        result.profiles[static_cast<std::size_t>(core)];
    for (const Phase phase :
         {Phase::kCompute, Phase::kSwOverhead, Phase::kMpbTransfer,
          Phase::kPrivMem, Phase::kFlagOp, Phase::kFlagWait}) {
      SimTime sum;
      const auto it = sums.find({core, machine::phase_name(phase)});
      if (it != sums.end()) sum = it->second;
      EXPECT_EQ(sum, profile.get(phase))
          << "core " << core << " phase " << machine::phase_name(phase);
    }
  }
}

// Intervals survive the JSON round trip losslessly: re-summing ts/dur
// parsed back out of the exported text still matches the profile totals.
TEST(Trace, JsonTimestampsStayExact) {
  Recorder rec;
  harness::RunSpec spec = small_spec();
  spec.trace = &rec;
  static_cast<void>(harness::run_collective(spec));
  std::uint64_t direct = 0;
  for (const Event& e : rec.events()) {
    if (e.kind == EventKind::kInterval)
      direct += (e.t1 - e.t0).femtoseconds();
  }
  std::ostringstream os;
  write_chrome_json(rec, os);
  const std::string json = os.str();
  std::uint64_t parsed = 0;
  std::size_t pos = 0;
  while ((pos = json.find("\"dur\":", pos)) != std::string::npos) {
    pos += 6;
    const std::size_t end = json.find_first_of(",}", pos);
    parsed += parse_us(json.substr(pos, end - pos));
  }
  EXPECT_EQ(parsed, direct);
  EXPECT_GT(direct, 0u);
}

TEST(Trace, TracingDoesNotChangeTiming) {
  const harness::RunResult untraced = harness::run_collective(small_spec());
  Recorder rec;
  harness::RunSpec spec = small_spec();
  spec.trace = &rec;
  const harness::RunResult traced = harness::run_collective(spec);
  EXPECT_EQ(traced.mean_latency, untraced.mean_latency);
  EXPECT_EQ(traced.events, untraced.events);
}

TEST(Trace, DeterministicEventStream) {
  const auto run_once = [] {
    Recorder rec;
    harness::RunSpec spec = small_spec();
    spec.trace = &rec;
    static_cast<void>(harness::run_collective(spec));
    std::ostringstream os;
    write_chrome_json(rec, os);
    return os.str();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Trace, LinkWindowsRecordedWithContention) {
  Recorder rec;
  harness::RunSpec spec = small_spec();
  spec.collective = harness::Collective::kAlltoall;
  spec.trace = &rec;
  spec.config.cost.hw.model_link_contention = true;
  static_cast<void>(harness::run_collective(spec));
  std::size_t windows = 0;
  SimTime queued;
  for (const Event& e : rec.events()) {
    if (e.kind == EventKind::kLinkWindow) {
      ++windows;
      EXPECT_GE(e.t1, e.t0);
      queued += e.extra;
    }
  }
  EXPECT_GT(windows, 0u);

  std::ostringstream csv;
  write_link_csv(rec, csv);
  const std::string text = csv.str();
  EXPECT_EQ(text.rfind("run,link,windows,busy_us,queue_us,utilization_pct\n",
                       0),
            0u);
  EXPECT_NE(text.find("(0,0)->(1,0)"), std::string::npos);
}

TEST(Trace, SweepProducesOneRunScopePerPoint) {
  Recorder rec;
  harness::SweepSpec spec;
  spec.collective = harness::Collective::kAllreduce;
  spec.from = 32;
  spec.to = 64;
  spec.step = 32;
  spec.repetitions = 1;
  spec.warmup = 0;
  spec.config.tiles_x = 2;
  spec.config.tiles_y = 2;
  spec.variants = {harness::PaperVariant::kBlocking,
                   harness::PaperVariant::kLightweight};
  spec.trace = &rec;
  static_cast<void>(harness::run_sweep(spec));
  // 2 sizes x 2 variants = 4 run scopes after the implicit run 0.
  ASSERT_EQ(rec.run_labels().size(), 5u);
  EXPECT_EQ(rec.run_labels()[1], "allreduce/blocking n=32");
  EXPECT_EQ(rec.run_labels()[4], "allreduce/lightweight n=64");
  std::ostringstream os;
  write_chrome_json(rec, os);
  EXPECT_TRUE(JsonValidator(os.str()).valid());
}

TEST(Trace, PerturbationInstantsRecorded) {
  Recorder rec;
  harness::RunSpec spec = small_spec();
  spec.trace = &rec;
  spec.config.perturb_seed = 7;
  spec.config.perturb_max_delay_fs = 1'000'000;
  static_cast<void>(harness::run_collective(spec));
  bool saw_delay = false, saw_spawn = false;
  for (const Event& e : rec.events()) {
    if (e.kind != EventKind::kInstant || e.pid != kEnginePid) continue;
    if (e.name == "inject-delay") saw_delay = true;
    if (e.name == "spawn") saw_spawn = true;
  }
  EXPECT_TRUE(saw_delay);
  EXPECT_TRUE(saw_spawn);
}

}  // namespace
}  // namespace scc::trace
