// Topology explorer: prints the simulated SCC's mesh layout, memory-
// controller assignment, and the raw access-latency tables from which
// every higher-level result is built -- useful for sanity-checking the
// hardware model against the SCC documentation.
//
// Usage: topology_explorer [--mesh=6x4] [--no-bug] [--from-core=N]
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "mem/latency.hpp"
#include "noc/topology.hpp"

int main(int argc, char** argv) {
  using namespace scc;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv);
    const auto mesh = split(flags.get("mesh", "6x4"), 'x');
    if (mesh.size() != 2) throw std::runtime_error("--mesh expects WxH");
    const noc::Topology topo(std::stoi(mesh[0]), std::stoi(mesh[1]), 2);
    mem::HwCostModel hw;
    hw.mpb_bug_workaround = !flags.get_bool("no-bug", false);
    const mem::LatencyCalculator calc(hw, topo);
    const int origin = static_cast<int>(flags.get_int("from-core", 0));

    std::printf("SCC mesh: %dx%d tiles, %d cores, MPB arbiter-bug "
                "workaround %s\n\n",
                topo.tiles_x(), topo.tiles_y(), topo.num_cores(),
                hw.mpb_bug_workaround ? "on" : "off");

    std::printf("tile map (tile id, cores, assigned memory controller):\n");
    for (int y = topo.tiles_y() - 1; y >= 0; --y) {
      for (int x = 0; x < topo.tiles_x(); ++x) {
        const int tile = y * topo.tiles_x() + x;
        const int core = tile * topo.cores_per_tile();
        std::printf(" [t%02d c%02d-%02d MC%d]", tile, core,
                    core + topo.cores_per_tile() - 1, topo.mc_of(core));
      }
      std::printf("\n");
    }

    std::printf("\nMPB read latency from core %d (one 32-byte line, ns):\n",
                origin);
    for (int y = topo.tiles_y() - 1; y >= 0; --y) {
      for (int x = 0; x < topo.tiles_x(); ++x) {
        const int tile = y * topo.tiles_x() + x;
        const int core = tile * topo.cores_per_tile();
        std::printf(" %7.1f", calc.mpb_line_access(origin, core, true).ns());
      }
      std::printf("\n");
    }

    std::printf("\noff-chip (cache miss) latency per core, by hops to its "
                "memory controller:\n");
    for (int hops = 0; hops <= 2 * (topo.tiles_x() + topo.tiles_y()); ++hops) {
      int count = 0;
      double ns = 0.0;
      for (int c = 0; c < topo.num_cores(); ++c) {
        if (topo.hops_to_mc(c) != hops) continue;
        mem::CacheAccessResult miss;
        miss.misses = 1;
        ns = calc.priv_access(c, miss).ns();
        ++count;
      }
      if (count > 0) {
        std::printf("  %d hop(s): %5.1f ns  (%d cores)\n", hops, ns, count);
      }
    }

    std::printf("\nkey single-line latencies (ns):\n");
    std::printf("  local MPB              : %7.1f\n",
                calc.mpb_line_access(0, 1, true).ns());
    std::printf("  remote MPB, 1 hop read : %7.1f\n",
                calc.mpb_line_access(0, 2, true).ns());
    const int far = topo.num_cores() - 1;
    std::printf("  remote MPB, max hops   : %7.1f (%d hops)\n",
                calc.mpb_line_access(0, far, true).ns(), topo.hops(0, far));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
