// Quickstart: reproduce the paper's headline in one page of code.
//
// Runs a 552-element Allreduce (the thermodynamics application's Fourier-
// coefficient reduction) on a simulated 48-core SCC under each of the six
// library variants of Fig. 9f and prints the measured virtual-time latency
// plus the speedup over the RCCE_comm baseline.
//
// Usage: quickstart [--elements=N] [--reps=K] [--no-bug]
#include <cstdio>
#include <exception>
#include <iostream>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace scc;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv);
    harness::RunSpec spec;
    spec.elements =
        static_cast<std::size_t>(flags.get_int("elements", 552));
    spec.repetitions = static_cast<int>(flags.get_int("reps", 4));
    if (flags.get_bool("no-bug", false)) {
      spec.config = machine::SccConfig::bug_fixed();
    }

    std::printf("Allreduce of %zu doubles on %d simulated SCC cores "
                "(MPB arbiter bug workaround: %s)\n\n",
                spec.elements, spec.config.num_cores(),
                spec.config.cost.hw.mpb_bug_workaround ? "on" : "off");

    Table table({"variant", "latency", "speedup vs blocking", "verified"});
    double blocking_us = 0.0;
    for (const harness::PaperVariant v :
         harness::variants_for(harness::Collective::kAllreduce)) {
      spec.variant = v;
      const harness::RunResult r = harness::run_collective(spec);
      const double us = r.mean_latency.us();
      if (v == harness::PaperVariant::kBlocking) blocking_us = us;
      table.add_row({std::string(harness::variant_name(v)),
                     format_duration_us(us),
                     blocking_us > 0.0 ? strprintf("%.2fx", blocking_us / us)
                                       : "-",
                     r.verified ? "yes" : "skipped"});
    }
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
