// GCMC thermodynamics demo: runs the paper's Section V-B application on
// the simulated 48-core SCC and reports the sampled observables plus the
// runtime under a chosen communication stack.
//
// Usage:
//   gcmc_demo [--variant=blocking|ircce|lightweight|lw-balanced|mpb|rckmpi]
//             [--cycles N] [--particles N] [--kmaxvecs N] [--seed S]
//             [--compare]   (run all six stacks and tabulate, Fig. 10 style)
#include <cstdio>
#include <exception>
#include <iostream>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "gcmc/app.hpp"

namespace {

using scc::harness::PaperVariant;

PaperVariant parse_variant(const std::string& name) {
  for (const PaperVariant v :
       {PaperVariant::kRckmpi, PaperVariant::kBlocking, PaperVariant::kIrcce,
        PaperVariant::kLightweight, PaperVariant::kLwBalanced,
        PaperVariant::kMpb}) {
    if (name == scc::harness::variant_name(v)) return v;
  }
  throw std::runtime_error("unknown variant: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scc;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv);
    gcmc::AppParams params;
    params.model.kmaxvecs = static_cast<int>(flags.get_int("kmaxvecs", 276));
    params.particles_total = static_cast<int>(flags.get_int("particles", 240));
    params.max_local_particles =
        static_cast<int>(flags.get_int("capacity", 12));
    params.cycles = static_cast<int>(flags.get_int("cycles", 10));
    params.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2012));

    if (flags.get_bool("compare", false)) {
      std::printf("GCMC, %d particles, %d moves, %d-coefficient long-range "
                  "reduction, 48 cores\n\n",
                  params.particles_total, params.cycles, params.model.kmaxvecs);
      Table table({"variant", "runtime", "speedup", "E_final", "N_final"});
      double blocking = 0.0;
      for (const PaperVariant v :
           {PaperVariant::kRckmpi, PaperVariant::kBlocking,
            PaperVariant::kIrcce, PaperVariant::kLightweight,
            PaperVariant::kLwBalanced, PaperVariant::kMpb}) {
        const gcmc::AppResult r = gcmc::run_app(params, v);
        const double s = r.runtime.seconds();
        if (v == PaperVariant::kBlocking) blocking = s;
        table.add_row({std::string(harness::variant_name(v)),
                       format_minutes(s),
                       blocking > 0.0 ? strprintf("%.2fx", blocking / s) : "-",
                       strprintf("%.4f", r.final_energy),
                       strprintf("%d", r.final_particles)});
      }
      table.print(std::cout);
      return 0;
    }

    const PaperVariant variant =
        parse_variant(flags.get("variant", "lw-balanced"));
    const gcmc::AppResult r = gcmc::run_app(params, variant);
    std::printf("communication stack : %s\n",
                std::string(harness::variant_name(variant)).c_str());
    std::printf("virtual runtime     : %s\n",
                format_minutes(r.runtime.seconds()).c_str());
    std::printf("moves accepted      : %d / %d\n", r.accepted, r.attempted);
    std::printf("final energy        : %.6f\n", r.final_energy);
    std::printf("final particle count: %d\n", r.final_particles);
    const auto& p0 = r.profiles.front();
    std::printf("core 0 wait share   : %.0f%%\n",
                p0.get(machine::Phase::kFlagWait).seconds() /
                    p0.total().seconds() * 100.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
