// Interactive experiment driver: run any collective under any variant on
// any mesh shape and inspect latency, per-phase profile, event count and
// NoC traffic -- the knobs a user turns when exploring the library.
//
// Usage:
//   collective_playground [--collective=allreduce|allgather|alltoall|
//                           reducescatter|broadcast|reduce]
//                         [--variant=blocking|ircce|lightweight|lw-balanced|
//                           mpb|rckmpi|all]
//                         [--algo=ring|bruck|recursive-doubling|
//                           recursive-halving|ring-rs|pairwise|auto]
//                         [--elements=N] [--reps=K] [--mesh=6x4] [--no-bug]
//                         [--faults=SPEC] [--jobs=N] [--workers=N] [--profile]
//                         [--trace=out.json] [--metrics=out.json] [--blame]
//                         [--sample=INTERVAL_US] [--sample-out=PREFIX]
//                         [--hist]
//
// --algo overrides the collective's schedule (coll/algos.hpp) for the
// RCCE-family variants; "auto" asks the Selector. Default: the paper's
// algorithm.
//
// --faults injects machine degradation (src/faults; DESIGN.md §13), e.g.
//   --faults='straggler:5x2.5;deadlink:2,1-3,1'
// Stragglers/DVFS stretch one core's clock, slowlink/deadlink degrade or
// kill a mesh link (with static reroute). All variants and algorithms see
// the same degraded machine, so --variant=all under --faults shows how the
// paper's ranking shifts.
//
// --trace writes a chrome://tracing / Perfetto timeline of the run (plus
// <path>.links.csv with per-link utilization when contention is modeled).
// --metrics writes the full counter snapshot (scc-metrics-v1 JSON); --blame
// prints the critical-path blame report of the last measured repetition
// (which phases on which cores/links the end-to-end latency is spent in).
//
// --sample=U attaches the flight recorder (metrics::Sampler): the standard
// machine counters are snapshotted every U microseconds of SIMULATED time
// and written to <--sample-out>.csv / .json (scc-timeseries-v1; default
// prefix "timeseries"). --hist prints the per-repetition latency histogram
// (p50/p90/p99/p999) as JSON. Both are purely observational: enabling them
// changes no simulated result byte.
//
// --variant=all runs every paper variant of the collective (each on its own
// simulated machine) and prints one comparison table with speedups over the
// blocking baseline; for collectives with algorithm variants every
// (variant, algorithm) pair becomes a row (RCKMPI and MPB only have their
// own schedule). --jobs=N fans those independent simulations out over N
// host threads (default: hardware concurrency; the table is byte-identical
// for every N). The per-run instrumentation flags (--trace, --metrics,
// --blame, --profile) and --algo target a single run and are rejected in
// this mode.
//
// --workers=N drains each simulated machine itself on N conservative-PDES
// threads (harness::RunSpec::pdes_workers; default: serial machine).
// Allowed in both single-run and --variant=all mode, composes with --jobs,
// and every simulated result is identical for every N >= 1.
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "exec/executor.hpp"
#include "faults/fault_model.hpp"
#include "harness/runner.hpp"
#include "metrics/blame.hpp"
#include "metrics/histogram.hpp"
#include "trace/chrome_export.hpp"

namespace {

using scc::harness::Collective;
using scc::harness::PaperVariant;

Collective parse_collective(const std::string& name) {
  for (const Collective c :
       {Collective::kAllgather, Collective::kAlltoall,
        Collective::kReduceScatter, Collective::kBroadcast, Collective::kReduce,
        Collective::kAllreduce}) {
    if (name == scc::harness::collective_name(c)) return c;
  }
  throw std::runtime_error("unknown collective: " + name);
}

PaperVariant parse_variant(const std::string& name) {
  for (const PaperVariant v :
       {PaperVariant::kRckmpi, PaperVariant::kBlocking, PaperVariant::kIrcce,
        PaperVariant::kLightweight, PaperVariant::kLwBalanced,
        PaperVariant::kMpb}) {
    if (name == scc::harness::variant_name(v)) return v;
  }
  throw std::runtime_error("unknown variant: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scc;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv);
    harness::RunSpec spec;
    spec.collective = parse_collective(flags.get("collective", "allreduce"));
    const std::string variant_flag = flags.get("variant", "lw-balanced");
    const bool all_variants = variant_flag == "all";
    const int jobs = exec::jobs_flag(flags);
    spec.pdes_workers = exec::workers_flag(flags);
    if (!all_variants) spec.variant = parse_variant(variant_flag);
    const std::string algo_flag = flags.get("algo", "");
    if (!algo_flag.empty()) {
      const std::optional<coll::Algo> algo = coll::parse_algo(algo_flag);
      if (!algo) throw std::runtime_error("unknown algorithm: " + algo_flag);
      spec.algo = *algo;
    }
    spec.elements = static_cast<std::size_t>(flags.get_int("elements", 552));
    spec.repetitions = static_cast<int>(flags.get_int("reps", 4));
    spec.collect_profiles = flags.get_bool("profile", false);
    const auto mesh = split(flags.get("mesh", "6x4"), 'x');
    if (mesh.size() != 2) throw std::runtime_error("--mesh expects WxH");
    spec.config.tiles_x = std::stoi(mesh[0]);
    spec.config.tiles_y = std::stoi(mesh[1]);
    if (flags.get_bool("no-bug", false)) {
      spec.config.cost.hw.mpb_bug_workaround = false;
    }
    const std::string faults_flag = flags.get("faults", "");
    if (!faults_flag.empty()) {
      spec.config.faults = faults::FaultSpec::parse(faults_flag);
      // Report semantic problems (bad core id, disconnected mesh) as a CLI
      // error instead of tripping the FaultModel's contract check.
      const noc::Topology topo(spec.config.tiles_x, spec.config.tiles_y,
                               spec.config.cores_per_tile);
      if (const auto err = faults::FaultModel::check(spec.config.faults, topo)) {
        throw std::runtime_error("--faults: " + *err);
      }
    }
    const std::string trace_path = flags.get("trace", "");
    const std::string metrics_path = flags.get("metrics", "");
    const bool blame = flags.get_bool("blame", false);
    const double sample_us = flags.get_double("sample", 0.0);
    const std::string sample_out = flags.get("sample-out", "timeseries");
    const bool hist = flags.get_bool("hist", false);
    if (sample_us < 0.0) throw std::runtime_error("--sample must be >= 0");
    if (sample_us > 0.0) spec.sample_interval = SimTime::from_us(sample_us);
    spec.collect_metrics = !metrics_path.empty();

    if (all_variants) {
      if (!trace_path.empty() || !metrics_path.empty() || blame ||
          spec.collect_profiles || spec.algo ||
          spec.sample_interval > SimTime::zero() || hist) {
        throw std::runtime_error(
            "--variant=all compares every variant (and algorithm); --trace/"
            "--metrics/--blame/--profile/--algo/--sample/--hist target a "
            "single run (pick one variant)");
      }
      // One row per (variant, algorithm) pair. RCKMPI and the MPB-direct
      // path have their own fixed schedule; the Stack-based variants run
      // every implemented algorithm (the paper's first).
      struct Cell {
        PaperVariant variant;
        std::optional<coll::Algo> algo;
      };
      const std::optional<coll::CollKind> kind =
          harness::algo_kind(spec.collective);
      std::vector<Cell> cells;
      for (const PaperVariant v : harness::variants_for(spec.collective)) {
        const bool stack_variant =
            v != PaperVariant::kRckmpi && v != PaperVariant::kMpb;
        if (kind && stack_variant) {
          for (const coll::Algo a : coll::algos_for(*kind))
            cells.push_back({v, a});
        } else {
          cells.push_back({v, std::nullopt});
        }
      }
      // Each cell simulates on its own machine; results are merged in cell
      // order, so the table is the same for every --jobs value.
      const std::vector<harness::RunResult> results =
          exec::parallel_map<harness::RunResult>(
              cells.size(), jobs, [&](std::size_t i) {
                harness::RunSpec run = spec;
                run.variant = cells[i].variant;
                run.algo = cells[i].algo;
                return harness::run_collective(run);
              });
      std::printf("%s, %zu doubles on %d cores (%sx%s tiles), %d reps\n\n",
                  std::string(harness::collective_name(spec.collective))
                      .c_str(),
                  spec.elements, spec.config.num_cores(), mesh[0].c_str(),
                  mesh[1].c_str(), spec.repetitions);
      // Baseline: blocking stack running the paper's algorithm.
      double blocking_us = 0.0;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].variant == PaperVariant::kBlocking &&
            (!cells[i].algo ||
             (kind && *cells[i].algo == coll::paper_algo(*kind))))
          blocking_us = results[i].mean_latency.us();
      }
      Table table({"variant", "algo", "mean", "min", "max", "events",
                   "vs blocking"});
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const harness::RunResult& r = results[i];
        table.add_row(
            {std::string(harness::variant_name(cells[i].variant)),
             cells[i].algo ? std::string(coll::algo_name(*cells[i].algo))
                           : std::string("-"),
             format_duration_us(r.mean_latency.us()),
             format_duration_us(r.min_latency.us()),
             format_duration_us(r.max_latency.us()),
             strprintf("%llu", static_cast<unsigned long long>(r.events)),
             blocking_us > 0.0
                 ? strprintf("%.2fx", blocking_us / r.mean_latency.us())
                 : "n/a"});
      }
      table.print(std::cout);
      return 0;
    }

    std::optional<trace::Recorder> recorder;
    if (!trace_path.empty() || blame) {  // blame replays the trace intervals
      recorder.emplace(/*capacity=*/std::size_t{1} << 20);
      spec.trace = &*recorder;
    }

    const harness::RunResult result = harness::run_collective(spec);
    std::printf("%s / %s%s%s, %zu doubles on %d cores (%sx%s tiles)\n",
                std::string(harness::collective_name(spec.collective)).c_str(),
                std::string(harness::variant_name(spec.variant)).c_str(),
                spec.algo ? " algo=" : "",
                spec.algo ? std::string(coll::algo_name(*spec.algo)).c_str()
                          : "",
                spec.elements, spec.config.num_cores(), mesh[0].c_str(),
                mesh[1].c_str());
    if (!spec.config.faults.empty()) {
      std::printf("  faults       : %s\n",
                  spec.config.faults.to_string().c_str());
    }
    std::printf("  mean latency : %s\n",
                format_duration_us(result.mean_latency.us()).c_str());
    std::printf("  min / max    : %s / %s\n",
                format_duration_us(result.min_latency.us()).c_str(),
                format_duration_us(result.max_latency.us()).c_str());
    std::printf("  verified     : %s\n", result.verified ? "yes" : "skipped");
    std::printf("  sim events   : %llu\n",
                static_cast<unsigned long long>(result.events));
    if (recorder && !trace_path.empty()) {
      trace::write_chrome_json_file(*recorder, trace_path);
      trace::write_link_csv_file(*recorder, trace_path + ".links.csv");
      std::printf("  trace        : %s (%zu events, %llu dropped)\n",
                  trace_path.c_str(), recorder->events().size(),
                  static_cast<unsigned long long>(recorder->dropped()));
    }
    if (result.metrics) {
      result.metrics->write_json_file(metrics_path);
      std::printf("  metrics      : %s (%zu paths)\n", metrics_path.c_str(),
                  result.metrics->size());
    }
    if (result.timeseries) {
      const metrics::TimeSeries& ts = *result.timeseries;
      std::ofstream csv(sample_out + ".csv");
      ts.write_csv(csv);
      std::ofstream json(sample_out + ".json");
      ts.write_json(json);
      if (!csv || !json) {
        throw std::runtime_error("--sample-out: cannot write " + sample_out +
                                 ".{csv,json}");
      }
      std::printf(
          "  timeseries   : %s.{csv,json} (%zu rows, %llu ticks, "
          "%llu decimation(s))\n",
          sample_out.c_str(), ts.rows.size(),
          static_cast<unsigned long long>(ts.ticks),
          static_cast<unsigned long long>(ts.decimations));
    }
    if (hist) {
      metrics::Histogram latency_hist;
      for (const SimTime t : result.latencies) latency_hist.record_time(t);
      std::printf("  latency hist : ");
      latency_hist.write_json_us(std::cout);
      std::printf("\n");
    }
    if (blame && !result.sample_windows.empty()) {
      const auto [begin, end] = result.sample_windows.back();
      if (recorder->dropped() > 0) {
        std::printf(
            "\nwarning: trace dropped %llu events; blame attribution is "
            "partial (unattributed time shows as idle)\n",
            static_cast<unsigned long long>(recorder->dropped()));
      }
      const metrics::BlameReport report = metrics::analyze_blame(
          *recorder, recorder->current_run(), /*terminal_core=*/0, begin,
          end);
      std::printf("\n");
      report.print(std::cout);
    }

    if (spec.collect_profiles) {
      std::printf("\nper-phase share of core time (mean over cores):\n");
      for (int ph = 0; ph < static_cast<int>(machine::Phase::kCount); ++ph) {
        double sum = 0.0;
        for (const auto& p : result.profiles) {
          const double total = p.total().seconds();
          if (total > 0.0) {
            sum += p.get(static_cast<machine::Phase>(ph)).seconds() / total;
          }
        }
        std::printf("  %-13s %5.1f%%\n",
                    std::string(machine::phase_name(
                                    static_cast<machine::Phase>(ph)))
                        .c_str(),
                    sum / static_cast<double>(result.profiles.size()) * 100.0);
      }
      // Chip-wide private-memory cache behaviour for the same run.
      mem::CacheStats cache;
      std::uint64_t peak_misses = 0;
      for (const mem::CacheStats& c : result.cache_stats) {
        cache.hits += c.hits;
        cache.misses += c.misses;
        cache.writebacks += c.writebacks;
        cache.uncached_writes += c.uncached_writes;
        peak_misses = std::max(peak_misses, c.misses);
      }
      const double accesses = static_cast<double>(cache.hits + cache.misses);
      std::printf("\nprivate-memory cache (all cores):\n");
      std::printf("  hits / misses : %llu / %llu (%.1f%% hit rate)\n",
                  static_cast<unsigned long long>(cache.hits),
                  static_cast<unsigned long long>(cache.misses),
                  accesses > 0.0
                      ? 100.0 * static_cast<double>(cache.hits) / accesses
                      : 0.0);
      std::printf("  writebacks    : %llu\n",
                  static_cast<unsigned long long>(cache.writebacks));
      std::printf("  uncached wr   : %llu\n",
                  static_cast<unsigned long long>(cache.uncached_writes));
      std::printf("  worst core    : %llu misses\n",
                  static_cast<unsigned long long>(peak_misses));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
