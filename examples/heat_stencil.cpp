// 1D heat-diffusion stencil with halo exchange: the nearest-neighbour
// point-to-point pattern that underlies the paper's ring collectives, used
// directly. Each timestep every core exchanges one boundary cell with each
// ring neighbour (two Stack::exchange calls) and advances its slice; a
// periodic Allreduce tracks the global heat for a conservation check.
//
// Shows the same effect as the collective benchmarks at the p2p level:
// with 1-cell halos the per-message software overhead dominates, so the
// lightweight primitives shine brightest.
//
// Usage: heat_stencil [--cells-per-core N] [--steps K] [--compare]
#include <cmath>
#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/stack.hpp"
#include "common/aligned.hpp"
#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"
#include "machine/scc_machine.hpp"

namespace {

using scc::aligned_vector;
using scc::harness::PaperVariant;

struct StencilConfig {
  std::size_t cells_per_core = 64;
  int steps = 200;
  int check_every = 50;  // conservation check via Allreduce
  scc::coll::Prims prims = scc::coll::Prims::kLightweight;
};

struct CoreState {
  aligned_vector<double> u, next;
  aligned_vector<double> halo_out = aligned_vector<double>(2, 0.0);
  aligned_vector<double> halo_in = aligned_vector<double>(2, 0.0);
  aligned_vector<double> scalar_in = aligned_vector<double>(1, 0.0);
  aligned_vector<double> scalar_out = aligned_vector<double>(1, 0.0);
  double final_heat = 0.0;
  scc::SimTime finish;
};

scc::sim::Task<> stencil_core(scc::machine::CoreApi& api,
                              const scc::rcce::Layout& layout,
                              const StencilConfig& config, CoreState& st) {
  scc::coll::Stack stack(api, layout, config.prims);
  const int p = api.num_cores();
  const int rank = api.rank();
  const int right = (rank + 1) % p;
  const int left = (rank + p - 1) % p;
  const std::size_t m = config.cells_per_core;

  // Initial condition: a hot spike on core 0 (periodic domain).
  st.u.assign(m, 0.0);
  st.next.assign(m, 0.0);
  if (rank == 0) st.u[m / 2] = 1000.0;

  constexpr double kAlpha = 0.2;  // diffusion number (stable: <= 0.5)
  for (int step = 0; step < config.steps; ++step) {
    // Halo exchange: my first cell goes left, my last goes right; I
    // receive the neighbours' boundary cells. Two ring exchanges.
    st.halo_out[0] = st.u[0];
    st.halo_out[1] = st.u[m - 1];
    co_await api.priv_read(st.u.data(), sizeof(double));
    co_await api.priv_read(st.u.data() + (m - 1), sizeof(double));
    // Send right boundary to the right neighbour / receive the left halo.
    co_await stack.exchange(
        std::as_bytes(std::span<const double>(&st.halo_out[1], 1)), right,
        std::as_writable_bytes(std::span<double>(&st.halo_in[0], 1)), left);
    // Send left boundary to the left neighbour / receive the right halo.
    co_await stack.exchange(
        std::as_bytes(std::span<const double>(&st.halo_out[0], 1)), left,
        std::as_writable_bytes(std::span<double>(&st.halo_in[1], 1)), right);

    const auto at = [&](std::ptrdiff_t i) -> double {
      if (i < 0) return st.halo_in[0];
      if (i >= static_cast<std::ptrdiff_t>(m)) return st.halo_in[1];
      return st.u[static_cast<std::size_t>(i)];
    };
    for (std::size_t i = 0; i < m; ++i) {
      const auto si = static_cast<std::ptrdiff_t>(i);
      st.next[i] = at(si) + kAlpha * (at(si - 1) - 2.0 * at(si) + at(si + 1));
    }
    co_await api.compute(m * 6);
    co_await api.priv_read(st.u.data(), m * sizeof(double));
    co_await api.priv_write(st.next.data(), m * sizeof(double));
    st.u.swap(st.next);

    if ((step + 1) % config.check_every == 0) {
      double local = 0.0;
      for (const double v : st.u) local += v;
      co_await api.compute(m * 2);
      st.scalar_in[0] = local;
      co_await scc::coll::allreduce(
          stack, std::span<const double>(st.scalar_in.data(), 1),
          std::span<double>(st.scalar_out.data(), 1),
          scc::coll::ReduceOp::kSum, scc::coll::SplitPolicy::kBalanced);
      st.final_heat = st.scalar_out[0];
    }
  }
  co_await api.sync_barrier();
  st.finish = api.now();
}

struct Outcome {
  double runtime_s;
  double heat;
};

Outcome run(const StencilConfig& config) {
  scc::machine::SccMachine machine;
  const int p = machine.num_cores();
  const scc::rcce::Layout layout(p);
  std::vector<CoreState> states(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    machine.launch(r, stencil_core(machine.core(r), layout, config,
                                   states[static_cast<std::size_t>(r)]));
  }
  machine.run();
  return {states[0].finish.seconds(), states[0].final_heat};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scc;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv);
    StencilConfig config;
    config.cells_per_core =
        static_cast<std::size_t>(flags.get_int("cells-per-core", 64));
    config.steps = static_cast<int>(flags.get_int("steps", 200));

    if (flags.get_bool("compare", false)) {
      Table table({"variant", "runtime", "speedup", "total heat"});
      double blocking = 0.0;
      for (const auto& [prims, name] :
           {std::pair{coll::Prims::kBlocking, "blocking"},
            std::pair{coll::Prims::kIrcce, "ircce"},
            std::pair{coll::Prims::kLightweight, "lightweight"}}) {
        config.prims = prims;
        const Outcome outcome = run(config);
        if (prims == coll::Prims::kBlocking) blocking = outcome.runtime_s;
        table.add_row({name, format_minutes(outcome.runtime_s),
                       strprintf("%.2fx", blocking / outcome.runtime_s),
                       strprintf("%.6f", outcome.heat)});
      }
      table.print(std::cout);
      std::printf("\n(total heat must stay 1000 on the periodic domain)\n");
      return 0;
    }

    const Outcome outcome = run(config);
    std::printf("heat stencil: %zu cells on 48 cores, %d steps\n",
                config.cells_per_core * 48, config.steps);
    std::printf("  runtime    : %s (virtual)\n",
                format_minutes(outcome.runtime_s).c_str());
    std::printf("  total heat : %.6f (conserved: %s)\n", outcome.heat,
                std::abs(outcome.heat - 1000.0) < 1e-6 ? "yes" : "NO");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
