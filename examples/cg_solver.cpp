// Conjugate-gradient solver on the simulated SCC: the class of
// fine-grained parallel algorithm the paper's introduction argues on-chip
// networks enable ("low latency ... allows finer-grained parallelization
// and enables the scaling of problems to higher core counts").
//
// Solves the 1D Poisson system (tridiagonal [-1, 2, -1]) with rows
// distributed over the cores. Every CG iteration needs
//   - two scalar Allreduces (the dot products), and
//   - one Allgather of the search direction (for the halo exchange of the
//     matrix-vector product; gathering the full vector keeps the example
//     simple and stresses the collective exactly like the paper's app).
// Per-iteration latency is therefore dominated by collective latency --
// run with --variant=blocking vs --variant=lw-balanced to see the paper's
// optimizations translate directly into solver time.
//
// Usage: cg_solver [--variant=<stack>] [--rows-per-core=N] [--tol=T]
//                  [--max-iters=K] [--compare]
#include <cmath>
#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/stack.hpp"
#include "common/aligned.hpp"
#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"
#include "machine/scc_machine.hpp"

namespace {

using scc::aligned_vector;
using scc::harness::PaperVariant;

struct SolveConfig {
  std::size_t rows_per_core = 16;
  double tolerance = 1e-10;
  int max_iterations = 200;
  scc::coll::Prims prims = scc::coll::Prims::kLightweight;
  scc::coll::SplitPolicy split = scc::coll::SplitPolicy::kBalanced;
};

struct CoreResult {
  int iterations = 0;
  double residual = 0.0;
  aligned_vector<double> x;  // local solution rows
  scc::SimTime finish;
};

/// y_local = A x (tridiagonal [-1, 2, -1]) for this core's row range, given
/// the full vector x.
void local_matvec(std::span<const double> x_full, std::size_t row0,
                  std::span<double> y_local) {
  const std::size_t n = x_full.size();
  for (std::size_t i = 0; i < y_local.size(); ++i) {
    const std::size_t row = row0 + i;
    double v = 2.0 * x_full[row];
    if (row > 0) v -= x_full[row - 1];
    if (row + 1 < n) v -= x_full[row + 1];
    y_local[i] = v;
  }
}

struct CoreBuffers {
  aligned_vector<double> p_full;   // gathered search direction
  aligned_vector<double> p_local;  // my slice of p
  aligned_vector<double> r, x, ap;
  aligned_vector<double> scalar_in = aligned_vector<double>(2, 0.0);
  aligned_vector<double> scalar_out = aligned_vector<double>(2, 0.0);
};

scc::sim::Task<> cg_core(scc::machine::CoreApi& api,
                         const scc::rcce::Layout& layout,
                         const SolveConfig& config, CoreBuffers& buf,
                         CoreResult& result) {
  scc::coll::Stack stack(api, layout, config.prims);
  const int p = api.num_cores();
  const std::size_t m = config.rows_per_core;           // my rows
  const std::size_t n = m * static_cast<std::size_t>(p);  // global size
  const std::size_t row0 = static_cast<std::size_t>(api.rank()) * m;

  // b = 1 everywhere; x = 0; r = b; p = r.
  buf.p_full.assign(n, 0.0);
  buf.p_local.assign(m, 1.0);
  buf.r.assign(m, 1.0);
  buf.x.assign(m, 0.0);
  buf.ap.assign(m, 0.0);

  const auto dot = [&](std::span<const double> a, std::span<const double> b,
                       int slot) -> scc::sim::Task<double> {
    double local = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
    co_await api.compute(a.size() * 4);  // multiply-add per element
    buf.scalar_in[static_cast<std::size_t>(slot)] = local;
    co_await scc::coll::allreduce(
        stack,
        std::span<const double>(&buf.scalar_in[static_cast<std::size_t>(slot)], 1),
        std::span<double>(&buf.scalar_out[static_cast<std::size_t>(slot)], 1),
        scc::coll::ReduceOp::kSum, config.split);
    co_return buf.scalar_out[static_cast<std::size_t>(slot)];
  };

  double rr = co_await dot(buf.r, buf.r, 0);
  int iter = 0;
  while (iter < config.max_iterations &&
         std::sqrt(rr) > config.tolerance) {
    // Gather the full search direction for the matvec halo.
    co_await scc::coll::allgather(stack, buf.p_local, buf.p_full);
    local_matvec(buf.p_full, row0, buf.ap);
    co_await api.compute(m * 6);
    co_await api.priv_read(buf.p_full.data() + (row0 == 0 ? 0 : row0 - 1),
                           (m + 2) * sizeof(double) > buf.p_full.size() * sizeof(double)
                               ? buf.p_full.size() * sizeof(double)
                               : (m + 2) * sizeof(double));
    co_await api.priv_write(buf.ap.data(), buf.ap.size() * sizeof(double));

    const double pap = co_await dot(buf.p_local, buf.ap, 1);
    const double alpha = rr / pap;
    for (std::size_t i = 0; i < m; ++i) {
      buf.x[i] += alpha * buf.p_local[i];
      buf.r[i] -= alpha * buf.ap[i];
    }
    co_await api.compute(m * 4);
    const double rr_new = co_await dot(buf.r, buf.r, 0);
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < m; ++i) {
      buf.p_local[i] = buf.r[i] + beta * buf.p_local[i];
    }
    co_await api.compute(m * 2);
    rr = rr_new;
    ++iter;
  }
  result.iterations = iter;
  result.residual = std::sqrt(rr);
  result.x = buf.x;
  co_await api.sync_barrier();
  result.finish = api.now();
}

struct SolveOutcome {
  int iterations;
  double residual;
  double runtime_s;
  double max_error;
};

SolveOutcome solve(const SolveConfig& config, PaperVariant variant) {
  SolveConfig cfg = config;
  switch (variant) {
    case PaperVariant::kBlocking: cfg.prims = scc::coll::Prims::kBlocking;
      cfg.split = scc::coll::SplitPolicy::kStandard; break;
    case PaperVariant::kIrcce: cfg.prims = scc::coll::Prims::kIrcce;
      cfg.split = scc::coll::SplitPolicy::kStandard; break;
    case PaperVariant::kLightweight: cfg.prims = scc::coll::Prims::kLightweight;
      cfg.split = scc::coll::SplitPolicy::kStandard; break;
    default: cfg.prims = scc::coll::Prims::kLightweight;
      cfg.split = scc::coll::SplitPolicy::kBalanced; break;
  }
  scc::machine::SccMachine machine;
  const int p = machine.num_cores();
  const scc::rcce::Layout layout(p);
  std::vector<CoreBuffers> buffers(static_cast<std::size_t>(p));
  std::vector<CoreResult> results(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    machine.launch(r, cg_core(machine.core(r), layout, cfg,
                              buffers[static_cast<std::size_t>(r)],
                              results[static_cast<std::size_t>(r)]));
  }
  machine.run();

  // Verify against the closed-form solution of -u'' = 1 with zero
  // boundary: x_i = (i+1)(n-i)/2 for the [-1,2,-1] system with b = 1.
  const std::size_t n =
      cfg.rows_per_core * static_cast<std::size_t>(p);
  double max_error = 0.0;
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < cfg.rows_per_core; ++i) {
      const std::size_t row =
          static_cast<std::size_t>(r) * cfg.rows_per_core + i;
      const double expected = 0.5 * static_cast<double>(row + 1) *
                              static_cast<double>(n - row);
      max_error = std::max(
          max_error,
          std::abs(results[static_cast<std::size_t>(r)].x[i] - expected));
    }
  }
  return {results[0].iterations, results[0].residual,
          results[0].finish.seconds(), max_error};
}

PaperVariant parse_variant(const std::string& name) {
  for (const PaperVariant v :
       {PaperVariant::kBlocking, PaperVariant::kIrcce,
        PaperVariant::kLightweight, PaperVariant::kLwBalanced}) {
    if (name == scc::harness::variant_name(v)) return v;
  }
  throw std::runtime_error("unknown variant: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scc;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv);
    SolveConfig config;
    config.rows_per_core =
        static_cast<std::size_t>(flags.get_int("rows-per-core", 16));
    config.tolerance = flags.get_double("tol", 1e-10);
    config.max_iterations = static_cast<int>(flags.get_int("max-iters", 2000));

    if (flags.get_bool("compare", false)) {
      Table table({"variant", "iterations", "runtime", "speedup", "max error"});
      double blocking = 0.0;
      for (const PaperVariant v :
           {PaperVariant::kBlocking, PaperVariant::kIrcce,
            PaperVariant::kLightweight, PaperVariant::kLwBalanced}) {
        const SolveOutcome outcome = solve(config, v);
        if (v == PaperVariant::kBlocking) blocking = outcome.runtime_s;
        table.add_row({std::string(harness::variant_name(v)),
                       strprintf("%d", outcome.iterations),
                       format_minutes(outcome.runtime_s),
                       strprintf("%.2fx", blocking / outcome.runtime_s),
                       strprintf("%.2e", outcome.max_error)});
      }
      table.print(std::cout);
      return 0;
    }

    const PaperVariant variant =
        parse_variant(flags.get("variant", "lw-balanced"));
    const SolveOutcome outcome = solve(config, variant);
    std::printf("CG on %zu unknowns over 48 cores (%s stack)\n",
                config.rows_per_core * 48,
                std::string(harness::variant_name(variant)).c_str());
    std::printf("  iterations : %d\n", outcome.iterations);
    std::printf("  residual   : %.3e\n", outcome.residual);
    std::printf("  max error  : %.3e (vs closed-form solution)\n",
                outcome.max_error);
    std::printf("  runtime    : %s (virtual)\n",
                format_minutes(outcome.runtime_s).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
