#include "rckmpi/channel.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "machine/scc_machine.hpp"

namespace scc::rckmpi {

namespace {
/// Duplex progress loop poll spacing when neither direction can move.
constexpr std::uint64_t kDuplexPollCycles = 150;
}  // namespace

ChannelLayout::ChannelLayout(const rcce::Layout& base)
    : base_(&base),
      flag_base_(base.flags_needed()),
      stats_(static_cast<std::size_t>(base.num_cores())) {
  // Divide the payload area into one ring per peer, whole lines each.
  const std::size_t per_peer =
      base.payload_bytes() / static_cast<std::size_t>(base.num_cores());
  ring_lines_ = static_cast<std::uint32_t>(per_peer / mem::kCacheLineBytes);
  // In-flight lines must stay well under the mod-256 counter ambiguity;
  // tiny meshes would otherwise get huge rings (the real RCKMPI also caps
  // its per-peer region).
  ring_lines_ = std::min<std::uint32_t>(ring_lines_, 64);
  SCC_EXPECTS(ring_lines_ >= 2);  // header + at least one payload line
}

mem::MpbAddr ChannelLayout::ring_line(int at_core, int from,
                                      std::uint32_t line_index) const {
  const std::size_t region =
      static_cast<std::size_t>(from) * ring_bytes();
  const std::size_t line_off =
      static_cast<std::size_t>(line_index % ring_lines_) *
      mem::kCacheLineBytes;
  return base_->payload_addr(at_core, region + line_off);
}

ChannelStats ChannelLayout::stats() const {
  ChannelStats total;
  for (const ChannelStats& s : stats_) {
    total.messages += s.messages;
    total.header_lines += s.header_lines;
    total.payload_lines += s.payload_lines;
    total.credit_updates += s.credit_updates;
    total.credit_stalls += s.credit_stalls;
    total.progress_polls += s.progress_polls;
  }
  return total;
}

machine::FlagRef ChannelLayout::filled_flag(int at_core, int from) const {
  return {at_core, flag_base_ + from};
}

machine::FlagRef ChannelLayout::free_flag(int at_core, int from) const {
  return {at_core, flag_base_ + num_cores() + from};
}

Channel::Channel(machine::CoreApi& api, const ChannelLayout& layout)
    : api_(&api),
      layout_(&layout),
      tx_(static_cast<std::size_t>(layout.num_cores())),
      rx_(static_cast<std::size_t>(layout.num_cores())) {}

void Channel::advance_counter(std::uint32_t& counter,
                              std::uint8_t flag_value) {
  const std::uint8_t delta =
      static_cast<std::uint8_t>(flag_value - static_cast<std::uint8_t>(counter));
  counter += delta;
}

void Channel::refresh_tx(int dest) {
  auto& pair = tx_[static_cast<std::size_t>(dest)];
  advance_counter(pair.lines_acked,
                  api_->flag_peek(layout_->free_flag(rank(), dest)));
}

void Channel::refresh_rx(int src) {
  auto& pair = rx_[static_cast<std::size_t>(src)];
  advance_counter(pair.lines_written,
                  api_->flag_peek(layout_->filled_flag(rank(), src)));
}

std::uint32_t Channel::tx_credits(int dest) const {
  const auto& pair = tx_[static_cast<std::size_t>(dest)];
  SCC_ASSERT(pair.lines_sent - pair.lines_acked <= layout_->ring_lines());
  return layout_->ring_lines() - (pair.lines_sent - pair.lines_acked);
}

std::uint32_t Channel::rx_available(int src) const {
  const auto& pair = rx_[static_cast<std::size_t>(src)];
  return pair.lines_written - pair.lines_consumed;
}

bool Channel::incoming(int src) const {
  auto* self = const_cast<Channel*>(this);
  self->refresh_rx(src);
  return rx_available(src) > 0;
}

sim::Task<> Channel::push_burst(int dest, std::span<const std::byte> payload,
                                int tag, std::uint32_t& line_cursor,
                                std::uint32_t max_lines) {
  auto& pair = tx_[static_cast<std::size_t>(dest)];
  const std::uint32_t payload_lines =
      static_cast<std::uint32_t>(mem::lines_for(payload.size()));
  const std::uint32_t total_lines = 1 + payload_lines;
  const std::uint32_t burst =
      std::min(max_lines, total_lines - line_cursor);
  SCC_EXPECTS(burst > 0);
  // Charge: user-buffer read for the payload part + the remote MPB write.
  if (line_cursor >= 1 || burst > 1) {
    const std::size_t first_byte =
        (line_cursor == 0 ? 0
                          : (static_cast<std::size_t>(line_cursor) - 1) *
                                mem::kCacheLineBytes);
    const std::size_t last_byte = std::min(
        payload.size(),
        static_cast<std::size_t>(line_cursor + burst - 1) *
            mem::kCacheLineBytes);
    if (last_byte > first_byte) {
      co_await api_->priv_read(payload.data() + first_byte,
                               last_byte - first_byte);
    }
  }
  // Functional effect: header and/or payload lines into the (possibly
  // remote, possibly other-partition) ring. The lines are STAGED here into
  // storage the apply callable owns -- exactly the bytes the old
  // charge-then-window idiom wrote, at the same ring addresses -- and the
  // stores run at the charge's completion via mpb_apply_write (inline on a
  // serial machine, posted to the ring owner's partition otherwise).
  ChannelStats& stats = layout_->stats(rank());
  struct StagedLine {
    mem::MpbAddr addr;
    std::size_t len;
  };
  std::vector<StagedLine> lines;
  lines.reserve(burst);
  std::vector<std::byte> bytes;
  bytes.reserve(static_cast<std::size_t>(burst) * mem::kCacheLineBytes);
  for (std::uint32_t i = 0; i < burst; ++i) {
    const std::uint32_t msg_line = line_cursor + i;
    const mem::MpbAddr addr =
        layout_->ring_line(dest, rank(), pair.lines_sent + i);
    if (msg_line == 0) {
      ++stats.messages;
      ++stats.header_lines;
      PacketHeader header;
      header.tag = tag;
      header.bytes = static_cast<std::uint32_t>(payload.size());
      const auto* p = reinterpret_cast<const std::byte*>(&header);
      bytes.insert(bytes.end(), p, p + sizeof(header));
      lines.push_back({addr, sizeof(header)});
    } else {
      ++stats.payload_lines;
      const std::size_t off =
          (static_cast<std::size_t>(msg_line) - 1) * mem::kCacheLineBytes;
      const std::size_t len =
          std::min(mem::kCacheLineBytes, payload.size() - off);
      bytes.insert(bytes.end(), payload.data() + off,
                   payload.data() + off + len);
      lines.push_back({addr, len});
    }
  }
  // The callable MUST be a named local, not a temporary inside the
  // co_await expression: GCC 12 promotes co_await full-expression
  // temporaries into the coroutine frame by bitwise copy after the move
  // into the callee's parameter, leaving a stale alias whose destructor
  // double-frees the staged buffers (GCC PR 99576 family).
  sim::SmallCallable apply([m = &api_->machine(), lines = std::move(lines),
                            bytes = std::move(bytes)] {
    std::size_t off = 0;
    for (const StagedLine& line : lines) {
      m->mpb().write(line.addr, std::span<const std::byte>(bytes.data() + off,
                                                           line.len));
      off += line.len;
    }
  });
  co_await api_->mpb_apply_write(
      dest, static_cast<std::size_t>(burst) * mem::kCacheLineBytes,
      std::move(apply));
  pair.lines_sent += burst;
  line_cursor += burst;
  co_await api_->flag_set(layout_->filled_flag(dest, rank()),
                          static_cast<std::uint8_t>(pair.lines_sent));
  co_await api_->overhead(api_->cost().sw.mpi_packet);
}

sim::Task<PacketHeader> Channel::read_header(int src) {
  auto& pair = rx_[static_cast<std::size_t>(src)];
  refresh_rx(src);
  while (rx_available(src) == 0) {
    const auto value = co_await api_->flag_wait_change(
        layout_->filled_flag(rank(), src),
        static_cast<std::uint8_t>(pair.lines_written));
    advance_counter(pair.lines_written, value);
  }
  // The ring lives in the receiver's own MPB: a LOCAL access (hit by the
  // arbiter-bug workaround like every local MPB access).
  co_await api_->mpb_charge(rank(), mem::kCacheLineBytes, /*is_read=*/true);
  PacketHeader header;
  auto window = api_->mpb_window(
      layout_->ring_line(rank(), src, pair.lines_consumed),
      mem::kCacheLineBytes);
  std::memcpy(&header, window.data(), sizeof(header));
  SCC_ASSERT(header.magic == PacketHeader{}.magic);
  pair.lines_consumed += 1;
  ++layout_->stats(rank()).credit_updates;
  co_await api_->flag_set(layout_->free_flag(src, rank()),
                          static_cast<std::uint8_t>(pair.lines_consumed));
  co_await api_->overhead(api_->cost().sw.mpi_match_attempt);
  co_return header;
}

sim::Task<> Channel::drain_burst(int src, std::span<std::byte> data,
                                 std::size_t& byte_cursor,
                                 std::uint32_t max_lines) {
  auto& pair = rx_[static_cast<std::size_t>(src)];
  const std::uint32_t remaining_lines = static_cast<std::uint32_t>(
      mem::lines_for(data.size() - byte_cursor));
  const std::uint32_t burst = std::min(max_lines, remaining_lines);
  SCC_EXPECTS(burst > 0);
  co_await api_->mpb_charge(rank(),
                            static_cast<std::size_t>(burst) *
                                mem::kCacheLineBytes,
                            /*is_read=*/true);
  std::size_t chunk_begin = byte_cursor;
  for (std::uint32_t i = 0; i < burst; ++i) {
    auto window = api_->mpb_window(
        layout_->ring_line(rank(), src, pair.lines_consumed + i),
        mem::kCacheLineBytes);
    const std::size_t len =
        std::min(mem::kCacheLineBytes, data.size() - byte_cursor);
    std::memcpy(data.data() + byte_cursor, window.data(), len);
    byte_cursor += len;
  }
  pair.lines_consumed += burst;
  ++layout_->stats(rank()).credit_updates;
  co_await api_->priv_write(data.data() + chunk_begin,
                            byte_cursor - chunk_begin);
  co_await api_->flag_set(layout_->free_flag(src, rank()),
                          static_cast<std::uint8_t>(pair.lines_consumed));
  co_await api_->overhead(api_->cost().sw.mpi_packet);
}

sim::Task<> Channel::send(std::span<const std::byte> data, int dest,
                          int tag) {
  SCC_EXPECTS(dest >= 0 && dest < layout_->num_cores() && dest != rank());
  co_await api_->overhead(api_->cost().sw.mpi_call);
  auto& pair = tx_[static_cast<std::size_t>(dest)];
  const std::uint32_t total_lines =
      1 + static_cast<std::uint32_t>(mem::lines_for(data.size()));
  std::uint32_t cursor = 0;
  while (cursor < total_lines) {
    refresh_tx(dest);
    if (tx_credits(dest) == 0) {
      ++layout_->stats(rank()).credit_stalls;
      const auto value = co_await api_->flag_wait_change(
          layout_->free_flag(rank(), dest),
          static_cast<std::uint8_t>(pair.lines_acked));
      advance_counter(pair.lines_acked, value);
      continue;
    }
    co_await push_burst(dest, data, tag, cursor, tx_credits(dest));
  }
}

sim::Task<> Channel::recv(std::span<std::byte> data, int src, int tag) {
  SCC_EXPECTS(src >= 0 && src < layout_->num_cores() && src != rank());
  co_await api_->overhead(api_->cost().sw.mpi_call);
  const PacketHeader header = co_await read_header(src);
  SCC_EXPECTS(tag == kAnyTag || header.tag == tag);
  SCC_EXPECTS(header.bytes == data.size());
  std::size_t cursor = 0;
  auto& pair = rx_[static_cast<std::size_t>(src)];
  while (cursor < data.size()) {
    refresh_rx(src);
    if (rx_available(src) == 0) {
      const auto value = co_await api_->flag_wait_change(
          layout_->filled_flag(rank(), src),
          static_cast<std::uint8_t>(pair.lines_written));
      advance_counter(pair.lines_written, value);
      continue;
    }
    co_await drain_burst(src, data, cursor, rx_available(src));
  }
}

sim::Task<> Channel::sendrecv(std::span<const std::byte> sdata, int dest,
                              std::span<std::byte> rdata, int src, int tag,
                              std::uint32_t call_overhead_cycles) {
  SCC_EXPECTS(dest >= 0 && dest < layout_->num_cores() && dest != rank());
  SCC_EXPECTS(src >= 0 && src < layout_->num_cores() && src != rank());
  co_await api_->overhead(call_overhead_cycles != 0
                              ? call_overhead_cycles
                              : api_->cost().sw.mpi_call);
  const std::uint32_t send_total =
      1 + static_cast<std::uint32_t>(mem::lines_for(sdata.size()));
  std::uint32_t send_cursor = 0;
  bool header_done = false;
  std::size_t recv_cursor = 0;
  const auto recv_done = [&] {
    return header_done && recv_cursor >= rdata.size();
  };
  while (send_cursor < send_total || !recv_done()) {
    bool progressed = false;
    if (!recv_done()) {
      refresh_rx(src);
      if (rx_available(src) > 0) {
        if (!header_done) {
          const PacketHeader header = co_await read_header(src);
          SCC_EXPECTS(tag == kAnyTag || header.tag == tag);
          SCC_EXPECTS(header.bytes == rdata.size());
          header_done = true;
        } else {
          co_await drain_burst(src, rdata, recv_cursor, rx_available(src));
        }
        progressed = true;
      }
    }
    if (send_cursor < send_total) {
      refresh_tx(dest);
      if (tx_credits(dest) > 0) {
        co_await push_burst(dest, sdata, tag, send_cursor, tx_credits(dest));
        progressed = true;
      }
    }
    if (!progressed) {
      ++layout_->stats(rank()).progress_polls;
      co_await api_->charge(
          machine::Phase::kFlagWait,
          api_->cost().hw.core_clock().cycles(kDuplexPollCycles));
    }
  }
}

}  // namespace scc::rckmpi
