// RCKMPI-style MPI layer: typed point-to-point + MPICH-flavoured
// collectives over the packetized SCCMPB channel.
//
// This is the paper's comparison baseline ("a standard MPI implementation",
// Section V). The algorithms are the classic MPICH choices:
//   Bcast          -- binomial tree
//   Reduce         -- binomial tree (commutative ops)
//   Allreduce      -- recursive doubling (short) / Reduce+Bcast (long)
//   Allgather      -- ring over duplex sendrecv
//   Alltoall       -- pairwise tournament over duplex sendrecv
//   ReduceScatter  -- Reduce to 0 + linear Scatterv (simplification of
//                     MPICH's recursive halving; noted in DESIGN.md)
//   Barrier        -- dissemination with zero-byte messages
// The heavy per-message cost (MPI call entry, per-packet processing,
// matching) comes from the channel + the SwCostModel's mpi_* constants.
#pragma once

#include <array>
#include <span>

#include "coll/block_split.hpp"
#include "common/aligned.hpp"
#include "rckmpi/channel.hpp"
#include "rcce/rcce.hpp"  // ReduceOp + apply_reduce
#include "sim/task.hpp"

namespace scc::rckmpi {

using rcce::ReduceOp;

class Mpi {
 public:
  Mpi(machine::CoreApi& api, const ChannelLayout& layout)
      : channel_(api, layout) {}

  [[nodiscard]] int rank() const { return channel_.rank(); }
  [[nodiscard]] int size() const { return channel_.layout().num_cores(); }
  [[nodiscard]] Channel& channel() { return channel_; }
  [[nodiscard]] machine::CoreApi& api() { return channel_.api(); }

  // --- point-to-point ----------------------------------------------------
  sim::Task<> send(std::span<const double> data, int dest, int tag);
  sim::Task<> recv(std::span<double> data, int src, int tag);
  sim::Task<> sendrecv(std::span<const double> sdata, int dest,
                       std::span<double> rdata, int src, int tag);

  // --- collectives ---------------------------------------------------------
  sim::Task<> bcast(std::span<double> data, int root);
  sim::Task<> reduce(std::span<const double> in, std::span<double> out,
                     ReduceOp op, int root);
  sim::Task<> allreduce(std::span<const double> in, std::span<double> out,
                        ReduceOp op);
  sim::Task<> allgather(std::span<const double> contribution,
                        std::span<double> gathered);
  sim::Task<> alltoall(std::span<const double> sendbuf,
                       std::span<double> recvbuf);
  /// (Algorithm selection mirrors RCKMPI rev 303's tuning on the SCC:
  /// ring/bucket algorithms for long vectors, trees for short ones.)
  /// ReduceScatter via the ring/bucket algorithm: `out` is full-size; only
  /// the owned block's range is written. Returns the owned block index,
  /// (rank+1) mod p (ring-direction artefact, as in RCCE_comm).
  sim::Task<int> reduce_scatter(std::span<const double> in,
                                std::span<double> out, ReduceOp op);
  sim::Task<> barrier();

  /// Element count below which allreduce uses recursive doubling.
  static constexpr std::size_t kRecursiveDoublingMax = 256;

  /// Persistent scratch (never per-call heap temporaries: cache behaviour
  /// must not depend on host allocator address reuse). Public because the
  /// internal ring-algorithm helpers live in a detail namespace.
  [[nodiscard]] std::span<double> scratch_span(std::size_t elems, int slot) {
    auto& buf = scratch_[static_cast<std::size_t>(slot)];
    if (buf.size() < elems) buf.resize(elems);
    return {buf.data(), elems};
  }

 private:
  /// Short-vector Reduce (binomial tree).
  sim::Task<> reduce_binomial(std::span<const double> in,
                              std::span<double> out, ReduceOp op, int root);

  Channel channel_;
  std::array<aligned_vector<double>, 3> scratch_;
};

}  // namespace scc::rckmpi
