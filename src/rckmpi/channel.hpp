// SCCMPB-style channel: the transport under the RCKMPI baseline.
//
// RCKMPI (Comprés Ureña et al., EuroMPI'11) ports MPICH to the SCC with a
// channel that statically divides every core's MPB into one small region
// per peer and moves messages as fixed-size packets through those regions.
// Compared to RCCE's whole-chunk staging this gives:
//   - smooth latency in the message size (packets are always whole lines,
//     so there is no partial-cache-line extra call -> no period-4 spikes),
//   - much higher per-message software cost (packetization + MPI matching),
// which is exactly the trade-off visible in the paper's Fig. 9.
//
// Transport details of this implementation:
//   - per ordered pair (sender s -> receiver r): a byte ring of
//     `ring_lines` cache lines inside r's MPB region for s;
//   - credit-based flow control with two cumulative line counters kept in
//     MPB flags: `filled` (lines written, set by s at r) and `free` (lines
//     consumed, set by r at s). Counters wrap mod 256; in-flight lines are
//     bounded by the tiny ring, so differences are unambiguous;
//   - a message is framed as one 32-byte header line (tag + byte count)
//     followed by payload lines.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "machine/core_api.hpp"
#include "rcce/layout.hpp"
#include "sim/task.hpp"

namespace scc::rckmpi {

/// Wildcard tag for receives.
inline constexpr int kAnyTag = -1;

/// Cumulative transport counters, aggregated over every core's Channel
/// endpoint (the shared ChannelLayout owns them so the harness can read
/// totals after the per-core endpoints are gone). `messages`, `header_lines`
/// and `payload_lines` are volume-type (fixed by the communication pattern);
/// the rest are time-type (burst sizes and stalls depend on the schedule).
struct ChannelStats {
  std::uint64_t messages = 0;        // framed messages sent
  std::uint64_t header_lines = 0;    // header packets written
  std::uint64_t payload_lines = 0;   // payload packets written
  std::uint64_t credit_updates = 0;  // free-counter flag sets by receivers
  std::uint64_t credit_stalls = 0;   // sender blocked with zero credits
  std::uint64_t progress_polls = 0;  // duplex loop spins with no progress
};

/// MPB geometry/flag map of the channel. Flags live ABOVE the RCCE layout's
/// indices so both stacks can coexist on one machine.
class ChannelLayout {
 public:
  explicit ChannelLayout(const rcce::Layout& base);

  [[nodiscard]] int num_cores() const { return base_->num_cores(); }
  /// Ring capacity per ordered pair, in cache lines (header included).
  [[nodiscard]] std::uint32_t ring_lines() const { return ring_lines_; }
  [[nodiscard]] std::size_t ring_bytes() const {
    return static_cast<std::size_t>(ring_lines_) * mem::kCacheLineBytes;
  }

  /// MPB address of line `line_index % ring_lines` of the ring that sender
  /// `from` writes into `at_core`'s MPB.
  [[nodiscard]] mem::MpbAddr ring_line(int at_core, int from,
                                       std::uint32_t line_index) const;

  /// Cumulative count of lines written by `from` into `at_core`'s ring.
  [[nodiscard]] machine::FlagRef filled_flag(int at_core, int from) const;
  /// Cumulative count of lines `at_core` consumed from `from`'s... see
  /// note: the flag lives at the SENDER (`at_core`) and is set by the
  /// receiver (`from` = the consuming peer).
  [[nodiscard]] machine::FlagRef free_flag(int at_core, int from) const;

  [[nodiscard]] int flags_needed() const {
    return flag_base_ + 2 * num_cores();
  }

  /// Transport counters, sharded per acting core so endpoints on different
  /// event-loop partitions count race-free. Mutable through the const
  /// layout reference endpoints hold: counting is purely observational and
  /// never feeds back into timing.
  [[nodiscard]] ChannelStats& stats(int rank) const {
    return stats_[static_cast<std::size_t>(rank)];
  }
  /// Chip-wide totals: the per-core shards summed.
  [[nodiscard]] ChannelStats stats() const;

 private:
  const rcce::Layout* base_;
  int flag_base_;
  std::uint32_t ring_lines_;
  mutable std::vector<ChannelStats> stats_;
};

/// Message header occupying the first ring line of every message.
struct PacketHeader {
  std::uint32_t magic = 0x52434B4D;  // "RCKM"
  std::int32_t tag = 0;
  std::uint32_t bytes = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(PacketHeader) <= mem::kCacheLineBytes);

/// Per-core channel endpoint: packetized send/recv/duplex-sendrecv.
class Channel {
 public:
  Channel(machine::CoreApi& api, const ChannelLayout& layout);

  [[nodiscard]] int rank() const { return api_->rank(); }
  [[nodiscard]] machine::CoreApi& api() { return *api_; }
  [[nodiscard]] const ChannelLayout& layout() const { return *layout_; }

  /// Sends a tagged message; returns once every line is written (the tail
  /// may still sit in the receiver's ring -- eager semantics within the
  /// ring's capacity).
  sim::Task<> send(std::span<const std::byte> data, int dest, int tag);

  /// Receives a message from `src`; `tag` must match the sender's (or be
  /// kAnyTag). The per-pair ring is ordered, so matching is by position.
  sim::Task<> recv(std::span<std::byte> data, int src, int tag);

  /// Full-duplex exchange: pushes the outgoing message and drains the
  /// incoming one in alternation, overlapping the per-packet round trips
  /// in both directions (MPICH's sendrecv progress loop).
  /// `call_overhead_cycles` defaults to the full MPI_Sendrecv entry cost;
  /// collectives that pre-post nonblocking requests (alltoall, allgather)
  /// pass the cheaper posted-pair cost instead.
  sim::Task<> sendrecv(std::span<const std::byte> sdata, int dest,
                       std::span<std::byte> rdata, int src, int tag,
                       std::uint32_t call_overhead_cycles = 0);

  /// True when a header line from `src` is waiting (zero-cost probe).
  [[nodiscard]] bool incoming(int src) const;

  /// Folds the (mod-256) flag value into the 32-bit cumulative counter.
  /// Public (and static) so tests can exercise the wraparound arithmetic
  /// directly: correctness relies on in-flight lines being < 256, which
  /// ring_lines() <= 64 guarantees.
  static void advance_counter(std::uint32_t& counter, std::uint8_t flag_value);

  /// Free ring slots towards `dest` / unconsumed lines from `src`, from the
  /// last refreshed counters. Bounded by ring_lines() -- the invariant the
  /// wraparound tests pin across the mod-256 counter wrap.
  [[nodiscard]] std::uint32_t tx_credits(int dest) const;
  [[nodiscard]] std::uint32_t rx_available(int src) const;

 private:
  struct PairTx {  // per destination
    std::uint32_t lines_sent = 0;   // cumulative lines written
    std::uint32_t lines_acked = 0;  // cumulative credits returned
  };
  struct PairRx {  // per source
    std::uint32_t lines_written = 0;   // cumulative lines known written
    std::uint32_t lines_consumed = 0;  // cumulative lines consumed
  };

  /// Zero-cost refresh of the peer counters from flag peeks (the polling
  /// half of the duplex progress loop).
  void refresh_tx(int dest);
  void refresh_rx(int src);

  /// Sender-side: write up to `max_lines` lines of the framed message
  /// (header line + payload) and bump the filled counter once.
  sim::Task<> push_burst(int dest, std::span<const std::byte> payload,
                         int tag, std::uint32_t& line_cursor,
                         std::uint32_t max_lines);
  /// Receiver-side: consume up to `max_lines` payload lines into `data`.
  sim::Task<> drain_burst(int src, std::span<std::byte> data,
                          std::size_t& byte_cursor, std::uint32_t max_lines);
  sim::Task<PacketHeader> read_header(int src);

  machine::CoreApi* api_;
  const ChannelLayout* layout_;
  std::vector<PairTx> tx_;
  std::vector<PairRx> rx_;
};

}  // namespace scc::rckmpi
