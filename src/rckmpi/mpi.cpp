#include "rckmpi/mpi.hpp"

#include <algorithm>
#include <vector>

#include "common/aligned.hpp"

#include "coll/block_split.hpp"

namespace scc::rckmpi {

namespace {

// Internal tags per collective (MPICH reserves a context-id space; a fixed
// tag per operation suffices here because our communicators are global and
// calls are ordered per pair).
constexpr int kTagP2P = 100;
constexpr int kTagBcast = 101;
constexpr int kTagReduce = 102;
constexpr int kTagAllreduce = 103;
constexpr int kTagAllgather = 104;
constexpr int kTagAlltoall = 105;
constexpr int kTagScatter = 106;
constexpr int kTagBarrier = 107;

[[nodiscard]] std::span<const std::byte> as_b(std::span<const double> s) {
  return std::as_bytes(s);
}
[[nodiscard]] std::span<std::byte> as_b(std::span<double> s) {
  return std::as_writable_bytes(s);
}

}  // namespace

sim::Task<> Mpi::send(std::span<const double> data, int dest, int tag) {
  co_await channel_.send(as_b(data), dest, tag);
}

sim::Task<> Mpi::recv(std::span<double> data, int src, int tag) {
  co_await channel_.recv(as_b(data), src, tag);
}

sim::Task<> Mpi::sendrecv(std::span<const double> sdata, int dest,
                          std::span<double> rdata, int src, int tag) {
  co_await channel_.sendrecv(as_b(sdata), dest, as_b(rdata), src, tag);
}

namespace detail {

/// Ring (bucket) ReduceScatter over the channel: MPICH's long-vector
/// choice in RCKMPI's tuning tables for the SCC. After p-1 rounds core i
/// owns block (i+1)%p of `work`, fully reduced.
sim::Task<> ring_reduce_scatter(Mpi& mpi, std::span<double> work,
                                ReduceOp op,
                                const std::vector<coll::Block>& blocks,
                                int tag) {
  auto& api = mpi.api();
  const int p = mpi.size();
  const int rank = mpi.rank();
  const int right = (rank + 1) % p;
  const int left = (rank + p - 1) % p;
  std::size_t max_count = 0;
  for (const coll::Block& b : blocks) max_count = std::max(max_count, b.count);
  std::span<double> tmp = mpi.scratch_span(max_count, 0);
  for (int r = 0; r < p - 1; ++r) {
    const coll::Block& sb =
        blocks[static_cast<std::size_t>((rank - r + p) % p)];
    const coll::Block& rb =
        blocks[static_cast<std::size_t>((rank - r - 1 + p) % p)];
    std::span<double> recv_tmp = tmp.subspan(0, rb.count);
    co_await mpi.channel().sendrecv(
        std::as_bytes(std::span<const double>(work.subspan(sb.offset, sb.count))),
        right, std::as_writable_bytes(recv_tmp), left, tag);
    co_await rcce::apply_reduce(api, recv_tmp,
                                work.subspan(rb.offset, rb.count), op);
  }
}

/// Ring Allgather of blocks where core i initially holds block (i+off)%p.
sim::Task<> ring_allgather_blocks(Mpi& mpi, std::span<double> data,
                                  const std::vector<coll::Block>& blocks,
                                  int off, int tag) {
  const int p = mpi.size();
  const int rank = mpi.rank();
  const int right = (rank + 1) % p;
  const int left = (rank + p - 1) % p;
  for (int r = 0; r < p - 1; ++r) {
    const coll::Block& sb =
        blocks[static_cast<std::size_t>(((rank + off - r) % p + p) % p)];
    const coll::Block& rb =
        blocks[static_cast<std::size_t>(((rank + off - r - 1) % p + p) % p)];
    co_await mpi.channel().sendrecv(
        std::as_bytes(std::span<const double>(data.subspan(sb.offset, sb.count))),
        right, std::as_writable_bytes(data.subspan(rb.offset, rb.count)),
        left, tag);
  }
}

}  // namespace detail

sim::Task<> Mpi::bcast(std::span<double> data, int root) {
  auto& api = this->api();
  co_await api.overhead(api.cost().sw.mpi_coll_call);
  const int p = size();
  if (p > 1 && data.size() >= static_cast<std::size_t>(4 * p)) {
    // Long vectors (MPICH): binomial scatter + ring allgather of blocks.
    const auto blocks =
        coll::split_blocks(data.size(), p, coll::SplitPolicy::kBalanced);
    const int rel0 = (rank() - root + p) % p;
    const auto range = [&](int lo, int hi) {
      hi = std::min(hi, p);
      const std::size_t first = blocks[static_cast<std::size_t>(lo)].offset;
      const coll::Block& last = blocks[static_cast<std::size_t>(hi - 1)];
      return data.subspan(first, last.offset + last.count - first);
    };
    int recv_mask = 0;
    if (rel0 != 0) {
      int m = 1;
      while ((rel0 & m) == 0) m <<= 1;
      const int src = (rel0 - m + root + p) % p;
      co_await channel_.recv(as_b(range(rel0, rel0 + m)), src, kTagBcast);
      recv_mask = m;
    } else {
      recv_mask = 1;
      while (recv_mask < p) recv_mask <<= 1;
    }
    for (int m = recv_mask >> 1; m > 0; m >>= 1) {
      if (rel0 + m < p) {
        const int dst = (rel0 + m + root) % p;
        auto part = range(rel0 + m, rel0 + 2 * m);
        co_await channel_.send(as_b(std::span<const double>(part)), dst,
                               kTagBcast);
      }
    }
    co_await detail::ring_allgather_blocks(*this, data, blocks,
                                           (p - root % p) % p, kTagBcast);
    co_return;
  }
  const int rel = (rank() - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const int src = (rel - mask + root + p) % p;
      co_await channel_.recv(as_b(data), src, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const int dst = (rel + mask + root) % p;
      co_await channel_.send(as_b(std::span<const double>(data)), dst,
                             kTagBcast);
    }
    mask >>= 1;
  }
}

sim::Task<> Mpi::reduce(std::span<const double> in, std::span<double> out,
                        ReduceOp op, int root) {
  auto& api = this->api();
  SCC_EXPECTS(in.size() == out.size());
  co_await api.overhead(api.cost().sw.mpi_coll_call);
  const int p = size();
  if (p == 1 || in.size() < static_cast<std::size_t>(p)) {
    // Short vectors: binomial tree.
    co_await reduce_binomial(in, out, op, root);
    co_return;
  }
  // Long vectors (RCKMPI tuning on the SCC): ring ReduceScatter followed
  // by a gather of the owned blocks to the root.
  std::span<double> work = scratch_span(in.size(), 1);
  std::copy(in.begin(), in.end(), work.begin());
  co_await api.priv_read(in.data(), in.size_bytes());
  co_await api.priv_write(work.data(), work.size_bytes());
  const auto blocks =
      coll::split_blocks(in.size(), p, coll::SplitPolicy::kBalanced);
  co_await detail::ring_reduce_scatter(*this, work, op, blocks, kTagReduce);
  if (rank() == root) {
    const coll::Block& own = blocks[static_cast<std::size_t>((root + 1) % p)];
    std::copy_n(work.data() + own.offset, own.count,
                out.data() + own.offset);
    co_await api.priv_write(out.data() + own.offset,
                            own.count * sizeof(double));
    for (int k = 1; k < p; ++k) {
      const int src = (root + k) % p;
      const coll::Block& b = blocks[static_cast<std::size_t>((src + 1) % p)];
      co_await channel_.recv(as_b(out.subspan(b.offset, b.count)), src,
                             kTagReduce);
    }
  } else {
    const coll::Block& own = blocks[static_cast<std::size_t>((rank() + 1) % p)];
    co_await channel_.send(
        as_b(std::span<const double>(work.subspan(own.offset, own.count))),
        root, kTagReduce);
  }
}

sim::Task<> Mpi::reduce_binomial(std::span<const double> in,
                                 std::span<double> out, ReduceOp op,
                                 int root) {
  auto& api = this->api();
  const int p = size();
  const int rel = (rank() - root + p) % p;
  std::span<double> acc = scratch_span(in.size(), 1);
  std::copy(in.begin(), in.end(), acc.begin());
  co_await api.priv_read(in.data(), in.size_bytes());
  co_await api.priv_write(acc.data(), acc.size_bytes());
  std::span<double> tmp = scratch_span(in.size(), 2);
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const int dst = (rel - mask + root + p) % p;
      co_await channel_.send(
          as_b(std::span<const double>(acc.data(), acc.size())), dst,
          kTagReduce);
      break;
    }
    if (rel + mask < p) {
      const int src = (rel + mask + root) % p;
      co_await channel_.recv(as_b(tmp), src, kTagReduce);
      co_await rcce::apply_reduce(api, tmp, acc, op);
    }
    mask <<= 1;
  }
  if (rel == 0) {
    std::copy(acc.begin(), acc.end(), out.begin());
    co_await api.priv_write(out.data(), out.size_bytes());
  }
}

sim::Task<> Mpi::allreduce(std::span<const double> in, std::span<double> out,
                           ReduceOp op) {
  auto& api = this->api();
  SCC_EXPECTS(in.size() == out.size());
  co_await api.overhead(api.cost().sw.mpi_coll_call);
  const int p = size();
  if (p > 1 && in.size() > kRecursiveDoublingMax &&
      in.size() >= static_cast<std::size_t>(p)) {
    // Long vectors: ring ReduceScatter + ring Allgather (the bucket
    // algorithm RCKMPI's tuning tables select on the SCC).
    std::copy(in.begin(), in.end(), out.begin());
    co_await api.priv_read(in.data(), in.size_bytes());
    co_await api.priv_write(out.data(), out.size_bytes());
    const auto blocks =
        coll::split_blocks(in.size(), p, coll::SplitPolicy::kBalanced);
    co_await detail::ring_reduce_scatter(*this, out, op, blocks,
                                         kTagAllreduce);
    co_await detail::ring_allgather_blocks(*this, out, blocks, 1,
                                           kTagAllreduce);
    co_return;
  }
  if (p == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    co_await api.priv_read(in.data(), in.size_bytes());
    co_await api.priv_write(out.data(), out.size_bytes());
    co_return;
  }
  // Recursive doubling with non-power-of-two folding (MPICH).
  const int pof2 = [&] {
    int v = 1;
    while (v * 2 <= p) v *= 2;
    return v;
  }();
  const int rem = p - pof2;
  std::span<double> acc = scratch_span(in.size(), 1);
  std::copy(in.begin(), in.end(), acc.begin());
  co_await api.priv_read(in.data(), in.size_bytes());
  co_await api.priv_write(acc.data(), acc.size_bytes());
  std::span<double> tmp = scratch_span(in.size(), 2);
  int newrank;
  if (rank() < 2 * rem) {
    if (rank() % 2 == 0) {
      co_await channel_.send(
          as_b(std::span<const double>(acc.data(), acc.size())), rank() + 1,
          kTagAllreduce);
      newrank = -1;
    } else {
      co_await channel_.recv(as_b(tmp), rank() - 1, kTagAllreduce);
      co_await rcce::apply_reduce(api, tmp, acc, op);
      newrank = rank() / 2;
    }
  } else {
    newrank = rank() - rem;
  }
  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newrank ^ mask;
      const int partner =
          partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
      co_await channel_.sendrecv(
          as_b(std::span<const double>(acc.data(), acc.size())), partner,
          as_b(tmp), partner, kTagAllreduce);
      co_await rcce::apply_reduce(api, tmp, acc, op);
    }
  }
  if (rank() < 2 * rem) {
    if (rank() % 2 == 1) {
      co_await channel_.send(
          as_b(std::span<const double>(acc.data(), acc.size())), rank() - 1,
          kTagAllreduce);
    } else {
      co_await channel_.recv(as_b(acc), rank() + 1, kTagAllreduce);
    }
  }
  std::copy(acc.begin(), acc.end(), out.begin());
  co_await api.priv_write(out.data(), out.size_bytes());
}

sim::Task<> Mpi::allgather(std::span<const double> contribution,
                           std::span<double> gathered) {
  auto& api = this->api();
  const int p = size();
  const std::size_t n = contribution.size();
  SCC_EXPECTS(gathered.size() == n * static_cast<std::size_t>(p));
  co_await api.overhead(api.cost().sw.mpi_coll_call);
  std::copy(contribution.begin(), contribution.end(),
            gathered.begin() + static_cast<std::ptrdiff_t>(
                                   static_cast<std::size_t>(rank()) * n));
  co_await api.priv_read(contribution.data(), contribution.size_bytes());
  co_await api.priv_write(gathered.data() + static_cast<std::size_t>(rank()) * n,
                          n * sizeof(double));
  if (p == 1) co_return;
  const int right = (rank() + 1) % p;
  const int left = (rank() + p - 1) % p;
  for (int r = 0; r < p - 1; ++r) {
    const auto send_of = static_cast<std::size_t>((rank() - r + p) % p);
    const auto recv_of = static_cast<std::size_t>((rank() - r - 1 + p) % p);
    co_await channel_.sendrecv(
        as_b(std::span<const double>(gathered.subspan(send_of * n, n))), right,
        as_b(gathered.subspan(recv_of * n, n)), left, kTagAllgather,
        api.cost().sw.mpi_nb_call);
  }
}

sim::Task<> Mpi::alltoall(std::span<const double> sendbuf,
                          std::span<double> recvbuf) {
  auto& api = this->api();
  const int p = size();
  SCC_EXPECTS(sendbuf.size() == recvbuf.size());
  SCC_EXPECTS(sendbuf.size() % static_cast<std::size_t>(p) == 0);
  const std::size_t n = sendbuf.size() / static_cast<std::size_t>(p);
  co_await api.overhead(api.cost().sw.mpi_coll_call);
  for (int r = 0; r < p; ++r) {
    const int partner = ((r - rank()) % p + p) % p;
    const auto off = static_cast<std::size_t>(partner) * n;
    if (partner == rank()) {
      std::copy_n(sendbuf.begin() + static_cast<std::ptrdiff_t>(off), n,
                  recvbuf.begin() + static_cast<std::ptrdiff_t>(off));
      co_await api.priv_read(sendbuf.data() + off, n * sizeof(double));
      co_await api.priv_write(recvbuf.data() + off, n * sizeof(double));
      continue;
    }
    co_await channel_.sendrecv(as_b(sendbuf.subspan(off, n)), partner,
                               as_b(recvbuf.subspan(off, n)), partner,
                               kTagAlltoall, api.cost().sw.mpi_nb_call);
  }
}

sim::Task<int> Mpi::reduce_scatter(std::span<const double> in,
                                   std::span<double> out, ReduceOp op) {
  auto& api = this->api();
  SCC_EXPECTS(out.size() == in.size());
  co_await api.overhead(api.cost().sw.mpi_coll_call);
  const int p = size();
  if (p == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    co_await api.priv_read(in.data(), in.size_bytes());
    co_await api.priv_write(out.data(), out.size_bytes());
    co_return 0;
  }
  // Ring (bucket) algorithm directly; core i ends up owning block (i+1)%p.
  std::copy(in.begin(), in.end(), out.begin());
  co_await api.priv_read(in.data(), in.size_bytes());
  co_await api.priv_write(out.data(), out.size_bytes());
  const auto blocks =
      coll::split_blocks(in.size(), p, coll::SplitPolicy::kBalanced);
  co_await detail::ring_reduce_scatter(*this, out, op, blocks, kTagScatter);
  co_return (rank() + 1) % p;
}

sim::Task<> Mpi::barrier() {
  auto& api = this->api();
  co_await api.overhead(api.cost().sw.mpi_coll_call);
  const int p = size();
  for (int dist = 1; dist < p; dist *= 2) {
    const int to = (rank() + dist) % p;
    const int from = (rank() - dist + p) % p;
    co_await channel_.sendrecv({}, to, {}, from, kTagBarrier);
  }
}

}  // namespace scc::rckmpi
