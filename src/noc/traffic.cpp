#include "noc/traffic.hpp"

#include <algorithm>

namespace scc::noc {

void TrafficMatrix::record_transfer(CoreId a, CoreId b, std::uint64_t lines) {
  lines_sent_ += lines;
  if (route_fn_) {
    for (const LinkId& link : route_fn_(a, b)) link_lines_[link] += lines;
    return;
  }
  for (const LinkId& link : topo_->route(a, b)) link_lines_[link] += lines;
}

std::uint64_t TrafficMatrix::total_line_hops() const {
  std::uint64_t total = 0;
  for (const auto& [link, lines] : link_lines_) total += lines;
  return total;
}

std::uint64_t TrafficMatrix::max_link_load() const {
  std::uint64_t max_load = 0;
  for (const auto& [link, lines] : link_lines_)
    max_load = std::max(max_load, lines);
  return max_load;
}

std::vector<TrafficMatrix::LinkLoad> TrafficMatrix::loads() const {
  std::vector<LinkLoad> out;
  out.reserve(link_lines_.size());
  for (const auto& [link, lines] : link_lines_)
    if (lines > 0) out.push_back({link, lines});
  std::sort(out.begin(), out.end(),
            [](const LinkLoad& a, const LinkLoad& b) { return a.lines > b.lines; });
  return out;
}

void TrafficMatrix::merge_from(const TrafficMatrix& other) {
  lines_sent_ += other.lines_sent_;
  for (const auto& [link, lines] : other.link_lines_) link_lines_[link] += lines;
}

void TrafficMatrix::reset() {
  link_lines_.clear();
  lines_sent_ = 0;
}

}  // namespace scc::noc
