#include "noc/contention.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace scc::noc {

SimTime LinkContention::occupy(CoreId a, CoreId b, std::uint64_t lines,
                               SimTime now) {
  if (lines == 0) return SimTime::zero();
  const SimTime service =
      mesh_clock_.cycles(lines * service_cycles_per_line_);
  SimTime delay;
  std::uint64_t hop = 0;
  for (const LinkId& link : topo_->route(a, b)) {
    SimTime& busy = busy_until_[key_of(link)];
    // The head flit reaches this link only after crossing the `hop`
    // preceding ones, so its window starts that much later than the
    // transfer's departure (plus queueing already accumulated upstream).
    const SimTime arrival = now + delay + hop_latency_ * hop;
    const SimTime start = std::max(arrival, busy);
    delay += start - arrival;  // residual queueing on this link
    busy = start + service;
    LinkStats& s = stats_[key_of(link)];
    ++s.windows;
    s.busy += service;
    s.queue += start - arrival;
    s.max_queue = std::max(s.max_queue, start - arrival);
    if (trace_) {
      trace_->link_window(link_name(link), start, busy, start - arrival);
    }
    ++hop;
  }
  if (delay > SimTime::zero()) {
    total_delay_ += delay;
    ++delayed_transfers_;
  }
  return delay;
}

std::string_view LinkContention::link_name(const LinkId& link) {
  const Key key = key_of(link);
  const auto it = names_.find(key);
  if (it != names_.end()) return it->second;
  const std::string_view name = trace_->intern(
      strprintf("(%d,%d)->(%d,%d)", link.from.x, link.from.y, link.to.x,
                link.to.y));
  names_.emplace(key, name);
  return name;
}

std::vector<std::pair<std::string, LinkStats>> LinkContention::link_stats()
    const {
  std::vector<std::pair<std::string, LinkStats>> out;
  out.reserve(stats_.size());
  for (const auto& [key, s] : stats_) {
    const auto& [fx, fy, tx, ty] = key;
    out.emplace_back(strprintf("(%d,%d)->(%d,%d)", fx, fy, tx, ty), s);
  }
  return out;
}

void LinkContention::reset() {
  busy_until_.clear();
  stats_.clear();
  total_delay_ = SimTime::zero();
  delayed_transfers_ = 0;
}

}  // namespace scc::noc
