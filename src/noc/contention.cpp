#include "noc/contention.hpp"

#include <algorithm>

namespace scc::noc {

SimTime LinkContention::occupy(CoreId a, CoreId b, std::uint64_t lines,
                               SimTime now) {
  if (lines == 0) return SimTime::zero();
  const SimTime service =
      mesh_clock_.cycles(lines * service_cycles_per_line_);
  SimTime delay;
  for (const LinkId& link : topo_->route(a, b)) {
    SimTime& busy = busy_until_[key_of(link)];
    const SimTime start = std::max(now + delay, busy);
    delay += start - (now + delay);  // residual queueing on this link
    busy = start + service;
  }
  if (delay > SimTime::zero()) {
    total_delay_ += delay;
    ++delayed_transfers_;
  }
  return delay;
}

void LinkContention::reset() {
  busy_until_.clear();
  total_delay_ = SimTime::zero();
  delayed_transfers_ = 0;
}

}  // namespace scc::noc
