#include "noc/contention.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace scc::noc {

namespace {

/// t stretched by `factor`; exactly t at factor 1 so fault hooks with
/// all-healthy links leave contention timing bit-identical.
SimTime scale_time(SimTime t, double factor) {
  if (factor == 1.0) return t;
  const long double fs = static_cast<long double>(t.femtoseconds()) *
                         static_cast<long double>(factor);
  return SimTime{static_cast<std::uint64_t>(fs)};
}

}  // namespace

SimTime LinkContention::occupy(CoreId a, CoreId b, std::uint64_t lines,
                               SimTime now) {
  return occupy_split(a, b, lines, now, {}, {});
}

SimTime LinkContention::occupy_split(
    CoreId a, CoreId b, std::uint64_t lines, SimTime now,
    const std::function<bool(const LinkId&)>& owned,
    const std::function<void(const LinkId&, std::uint64_t, SimTime)>&
        foreign) {
  if (lines == 0) return SimTime::zero();
  const SimTime service =
      mesh_clock_.cycles(lines * service_cycles_per_line_);
  std::vector<LinkId> xy_route;
  if (!route_fn_) xy_route = topo_->route(a, b);
  const std::vector<LinkId>& route = route_fn_ ? route_fn_(a, b) : xy_route;
  SimTime delay;
  // Head-flit progress: the head reaches link i only after traversing the
  // i preceding links, each at its (possibly fault-stretched) hop latency.
  SimTime head_offset;
  for (const LinkId& link : route) {
    const double factor =
        link_factor_fn_ ? link_factor_fn_(link) : 1.0;
    // The window starts once the head flit arrives (departure + upstream
    // traversal + queueing already accumulated upstream).
    const SimTime arrival = now + delay + head_offset;
    if (owned && !owned(link)) {
      foreign(link, lines, arrival);
      head_offset += scale_time(hop_latency_, factor);
      continue;
    }
    const SimTime link_service = scale_time(service, factor);
    SimTime& busy = busy_until_[key_of(link)];
    const SimTime start = std::max(arrival, busy);
    delay += start - arrival;  // residual queueing on this link
    busy = start + link_service;
    LinkStats& s = stats_[key_of(link)];
    ++s.windows;
    s.busy += link_service;
    s.queue += start - arrival;
    s.max_queue = std::max(s.max_queue, start - arrival);
    if (trace_) {
      trace_->link_window(link_name(link), start, busy, start - arrival);
    }
    head_offset += scale_time(hop_latency_, factor);
  }
  if (delay > SimTime::zero()) {
    total_delay_ += delay;
    ++delayed_transfers_;
  }
  return delay;
}

void LinkContention::absorb(const LinkId& link, std::uint64_t lines,
                            SimTime start) {
  if (lines == 0) return;
  const double factor = link_factor_fn_ ? link_factor_fn_(link) : 1.0;
  const SimTime link_service = scale_time(
      mesh_clock_.cycles(lines * service_cycles_per_line_), factor);
  SimTime& busy = busy_until_[key_of(link)];
  const SimTime begin = std::max(start, busy);
  busy = begin + link_service;
  LinkStats& s = stats_[key_of(link)];
  ++s.windows;
  s.busy += link_service;
  s.queue += begin - start;
  s.max_queue = std::max(s.max_queue, begin - start);
  if (trace_) {
    trace_->link_window(link_name(link), begin, busy, begin - start);
  }
}

std::string_view LinkContention::link_name(const LinkId& link) {
  const Key key = key_of(link);
  const auto it = names_.find(key);
  if (it != names_.end()) return it->second;
  const std::string_view name = trace_->intern(
      strprintf("(%d,%d)->(%d,%d)", link.from.x, link.from.y, link.to.x,
                link.to.y));
  names_.emplace(key, name);
  return name;
}

std::vector<std::pair<std::string, LinkStats>> LinkContention::link_stats()
    const {
  std::vector<std::pair<std::string, LinkStats>> out;
  out.reserve(stats_.size());
  for (const auto& [key, s] : stats_) {
    const auto& [fx, fy, tx, ty] = key;
    out.emplace_back(strprintf("(%d,%d)->(%d,%d)", fx, fy, tx, ty), s);
  }
  return out;
}

void LinkContention::reset() {
  busy_until_.clear();
  stats_.clear();
  total_delay_ = SimTime::zero();
  delayed_transfers_ = 0;
}

}  // namespace scc::noc
