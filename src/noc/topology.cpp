#include "noc/topology.hpp"

#include <cmath>
#include <cstdlib>

namespace scc::noc {

Topology::Topology(int tiles_x, int tiles_y, int cores_per_tile)
    : tiles_x_(tiles_x), tiles_y_(tiles_y), cores_per_tile_(cores_per_tile) {
  SCC_EXPECTS(tiles_x >= 1 && tiles_y >= 1 && cores_per_tile >= 1);
}

int Topology::hops(CoreId a, CoreId b) const {
  const TileCoord ca = coord_of(a);
  const TileCoord cb = coord_of(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

TileCoord Topology::mc_coord(int mc_index) const {
  SCC_EXPECTS(mc_index >= 0 && mc_index < 4);
  // Row 0 holds MC0 (left) and MC1 (right); the top row holds MC2/MC3.
  // On the 6x4 SCC the documented router attachments are (0,0), (5,0),
  // (0,2), (5,2); we generalize to row tiles_y-2 (== 2 for the SCC) so
  // non-standard meshes still place controllers sensibly.
  const int hi_row = tiles_y_ >= 2 ? tiles_y_ - 2 : 0;
  switch (mc_index) {
    case 0: return {0, 0};
    case 1: return {tiles_x_ - 1, 0};
    case 2: return {0, hi_row};
    default: return {tiles_x_ - 1, hi_row};
  }
}

int Topology::mc_of(CoreId core) const {
  const TileCoord c = coord_of(core);
  const bool right_half = c.x >= (tiles_x_ + 1) / 2;
  const bool upper_half = c.y >= tiles_y_ / 2;
  return (upper_half ? 2 : 0) + (right_half ? 1 : 0);
}

int Topology::hops_to_mc(CoreId core) const {
  const TileCoord c = coord_of(core);
  const TileCoord mc = mc_coord(mc_of(core));
  return std::abs(c.x - mc.x) + std::abs(c.y - mc.y);
}

int Topology::partition_of(CoreId core, int partitions) const {
  SCC_EXPECTS(partitions >= 1 && partitions <= tiles_x_);
  // Balanced contiguous slabs; monotone in x, every slab nonempty.
  return coord_of(core).x * partitions / tiles_x_;
}

int Topology::min_partition_separation_hops(int partitions) const {
  SCC_EXPECTS(partitions >= 1 && partitions <= tiles_x_);
  return partitions > 1 ? 1 : 0;
}

std::vector<LinkId> Topology::route(CoreId a, CoreId b) const {
  std::vector<LinkId> links;
  TileCoord cur = coord_of(a);
  const TileCoord dst = coord_of(b);
  // Dimension-ordered: X first, then Y.
  while (cur.x != dst.x) {
    const TileCoord next{cur.x + (dst.x > cur.x ? 1 : -1), cur.y};
    links.push_back({cur, next});
    cur = next;
  }
  while (cur.y != dst.y) {
    const TileCoord next{cur.x, cur.y + (dst.y > cur.y ? 1 : -1)};
    links.push_back({cur, next});
    cur = next;
  }
  return links;
}

}  // namespace scc::noc
