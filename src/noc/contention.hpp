// Optional link-contention timing model.
//
// The paper's latency formulas (and this simulator's default) assume a
// contention-free mesh: every transfer sees only its hop latency. That is
// accurate for the mostly neighbour-local ring schedules the collectives
// use, but dense patterns (Alltoall) do share links. This model adds
// first-order queueing: each directed link keeps a busy-until horizon;
// a transfer crossing occupied links is delayed by the residual busy time
// and then occupies each link for lines * service_cycles.
//
// Timing of the per-link windows is wormhole-style: the head flit reaches
// link i only after traversing the i preceding links, so link i's window
// starts hop_latency * i after the transfer leaves the source router (plus
// any queueing accumulated upstream). Modelling this offset matters in both
// directions: a transfer does NOT collide with traffic that drains off a
// far link before its head arrives there, and trailing links stay occupied
// after nearer ones free up, delaying later transfers that enter mid-route.
//
// Enabled via HwCostModel::model_link_contention (default off, so the
// calibrated figures are unchanged); the abl_contention benchmark
// quantifies its effect. Deterministic: state depends only on the
// (deterministic) transfer sequence.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "noc/topology.hpp"
#include "trace/recorder.hpp"

namespace scc::noc {

/// Cumulative per-directed-link occupancy counters. `windows` is
/// volume-type (one per link crossing, schedule-invariant); the times are
/// time-type (queueing depends on the interleaving of transfers).
struct LinkStats {
  std::uint64_t windows = 0;  // transfers that crossed this link
  SimTime busy;               // total service time
  SimTime queue;              // total residual queueing suffered here
  SimTime max_queue;          // worst single-transfer queueing delay here
};

class LinkContention {
 public:
  /// Route override (fault reroutes around dead links); must outlive the
  /// model. Per-link latency multiplier (slow links); 1.0 = healthy.
  using RouteFn =
      std::function<const std::vector<LinkId>&(CoreId, CoreId)>;
  using LinkFactorFn = std::function<double(const LinkId&)>;

  LinkContention(const Topology& topo, Clock mesh_clock,
                 std::uint32_t service_cycles_per_line,
                 std::uint32_t hop_mesh_cycles)
      : topo_(&topo),
        mesh_clock_(mesh_clock),
        service_cycles_per_line_(service_cycles_per_line),
        hop_latency_(mesh_clock.cycles(hop_mesh_cycles)) {}

  /// Install fault hooks (set by SccMachine when a FaultSpec is active):
  /// transfers then follow the degraded routes, and each link's service
  /// window and traversal latency stretch by its factor. Empty functions
  /// reset to the healthy mesh; factor 1.0 everywhere is bit-identical to
  /// no hooks at all.
  void set_fault_hooks(RouteFn route, LinkFactorFn factor) {
    route_fn_ = std::move(route);
    link_factor_fn_ = std::move(factor);
  }

  /// Registers a transfer of `lines` cache lines from core a's router to
  /// core b's starting at `now`; returns the extra queueing delay the
  /// transfer suffers from earlier traffic still draining on its links.
  SimTime occupy(CoreId a, CoreId b, std::uint64_t lines, SimTime now);

  /// Partitioned-machine variant of occupy(): walks the same route with the
  /// same head-flit arithmetic, but links for which `owned` returns false
  /// belong to another partition's shard -- instead of occupying them here,
  /// `foreign(link, lines, arrival)` is invoked (the machine cross-posts an
  /// absorb() to the owning shard). Queueing feedback into the returned
  /// delay comes from owned links only: a remote shard's busy horizon
  /// cannot be read inside a conservative window, so foreign links are
  /// accounted (deterministically, at the window barrier) but do not delay
  /// this transfer. With all links owned this is occupy() exactly.
  SimTime occupy_split(
      CoreId a, CoreId b, std::uint64_t lines, SimTime now,
      const std::function<bool(const LinkId&)>& owned,
      const std::function<void(const LinkId&, std::uint64_t, SimTime)>&
          foreign);

  /// Merges one foreign transfer's occupancy of `link` into this shard:
  /// a busy window of `lines` service starting no earlier than `start`
  /// (later if the link is still draining). Bookkeeping only -- the sending
  /// transfer's delay was already fixed on its own shard -- but it keeps
  /// the busy horizon and per-link stats deterministic for any worker
  /// count because absorbs are posted through the PDES outbox merge order.
  void absorb(const LinkId& link, std::uint64_t lines, SimTime start);

  /// Total queueing delay handed out so far (for reporting).
  [[nodiscard]] SimTime total_delay() const { return total_delay_; }
  [[nodiscard]] std::uint64_t delayed_transfers() const {
    return delayed_transfers_;
  }

  /// Per-link cumulative stats, "(x,y)->(x,y)" name first, sorted by link
  /// coordinates (deterministic order for the metrics snapshot).
  [[nodiscard]] std::vector<std::pair<std::string, LinkStats>> link_stats()
      const;

  /// Attaches a trace recorder (nullptr detaches): every occupy() then
  /// records one busy window per crossed link, named "(x,y)->(x,y)".
  void set_trace(trace::Recorder* recorder) {
    if (recorder != trace_) names_.clear();  // views live in the recorder
    trace_ = recorder;
  }

  void reset();

 private:
  using Key = std::tuple<int, int, int, int>;  // from.x,from.y,to.x,to.y
  static Key key_of(const LinkId& link) {
    return {link.from.x, link.from.y, link.to.x, link.to.y};
  }

  [[nodiscard]] std::string_view link_name(const LinkId& link);

  const Topology* topo_;
  Clock mesh_clock_;
  std::uint32_t service_cycles_per_line_;
  SimTime hop_latency_;
  RouteFn route_fn_;
  LinkFactorFn link_factor_fn_;
  std::map<Key, SimTime> busy_until_;
  std::map<Key, LinkStats> stats_;
  SimTime total_delay_;
  std::uint64_t delayed_transfers_ = 0;
  trace::Recorder* trace_ = nullptr;
  std::map<Key, std::string_view> names_;  // interned link names
};

}  // namespace scc::noc
