// Link-traffic accounting: counts cache-line flits crossing each directed
// mesh link. Purely observational (the paper's latency formulas are
// contention-free); used by the topology_explorer example and by tests that
// check the collectives' communication volume.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "noc/topology.hpp"

namespace scc::noc {

class TrafficMatrix {
 public:
  /// Route override (fault reroutes around dead links). Returns the static
  /// route between two cores' routers; must outlive the matrix.
  using RouteFn =
      std::function<const std::vector<LinkId>&(CoreId, CoreId)>;

  explicit TrafficMatrix(const Topology& topo) : topo_(&topo) {}

  /// Install a route override (empty resets to the topology's XY router).
  /// Set by SccMachine when a fault model kills links, so per-link traffic
  /// accounting follows the degraded paths.
  void set_route_fn(RouteFn fn) { route_fn_ = std::move(fn); }

  /// Records `lines` cache-line transfers from core a's router to core b's.
  void record_transfer(CoreId a, CoreId b, std::uint64_t lines);

  /// Total flits over all links.
  [[nodiscard]] std::uint64_t total_line_hops() const;

  /// Flits over the busiest single link (0 when no traffic).
  [[nodiscard]] std::uint64_t max_link_load() const;

  /// Flits sent core-to-core (end-to-end count, not per hop).
  [[nodiscard]] std::uint64_t total_lines_sent() const { return lines_sent_; }

  struct LinkLoad {
    LinkId link;
    std::uint64_t lines;
  };
  /// All links with nonzero traffic, heaviest first.
  [[nodiscard]] std::vector<LinkLoad> loads() const;

  /// Accumulates another matrix's counters into this one (same topology).
  /// The partitioned machine keeps one matrix per partition -- each core
  /// records its transfers into its own partition's shard, race-free -- and
  /// merges them into one matrix for reporting. Pure sums, so the merged
  /// totals equal the serial machine's single-matrix totals exactly.
  void merge_from(const TrafficMatrix& other);

  void reset();

 private:
  struct CoordLess {
    bool operator()(const LinkId& a, const LinkId& b) const {
      const auto key = [](const LinkId& l) {
        return std::tuple(l.from.x, l.from.y, l.to.x, l.to.y);
      };
      return key(a) < key(b);
    }
  };

  const Topology* topo_;
  RouteFn route_fn_;
  std::map<LinkId, std::uint64_t, CoordLess> link_lines_;
  std::uint64_t lines_sent_ = 0;
};

}  // namespace scc::noc
