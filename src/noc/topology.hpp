// SCC mesh topology: 24 tiles in a 6x4 grid, 2 cores per tile, 4 on-die
// memory controllers on the mesh edges. Routing is dimension-ordered XY
// (first X, then Y), as on the real chip.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace scc::noc {

using CoreId = int;
using TileId = int;

struct TileCoord {
  int x = 0;
  int y = 0;
  friend bool operator==(TileCoord, TileCoord) = default;
};

/// A directed mesh link between two neighbouring routers, identified for
/// traffic accounting. Links to/from memory controllers use the MC's pseudo
/// tile coordinates.
struct LinkId {
  TileCoord from;
  TileCoord to;
  friend bool operator==(LinkId, LinkId) = default;
};

class Topology {
 public:
  /// Standard SCC: 6x4 tiles, 2 cores each, 4 MCs. Other shapes are allowed
  /// for testing scalability (cores = 2 * tiles_x * tiles_y).
  Topology(int tiles_x = 6, int tiles_y = 4, int cores_per_tile = 2);

  [[nodiscard]] int tiles_x() const { return tiles_x_; }
  [[nodiscard]] int tiles_y() const { return tiles_y_; }
  [[nodiscard]] int cores_per_tile() const { return cores_per_tile_; }
  [[nodiscard]] int num_tiles() const { return tiles_x_ * tiles_y_; }
  [[nodiscard]] int num_cores() const { return num_tiles() * cores_per_tile_; }

  [[nodiscard]] TileId tile_of(CoreId core) const {
    SCC_EXPECTS(core >= 0 && core < num_cores());
    return core / cores_per_tile_;
  }
  [[nodiscard]] TileCoord coord_of_tile(TileId tile) const {
    SCC_EXPECTS(tile >= 0 && tile < num_tiles());
    return {tile % tiles_x_, tile / tiles_x_};
  }
  [[nodiscard]] TileCoord coord_of(CoreId core) const {
    return coord_of_tile(tile_of(core));
  }

  /// Manhattan distance between the tiles of two cores (0 if same tile).
  [[nodiscard]] int hops(CoreId a, CoreId b) const;

  /// Hops from a core's tile to its assigned memory controller. The four
  /// MCs sit at the left/right edges of rows 0 and tiles_y-1 (the real SCC
  /// attaches them at routers (0,0), (5,0), (0,2), (5,2)); each core uses
  /// the controller of its quadrant, as in the default SCC LUT setup.
  [[nodiscard]] int hops_to_mc(CoreId core) const;

  /// Which of the four controllers serves this core (0..3).
  [[nodiscard]] int mc_of(CoreId core) const;

  [[nodiscard]] TileCoord mc_coord(int mc_index) const;

  /// XY route between two cores' routers as a sequence of directed links
  /// (empty when both cores share a tile). Used for traffic accounting.
  [[nodiscard]] std::vector<LinkId> route(CoreId a, CoreId b) const;

  /// Conservative-PDES partition map: contiguous column slabs of tiles,
  /// balanced to within one column ("p = x * partitions / tiles_x").
  /// Column slabs make the cross-partition latency floor trivial to reason
  /// about -- any interaction between slabs crosses at least one X link --
  /// and keep halo traffic on slab boundaries only. Requires
  /// 1 <= partitions <= tiles_x so every partition owns at least a column.
  [[nodiscard]] int partition_of(CoreId core, int partitions) const;

  /// Slab owning tile column `x` (the same map partition_of applies to a
  /// core's column). Boundary links -- X links between two slabs -- are
  /// owned by their WESTERN endpoint's slab by convention: ownership =
  /// partition_of_column(min(from.x, to.x)).
  [[nodiscard]] int partition_of_column(int x, int partitions) const {
    SCC_EXPECTS(partitions >= 1 && partitions <= tiles_x_);
    SCC_EXPECTS(x >= 0 && x < tiles_x_);
    return x * partitions / tiles_x_;
  }

  /// Minimum router hops between cores in *different* column slabs: 1 for
  /// any partitions >= 2 (adjacent slabs abut), 0 when there is a single
  /// partition and therefore no boundary at all. Multiplied by the mesh's
  /// per-hop transit this lower-bounds every cross-partition interaction
  /// latency (machine::pdes_lookahead).
  [[nodiscard]] int min_partition_separation_hops(int partitions) const;

 private:
  int tiles_x_;
  int tiles_y_;
  int cores_per_tile_;
};

}  // namespace scc::noc
