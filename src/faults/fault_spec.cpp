#include "faults/fault_spec.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/string_util.hpp"

namespace scc::faults {

namespace {

[[noreturn]] void bad(std::string_view clause, const char* why) {
  throw std::runtime_error(strprintf("bad fault clause '%s': %s",
                                     std::string(clause).c_str(), why));
}

/// Consumes a base-10 integer from the front of `s`; false if none.
bool eat_int(std::string_view& s, int& out) {
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  if (i == 0) return false;
  out = std::stoi(std::string(s.substr(0, i)));
  s.remove_prefix(i);
  return true;
}

/// Consumes a non-negative decimal number (factor) from the front of `s`.
bool eat_double(std::string_view& s, double& out) {
  std::size_t i = 0;
  while (i < s.size() &&
         ((s[i] >= '0' && s[i] <= '9') || s[i] == '.' || s[i] == '-')) {
    ++i;
  }
  if (i == 0) return false;
  std::size_t used = 0;
  const std::string text(s.substr(0, i));
  out = std::stod(text, &used);
  if (used != text.size()) return false;
  s.remove_prefix(i);
  return true;
}

bool eat(std::string_view& s, char c) {
  if (s.empty() || s.front() != c) return false;
  s.remove_prefix(1);
  return true;
}

/// "<x>,<y>-<x>,<y>" naming two tiles.
LinkRef eat_link(std::string_view& s, std::string_view clause) {
  LinkRef link;
  if (!eat_int(s, link.a.x) || !eat(s, ',') || !eat_int(s, link.a.y)) {
    bad(clause, "expected <x>,<y> tile coordinates");
  }
  if (!eat(s, '-')) bad(clause, "expected '-' between the two tiles");
  if (!eat_int(s, link.b.x) || !eat(s, ',') || !eat_int(s, link.b.y)) {
    bad(clause, "expected <x>,<y> tile coordinates after '-'");
  }
  return link;
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view text) {
  FaultSpec spec;
  for (const std::string& clause_str : split(std::string(text), ';')) {
    if (clause_str.empty()) continue;
    std::string_view s = clause_str;
    const auto kind_end = s.find(':');
    if (kind_end == std::string_view::npos) {
      bad(clause_str, "expected '<kind>:<args>'");
    }
    const std::string_view kind = s.substr(0, kind_end);
    s.remove_prefix(kind_end + 1);
    if (kind == "straggler") {
      Straggler f;
      if (!eat_int(s, f.core) || !eat(s, 'x') || !eat_double(s, f.factor) ||
          !s.empty()) {
        bad(clause_str, "expected straggler:<core>x<factor>");
      }
      spec.stragglers.push_back(f);
    } else if (kind == "dvfs") {
      Dvfs f;
      if (!eat_int(s, f.core) || !eat(s, '/') || !eat_int(s, f.divisor) ||
          !s.empty()) {
        bad(clause_str, "expected dvfs:<core>/<divisor>");
      }
      spec.dvfs.push_back(f);
    } else if (kind == "slowlink") {
      SlowLink f;
      f.link = eat_link(s, clause_str);
      if (!eat(s, 'x') || !eat_double(s, f.factor) || !s.empty()) {
        bad(clause_str, "expected slowlink:<x>,<y>-<x>,<y>x<factor>");
      }
      spec.slow_links.push_back(f);
    } else if (kind == "deadlink") {
      spec.dead_links.push_back(eat_link(s, clause_str));
      if (!s.empty()) bad(clause_str, "expected deadlink:<x>,<y>-<x>,<y>");
    } else {
      bad(clause_str,
          "unknown kind (straggler | dvfs | slowlink | deadlink)");
    }
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::string out;
  const auto clause = [&](std::string text) {
    if (!out.empty()) out += ';';
    out += text;
  };
  for (const Straggler& f : stragglers) {
    clause(strprintf("straggler:%dx%g", f.core, f.factor));
  }
  for (const Dvfs& f : dvfs) {
    clause(strprintf("dvfs:%d/%d", f.core, f.divisor));
  }
  for (const SlowLink& f : slow_links) {
    clause(strprintf("slowlink:%d,%d-%d,%dx%g", f.link.a.x, f.link.a.y,
                     f.link.b.x, f.link.b.y, f.factor));
  }
  for (const LinkRef& f : dead_links) {
    clause(strprintf("deadlink:%d,%d-%d,%d", f.a.x, f.a.y, f.b.x, f.b.y));
  }
  return out;
}

}  // namespace scc::faults
