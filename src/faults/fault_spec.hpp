// FaultSpec: a declarative, seed-free description of machine degradation.
//
// Generalizes the one-off mpb_bug_workaround toggle into a fault/variability
// injection layer (ROADMAP item 5): straggler cores, per-link latency
// multipliers, dead links with static reroute, and stepped DVFS-style
// frequency scaling. A FaultSpec is pure data -- it is compiled against a
// concrete mesh by faults::FaultModel (fault_model.hpp), which is where
// semantic validation (core/link ranges, mesh connectivity) happens via
// SCC_EXPECTS contract checks.
//
// Text grammar (the --faults= CLI flag; clauses separated by ';'):
//
//   straggler:<core>x<factor>            e.g. straggler:5x2.5
//   dvfs:<core>/<divisor>                e.g. dvfs:17/2
//   slowlink:<x>,<y>-<x>,<y>x<factor>    e.g. slowlink:2,1-3,1x4
//   deadlink:<x>,<y>-<x>,<y>             e.g. deadlink:2,1-3,1
//
// A straggler multiplies every core-clock charge of one core (OS jitter,
// thermal throttling: any real factor >= 1); a dvfs clause divides one
// core's frequency by an integer step (discrete frequency scaling). Both
// compose multiplicatively on the same core. Link clauses name the two
// adjacent tiles of a mesh link and apply to BOTH directions (a degraded or
// failed physical channel). parse() rejects grammar errors with
// std::runtime_error; values that are lexically valid but semantically
// wrong (negative factors, out-of-range ids, a dead link that disconnects
// the mesh) are deferred to FaultModel's contract checks.
//
// An empty FaultSpec is the machine running to spec: every consumer treats
// it as "layer disabled" and produces bit-identical output to a build
// without the faults subsystem (DESIGN.md §13).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "noc/topology.hpp"

namespace scc::faults {

struct Straggler {
  int core = 0;
  double factor = 1.0;  // >= 1; multiplies every core-clock charge
  friend bool operator==(const Straggler&, const Straggler&) = default;
};

struct Dvfs {
  int core = 0;
  int divisor = 1;  // >= 1; core frequency becomes core_hz / divisor
  friend bool operator==(const Dvfs&, const Dvfs&) = default;
};

/// A mesh link named by its two adjacent tile coordinates; applies to both
/// directed links between them.
struct LinkRef {
  noc::TileCoord a;
  noc::TileCoord b;
  friend bool operator==(const LinkRef&, const LinkRef&) = default;
};

struct SlowLink {
  LinkRef link;
  double factor = 1.0;  // >= 1; multiplies per-hop mesh cycles + service time
  friend bool operator==(const SlowLink&, const SlowLink&) = default;
};

struct FaultSpec {
  std::vector<Straggler> stragglers;
  std::vector<Dvfs> dvfs;
  std::vector<SlowLink> slow_links;
  std::vector<LinkRef> dead_links;

  [[nodiscard]] bool empty() const {
    return stragglers.empty() && dvfs.empty() && slow_links.empty() &&
           dead_links.empty();
  }

  /// Parses the clause grammar above. Throws std::runtime_error on
  /// malformed text; an empty string yields the empty spec.
  [[nodiscard]] static FaultSpec parse(std::string_view text);

  /// Canonical re-rendering in the parse() grammar ("" for the empty spec).
  /// parse(to_string()) round-trips exactly.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

}  // namespace scc::faults
