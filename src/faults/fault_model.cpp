#include "faults/fault_model.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <deque>
#include <set>

#include "common/string_util.hpp"

namespace scc::faults {

namespace {

using noc::LinkId;
using noc::TileCoord;
using noc::Topology;

using Key = std::tuple<int, int, int, int>;

Key key_of(TileCoord from, TileCoord to) {
  return {from.x, from.y, to.x, to.y};
}

bool in_mesh(const Topology& topo, TileCoord c) {
  return c.x >= 0 && c.x < topo.tiles_x() && c.y >= 0 && c.y < topo.tiles_y();
}

bool adjacent(TileCoord a, TileCoord b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y) == 1;
}

noc::TileId tile_id(const Topology& topo, TileCoord c) {
  return c.y * topo.tiles_x() + c.x;
}

std::set<Key> dead_keys(const FaultSpec& spec) {
  std::set<Key> dead;
  for (const LinkRef& link : spec.dead_links) {
    dead.insert(key_of(link.a, link.b));
    dead.insert(key_of(link.b, link.a));
  }
  return dead;
}

/// Neighbour enumeration order; fixed so BFS routing is deterministic.
std::array<TileCoord, 4> neighbours(TileCoord c) {
  return {TileCoord{c.x + 1, c.y}, TileCoord{c.x - 1, c.y},
          TileCoord{c.x, c.y + 1}, TileCoord{c.x, c.y - 1}};
}

/// BFS distances from `from` over the surviving (non-dead) links.
/// -1 = unreachable.
std::vector<int> bfs_dist(const Topology& topo, const std::set<Key>& dead,
                          TileCoord from) {
  std::vector<int> dist(static_cast<std::size_t>(topo.num_tiles()), -1);
  std::deque<TileCoord> frontier{from};
  dist[static_cast<std::size_t>(tile_id(topo, from))] = 0;
  while (!frontier.empty()) {
    const TileCoord cur = frontier.front();
    frontier.pop_front();
    const int d = dist[static_cast<std::size_t>(tile_id(topo, cur))];
    for (const TileCoord next : neighbours(cur)) {
      if (!in_mesh(topo, next)) continue;
      if (dead.count(key_of(cur, next)) != 0) continue;
      int& nd = dist[static_cast<std::size_t>(tile_id(topo, next))];
      if (nd < 0) {
        nd = d + 1;
        frontier.push_back(next);
      }
    }
  }
  return dist;
}

}  // namespace

std::optional<std::string> FaultModel::check(const FaultSpec& spec,
                                             const Topology& topo) {
  for (const Straggler& f : spec.stragglers) {
    if (f.core < 0 || f.core >= topo.num_cores()) {
      return strprintf("straggler core %d out of range (0..%d)", f.core,
                       topo.num_cores() - 1);
    }
    if (!(f.factor >= 1.0)) {
      return strprintf("straggler factor %g must be >= 1", f.factor);
    }
  }
  for (const Dvfs& f : spec.dvfs) {
    if (f.core < 0 || f.core >= topo.num_cores()) {
      return strprintf("dvfs core %d out of range (0..%d)", f.core,
                       topo.num_cores() - 1);
    }
    if (f.divisor < 1) {
      return strprintf("dvfs divisor %d must be >= 1", f.divisor);
    }
  }
  const auto check_link = [&](const LinkRef& link,
                              const char* kind) -> std::optional<std::string> {
    if (!in_mesh(topo, link.a) || !in_mesh(topo, link.b)) {
      return strprintf("%s %d,%d-%d,%d names a tile outside the %dx%d mesh",
                       kind, link.a.x, link.a.y, link.b.x, link.b.y,
                       topo.tiles_x(), topo.tiles_y());
    }
    if (!adjacent(link.a, link.b)) {
      return strprintf("%s %d,%d-%d,%d does not name adjacent tiles", kind,
                       link.a.x, link.a.y, link.b.x, link.b.y);
    }
    return std::nullopt;
  };
  for (const SlowLink& f : spec.slow_links) {
    if (auto err = check_link(f.link, "slowlink")) return err;
    if (!(f.factor >= 1.0)) {
      return strprintf("slowlink factor %g must be >= 1", f.factor);
    }
  }
  for (const LinkRef& link : spec.dead_links) {
    if (auto err = check_link(link, "deadlink")) return err;
  }
  if (!spec.dead_links.empty()) {
    const std::vector<int> dist =
        bfs_dist(topo, dead_keys(spec), TileCoord{0, 0});
    if (std::any_of(dist.begin(), dist.end(),
                    [](int d) { return d < 0; })) {
      return std::string("dead links disconnect the mesh");
    }
  }
  return std::nullopt;
}

FaultModel::FaultModel(FaultSpec spec, const Topology& topo)
    : spec_(std::move(spec)), topo_(&topo) {
  // Semantic validation is a precondition: malformed specs must fail loudly
  // (the faults tier death-tests each clause of this check).
  SCC_EXPECTS(!FaultModel::check(spec_, topo).has_value());

  core_factor_.assign(static_cast<std::size_t>(topo.num_cores()), 1.0);
  for (const Straggler& f : spec_.stragglers) {
    core_factor_[static_cast<std::size_t>(f.core)] *= f.factor;
  }
  for (const Dvfs& f : spec_.dvfs) {
    core_factor_[static_cast<std::size_t>(f.core)] *= f.divisor;
  }
  for (const SlowLink& f : spec_.slow_links) {
    // Both directions of the physical channel degrade; repeated clauses on
    // the same link compose multiplicatively.
    for (const Key key :
         {key_of(f.link.a, f.link.b), key_of(f.link.b, f.link.a)}) {
      auto [it, inserted] = link_factor_.emplace(key, f.factor);
      if (!inserted) it->second *= f.factor;
    }
  }

  // Route table: one static minimal route per (tile, tile) pair. Healthy
  // mesh: exactly the XY route (so hop counts, traffic accounting and the
  // committed baselines are unchanged by factor-only specs). Dead links:
  // walk the BFS distance field toward the destination, preferring
  // neighbours in the fixed enumeration order on ties.
  const std::set<Key> dead = dead_keys(spec_);
  const int tiles = topo.num_tiles();
  routes_.resize(static_cast<std::size_t>(tiles) *
                 static_cast<std::size_t>(tiles));
  weighted_hops_.assign(routes_.size(), 0.0);
  for (TileId to = 0; to < tiles; ++to) {
    const TileCoord dst = topo.coord_of_tile(to);
    std::vector<int> dist;
    if (!dead.empty()) dist = bfs_dist(topo, dead, dst);
    for (TileId from = 0; from < tiles; ++from) {
      std::vector<LinkId>& route = routes_[pair_index(from, to)];
      if (dead.empty()) {
        // Delegate to the XY router via any core on each tile.
        route = topo.route(from * topo.cores_per_tile(),
                           to * topo.cores_per_tile());
      } else {
        TileCoord cur = topo.coord_of_tile(from);
        while (tile_id(topo, cur) != to) {
          const int d = dist[static_cast<std::size_t>(tile_id(topo, cur))];
          SCC_ASSERT(d > 0);  // connectivity was checked above
          for (const TileCoord next : neighbours(cur)) {
            if (!in_mesh(topo, next) || dead.count(key_of(cur, next)) != 0) {
              continue;
            }
            if (dist[static_cast<std::size_t>(tile_id(topo, next))] == d - 1) {
              route.push_back({cur, next});
              cur = next;
              break;
            }
          }
        }
      }
      double weight = 0.0;
      for (const LinkId& link : route) weight += link_factor(link);
      weighted_hops_[pair_index(from, to)] = weight;
    }
  }
}

double FaultModel::link_factor(const LinkId& link) const {
  const auto it = link_factor_.find(key_of(link.from, link.to));
  return it == link_factor_.end() ? 1.0 : it->second;
}

const std::vector<LinkId>& FaultModel::route(noc::CoreId a,
                                             noc::CoreId b) const {
  return routes_[pair_index(topo_->tile_of(a), topo_->tile_of(b))];
}

double FaultModel::weighted_hops(noc::CoreId a, noc::CoreId b) const {
  return weighted_hops_[pair_index(topo_->tile_of(a), topo_->tile_of(b))];
}

double FaultModel::weighted_hops_to(noc::CoreId core,
                                    noc::TileCoord router) const {
  SCC_EXPECTS(in_mesh(*topo_, router));
  return weighted_hops_[pair_index(topo_->tile_of(core),
                                   tile_id(*topo_, router))];
}

}  // namespace scc::faults
