// FaultModel: a FaultSpec compiled against one concrete mesh.
//
// Construction validates the spec with SCC_EXPECTS contract checks (core
// ids in range, factors >= 1, link clauses name adjacent in-mesh tiles,
// dead links leave the tile graph connected) and precomputes:
//
//   - per-core slowdown factors (straggler factor x DVFS divisor, 1.0 when
//     the core is healthy), applied by mem::LatencyCalculator to every
//     core-clock charge of that core;
//   - per-directed-link latency multipliers, applied to the per-hop mesh
//     cycles of every transfer crossing the link (and to its service time
//     in the optional contention model);
//   - static reroutes around dead links: one minimal route per (tile, tile)
//     pair in the surviving link graph, chosen by a deterministic BFS
//     (fixed +x, -x, +y, -y neighbour preference), so routing is a pure
//     function of (spec, topology) -- the same degraded machine every run,
//     every seed, every stack.
//
// Without dead links the routes are exactly Topology::route (XY), so a spec
// that only slows things down perturbs latencies but never paths. All
// queries are const and the model is immutable after construction:
// injecting faults never adds a source of nondeterminism (DESIGN.md §13).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_spec.hpp"
#include "noc/topology.hpp"

namespace scc::faults {

class FaultModel {
 public:
  /// Compiles `spec` against `topo`. Precondition (SCC_EXPECTS): the spec
  /// is semantically valid for this mesh -- see check().
  FaultModel(FaultSpec spec, const noc::Topology& topo);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Combined slowdown of one core's clock (straggler x DVFS); 1.0 when
  /// healthy. Every core-cycle charge of the core is multiplied by this.
  [[nodiscard]] double core_factor(int core) const {
    SCC_EXPECTS(core >= 0 &&
                core < static_cast<int>(core_factor_.size()));
    return core_factor_[static_cast<std::size_t>(core)];
  }

  /// Latency multiplier of one directed link; 1.0 when healthy.
  [[nodiscard]] double link_factor(const noc::LinkId& link) const;

  /// True when the spec kills at least one link (routes differ from XY).
  [[nodiscard]] bool rerouted() const { return !spec_.dead_links.empty(); }

  /// The static route between two cores' routers in the surviving link
  /// graph (empty when both cores share a tile). Identical to
  /// Topology::route when no link is dead.
  [[nodiscard]] const std::vector<noc::LinkId>& route(noc::CoreId a,
                                                      noc::CoreId b) const;

  /// Sum of link_factor over route(a, b): the effective hop count of the
  /// degraded path. Equals the Manhattan hop count on a healthy mesh.
  [[nodiscard]] double weighted_hops(noc::CoreId a, noc::CoreId b) const;

  /// Same, between a core's tile and an arbitrary router coordinate (used
  /// for the path to a memory controller's attach point).
  [[nodiscard]] double weighted_hops_to(noc::CoreId core,
                                        noc::TileCoord router) const;

  /// Non-aborting validation: the first problem with `spec` on `topo`, or
  /// nullopt when the spec is valid. Samplers (perturb_soak) and CLI
  /// front-ends use this; the constructor enforces the same conditions
  /// with SCC_EXPECTS.
  [[nodiscard]] static std::optional<std::string> check(
      const FaultSpec& spec, const noc::Topology& topo);

 private:
  using TileId = noc::TileId;
  [[nodiscard]] std::size_t pair_index(TileId a, TileId b) const {
    return static_cast<std::size_t>(a) *
               static_cast<std::size_t>(topo_->num_tiles()) +
           static_cast<std::size_t>(b);
  }

  FaultSpec spec_;
  const noc::Topology* topo_;
  std::vector<double> core_factor_;
  /// Both directions of every slow link, keyed (from.x, from.y, to.x, to.y).
  std::map<std::tuple<int, int, int, int>, double> link_factor_;
  /// Precomputed per (tile, tile) pair: minimal surviving route and its
  /// factor-weighted length.
  std::vector<std::vector<noc::LinkId>> routes_;
  std::vector<double> weighted_hops_;
};

}  // namespace scc::faults
