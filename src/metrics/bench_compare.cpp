#include "metrics/bench_compare.hpp"

#include <cmath>
#include <map>
#include <ostream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace scc::metrics {

namespace {

/// Stable row-key rendering: numbers without trailing noise, strings as-is.
std::string key_repr(const JsonValue& v) {
  if (v.is_number()) return strprintf("%.17g", v.as_number());
  if (v.is_string()) return v.as_string();
  return "?";
}

/// Validates the envelope and returns the rows; appends regressions (and
/// returns nullptr) when the document is not a well-formed bench file.
const JsonValue::Array* bench_rows(const JsonValue& doc, const char* side,
                                   CompareOutcome& out) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "scc-bench-v1") {
    out.regressions.push_back(
        strprintf("%s: not an scc-bench-v1 document", side));
    return nullptr;
  }
  const JsonValue* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    out.regressions.push_back(strprintf("%s: missing rows array", side));
    return nullptr;
  }
  return &rows->as_array();
}

std::string pick_key_column(const JsonValue::Array& rows) {
  if (rows.empty() || !rows.front().is_object()) return "";
  const auto& first = rows.front().as_object();
  if (first.contains("elements")) return "elements";
  return first.empty() ? "" : first.begin()->first;
}

/// Gates the optional "histograms" block: a two-level object
/// histograms.<variant>.<field> of latency-quantile numbers. Always
/// two-sided -- a tail quantile drifting low is as suspicious as one
/// drifting high. Baseline without the block gates nothing; baseline with
/// it and current without it is a coverage regression.
void compare_histograms(const JsonValue& baseline, const JsonValue& current,
                        const CompareOptions& options, CompareOutcome& out) {
  const JsonValue* base_h = baseline.find("histograms");
  if (base_h == nullptr || !base_h->is_object()) return;
  const JsonValue* cur_h = current.find("histograms");
  if (cur_h == nullptr || !cur_h->is_object()) {
    out.regressions.emplace_back(
        "histograms block present in baseline but missing from current run "
        "(run with --hist)");
    return;
  }
  for (const auto& [variant, base_fields] : base_h->as_object()) {
    if (!base_fields.is_object()) continue;
    const JsonValue* cur_fields = cur_h->find(variant);
    if (cur_fields == nullptr || !cur_fields->is_object()) {
      out.regressions.push_back(strprintf(
          "histogram %s present in baseline but missing from current run",
          variant.c_str()));
      continue;
    }
    for (const auto& [field, base_cell] : base_fields.as_object()) {
      if (!base_cell.is_number()) continue;
      const double base = base_cell.as_number();
      const JsonValue* cur_cell = cur_fields->find(field);
      if (cur_cell == nullptr || !cur_cell->is_number()) {
        out.regressions.push_back(strprintf(
            "histogram %s: field %s missing from current run",
            variant.c_str(), field.c_str()));
        continue;
      }
      const double cur = cur_cell->as_number();
      ++out.values_compared;
      const double slack = options.rel_tol * std::fabs(base) + options.abs_tol;
      if (cur > base + slack || cur < base - slack) {
        out.regressions.push_back(strprintf(
            "histogram %s: %s drifted: baseline %.4f, current %.4f "
            "(%+.2f%%, tolerance %.2f%%)",
            variant.c_str(), field.c_str(), base, cur,
            base != 0.0 ? 100.0 * (cur - base) / std::fabs(base) : 0.0,
            100.0 * options.rel_tol));
      }
    }
  }
}

}  // namespace

CompareOutcome compare_bench(const JsonValue& baseline,
                             const JsonValue& current,
                             const CompareOptions& options,
                             const std::string& key_column) {
  CompareOutcome out;
  const JsonValue::Array* base_rows = bench_rows(baseline, "baseline", out);
  const JsonValue::Array* cur_rows = bench_rows(current, "current", out);
  if (base_rows == nullptr || cur_rows == nullptr) return out;

  const std::string key =
      key_column.empty() ? pick_key_column(*base_rows) : key_column;
  if (key.empty()) {
    if (!base_rows->empty()) {
      out.regressions.emplace_back("baseline: cannot determine key column");
    }
    return out;  // empty baseline: nothing gated
  }

  std::map<std::string, const JsonValue::Object*> cur_by_key;
  for (const JsonValue& row : *cur_rows) {
    if (!row.is_object()) continue;
    const JsonValue* k = row.find(key);
    if (k != nullptr) cur_by_key[key_repr(*k)] = &row.as_object();
  }

  std::size_t matched = 0;
  for (const JsonValue& row : *base_rows) {
    if (!row.is_object()) continue;
    const JsonValue* k = row.find(key);
    if (k == nullptr) continue;
    const std::string row_key = key_repr(*k);
    const auto found = cur_by_key.find(row_key);
    if (found == cur_by_key.end()) {
      out.regressions.push_back(strprintf(
          "row %s=%s present in baseline but missing from current run",
          key.c_str(), row_key.c_str()));
      continue;
    }
    ++matched;
    const JsonValue::Object& cur_row = *found->second;
    for (const auto& [column, base_cell] : row.as_object()) {
      if (column == key || !base_cell.is_number()) continue;
      const double base = base_cell.as_number();
      const auto cur_it = cur_row.find(column);
      if (cur_it == cur_row.end() || !cur_it->second.is_number()) {
        out.regressions.push_back(
            strprintf("row %s=%s: column %s missing from current run",
                      key.c_str(), row_key.c_str(), column.c_str()));
        continue;
      }
      const double cur = cur_it->second.as_number();
      ++out.values_compared;
      const double slack =
          options.rel_tol * std::fabs(base) + options.abs_tol;
      const auto describe = [&](const char* verdict) {
        return strprintf("row %s=%s: %s %s: baseline %.4f, current %.4f "
                         "(%+.2f%%, tolerance %.2f%%)",
                         key.c_str(), row_key.c_str(), column.c_str(),
                         verdict, base, cur,
                         base != 0.0 ? 100.0 * (cur - base) / std::fabs(base)
                                     : 0.0,
                         100.0 * options.rel_tol);
      };
      if (cur > base + slack) {
        out.regressions.push_back(describe("regressed"));
      } else if (cur < base - slack) {
        if (options.two_sided) {
          out.regressions.push_back(describe("drifted low"));
        } else {
          out.notes.push_back(describe("improved"));
        }
      }
    }
  }
  if (cur_by_key.size() > matched) {
    out.notes.push_back(strprintf(
        "current run has %zu row(s) not in the baseline (not gated)",
        cur_by_key.size() - matched));
  }
  compare_histograms(baseline, current, options, out);
  return out;
}

CompareOutcome compare_bench_files(const std::string& baseline,
                                   const std::string& current,
                                   const CompareOptions& options,
                                   const std::string& key_column) {
  CompareOutcome out;
  JsonValue base_doc;
  JsonValue cur_doc;
  try {
    base_doc = parse_json_file(baseline);
    cur_doc = parse_json_file(current);
  } catch (const std::runtime_error& e) {
    out.regressions.emplace_back(e.what());  // fail closed on corrupt input
    return out;
  }
  return compare_bench(base_doc, cur_doc, options, key_column);
}

void print_outcome(const CompareOutcome& outcome, std::ostream& os) {
  for (const std::string& note : outcome.notes) os << "note: " << note << '\n';
  for (const std::string& r : outcome.regressions) {
    os << "REGRESSION: " << r << '\n';
  }
  os << (outcome.ok() ? "OK" : "FAIL") << ": " << outcome.values_compared
     << " value(s) compared, " << outcome.regressions.size()
     << " regression(s)\n";
}

}  // namespace scc::metrics
