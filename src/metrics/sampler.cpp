#include "metrics/sampler.hpp"

#include <ostream>
#include <utility>

#include "common/contracts.hpp"
#include "metrics/json.hpp"
#include "sim/engine.hpp"

namespace scc::metrics {

void TimeSeries::write_csv(std::ostream& os) const {
  os << "t_fs";
  for (const auto& c : columns) os << ',' << c;
  os << '\n';
  for (const auto& row : rows) {
    os << row.t.femtoseconds();
    for (const auto v : row.values) os << ',' << v;
    os << '\n';
  }
}

void TimeSeries::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"scc-timeseries-v1\",\n";
  os << "  \"label\": \"" << json_escape(label) << "\",\n";
  os << "  \"interval_fs\": " << interval.femtoseconds() << ",\n";
  os << "  \"decimations\": " << decimations << ",\n";
  os << "  \"ticks\": " << ticks << ",\n";
  os << "  \"columns\": [\"t_fs\"";
  for (const auto& c : columns) os << ", \"" << json_escape(c) << '"';
  os << "],\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    [" << rows[i].t.femtoseconds();
    for (const auto v : rows[i].values) os << ", " << v;
    os << ']';
  }
  os << "\n  ]\n}\n";
}

Sampler::Sampler(SimTime interval, std::size_t max_rows)
    : max_rows_(max_rows) {
  SCC_EXPECTS(max_rows >= 2);
  series_.interval = interval;
}

void Sampler::add_column(std::string name,
                         std::function<std::uint64_t()> read) {
  SCC_EXPECTS(series_.rows.empty() && series_.ticks == 0);
  SCC_EXPECTS(static_cast<bool>(read));
  columns_.push_back(Column{std::move(name), std::move(read)});
}

void Sampler::attach(sim::Engine& engine) {
  SCC_EXPECTS(series_.interval > SimTime::zero());
  engine.set_probe(series_.interval, [this](SimTime t) { tick(t); });
}

void Sampler::tick(SimTime t) {
  const std::uint64_t index = tick_index_++;
  ++series_.ticks;
  if (index % stride_ != 0) return;
  TimeSeries::Row row;
  row.t = t;
  row.values.reserve(columns_.size());
  for (const auto& c : columns_) row.values.push_back(c.read());
  series_.rows.push_back(std::move(row));
  if (series_.rows.size() < max_rows_) return;
  // Deterministic decimation: keep rows at even positions (tick indices
  // divisible by the doubled stride) and accept half as often from now on.
  // Memory stays bounded by max_rows and the surviving rows depend only on
  // the tick count, not on when the overflow happened.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < series_.rows.size(); i += 2) {
    // Guard i == kept (always true for row 0): self-move-assignment would
    // leave the row's values vector empty.
    if (i != kept) series_.rows[kept] = std::move(series_.rows[i]);
    ++kept;
  }
  series_.rows.resize(kept);
  stride_ *= 2;
  ++series_.decimations;
}

SimTime Sampler::effective_interval() const {
  const std::uint64_t fs = series_.interval.femtoseconds();
  const std::uint64_t factor = stride_;
  if (fs != 0 && factor > SimTime::max().femtoseconds() / fs) {
    return SimTime::max();
  }
  return SimTime{fs * factor};
}

TimeSeries Sampler::take() {
  TimeSeries out = std::move(series_);
  out.columns.clear();
  out.columns.reserve(columns_.size());
  for (const auto& c : columns_) out.columns.push_back(c.name);
  series_ = TimeSeries{};
  series_.label = out.label;
  series_.interval = out.interval;
  stride_ = 1;
  tick_index_ = 0;
  return out;
}

}  // namespace scc::metrics
