#include "metrics/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "common/contracts.hpp"
#include "metrics/json.hpp"

namespace scc::metrics {

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // The value's top kSubBucketBits + 1 bits select (power-of-two range,
  // linear sub-bucket); ranges below kSubBuckets were handled exactly above.
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const std::uint64_t sub = (value >> shift) - kSubBuckets;
  return static_cast<std::size_t>(kSubBuckets +
                                  static_cast<std::uint64_t>(shift) *
                                      kSubBuckets +
                                  sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint64_t shift = (index - kSubBuckets) / kSubBuckets;
  const std::uint64_t sub = (index - kSubBuckets) % kSubBuckets;
  return (kSubBuckets + sub) << shift;
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint64_t shift = (index - kSubBuckets) / kSubBuckets;
  return bucket_lower(index) + ((std::uint64_t{1} << shift) - 1);
}

void Histogram::record(std::uint64_t value) {
  const std::size_t index = bucket_index(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  sum_ += other.sum_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

std::uint64_t Histogram::min() const {
  SCC_EXPECTS(count_ > 0);
  return min_;
}

std::uint64_t Histogram::max() const {
  SCC_EXPECTS(count_ > 0);
  return max_;
}

double Histogram::mean() const {
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::value_at_quantile(double q) const {
  SCC_EXPECTS(count_ > 0);
  SCC_EXPECTS(q >= 0.0 && q <= 1.0);
  // Target rank in [1, count]: the ceil makes p0 the first value and p100
  // the last, and keeps the walk pure integer comparison after this line.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  // The extreme ranks are tracked exactly by record(); never report a
  // bucket estimate for them. rank == count covers every q above
  // (count - 1) / count, so a tail quantile asked of a small sample (p999
  // of fewer than 1000 values) is the true maximum, not the midpoint of
  // the maximum's bucket -- the midpoint systematically under-reported the
  // tail by up to half a bucket width (~1.6%), and broke the documented
  // "q = 1 -> max() exactly" contract whenever the maximum shared its
  // bucket with smaller samples.
  if (rank <= 1) return min_;
  if (rank >= count_) return max_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t lower = bucket_lower(i);
      const std::uint64_t upper = bucket_upper(i);
      const std::uint64_t in_bucket = buckets_[i];
      const std::uint64_t pos = rank - (seen - in_bucket);  // 1..in_bucket
      // Rank-interpolate within the bucket, spreading its samples evenly
      // over [lower, upper] (the type-7 convention applied to the only
      // information the bucket retains). A lone sample still gets the
      // midpoint -- the minimax estimate of its position. Interpolation in
      // double: bucket widths near 2^63 would overflow the integer
      // product, and the IEEE result is platform-deterministic.
      const std::uint64_t est =
          in_bucket == 1
              ? lower + (upper - lower) / 2
              : lower + static_cast<std::uint64_t>(
                            static_cast<double>(upper - lower) *
                            static_cast<double>(pos - 1) /
                            static_cast<double>(in_bucket - 1));
      return std::clamp(est, min_, max_);
    }
  }
  return max_;  // unreachable when counts are consistent
}

void Histogram::write_json_us(std::ostream& os) const {
  constexpr double kFsPerUs = 1e9;
  const auto us = [&](std::uint64_t fs) {
    return json_number(static_cast<double>(fs) / kFsPerUs);
  };
  os << "{\"count\": " << count_;
  if (count_ == 0) {
    // No samples: every derived statistic is undefined; json_number turns
    // the NaNs into null, keeping the document well-formed.
    os << ", \"min_us\": null, \"mean_us\": "
       << json_number(mean())
       << ", \"p50_us\": null, \"p90_us\": null, \"p99_us\": null"
       << ", \"p999_us\": null, \"max_us\": null}";
    return;
  }
  os << ", \"min_us\": " << us(min_)
     << ", \"mean_us\": " << json_number(mean() / kFsPerUs)
     << ", \"p50_us\": " << us(value_at_quantile(0.50))
     << ", \"p90_us\": " << us(value_at_quantile(0.90))
     << ", \"p99_us\": " << us(value_at_quantile(0.99))
     << ", \"p999_us\": " << us(value_at_quantile(0.999))
     << ", \"max_us\": " << us(max_) << '}';
}

}  // namespace scc::metrics
