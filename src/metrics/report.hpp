// Self-contained HTML observability report.
//
// bench/obs_report fuses the three observability artifacts -- flight
// recorder timeseries (Sampler), tail-latency histograms (Histogram), and
// critical-path blame (analyze_blame) -- into one HTML file a person can
// open with no toolchain: all styling is inline CSS and every chart is an
// inline SVG (sparklines per sampled column, a mesh-link utilization
// heatmap from "noc/link/<name>/busy_fs" registry paths).
//
// Determinism: the writer emits no timestamps, hostnames or environment --
// the bytes are a pure function of the inputs, so the report is
// byte-identical across --jobs values (pinned by the obs tier's golden
// smoke test).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "metrics/histogram.hpp"
#include "metrics/registry.hpp"
#include "metrics/sampler.hpp"

namespace scc::metrics {

/// One report section per collective variant; any vector may be empty
/// (sections render only for what is present).
struct ObsReport {
  std::string title;
  /// (variant label, sampled series) in presentation order.
  std::vector<std::pair<std::string, TimeSeries>> timeseries;
  /// (variant label, latency histogram in femtoseconds).
  std::vector<std::pair<std::string, Histogram>> histograms;
  /// (variant label, preformatted blame text from BlameReport::print).
  std::vector<std::pair<std::string, std::string>> blame_texts;
  /// (variant label, final registry snapshot) -- source of the link heatmap
  /// and the summary counter table.
  std::vector<std::pair<std::string, MetricsRegistry>> metrics;

  void write_html(std::ostream& os) const;
};

}  // namespace scc::metrics
