#include "metrics/registry.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/string_util.hpp"
#include "metrics/json.hpp"

namespace scc::metrics {

const Metric* MetricsRegistry::find(std::string_view path) const {
  const auto it = entries_.find(std::string(path));
  return it == entries_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::value_or(std::string_view path,
                                        std::uint64_t fallback) const {
  const Metric* m = find(path);
  return m == nullptr ? fallback : m->value;
}

void MetricsRegistry::absorb(const MetricsRegistry& other,
                             const std::string& prefix) {
  for (const auto& [path, metric] : other.entries_) {
    entries_[prefix + path] = metric;
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"scc-metrics-v1\",\n  \"label\": \""
     << json_escape(label_) << "\",\n  \"metrics\": {";
  bool first = true;
  for (const auto& [path, m] : entries_) {
    if (!first) os << ',';
    first = false;
    os << "\n    \"" << json_escape(path) << "\": {\"unit\": \""
       << unit_name(m.unit) << "\", \"invariant\": "
       << (m.invariant ? "true" : "false") << ", \"value\": " << m.value
       << '}';
  }
  os << "\n  }\n}\n";
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_json(out);
}

void MetricsRegistry::print(std::ostream& os) const {
  std::size_t width = 0;
  for (const auto& [path, m] : entries_) width = std::max(width, path.size());
  if (!label_.empty()) os << "metrics for " << label_ << ":\n";
  for (const auto& [path, m] : entries_) {
    os << "  " << path << std::string(width - path.size() + 2, ' ')
       << strprintf("%20llu  %-5s  %s\n",
                    static_cast<unsigned long long>(m.value),
                    std::string(unit_name(m.unit)).c_str(),
                    m.invariant ? "invariant" : "variant");
  }
}

std::vector<std::string> MetricsRegistry::diff_invariant(
    const MetricsRegistry& baseline, const MetricsRegistry& other) {
  std::vector<std::string> out;
  for (const auto& [path, m] : baseline.entries_) {
    if (!m.invariant) continue;
    const Metric* o = other.find(path);
    if (o == nullptr) {
      out.push_back(strprintf("invariant metric %s missing from other side",
                              path.c_str()));
      continue;
    }
    if (o->value != m.value || o->unit != m.unit) {
      out.push_back(strprintf(
          "invariant metric %s drifted: baseline %llu %s vs other %llu %s",
          path.c_str(), static_cast<unsigned long long>(m.value),
          std::string(unit_name(m.unit)).c_str(),
          static_cast<unsigned long long>(o->value),
          std::string(unit_name(o->unit)).c_str()));
    }
  }
  for (const auto& [path, m] : other.entries_) {
    if (!m.invariant) continue;
    if (baseline.find(path) == nullptr) {
      out.push_back(strprintf("invariant metric %s missing from baseline",
                              path.c_str()));
    }
  }
  return out;
}

}  // namespace scc::metrics
