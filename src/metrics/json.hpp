// Minimal JSON value + recursive-descent parser, just big enough for the
// regression gate: bench/compare reads "scc-bench-v1" and "scc-metrics-v1"
// files back in. No external dependency; strict enough to reject the
// truncated/garbled files a crashed bench run could leave behind.
//
// Numbers are held as double (the bench values are microsecond latencies
// and counters far below 2^53, so round-tripping is exact in practice).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace scc::metrics {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}  // NOLINT(google-explicit-constructor)
  explicit JsonValue(bool b) : v_(b) {}
  explicit JsonValue(double d) : v_(d) {}
  explicit JsonValue(std::string s) : v_(std::move(s)) {}
  explicit JsonValue(Array a) : v_(std::move(a)) {}
  explicit JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  // Typed accessors; SCC_EXPECTS-style hard failure on kind mismatch would
  // drag contracts.hpp in -- std::get already throws std::bad_variant_access,
  // which compare surfaces as a parse failure.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(v_);
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    if (!is_object()) return nullptr;
    const auto& obj = as_object();
    const auto it = obj.find(std::string(key));
    return it == obj.end() ? nullptr : &it->second;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws std::runtime_error with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Reads and parses a whole file; throws std::runtime_error on open or
/// parse failure (the message names the path).
[[nodiscard]] JsonValue parse_json_file(const std::string& path);

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes). Handles quotes, backslash and control characters.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Renders a double as a JSON number token. Non-finite values (NaN and
/// +/-Inf, typically from zero-division in derived rates) have no JSON
/// representation and would corrupt the document; they render as "null".
/// Every double-valued writer in this library must go through this.
[[nodiscard]] std::string json_number(double v);

}  // namespace scc::metrics
