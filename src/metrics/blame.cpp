#include "metrics/blame.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <tuple>

#include "common/contracts.hpp"
#include "common/string_util.hpp"

namespace scc::metrics {

namespace {

/// Contention queueing charged inside one interval, per causing link.
struct LinkPortion {
  std::string_view link;
  SimTime extra;
};

struct Interval {
  SimTime t0;
  SimTime t1;
  std::string_view lane;
  const std::string* detail;         // recorder-owned
  std::vector<LinkPortion> queueing;  // nonzero link-queue portions
};

/// "flag c:i" / "set c:i" -> "c:i"; empty when not of that shape.
std::string_view flag_key(const std::string& detail, std::string_view kind) {
  if (detail.size() <= kind.size() + 1) return {};
  if (std::string_view(detail).substr(0, kind.size()) != kind) return {};
  if (detail[kind.size()] != ' ') return {};
  return std::string_view(detail).substr(kind.size() + 1);
}

struct SetEvent {
  SimTime end;  // deposit lands at the charge end
  int core;
};

class Walker {
 public:
  Walker(const trace::Recorder& trace, int run) {
    // Pass 1: partition intervals per core, pairing each with the
    // link-occupancy windows its transfer recorded just before it (the
    // occupy() call and the interval record happen synchronously inside
    // one coroutine step, so in the stream the windows directly precede
    // their charge).
    std::vector<LinkPortion> pending;
    for (const trace::Event& ev : trace.events()) {
      if (ev.run != run) continue;
      switch (ev.kind) {
        case trace::EventKind::kLinkWindow:
          if (ev.extra > SimTime::zero()) {
            pending.push_back(LinkPortion{ev.lane, ev.extra});
          }
          break;
        case trace::EventKind::kInterval: {
          if (ev.pid < 0) break;
          if (ev.t1 <= ev.t0) {
            // Zero-length (e.g. an already-satisfied flag wait): carries no
            // blame and would stall the backward walk.
            pending.clear();
            break;
          }
          if (static_cast<std::size_t>(ev.pid) >= per_core_.size()) {
            per_core_.resize(static_cast<std::size_t>(ev.pid) + 1);
          }
          per_core_[static_cast<std::size_t>(ev.pid)].push_back(Interval{
              ev.t0, ev.t1, ev.lane, &ev.detail, std::move(pending)});
          pending.clear();
          const std::string_view set = flag_key(ev.detail, "set");
          if (!set.empty()) {
            sets_[std::string(set)].push_back(SetEvent{ev.t1, ev.pid});
          }
          break;
        }
        case trace::EventKind::kInstant: break;
      }
    }
    for (auto& ivs : per_core_) {
      std::sort(ivs.begin(), ivs.end(),
                [](const Interval& a, const Interval& b) {
                  return a.t0 < b.t0;
                });
    }
    for (auto& [key, sets] : sets_) {
      std::sort(sets.begin(), sets.end(),
                [](const SetEvent& a, const SetEvent& b) {
                  return a.end < b.end;
                });
    }
  }

  BlameReport walk(int terminal_core, SimTime begin, SimTime end) {
    SCC_EXPECTS(end >= begin);
    BlameReport report;
    report.window_begin = begin;
    report.window_end = end;

    int core = terminal_core;
    SimTime t = end;
    while (t > begin) {
      const Interval* iv = covering_or_before(core, t);
      if (iv == nullptr) {
        blame("idle", core, {}, t - begin);
        break;
      }
      if (iv->t1 < t) {  // gap: the core ran nothing in (iv->t1, t]
        const SimTime lo = std::max(iv->t1, begin);
        blame("idle", core, {}, t - lo);
        t = lo;
        continue;
      }
      // iv covers (iv->t0, t]; clip to the window.
      const SimTime lo = std::max(iv->t0, begin);
      const SimTime seg = t - lo;
      const std::string_view waited_on = flag_key(*iv->detail, "flag");
      if (!waited_on.empty()) {
        // Real rcce_wait_until wait: the waiter is late because it blocked
        // here. Charge the whole span, then ask why the setter took until
        // iv->t1 -- continue on its timeline from the moment the wait began.
        blame(iv->lane, core, {}, seg);
        if (const SetEvent* set = matching_set(waited_on, iv->t1);
            set != nullptr && set->core != core) {
          core = set->core;
          ++report.edges_followed;
        }
        t = lo;
        continue;
      }
      // Plain charge: split out the contention-queueing portion to the
      // links that caused it; the rest belongs to the phase itself.
      SimTime link_sum;
      for (const LinkPortion& p : iv->queueing) link_sum += p.extra;
      SimTime assigned;
      if (link_sum > SimTime::zero()) {
        const std::uint64_t budget =
            std::min(link_sum, seg).femtoseconds();  // window-begin clip
        for (const LinkPortion& p : iv->queueing) {
          // Apportion by each link's share of the queueing; the truncation
          // remainder stays with the phase bucket, keeping the sum exact.
          auto share = static_cast<std::uint64_t>(
              static_cast<long double>(p.extra.femtoseconds()) *
              static_cast<long double>(budget) /
              static_cast<long double>(link_sum.femtoseconds()));
          share = std::min(share, budget - assigned.femtoseconds());
          if (share == 0) continue;
          blame("link-queue", -1, p.link, SimTime{share});
          assigned += SimTime{share};
        }
      }
      blame(iv->lane, core, {}, seg - assigned);
      t = lo;
    }

    for (auto& [key, time] : buckets_) {
      const auto& [kind, bucket_core, link] = key;
      report.components.push_back(
          BlameComponent{kind, bucket_core, link, time});
    }
    std::sort(report.components.begin(), report.components.end(),
              [](const BlameComponent& a, const BlameComponent& b) {
                return a.time > b.time;
              });
    return report;
  }

 private:
  /// Latest interval on `core` starting strictly before `t` (it either
  /// covers t or precedes a gap); nullptr when the core has none.
  const Interval* covering_or_before(int core, SimTime t) const {
    if (core < 0 || static_cast<std::size_t>(core) >= per_core_.size()) {
      return nullptr;
    }
    const auto& ivs = per_core_[static_cast<std::size_t>(core)];
    const auto it = std::upper_bound(
        ivs.begin(), ivs.end(), t,
        [](SimTime value, const Interval& iv) { return value <= iv.t0; });
    return it == ivs.begin() ? nullptr : &*std::prev(it);
  }

  /// The deposit that ended a wait finishing at `wakeup`: the "set" charge
  /// for that flag ending exactly then (under injected perturbation delays
  /// the wakeup can trail the deposit, hence latest-not-after).
  const SetEvent* matching_set(std::string_view key, SimTime wakeup) const {
    const auto it = sets_.find(std::string(key));
    if (it == sets_.end()) return nullptr;
    const auto& sets = it->second;
    const auto pos = std::upper_bound(
        sets.begin(), sets.end(), wakeup,
        [](SimTime value, const SetEvent& s) { return value < s.end; });
    return pos == sets.begin() ? nullptr : &*std::prev(pos);
  }

  void blame(std::string_view kind, int core, std::string_view link,
             SimTime time) {
    if (time == SimTime::zero()) return;
    buckets_[{std::string(kind), core, std::string(link)}] += time;
  }

  std::vector<std::vector<Interval>> per_core_;
  std::map<std::string, std::vector<SetEvent>> sets_;
  std::map<std::tuple<std::string, int, std::string>, SimTime> buckets_;
};

}  // namespace

std::string BlameComponent::where() const {
  if (!link.empty()) return "link " + link;
  if (core < 0) return "-";
  return strprintf("core %d", core);
}

SimTime BlameReport::attributed() const {
  SimTime sum;
  for (const BlameComponent& c : components) sum += c.time;
  return sum;
}

SimTime BlameReport::kind_total(std::string_view kind) const {
  SimTime sum;
  for (const BlameComponent& c : components) {
    if (c.kind == kind) sum += c.time;
  }
  return sum;
}

double BlameReport::kind_share(std::string_view kind) const {
  if (total() == SimTime::zero()) return 0.0;
  return static_cast<double>(kind_total(kind).femtoseconds()) /
         static_cast<double>(total().femtoseconds());
}

void BlameReport::print(std::ostream& os) const {
  os << strprintf(
      "blame report: window [%.3f us, %.3f us], end-to-end %.3f us, "
      "%llu wakeup edge(s) followed\n",
      window_begin.us(), window_end.us(), total().us(),
      static_cast<unsigned long long>(edges_followed));
  const double denom =
      std::max<double>(1.0, static_cast<double>(total().femtoseconds()));
  for (const BlameComponent& c : components) {
    os << strprintf(
        "  %6.2f%%  %-12s  %-18s  %.3f us\n",
        100.0 * static_cast<double>(c.time.femtoseconds()) / denom,
        c.kind.c_str(), c.where().c_str(), c.time.us());
  }
  os << strprintf("  attributed %.3f us of %.3f us\n", attributed().us(),
                  total().us());
}

BlameReport analyze_blame(const trace::Recorder& trace, int run,
                          int terminal_core, SimTime window_begin,
                          SimTime window_end) {
  return Walker(trace, run).walk(terminal_core, window_begin, window_end);
}

}  // namespace scc::metrics
