#include "metrics/report.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>

#include "common/string_util.hpp"

namespace scc::metrics {

namespace {

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Two-decimal fixed-point: enough resolution for a chart coordinate or a
/// microsecond latency, and short stable output (no %g exponent jumps).
std::string fp(double v) { return strprintf("%.2f", v); }

/// Linear white->red ramp for utilization shares in [0, 1].
std::string heat_color(double share) {
  share = std::clamp(share, 0.0, 1.0);
  const int r = 255;
  const int g = static_cast<int>(235.0 * (1.0 - share));
  const int b = static_cast<int>(225.0 * (1.0 - share));
  return strprintf("#%02x%02x%02x", r, g, b);
}

/// One column of a TimeSeries as an SVG sparkline (area under a polyline),
/// auto-scaled to the column's max value.
void write_sparkline(std::ostream& os, const TimeSeries& ts,
                     std::size_t column) {
  constexpr double kW = 600.0;
  constexpr double kH = 60.0;
  std::uint64_t peak = 0;
  for (const auto& row : ts.rows) peak = std::max(peak, row.values[column]);
  os << "<div class='spark'><span class='sparklabel'>"
     << html_escape(ts.columns[column]) << " (peak " << peak << ")</span>";
  os << "<svg width='" << static_cast<int>(kW) << "' height='"
     << static_cast<int>(kH) << "' viewBox='0 0 " << static_cast<int>(kW)
     << ' ' << static_cast<int>(kH) << "'>";
  if (ts.rows.size() >= 2 && peak > 0) {
    const SimTime t0 = ts.rows.front().t;
    const SimTime t1 = ts.rows.back().t;
    const double span =
        static_cast<double>(t1.femtoseconds() - t0.femtoseconds());
    std::string pts;
    pts.reserve(ts.rows.size() * 14 + 32);
    pts += fp(0.0) + ',' + fp(kH) + ' ';
    for (const auto& row : ts.rows) {
      const double x =
          span == 0.0
              ? 0.0
              : kW *
                    static_cast<double>(row.t.femtoseconds() -
                                        t0.femtoseconds()) /
                    span;
      const double y =
          kH - (kH - 2.0) * (static_cast<double>(row.values[column]) /
                             static_cast<double>(peak));
      pts += fp(x) + ',' + fp(y) + ' ';
    }
    pts += fp(kW) + ',' + fp(kH);
    os << "<polygon points='" << pts << "' fill='#cfe3f5' stroke='#2166ac'"
       << " stroke-width='1'/>";
  }
  os << "</svg></div>\n";
}

/// Mesh-link utilization heatmap: parses "noc/link/(fx,fy)->(tx,ty)/busy_fs"
/// registry paths and draws each directed link as a colored edge between
/// tile centers (offset sideways so the two directions don't overlap).
void write_link_heatmap(std::ostream& os, const MetricsRegistry& reg) {
  struct Link {
    int fx, fy, tx, ty;
    std::uint64_t busy;
  };
  std::vector<Link> links;
  int max_x = 0;
  int max_y = 0;
  std::uint64_t peak = 0;
  constexpr std::string_view kPrefix = "noc/link/";
  constexpr std::string_view kSuffix = "/busy_fs";
  for (const auto& [path, metric] : reg.entries()) {
    if (path.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (path.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (path.compare(path.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
        0) {
      continue;
    }
    const std::string name = path.substr(
        kPrefix.size(), path.size() - kPrefix.size() - kSuffix.size());
    Link l{};
    if (std::sscanf(name.c_str(), "(%d,%d)->(%d,%d)", &l.fx, &l.fy, &l.tx,
                    &l.ty) != 4) {
      continue;
    }
    l.busy = metric.value;
    max_x = std::max({max_x, l.fx, l.tx});
    max_y = std::max({max_y, l.fy, l.ty});
    peak = std::max(peak, l.busy);
    links.push_back(l);
  }
  if (links.empty()) return;
  constexpr double kTile = 90.0;
  constexpr double kPad = 30.0;
  const double w = kPad * 2 + kTile * (max_x + 1);
  const double h = kPad * 2 + kTile * (max_y + 1);
  // y grows upward in mesh coordinates; flip for SVG.
  const auto cx = [&](int x) { return kPad + kTile * x + kTile / 2; };
  const auto cy = [&](int y) { return h - (kPad + kTile * y + kTile / 2); };
  os << "<svg width='" << fp(w) << "' height='" << fp(h) << "' viewBox='0 0 "
     << fp(w) << ' ' << fp(h) << "'>\n";
  for (const auto& l : links) {
    const double share =
        peak == 0 ? 0.0
                  : static_cast<double>(l.busy) / static_cast<double>(peak);
    // Perpendicular offset separates the two directions of each edge.
    const double dx = static_cast<double>(l.tx - l.fx);
    const double dy = static_cast<double>(l.ty - l.fy);
    const double ox = dy * 6.0;
    const double oy = dx * 6.0;
    os << "<line x1='" << fp(cx(l.fx) + ox) << "' y1='" << fp(cy(l.fy) + oy)
       << "' x2='" << fp(cx(l.tx) + ox) << "' y2='" << fp(cy(l.ty) + oy)
       << "' stroke='" << heat_color(share) << "' stroke-width='8'>"
       << "<title>(" << l.fx << ',' << l.fy << ")-&gt;(" << l.tx << ','
       << l.ty << ") busy " << fp(static_cast<double>(l.busy) * 1e-9)
       << " us</title></line>\n";
  }
  for (int y = 0; y <= max_y; ++y) {
    for (int x = 0; x <= max_x; ++x) {
      os << "<rect x='" << fp(cx(x) - 18) << "' y='" << fp(cy(y) - 14)
         << "' width='36' height='28' rx='4' fill='#f0f0f0'"
         << " stroke='#888'/>\n";
      os << "<text x='" << fp(cx(x)) << "' y='" << fp(cy(y) + 4)
         << "' text-anchor='middle' font-size='11'>" << x << ',' << y
         << "</text>\n";
    }
  }
  os << "</svg>\n";
}

void write_histogram_table(
    std::ostream& os,
    const std::vector<std::pair<std::string, Histogram>>& histograms) {
  os << "<table><tr><th>variant</th><th>count</th><th>min us</th>"
     << "<th>mean us</th><th>p50 us</th><th>p90 us</th><th>p99 us</th>"
     << "<th>p999 us</th><th>max us</th></tr>\n";
  const auto us = [](std::uint64_t fs) {
    return fp(static_cast<double>(fs) * 1e-9);
  };
  for (const auto& [label, hist] : histograms) {
    os << "<tr><td>" << html_escape(label) << "</td><td>" << hist.count()
       << "</td>";
    if (hist.empty()) {
      os << "<td colspan='7'>no samples</td></tr>\n";
      continue;
    }
    os << "<td>" << us(hist.min()) << "</td><td>" << fp(hist.mean() * 1e-9)
       << "</td><td>" << us(hist.value_at_quantile(0.50)) << "</td><td>"
       << us(hist.value_at_quantile(0.90)) << "</td><td>"
       << us(hist.value_at_quantile(0.99)) << "</td><td>"
       << us(hist.value_at_quantile(0.999)) << "</td><td>" << us(hist.max())
       << "</td></tr>\n";
  }
  os << "</table>\n";
}

}  // namespace

void ObsReport::write_html(std::ostream& os) const {
  os << "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>\n<title>"
     << html_escape(title) << "</title>\n<style>\n"
     << "body{font-family:sans-serif;margin:24px;max-width:1000px}\n"
     << "h1{font-size:20px}h2{font-size:16px;border-bottom:1px solid #ccc;"
     << "padding-bottom:4px}h3{font-size:13px;margin:8px 0 2px}\n"
     << "table{border-collapse:collapse;font-size:12px}\n"
     << "td,th{border:1px solid #bbb;padding:3px 8px;text-align:right}\n"
     << "th{background:#eee}td:first-child,th:first-child{text-align:left}\n"
     << "pre{background:#f6f6f6;padding:8px;font-size:11px;overflow-x:auto}\n"
     << ".spark{margin:2px 0}.sparklabel{display:inline-block;width:260px;"
     << "font-size:11px;vertical-align:top}\n"
     << "</style></head><body>\n<h1>" << html_escape(title) << "</h1>\n";

  if (!histograms.empty()) {
    os << "<h2>Latency histograms</h2>\n";
    write_histogram_table(os, histograms);
  }

  for (const auto& [label, ts] : timeseries) {
    os << "<h2>Flight recorder: " << html_escape(label) << "</h2>\n";
    os << "<p class='meta'>" << ts.rows.size() << " samples, base interval "
       << fp(ts.interval.us()) << " us, " << ts.decimations
       << " decimation(s), " << ts.ticks << " tick(s)</p>\n";
    for (std::size_t c = 0; c < ts.columns.size(); ++c) {
      write_sparkline(os, ts, c);
    }
  }

  for (const auto& [label, reg] : metrics) {
    os << "<h2>Link utilization: " << html_escape(label) << "</h2>\n";
    write_link_heatmap(os, reg);
  }

  for (const auto& [label, text] : blame_texts) {
    os << "<h2>Critical-path blame: " << html_escape(label) << "</h2>\n";
    os << "<pre>" << html_escape(text) << "</pre>\n";
  }

  os << "</body></html>\n";
}

}  // namespace scc::metrics
