#include "metrics/collect.hpp"

#include "common/string_util.hpp"

namespace scc::metrics {

namespace {
constexpr bool kInvariant = true;  // volume-type: seed-invariant
constexpr bool kVariant = false;   // time-type: schedule-dependent
}  // namespace

void collect_machine(machine::SccMachine& machine, MetricsRegistry& out) {
  // --- engine (all time-type: counts depend on the interleaving) --------
  // Machine-level aggregates: on a serial machine exactly the single
  // engine's counters; on a partitioned machine summed over partitions
  // (worker-count-invariant, like everything else here).
  const sim::EngineStats eng = machine.engine_stats();
  out.set("engine/events_processed", machine.events_processed(),
          Unit::kCount, kVariant);
  out.set("engine/parks", eng.parks, Unit::kCount, kVariant);
  out.set("engine/notifies", eng.notifies, Unit::kCount, kVariant);
  out.set("engine/waiters_woken", eng.waiters_woken, Unit::kCount, kVariant);
  out.set("engine/perturb_delays", eng.perturb_delays, Unit::kCount,
          kVariant);
  out.set_time("engine/perturb_delay_total_fs", eng.perturb_delay_total,
               kVariant);

  // --- per core: profile phases, cache, MPB footprint -------------------
  for (int r = 0; r < machine.num_cores(); ++r) {
    const machine::CoreProfile& prof = machine.core(r).profile();
    for (int p = 0; p < static_cast<int>(machine::Phase::kCount); ++p) {
      const auto phase = static_cast<machine::Phase>(p);
      // Phase times are time-type: total wait time moves with the schedule.
      out.set_time(strprintf("core/%d/profile/%s_fs", r,
                             std::string(machine::phase_name(phase)).c_str()),
                   prof.get(phase), kVariant);
    }
    const mem::CacheStats& cache = machine.cache(r).stats();
    out.set(strprintf("core/%d/cache/hits", r), cache.hits, Unit::kCount,
            kInvariant);
    out.set(strprintf("core/%d/cache/misses", r), cache.misses, Unit::kCount,
            kInvariant);
    out.set(strprintf("core/%d/cache/writebacks", r), cache.writebacks,
            Unit::kCount, kInvariant);
    out.set(strprintf("core/%d/cache/uncached_writes", r),
            cache.uncached_writes, Unit::kCount, kInvariant);
    out.set(strprintf("core/%d/mpb/high_water_bytes", r),
            machine.mpb().high_water(r), Unit::kBytes, kInvariant);
  }

  // --- trace recorder health --------------------------------------------
  if (const trace::Recorder* rec = machine.trace()) {
    // A saturated recorder silently truncates the event stream; surfacing
    // the drop count here means a blame/export consumer can tell "quiet
    // trace" from "full trace" without re-deriving capacity.
    out.set("trace/dropped_events", rec->dropped(), Unit::kCount, kVariant);
  }

  // --- flags -------------------------------------------------------------
  const machine::FlagStats flags = machine.flags().stats();
  out.set("flags/sets", flags.sets, Unit::kCount, kInvariant);
  out.set("flags/polls", flags.polls, Unit::kCount, kVariant);
  out.set("flags/wakeups", flags.wakeups, Unit::kCount, kVariant);

  // --- NoC traffic volume (contention-free accounting) -------------------
  const noc::TrafficMatrix traffic = machine.merged_traffic();
  out.set("noc/lines_sent", traffic.total_lines_sent(), Unit::kCount,
          kInvariant);
  out.set("noc/line_hops", traffic.total_line_hops(), Unit::kCount,
          kInvariant);
  out.set("noc/max_link_load", traffic.max_link_load(), Unit::kCount,
          kInvariant);

  // --- link-contention model (populated only when enabled) ---------------
  out.set_time("noc/contention/total_delay_fs",
               machine.contention_total_delay(), kVariant);
  out.set("noc/contention/delayed_transfers",
          machine.contention_delayed_transfers(), Unit::kCount, kVariant);
  for (const auto& [name, link] : machine.merged_link_stats()) {
    // Window COUNT per link is volume-type (one per crossing); the busy /
    // queueing times shift with the interleaving.
    out.set(strprintf("noc/link/%s/windows", name.c_str()), link.windows,
            Unit::kCount, kInvariant);
    out.set_time(strprintf("noc/link/%s/busy_fs", name.c_str()), link.busy,
                 kVariant);
    out.set_time(strprintf("noc/link/%s/queue_fs", name.c_str()), link.queue,
                 kVariant);
    out.set_time(strprintf("noc/link/%s/max_queue_fs", name.c_str()),
                 link.max_queue, kVariant);
  }
}

void collect_pdes(sim::PdesEngine& pdes, MetricsRegistry& out) {
  const sim::PdesStats& s = pdes.stats();
  // Config facts are volume-type; the protocol counters are classified
  // time-type because schedule perturbation moves heap minima and therefore
  // window boundaries. ALL of them are worker-count-invariant -- that is
  // the PdesEngine determinism contract, and why "pdes/workers" is
  // deliberately absent here.
  out.set("pdes/partitions", static_cast<std::uint64_t>(pdes.partitions()),
          Unit::kCount, kInvariant);
  out.set_time("pdes/lookahead_fs", pdes.lookahead(), kInvariant);
  out.set("pdes/windows", s.windows, Unit::kCount, kVariant);
  out.set("pdes/saturated_windows", s.saturated_windows, Unit::kCount,
          kVariant);
  out.set("pdes/posts_delivered", s.posts_delivered, Unit::kCount, kVariant);
  out.set("pdes/max_window_events", s.max_window_events, Unit::kCount,
          kVariant);
  out.set("pdes/max_window_posts", s.max_window_posts, Unit::kCount,
          kVariant);
  out.set("pdes/posts_at_floor", s.posts_at_floor, Unit::kCount, kVariant);
  if (s.min_post_slack < SimTime::max()) {
    // Only meaningful once an in-window post merged; the max() sentinel
    // would read as "5 hours of slack".
    out.set_time("pdes/min_post_slack_fs", s.min_post_slack, kVariant);
  }
  for (int p = 0; p < pdes.partitions(); ++p) {
    out.set(strprintf("pdes/partition/%d/events", p),
            pdes.partition(p).events_processed(), Unit::kCount, kVariant);
  }
}

void collect_worker_pool(const exec::WorkerPoolStats& stats,
                         MetricsRegistry& out) {
  out.set("exec/rounds", stats.rounds, Unit::kCount, kVariant);
  out.set("exec/tasks", stats.tasks, Unit::kCount, kVariant);
  if (!stats.instrumented) return;
  // Host wall-clock nanoseconds, stored as plain counts (Unit::kCount):
  // kFemtoseconds is reserved for *virtual* time, and these must never be
  // mistaken for simulated results.
  out.set("exec/busy_ns", stats.busy_ns, Unit::kCount, kVariant);
  out.set("exec/park_ns", stats.park_ns, Unit::kCount, kVariant);
  out.set("exec/barrier_wait_ns", stats.barrier_wait_ns, Unit::kCount,
          kVariant);
  for (std::size_t w = 0; w < stats.worker_busy_ns.size(); ++w) {
    out.set(strprintf("exec/worker/%zu/busy_ns", w), stats.worker_busy_ns[w],
            Unit::kCount, kVariant);
  }
}

void add_machine_columns(machine::SccMachine& machine, Sampler& sampler) {
  machine::SccMachine* m = &machine;
  sampler.add_column("engine/events_processed",
                     [m] { return m->events_processed(); });
  sampler.add_column("engine/parks",
                     [m] { return m->engine_stats().parks; });
  // Gauge: coroutines currently parked on a wait queue (every wake-up of a
  // parked waiter decrements; a re-park counts a fresh park).
  sampler.add_column("engine/waiting", [m] {
    const sim::EngineStats s = m->engine_stats();
    return s.parks - s.waiters_woken;
  });
  sampler.add_column("flags/sets", [m] { return m->flags().stats().sets; });
  sampler.add_column("flags/polls", [m] { return m->flags().stats().polls; });
  sampler.add_column("flags/wakeups",
                     [m] { return m->flags().stats().wakeups; });
  // Shard sums, not merged_traffic(): sampler columns fire every tick and
  // must not copy a whole matrix each time. Counter sums equal the merged
  // totals exactly.
  sampler.add_column("noc/lines_sent", [m] {
    std::uint64_t total = 0;
    for (int p = 0; p < m->partitions(); ++p)
      total += m->traffic_of(p).total_lines_sent();
    return total;
  });
  sampler.add_column("noc/line_hops", [m] {
    std::uint64_t total = 0;
    for (int p = 0; p < m->partitions(); ++p)
      total += m->traffic_of(p).total_line_hops();
    return total;
  });
  sampler.add_column("noc/contention/delayed_transfers",
                     [m] { return m->contention_delayed_transfers(); });
  sampler.add_column("noc/contention/total_delay_fs", [m] {
    return m->contention_total_delay().femtoseconds();
  });
  sampler.add_column("cache/hits", [m] {
    std::uint64_t total = 0;
    for (int r = 0; r < m->num_cores(); ++r) total += m->cache(r).stats().hits;
    return total;
  });
  sampler.add_column("cache/misses", [m] {
    std::uint64_t total = 0;
    for (int r = 0; r < m->num_cores(); ++r)
      total += m->cache(r).stats().misses;
    return total;
  });
  sampler.add_column("mpb/high_water_bytes", [m] {
    std::uint64_t total = 0;
    for (int r = 0; r < m->num_cores(); ++r) total += m->mpb().high_water(r);
    return total;
  });
}

void collect_channel(const rckmpi::ChannelStats& stats,
                     MetricsRegistry& out) {
  out.set("rckmpi/messages", stats.messages, Unit::kCount, kInvariant);
  out.set("rckmpi/header_lines", stats.header_lines, Unit::kCount,
          kInvariant);
  out.set("rckmpi/payload_lines", stats.payload_lines, Unit::kCount,
          kInvariant);
  out.set("rckmpi/credit_updates", stats.credit_updates, Unit::kCount,
          kVariant);
  out.set("rckmpi/credit_stalls", stats.credit_stalls, Unit::kCount,
          kVariant);
  out.set("rckmpi/progress_polls", stats.progress_polls, Unit::kCount,
          kVariant);
}

}  // namespace scc::metrics
