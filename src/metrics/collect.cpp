#include "metrics/collect.hpp"

#include "common/string_util.hpp"

namespace scc::metrics {

namespace {
constexpr bool kInvariant = true;  // volume-type: seed-invariant
constexpr bool kVariant = false;   // time-type: schedule-dependent
}  // namespace

void collect_machine(machine::SccMachine& machine, MetricsRegistry& out) {
  // --- engine (all time-type: counts depend on the interleaving) --------
  const sim::EngineStats& eng = machine.engine().stats();
  out.set("engine/events_processed", machine.engine().events_processed(),
          Unit::kCount, kVariant);
  out.set("engine/parks", eng.parks, Unit::kCount, kVariant);
  out.set("engine/notifies", eng.notifies, Unit::kCount, kVariant);
  out.set("engine/waiters_woken", eng.waiters_woken, Unit::kCount, kVariant);
  out.set("engine/perturb_delays", eng.perturb_delays, Unit::kCount,
          kVariant);
  out.set_time("engine/perturb_delay_total_fs", eng.perturb_delay_total,
               kVariant);

  // --- per core: profile phases, cache, MPB footprint -------------------
  for (int r = 0; r < machine.num_cores(); ++r) {
    const machine::CoreProfile& prof = machine.core(r).profile();
    for (int p = 0; p < static_cast<int>(machine::Phase::kCount); ++p) {
      const auto phase = static_cast<machine::Phase>(p);
      // Phase times are time-type: total wait time moves with the schedule.
      out.set_time(strprintf("core/%d/profile/%s_fs", r,
                             std::string(machine::phase_name(phase)).c_str()),
                   prof.get(phase), kVariant);
    }
    const mem::CacheStats& cache = machine.cache(r).stats();
    out.set(strprintf("core/%d/cache/hits", r), cache.hits, Unit::kCount,
            kInvariant);
    out.set(strprintf("core/%d/cache/misses", r), cache.misses, Unit::kCount,
            kInvariant);
    out.set(strprintf("core/%d/cache/writebacks", r), cache.writebacks,
            Unit::kCount, kInvariant);
    out.set(strprintf("core/%d/cache/uncached_writes", r),
            cache.uncached_writes, Unit::kCount, kInvariant);
    out.set(strprintf("core/%d/mpb/high_water_bytes", r),
            machine.mpb().high_water(r), Unit::kBytes, kInvariant);
  }

  // --- flags -------------------------------------------------------------
  const machine::FlagStats& flags = machine.flags().stats();
  out.set("flags/sets", flags.sets, Unit::kCount, kInvariant);
  out.set("flags/polls", flags.polls, Unit::kCount, kVariant);
  out.set("flags/wakeups", flags.wakeups, Unit::kCount, kVariant);

  // --- NoC traffic volume (contention-free accounting) -------------------
  out.set("noc/lines_sent", machine.traffic().total_lines_sent(),
          Unit::kCount, kInvariant);
  out.set("noc/line_hops", machine.traffic().total_line_hops(), Unit::kCount,
          kInvariant);
  out.set("noc/max_link_load", machine.traffic().max_link_load(),
          Unit::kCount, kInvariant);

  // --- link-contention model (populated only when enabled) ---------------
  const noc::LinkContention& cont = machine.contention();
  out.set_time("noc/contention/total_delay_fs", cont.total_delay(), kVariant);
  out.set("noc/contention/delayed_transfers", cont.delayed_transfers(),
          Unit::kCount, kVariant);
  for (const auto& [name, link] : cont.link_stats()) {
    // Window COUNT per link is volume-type (one per crossing); the busy /
    // queueing times shift with the interleaving.
    out.set(strprintf("noc/link/%s/windows", name.c_str()), link.windows,
            Unit::kCount, kInvariant);
    out.set_time(strprintf("noc/link/%s/busy_fs", name.c_str()), link.busy,
                 kVariant);
    out.set_time(strprintf("noc/link/%s/queue_fs", name.c_str()), link.queue,
                 kVariant);
    out.set_time(strprintf("noc/link/%s/max_queue_fs", name.c_str()),
                 link.max_queue, kVariant);
  }
}

void collect_channel(const rckmpi::ChannelStats& stats,
                     MetricsRegistry& out) {
  out.set("rckmpi/messages", stats.messages, Unit::kCount, kInvariant);
  out.set("rckmpi/header_lines", stats.header_lines, Unit::kCount,
          kInvariant);
  out.set("rckmpi/payload_lines", stats.payload_lines, Unit::kCount,
          kInvariant);
  out.set("rckmpi/credit_updates", stats.credit_updates, Unit::kCount,
          kVariant);
  out.set("rckmpi/credit_stalls", stats.credit_stalls, Unit::kCount,
          kVariant);
  out.set("rckmpi/progress_polls", stats.progress_polls, Unit::kCount,
          kVariant);
}

}  // namespace scc::metrics
