// MetricsRegistry: one flat, ordered snapshot of every counter a run
// produced, addressed by hierarchical slash-paths ("core/17/profile/
// flag_wait_fs", "noc/link/(2,1)->(3,1)/queue_fs", "rckmpi/messages").
//
// Each entry carries a unit and a seed-invariance class:
//   - invariant (volume-type): fixed by the communication pattern, so it
//     must be bit-identical across schedule-perturbation seeds (lines sent,
//     cache misses, flag sets, MPB footprint...). The conformance harness
//     diffs these across seeds.
//   - variant (time-type): depends on the interleaving (queueing delays,
//     park/poll counts, injected perturbation delays...).
//
// The registry is purely observational output: collecting it never charges
// simulated time (tested by the metrics-on/off timing-invariance test).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace scc::metrics {

enum class Unit : std::uint8_t {
  kCount,
  kBytes,
  kFemtoseconds,
};

[[nodiscard]] constexpr std::string_view unit_name(Unit u) {
  switch (u) {
    case Unit::kCount: return "count";
    case Unit::kBytes: return "bytes";
    case Unit::kFemtoseconds: return "fs";
  }
  return "?";
}

struct Metric {
  std::uint64_t value = 0;
  Unit unit = Unit::kCount;
  bool invariant = false;  // volume-type: identical across perturbation seeds

  friend bool operator==(const Metric&, const Metric&) = default;
};

class MetricsRegistry {
 public:
  /// Free-form run label shown in exports (e.g. "allreduce/blocking n=552").
  void set_label(std::string label) { label_ = std::move(label); }
  [[nodiscard]] const std::string& label() const { return label_; }

  /// Inserts or overwrites one metric.
  void set(std::string path, std::uint64_t value, Unit unit = Unit::kCount,
           bool invariant = false) {
    entries_[std::move(path)] = Metric{value, unit, invariant};
  }
  /// SimTime convenience: stores femtoseconds with Unit::kFemtoseconds.
  void set_time(std::string path, SimTime t, bool invariant = false) {
    set(std::move(path), t.femtoseconds(), Unit::kFemtoseconds, invariant);
  }

  [[nodiscard]] const std::map<std::string, Metric>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Lookup; nullptr when absent.
  [[nodiscard]] const Metric* find(std::string_view path) const;
  /// Lookup with fallback value for absent paths.
  [[nodiscard]] std::uint64_t value_or(std::string_view path,
                                       std::uint64_t fallback = 0) const;

  /// Copies every entry of `other` under `prefix` (e.g. a sweep absorbing
  /// each point's snapshot under "point/552/"). `prefix` should end in '/'.
  void absorb(const MetricsRegistry& other, const std::string& prefix);

  /// JSON export ("scc-metrics-v1"): one stable object sorted by path.
  void write_json(std::ostream& os) const;
  /// Convenience: writes JSON to a file; throws std::runtime_error on
  /// failure to open.
  void write_json_file(const std::string& path) const;

  /// Aligned human-readable table (path, value, unit, invariance class).
  void print(std::ostream& os) const;

  /// Compares the *invariant* entries of two snapshots (both directions):
  /// returns one human-readable line per mismatch -- value difference, or
  /// an invariant path present on only one side. Empty result == conformant.
  [[nodiscard]] static std::vector<std::string> diff_invariant(
      const MetricsRegistry& baseline, const MetricsRegistry& other);

 private:
  std::string label_;
  std::map<std::string, Metric> entries_;
};

}  // namespace scc::metrics
