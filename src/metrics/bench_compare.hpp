// Regression gate: diffs one "scc-bench-v1" JSON bench run against a
// committed baseline, per-metric tolerances, non-zero exit on regression.
// Library half of the bench/compare CLI so tests can drive it directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/json.hpp"

namespace scc::metrics {

struct CompareOptions {
  /// Allowed relative increase per value ((current-base)/|base|). The
  /// simulated latencies are deterministic, so this only needs to absorb
  /// intentional model recalibrations, not noise.
  double rel_tol = 0.05;
  /// Allowed absolute increase (in the value's own unit), applied on top of
  /// rel_tol; covers near-zero baselines.
  double abs_tol = 0.0;
  /// Values are higher-is-worse (latencies) by default: improvements pass.
  /// Two-sided mode also fails on decreases beyond tolerance (drift gate).
  bool two_sided = false;
};

struct CompareOutcome {
  int values_compared = 0;
  /// One line per failed comparison / structural mismatch.
  std::vector<std::string> regressions;
  /// Informational lines (improvements, rows only in current, ...).
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const { return regressions.empty(); }
};

/// Compares two parsed "scc-bench-v1" documents. Rows are matched by the
/// value of `key_column` (default: "elements" when the baseline rows have
/// it -- the figure benches do -- else the alphabetically first column). A
/// baseline row or
/// numeric column missing from `current` is a regression (coverage loss);
/// extra rows/columns in `current` are notes. When the baseline carries a
/// "histograms" block (--hist), its quantiles are gated too -- always
/// two-sided, since a drifting tail is suspicious in either direction.
[[nodiscard]] CompareOutcome compare_bench(const JsonValue& baseline,
                                           const JsonValue& current,
                                           const CompareOptions& options,
                                           const std::string& key_column = "");

/// File-path convenience; parse errors surface as regressions so the gate
/// fails closed on corrupt inputs.
[[nodiscard]] CompareOutcome compare_bench_files(const std::string& baseline,
                                                 const std::string& current,
                                                 const CompareOptions& options,
                                                 const std::string& key_column = "");

/// Renders the outcome (notes then regressions then verdict) to `os`.
void print_outcome(const CompareOutcome& outcome, std::ostream& os);

}  // namespace scc::metrics
