#include "metrics/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace scc::metrics {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(
        strprintf("json parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(strprintf("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writers only ever emit \u00XX; decode BMP codepoints as
          // UTF-8 and reject surrogates (never produced here).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number: no digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("bad number: no exponent digits");
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    return JsonValue(std::stod(lexeme));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_json(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return strprintf("%.17g", v);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", static_cast<unsigned>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace scc::metrics
