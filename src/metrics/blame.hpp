// Critical-path blame engine.
//
// Replays a trace::Recorder event stream (phase intervals, flag set->wakeup
// edges, link-occupancy windows) into a happens-before walk and attributes
// every femtosecond of an end-to-end measurement window [begin, end] to a
// (phase, core) or link bucket -- "61% flag-wait on core 17, 12% mesh
// queueing on link (2,1)->(3,1)".
//
// Semantics: LATENESS ATTRIBUTION, walked backwards from the terminal core
// (the rank that timestamps the collective) at the window end:
//   - a non-wait interval covering the cursor blames its span to its
//     (phase, core); the portion of an MPB-transfer/flag-op charge that was
//     contention queueing is split out to the links that caused it
//     (link-occupancy windows recorded by the same transfer);
//   - a flag-wait interval blames its FULL span to (flag-wait, waiter) --
//     the waiter was late *because* it sat in rcce_wait_until -- and the
//     walk then jumps to the core that set the flag (matched through the
//     "set c:i" charge detail ending exactly at the wakeup) at the moment
//     the wait began, asking recursively why the setter was not done
//     earlier;
//   - time where the cursor core has no interval is blamed to "idle"
//     (scheduling gaps; zero for the busy-looped protocols here).
// The walk tiles [begin, end] exactly, so the components sum to the
// measured end-to-end latency femtosecond for femtosecond (tested).
//
// Purely observational: analysis runs on a finished trace and never touches
// the simulation.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "trace/recorder.hpp"

namespace scc::metrics {

/// One aggregated blame bucket.
struct BlameComponent {
  /// Phase lane name ("flag-wait", "mpb-transfer", ...), "link-queue" for
  /// contention queueing, or "idle".
  std::string kind;
  /// Core the time is attributed to; -1 for link buckets.
  int core = -1;
  /// Directed link name for "link-queue" buckets, empty otherwise.
  std::string link;
  SimTime time;

  [[nodiscard]] std::string where() const;
};

struct BlameReport {
  SimTime window_begin;
  SimTime window_end;
  /// Aggregated buckets, largest first.
  std::vector<BlameComponent> components;
  /// Flag set->wakeup edges the walk crossed (cores visited beyond the
  /// terminal one).
  std::uint64_t edges_followed = 0;

  [[nodiscard]] SimTime total() const { return window_end - window_begin; }
  /// Sum over components; equals total() by construction (the invariant the
  /// blame tests pin).
  [[nodiscard]] SimTime attributed() const;
  /// Total blamed to `kind` across cores/links.
  [[nodiscard]] SimTime kind_total(std::string_view kind) const;
  /// Share of total() blamed to `kind`, in [0, 1]; 0 for an empty window.
  [[nodiscard]] double kind_share(std::string_view kind) const;

  /// Human-readable report (percentages, largest bucket first).
  void print(std::ostream& os) const;
};

/// Analyzes run scope `run` of `trace` (see Recorder::begin_run) over
/// [window_begin, window_end], walking back from `terminal_core`.
[[nodiscard]] BlameReport analyze_blame(const trace::Recorder& trace, int run,
                                        int terminal_core,
                                        SimTime window_begin,
                                        SimTime window_end);

}  // namespace scc::metrics
