// Snapshot collection: walks every counter the simulator keeps and files it
// into a MetricsRegistry under stable hierarchical paths. See DESIGN.md §10
// for the path schema and the volume-type/time-type classification.
#pragma once

#include "machine/scc_machine.hpp"
#include "metrics/registry.hpp"
#include "rckmpi/channel.hpp"

namespace scc::metrics {

/// Snapshots one machine: engine stats, per-core profiles/caches/MPB
/// footprints, flag traffic, NoC traffic + per-link contention. Cumulative
/// over the machine's lifetime (warmup included), like the counters
/// themselves. Non-const: the accessors are non-const; nothing is mutated.
void collect_machine(machine::SccMachine& machine, MetricsRegistry& out);

/// Snapshots the RCKMPI transport counters (only meaningful for MPI runs;
/// harmless zeros otherwise) under "rckmpi/...".
void collect_channel(const rckmpi::ChannelStats& stats, MetricsRegistry& out);

}  // namespace scc::metrics
