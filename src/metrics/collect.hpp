// Snapshot collection: walks every counter the simulator keeps and files it
// into a MetricsRegistry under stable hierarchical paths. See DESIGN.md §10
// for the path schema and the volume-type/time-type classification.
#pragma once

#include "exec/executor.hpp"
#include "machine/scc_machine.hpp"
#include "metrics/registry.hpp"
#include "metrics/sampler.hpp"
#include "rckmpi/channel.hpp"
#include "sim/pdes.hpp"

namespace scc::metrics {

/// Snapshots one machine: engine stats, per-core profiles/caches/MPB
/// footprints, flag traffic, NoC traffic + per-link contention. Cumulative
/// over the machine's lifetime (warmup included), like the counters
/// themselves. Non-const: the accessors are non-const; nothing is mutated.
void collect_machine(machine::SccMachine& machine, MetricsRegistry& out);

/// Snapshots the RCKMPI transport counters (only meaningful for MPI runs;
/// harmless zeros otherwise) under "rckmpi/...".
void collect_channel(const rckmpi::ChannelStats& stats, MetricsRegistry& out);

/// Snapshots the PDES coordinator under "pdes/...": window/merge counters,
/// conservative-slack introspection, and per-partition drained-event counts.
/// Deliberately excludes the worker count and every host-time value --
/// collect_pdes output is byte-identical for any PdesConfig::workers, so it
/// is safe inside determinism-gated artifacts (the identity tests diff it).
/// Non-const for the partition accessor, like collect_machine; mutates
/// nothing.
void collect_pdes(sim::PdesEngine& pdes, MetricsRegistry& out);

/// Snapshots executor counters under "exec/...": rounds/tasks (work volume,
/// deterministic) and -- when the pool was instrumented -- HOST wall-clock
/// busy/park/barrier-wait time, total and per worker. The *_ns entries vary
/// run to run; never feed them into byte-identity-gated artifacts.
void collect_worker_pool(const exec::WorkerPoolStats& stats,
                         MetricsRegistry& out);

/// Registers the standard machine flight-recorder columns on `sampler`
/// (cumulative counters, same naming as the registry paths): engine event /
/// park progress, flag-wait occupancy, flag traffic, NoC volume and
/// contention, cache totals and MPB footprint summed over cores. The
/// machine must outlive the sampler's ticking (columns capture &machine);
/// attach the sampler to machine.engine() afterwards.
void add_machine_columns(machine::SccMachine& machine, Sampler& sampler);

}  // namespace scc::metrics
