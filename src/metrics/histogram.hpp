// HDR-style log-bucketed latency histogram.
//
// ROADMAP item 4 wants p50/p99/p999 tail latency over millions of
// simulated operations; keeping every sample would cost memory linear in
// the run, and merging sorted sample vectors across host threads would be
// O(n log n) per merge. This histogram keeps a fixed ~2K bucket array
// instead: each power-of-two range is divided into 2^kSubBucketBits linear
// sub-buckets, so any recorded value lands in a bucket whose width is at
// most value / 2^kSubBucketBits -- quantiles are exact to a relative error
// of 2^-kSubBucketBits (~3%) at every scale, in O(1) memory.
//
// Determinism contract (what the obs tier pins):
//   - record() is pure bucket arithmetic on the uint64 value -- no floats,
//     no allocation order dependence;
//   - merge() is exact bucket-wise addition, so any split of a sample
//     stream across histograms merges to the bit-identical state the
//     serial stream would have produced (merge order irrelevant);
//   - value_at_quantile() walks cumulative counts and rank-interpolates
//     within the target bucket (extreme ranks return the exactly-tracked
//     min/max; everything is clamped into [min, max]), so exported
//     quantiles are byte-identical for any --jobs / worker split.
//
// Values are unit-agnostic uint64 counts; collective latencies record
// femtoseconds (record_time) and export microseconds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/time.hpp"

namespace scc::metrics {

class Histogram {
 public:
  /// Linear sub-buckets per power-of-two range; 2^5 = 32 gives ~3.1%
  /// worst-case relative quantile error.
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1}
                                               << kSubBucketBits;

  void record(std::uint64_t value);
  /// Convenience: records t.femtoseconds().
  void record_time(SimTime t) { record(t.femtoseconds()); }

  /// Exact bucket-wise merge; commutative and associative.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Exact extrema; require a non-empty histogram.
  [[nodiscard]] std::uint64_t min() const;
  [[nodiscard]] std::uint64_t max() const;
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  /// sum / count; NaN when empty (writers must route through json_number).
  [[nodiscard]] double mean() const;

  /// Estimate of the rank-ceil(q * count) order statistic. Rank 1 returns
  /// min() and rank count returns max() EXACTLY (so q = 0, q = 1, and any
  /// tail quantile asked of a small sample -- p999 with fewer than 1000
  /// values -- are exact, not bucket estimates); interior ranks
  /// rank-interpolate within their bucket and are clamped into
  /// [min(), max()]. q in [0, 1]; requires a non-empty histogram.
  [[nodiscard]] std::uint64_t value_at_quantile(double q) const;

  /// Inclusive value range [lower, upper] of the bucket `index` maps to
  /// (exposed for the differential tests against common/stats quantile).
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index);
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index);
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

  /// One JSON object (no surrounding key): {"count": N, "min_us": ...,
  /// "mean_us": ..., "p50_us": ..., "p90_us": ..., "p99_us": ...,
  /// "p999_us": ..., "max_us": ...}, values converted fs -> us through
  /// json_number (an empty histogram emits count 0 and null statistics).
  void write_json_us(std::ostream& os) const;

 private:
  std::vector<std::uint64_t> buckets_;  // grown on demand, index order
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace scc::metrics
