// Deterministic sim-time flight recorder.
//
// PR 3's metrics registry is one cumulative snapshot at the end of a run;
// it cannot answer "when did link (2,1)->(3,1) saturate". The Sampler
// snapshots a set of named uint64 counter columns every Dt of *simulated*
// time: the engine fires a probe exactly at the virtual tick instants
// k * Dt (sim::Engine::set_probe), so sample k reflects every event with
// timestamp < k * Dt and nothing later -- a cadence defined by the virtual
// clock, not by host wall time, and therefore bit-identical run to run,
// for every --jobs value and every PDES worker count.
//
// Bounded memory: when the row buffer hits max_rows, every other row is
// dropped and the accepted cadence doubles (deterministic decimation --
// the kept rows are exactly the ticks whose index is a multiple of the new
// stride, so an unboundedly long run degrades resolution instead of
// growing memory, and the surviving rows are independent of when the
// overflow happened).
//
// Determinism contract: columns read counters; they must not mutate
// simulated state or charge time. Sampling on vs off changes no simulated
// result byte (pinned by the obs tier).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace scc::sim {
class Engine;
}

namespace scc::metrics {

/// Plain-data snapshot of a finished sampling session ("scc-timeseries-v1").
struct TimeSeries {
  struct Row {
    SimTime t;
    std::vector<std::uint64_t> values;  // one per column, column order
  };

  std::string label;
  SimTime interval;            // base cadence (zero: externally ticked)
  std::uint64_t decimations = 0;  // times the cadence doubled
  std::uint64_t ticks = 0;        // ticks offered, pre-decimation
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// CSV: header "t_fs,<col>,...", integer cells.
  void write_csv(std::ostream& os) const;
  /// "scc-timeseries-v1" JSON document.
  void write_json(std::ostream& os) const;
};

class Sampler {
 public:
  static constexpr std::size_t kDefaultMaxRows = 4096;

  /// `interval` is the base cadence for attach(); pass SimTime::zero() for
  /// a sampler that is only ticked externally (e.g. at PDES window
  /// barriers). `max_rows` >= 2 bounds memory (see decimation above).
  explicit Sampler(SimTime interval, std::size_t max_rows = kDefaultMaxRows);

  void set_label(std::string label) { series_.label = std::move(label); }

  /// Registers one column; `read` must be a pure observation of simulated
  /// state (no mutation, no time charged). Columns must be registered
  /// before the first tick.
  void add_column(std::string name, std::function<std::uint64_t()> read);

  /// Installs this sampler as `engine`'s cadence probe (requires a nonzero
  /// interval). The engine owns no reference beyond the probe std::function;
  /// call sim::Engine::clear_probe() or destroy the engine before the
  /// sampler dies.
  void attach(sim::Engine& engine);

  /// Offers one tick at virtual time `t` (called by the engine probe, or
  /// directly at PDES window barriers). Ticks are decimated by the current
  /// stride; accepted ticks snapshot every column.
  void tick(SimTime t);

  [[nodiscard]] std::size_t rows() const { return series_.rows.size(); }
  [[nodiscard]] std::uint64_t decimations() const {
    return series_.decimations;
  }
  /// Effective accepted cadence: base interval * 2^decimations.
  [[nodiscard]] SimTime effective_interval() const;

  /// Finalizes and moves the collected series out (the sampler is empty
  /// afterwards). Columns stay registered.
  [[nodiscard]] TimeSeries take();

 private:
  struct Column {
    std::string name;
    std::function<std::uint64_t()> read;
  };

  std::size_t max_rows_;
  std::uint64_t stride_ = 1;      // accept every stride-th offered tick
  std::uint64_t tick_index_ = 0;  // offered ticks so far
  std::vector<Column> columns_;
  TimeSeries series_;
};

}  // namespace scc::metrics
