// The thermodynamics application of Section V-B: Grand Canonical Monte
// Carlo sampling of a molecular fluid, parallelized over the SCC's cores
// exactly as the paper describes:
//   - particles are distributed over cores; each core evaluates the energy
//     contribution of its local set;
//   - short-range energy is updated incrementally (scalar Allreduce);
//   - long-range energy is recomputed in Fourier space after every move:
//     each core accumulates its local structure factors, then a 552-double
//     Allreduce produces the global ones (Algorithm 2, line 14);
//   - the moved particle's state is broadcast from its owner
//     (BroadcastUpdate, Algorithm 1 line 13).
//
// Every core runs the identical move-selection RNG stream, so all cores
// agree on the move sequence and accept/reject decisions without extra
// communication -- only particle *state* needs broadcasting, since only
// the owner stores coordinates.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "gcmc/system.hpp"
#include "harness/runner.hpp"  // PaperVariant
#include "machine/config.hpp"
#include "machine/profile.hpp"

namespace scc::gcmc {

struct AppParams {
  ModelParams model;
  /// Initial particles, distributed round-robin (paper setup scaled down;
  /// the compute/communication ratio is calibrated so the long-range
  /// evaluation dominates runtime as profiled in the paper).
  int particles_total = 240;
  /// Capacity per core (insertions beyond this are auto-rejected).
  int max_local_particles = 12;
  int cycles = 40;  // GCMC moves
  std::uint64_t seed = 2012;
  /// Core cycles charged per (atom, k-vector) structure-factor evaluation
  /// (sin+cos+complex accumulate on a P54C).
  std::uint32_t eval_cycles = 200;
  std::uint32_t lj_pair_cycles = 60;
  std::uint32_t energy_sum_cycles_per_k = 20;
};

struct AppResult {
  SimTime runtime;  // virtual time from start to the slowest core's finish
  double final_energy = 0.0;
  int accepted = 0;
  int attempted = 0;
  int final_particles = 0;
  std::vector<machine::CoreProfile> profiles;
};

/// Runs the full application on a fresh simulated SCC under the given
/// communication stack. Throws on internal inconsistency (cores are
/// cross-checked to agree on energies and particle counts).
[[nodiscard]] AppResult run_app(
    const AppParams& params, harness::PaperVariant variant,
    machine::SccConfig config = machine::SccConfig::paper_default());

}  // namespace scc::gcmc
