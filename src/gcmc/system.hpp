// Physical model of the thermodynamics application: a periodic box of
// small rigid molecules ("particles" of a few charged Lennard-Jones
// atoms), sampled with Grand Canonical Monte Carlo.
//
// Energy terms (paper Section V-B):
//  - short range: pairwise Lennard-Jones in real space, updated
//    incrementally (only the moved particle's contribution changes);
//  - long range: electrostatics in Fourier space -- a set of KMAXVECS
//    complex structure factors F[k] = sum_a q_a exp(i k . r_a) that must be
//    recomputed after every move and summed over all cores' local particle
//    sets via Allreduce (276 complex = 552 doubles in the paper's setup).
//
// This header is pure physics; it knows nothing about the simulator.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace scc::gcmc {

using Vec3 = std::array<double, 3>;

struct Atom {
  Vec3 pos{};
  double charge = 0.0;
};

struct Particle {
  std::vector<Atom> atoms;
  bool alive = false;
};

struct ModelParams {
  double box_length = 12.0;
  int atoms_per_particle = 3;
  double lj_epsilon = 1.0;
  double lj_sigma = 1.0;
  double lj_cutoff = 3.0;
  /// Number of reciprocal-space vectors; the paper's run uses 276
  /// complex-valued coefficients (552 doubles through Allreduce).
  int kmaxvecs = 276;
  /// Ewald-style damping for the reciprocal-space coefficients.
  double ewald_eta = 0.08;
  double beta = 1.5;             // 1/kT
  double chemical_potential = -1.0;
  double max_translation = 0.4;
};

/// Reciprocal-space basis: the first `kmaxvecs` nonzero integer vectors
/// ordered by |k|^2 (ties broken lexicographically) with their Ewald
/// coefficients coeff(k) = exp(-eta*|k|^2)/|k|^2.
struct KSpace {
  explicit KSpace(const ModelParams& params);
  std::vector<Vec3> kvecs;        // 2*pi*n/L components
  std::vector<double> coeff;
};

/// One core's slice of the particle system plus the replicated state every
/// core needs (the particle currently being moved).
class LocalSystem {
 public:
  LocalSystem(const ModelParams& params, int max_local_particles);

  [[nodiscard]] const ModelParams& params() const { return params_; }
  [[nodiscard]] int capacity() const {
    return static_cast<int>(particles_.size());
  }
  [[nodiscard]] int alive_count() const;
  [[nodiscard]] Particle& slot(int index) { return particles_[static_cast<std::size_t>(index)]; }
  [[nodiscard]] const Particle& slot(int index) const {
    return particles_[static_cast<std::size_t>(index)];
  }
  /// First free slot, or -1.
  [[nodiscard]] int free_slot() const;

  /// Creates a randomly-placed particle (rigid triangle of atoms with
  /// charges summing to zero).
  [[nodiscard]] Particle make_particle(Xoshiro256& rng) const;

  /// Short-range LJ energy between `probe` and all local alive particles,
  /// with minimum-image convention; `skip_slot` excludes the probe's own
  /// slot when it is locally owned. Returns (energy, pair_count) -- the
  /// pair count drives the simulator's compute charge.
  struct ShortRange {
    double energy = 0.0;
    std::uint64_t pairs = 0;
  };
  [[nodiscard]] ShortRange short_range(const Particle& probe,
                                       int skip_slot) const;

  /// This core's contribution to the structure factors: F_local[k] =
  /// sum over local alive atoms of q * exp(i k.r). `flops` reports the
  /// number of (atom, k) evaluations for compute charging.
  void structure_factors(const KSpace& kspace,
                         std::vector<std::complex<double>>& f_local,
                         std::uint64_t& evaluations) const;

  /// Reciprocal-space energy from the GLOBAL structure factors.
  [[nodiscard]] double long_range_energy(
      const KSpace& kspace,
      const std::vector<std::complex<double>>& f_total) const;

 private:
  ModelParams params_;
  std::vector<Particle> particles_;
};

}  // namespace scc::gcmc
