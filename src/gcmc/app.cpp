#include "gcmc/app.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "common/aligned.hpp"
#include "coll/collectives.hpp"
#include "coll/mpb_allreduce.hpp"
#include "coll/stack.hpp"
#include "machine/scc_machine.hpp"
#include "rckmpi/mpi.hpp"

namespace scc::gcmc {

namespace {

using harness::PaperVariant;

/// Move mix percentages (translate / insert / delete).
constexpr std::uint64_t kTranslatePct = 60;
constexpr std::uint64_t kInsertPct = 20;

enum class Action { kTranslate, kInsert, kDelete };

coll::Prims prims_of(PaperVariant v) {
  switch (v) {
    case PaperVariant::kBlocking: return coll::Prims::kBlocking;
    case PaperVariant::kIrcce: return coll::Prims::kIrcce;
    default: return coll::Prims::kLightweight;
  }
}

coll::SplitPolicy split_of(PaperVariant v) {
  return (v == PaperVariant::kLwBalanced || v == PaperVariant::kMpb)
             ? coll::SplitPolicy::kBalanced
             : coll::SplitPolicy::kStandard;
}

/// The communication stack of one core for one app run.
struct Comm {
  Comm(machine::CoreApi& api, const rcce::Layout& layout,
       const rckmpi::ChannelLayout* mpi_layout, PaperVariant which)
      : stack(api, layout, prims_of(which)),
        mpb(api, layout),
        variant(which) {
    if (which == PaperVariant::kRckmpi) {
      SCC_EXPECTS(mpi_layout != nullptr);
      mpi.emplace(api, *mpi_layout);
    }
  }

  sim::Task<> allreduce(std::span<const double> in, std::span<double> out) {
    if (mpi) {
      co_await mpi->allreduce(in, out, rckmpi::ReduceOp::kSum);
      co_return;
    }
    if (variant == PaperVariant::kMpb &&
        in.size() >= static_cast<std::size_t>(stack.num_cores())) {
      co_await mpb.run(in, out, coll::ReduceOp::kSum, split_of(variant));
      co_return;
    }
    co_await coll::allreduce(stack, in, out, coll::ReduceOp::kSum,
                             split_of(variant));
  }

  sim::Task<> broadcast(std::span<double> data, int root) {
    if (mpi) {
      co_await mpi->bcast(data, root);
      co_return;
    }
    co_await coll::broadcast(stack, data, root, split_of(variant));
  }

  coll::Stack stack;
  coll::MpbAllreduce mpb;
  std::optional<rckmpi::Mpi> mpi;
  PaperVariant variant;
};

/// Per-core application state. Every core tracks the global alive bitmap
/// (updated deterministically from the shared RNG stream and the shared
/// accept/reject decisions); only the owner holds particle coordinates.
struct CoreState {
  explicit CoreState(const AppParams& params, const KSpace& basis, int p)
      : local(params.model, params.max_local_particles),
        alive(static_cast<std::size_t>(p),
              std::vector<bool>(
                  static_cast<std::size_t>(params.max_local_particles), false)),
        rng(params.seed),
        f_local(static_cast<std::size_t>(params.model.kmaxvecs)),
        f_total(static_cast<std::size_t>(params.model.kmaxvecs)),
        flat_in(2 * static_cast<std::size_t>(params.model.kmaxvecs)),
        flat_out(2 * static_cast<std::size_t>(params.model.kmaxvecs)),
        kspace(&basis) {}

  [[nodiscard]] int global_alive() const {
    int count = 0;
    for (const auto& per_core : alive)
      for (const bool a : per_core)
        if (a) ++count;
    return count;
  }

  /// Maps the j-th globally-alive particle to (owner, slot).
  [[nodiscard]] std::pair<int, int> nth_alive(int j) const {
    for (std::size_t owner = 0; owner < alive.size(); ++owner) {
      for (std::size_t slot = 0; slot < alive[owner].size(); ++slot) {
        if (alive[owner][slot] && j-- == 0)
          return {static_cast<int>(owner), static_cast<int>(slot)};
      }
    }
    SCC_ASSERT(false && "nth_alive out of range");
    return {-1, -1};
  }

  [[nodiscard]] int free_slot_of(int owner) const {
    const auto& per_core = alive[static_cast<std::size_t>(owner)];
    for (std::size_t s = 0; s < per_core.size(); ++s)
      if (!per_core[s]) return static_cast<int>(s);
    return -1;
  }

  LocalSystem local;
  std::vector<std::vector<bool>> alive;
  Xoshiro256 rng;  // identical stream on every core
  std::vector<std::complex<double>> f_local;
  std::vector<std::complex<double>> f_total;
  aligned_vector<double> flat_in;
  aligned_vector<double> flat_out;
  aligned_vector<double> scalar_in = aligned_vector<double>(1, 0.0);
  aligned_vector<double> scalar_out = aligned_vector<double>(1, 0.0);
  const KSpace* kspace;
  double en_total = 0.0;
  int accepted = 0;
  int attempted = 0;
  SimTime finish_time;
};

/// Algorithm 2: local structure factors + global Allreduce + energy.
sim::Task<double> long_en(machine::CoreApi& api, const AppParams& params,
                          Comm& comm, CoreState& st) {
  std::uint64_t evaluations = 0;
  st.local.structure_factors(*st.kspace, st.f_local, evaluations);
  co_await api.compute(evaluations * params.eval_cycles);
  for (std::size_t k = 0; k < st.f_local.size(); ++k) {
    st.flat_in[2 * k] = st.f_local[k].real();
    st.flat_in[2 * k + 1] = st.f_local[k].imag();
  }
  co_await comm.allreduce(st.flat_in, st.flat_out);
  for (std::size_t k = 0; k < st.f_total.size(); ++k) {
    st.f_total[k] = {st.flat_out[2 * k], st.flat_out[2 * k + 1]};
  }
  const double energy = st.local.long_range_energy(*st.kspace, st.f_total);
  co_await api.compute(static_cast<std::uint64_t>(params.model.kmaxvecs) *
                       params.energy_sum_cycles_per_k);
  co_return energy;
}

/// Short-range energy of `probe` against everyone (scalar Allreduce).
sim::Task<double> short_en(machine::CoreApi& api, const AppParams& params,
                           Comm& comm, CoreState& st, const Particle& probe,
                           int skip_slot_if_owner, bool is_owner) {
  const LocalSystem::ShortRange sr =
      st.local.short_range(probe, is_owner ? skip_slot_if_owner : -1);
  co_await api.compute(sr.pairs * params.lj_pair_cycles);
  st.scalar_in[0] = sr.energy;
  co_await comm.allreduce(std::span<const double>(st.scalar_in.data(), 1),
                          std::span<double>(st.scalar_out.data(), 1));
  co_return st.scalar_out[0];
}

/// Serializes a particle for BroadcastUpdate (positions + charges + the
/// new total energy, Algorithm 1 line 13).
void pack_particle(const Particle& p, double energy,
                   aligned_vector<double>& buffer) {
  std::size_t i = 0;
  for (const Atom& a : p.atoms) {
    buffer[i++] = a.pos[0];
    buffer[i++] = a.pos[1];
    buffer[i++] = a.pos[2];
    buffer[i++] = a.charge;
  }
  buffer[i] = energy;
}

sim::Task<> gcmc_core(machine::CoreApi& api, const rcce::Layout& layout,
                      const rckmpi::ChannelLayout* mpi_layout,
                      const AppParams& params, PaperVariant variant,
                      CoreState& st) {
  Comm comm(api, layout, mpi_layout, variant);
  const int p = api.num_cores();
  const int self = api.rank();
  const double box = params.model.box_length;
  const double volume = box * box * box;
  const double beta = params.model.beta;
  const double mu = params.model.chemical_potential;

  // --- initial configuration (deterministic, identical on all cores) -----
  for (int g = 0; g < params.particles_total; ++g) {
    const int owner = g % p;
    const int slot = g / p;
    SCC_EXPECTS(slot < params.max_local_particles);
    Particle particle = st.local.make_particle(st.rng);
    st.alive[static_cast<std::size_t>(owner)][static_cast<std::size_t>(slot)] =
        true;
    if (owner == self) st.local.slot(slot) = particle;
  }
  // InitialEnergy(): one long-range evaluation; the short-range total is
  // tracked incrementally from 0 like the application does.
  co_await api.sync_barrier();
  st.en_total = co_await long_en(api, params, comm, st);

  aligned_vector<double> bcast_buf(
      static_cast<std::size_t>(params.model.atoms_per_particle) * 4 + 1);

  // --- Algorithm 1 main loop ---------------------------------------------
  for (int cycle = 0; cycle < params.cycles; ++cycle) {
    ++st.attempted;
    const std::uint64_t dice = st.rng.below(100);
    Action action = Action::kTranslate;
    if (dice >= kTranslatePct + kInsertPct) action = Action::kDelete;
    else if (dice >= kTranslatePct) action = Action::kInsert;
    const int n_alive = st.global_alive();
    if ((action != Action::kInsert && n_alive == 0)) continue;

    int owner = -1;
    int slot = -1;
    if (action == Action::kInsert) {
      owner = static_cast<int>(st.rng.below(static_cast<std::uint64_t>(p)));
      slot = st.free_slot_of(owner);
      if (slot < 0) continue;  // capacity full: auto-reject, RNG stays sync'd
    } else {
      const auto target =
          st.nth_alive(static_cast<int>(st.rng.below(
              static_cast<std::uint64_t>(n_alive))));
      owner = target.first;
      slot = target.second;
    }
    const bool is_owner = owner == self;

    // Old state of the probe: the owner broadcasts it so every core can
    // evaluate the short-range terms (not needed for insertions).
    Particle probe_old;
    probe_old.atoms.resize(
        static_cast<std::size_t>(params.model.atoms_per_particle));
    if (action != Action::kInsert) {
      if (is_owner) pack_particle(st.local.slot(slot), st.en_total, bcast_buf);
      co_await comm.broadcast(
          std::span<double>(bcast_buf.data(), bcast_buf.size()), owner);
      std::size_t i = 0;
      probe_old.alive = true;
      for (Atom& a : probe_old.atoms) {
        a.pos = {bcast_buf[i], bcast_buf[i + 1], bcast_buf[i + 2]};
        a.charge = bcast_buf[i + 3];
        i += 4;
      }
    }

    // en_new = en_old - ShortEn(particle) - LongEn()   (Algorithm 1 line 5)
    double en_new = st.en_total;
    if (action != Action::kInsert) {
      en_new -= co_await short_en(api, params, comm, st, probe_old, slot,
                                  is_owner);
    }
    en_new -= co_await long_en(api, params, comm, st);

    // DoGCMCMove: construct the new probe state from the shared RNG stream
    // (identical on all cores) and apply it at the owner.
    Particle probe_new;
    if (action == Action::kTranslate) {
      probe_new = probe_old;
      Vec3 delta{};
      for (double& d : delta)
        d = st.rng.uniform(-params.model.max_translation,
                           params.model.max_translation);
      for (Atom& a : probe_new.atoms)
        for (int d = 0; d < 3; ++d)
          a.pos[static_cast<std::size_t>(d)] += delta[static_cast<std::size_t>(d)];
    } else if (action == Action::kInsert) {
      probe_new = st.local.make_particle(st.rng);
    }
    // Apply provisionally.
    Particle saved;
    if (is_owner) {
      saved = st.local.slot(slot);
      if (action == Action::kDelete) {
        st.local.slot(slot).alive = false;
      } else {
        st.local.slot(slot) = probe_new;
      }
    }
    auto alive_ref = [&]() -> std::vector<bool>::reference {
      return st.alive[static_cast<std::size_t>(owner)]
                     [static_cast<std::size_t>(slot)];
    };
    const bool alive_before = alive_ref();
    alive_ref() = action != Action::kDelete;

    // en_new += ShortEn(particle) + LongEn()   (Algorithm 1 line 8)
    if (action != Action::kDelete) {
      en_new += co_await short_en(api, params, comm, st, probe_new, slot,
                                  is_owner);
    }
    en_new += co_await long_en(api, params, comm, st);

    // Metropolis / GCMC acceptance; the shared RNG keeps all cores in
    // agreement without communication.
    const double delta_e = en_new - st.en_total;
    double acc = std::exp(-beta * delta_e);
    if (action == Action::kInsert) {
      acc *= volume / static_cast<double>(n_alive + 1) * std::exp(beta * mu);
    } else if (action == Action::kDelete) {
      acc *= static_cast<double>(n_alive) / volume * std::exp(-beta * mu);
    }
    const bool accept = st.rng.uniform() < std::min(1.0, acc);
    if (accept) {
      st.en_total = en_new;
      ++st.accepted;
    } else {
      if (is_owner) st.local.slot(slot) = saved;  // RestoreConfig
      alive_ref() = alive_before;
    }

    // BroadcastUpdate(particle, en_new)  (Algorithm 1 line 13)
    if (is_owner) {
      const Particle& current =
          st.local.slot(slot).alive ? st.local.slot(slot) : probe_old;
      pack_particle(current, st.en_total, bcast_buf);
    }
    co_await comm.broadcast(
        std::span<double>(bcast_buf.data(), bcast_buf.size()), owner);
  }
  co_await api.sync_barrier();
  st.finish_time = api.now();
}

}  // namespace

AppResult run_app(const AppParams& params, harness::PaperVariant variant,
                  machine::SccConfig config) {
  const int p = config.num_cores();
  SCC_EXPECTS(params.particles_total <= params.max_local_particles * p);
  rcce::Layout layout(p);
  int flags_needed = layout.flags_needed();
  std::optional<rckmpi::ChannelLayout> mpi_layout;
  if (variant == harness::PaperVariant::kRckmpi) {
    mpi_layout.emplace(layout);
    flags_needed = mpi_layout->flags_needed();
  }
  config.flags_per_core = std::max(config.flags_per_core, flags_needed);
  machine::SccMachine machine(config);

  const KSpace kspace(params.model);
  std::vector<CoreState> states;
  states.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) states.emplace_back(params, kspace, p);

  for (int r = 0; r < p; ++r) {
    machine.launch(r, gcmc_core(machine.core(r), layout,
                                mpi_layout ? &*mpi_layout : nullptr, params,
                                variant, states[static_cast<std::size_t>(r)]));
  }
  machine.run();

  // Cross-core consistency: the shared-RNG SPMD scheme must leave every
  // core with identical global observables.
  for (int r = 1; r < p; ++r) {
    const auto& a = states[0];
    const auto& b = states[static_cast<std::size_t>(r)];
    if (a.en_total != b.en_total || a.accepted != b.accepted ||
        a.global_alive() != b.global_alive()) {
      throw std::runtime_error("gcmc: cores disagree on global state");
    }
  }

  AppResult result;
  result.runtime = states[0].finish_time;
  result.final_energy = states[0].en_total;
  result.accepted = states[0].accepted;
  result.attempted = states[0].attempted;
  result.final_particles = states[0].global_alive();
  result.profiles.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    result.profiles.push_back(machine.core(r).profile());
  return result;
}

}  // namespace scc::gcmc
