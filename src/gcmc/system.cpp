#include "gcmc/system.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace scc::gcmc {

namespace {

constexpr double kTwoPi = 6.283185307179586;

double min_image(double d, double box) {
  while (d > 0.5 * box) d -= box;
  while (d < -0.5 * box) d += box;
  return d;
}

}  // namespace

KSpace::KSpace(const ModelParams& params) {
  struct Entry {
    int n2;
    std::array<int, 3> n;
  };
  std::vector<Entry> entries;
  // Enumerate integer vectors in a cube big enough to yield kmaxvecs
  // entries; 276 fits comfortably inside |n|_inf <= 5.
  int limit = 2;
  while (true) {
    entries.clear();
    for (int x = -limit; x <= limit; ++x)
      for (int y = -limit; y <= limit; ++y)
        for (int z = -limit; z <= limit; ++z) {
          const int n2 = x * x + y * y + z * z;
          if (n2 == 0) continue;
          entries.push_back({n2, {x, y, z}});
        }
    if (entries.size() >= static_cast<std::size_t>(params.kmaxvecs)) break;
    ++limit;
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.n2 != b.n2) return a.n2 < b.n2;
    return a.n < b.n;
  });
  entries.resize(static_cast<std::size_t>(params.kmaxvecs));
  const double scale = kTwoPi / params.box_length;
  kvecs.reserve(entries.size());
  coeff.reserve(entries.size());
  for (const Entry& e : entries) {
    kvecs.push_back({scale * e.n[0], scale * e.n[1], scale * e.n[2]});
    const double k2 = scale * scale * static_cast<double>(e.n2);
    coeff.push_back(std::exp(-params.ewald_eta * k2) / k2);
  }
}

LocalSystem::LocalSystem(const ModelParams& params, int max_local_particles)
    : params_(params),
      particles_(static_cast<std::size_t>(max_local_particles)) {
  SCC_EXPECTS(max_local_particles > 0);
}

int LocalSystem::alive_count() const {
  int count = 0;
  for (const Particle& p : particles_)
    if (p.alive) ++count;
  return count;
}

int LocalSystem::free_slot() const {
  for (std::size_t i = 0; i < particles_.size(); ++i)
    if (!particles_[i].alive) return static_cast<int>(i);
  return -1;
}

Particle LocalSystem::make_particle(Xoshiro256& rng) const {
  Particle p;
  p.alive = true;
  p.atoms.resize(static_cast<std::size_t>(params_.atoms_per_particle));
  const Vec3 center{rng.uniform(0.0, params_.box_length),
                    rng.uniform(0.0, params_.box_length),
                    rng.uniform(0.0, params_.box_length)};
  double charge_sum = 0.0;
  for (std::size_t a = 0; a < p.atoms.size(); ++a) {
    Atom& atom = p.atoms[a];
    for (int d = 0; d < 3; ++d) {
      atom.pos[static_cast<std::size_t>(d)] =
          center[static_cast<std::size_t>(d)] + 0.3 * rng.uniform(-1.0, 1.0);
    }
    atom.charge = (a + 1 < p.atoms.size()) ? rng.uniform(-0.5, 0.5) : 0.0;
    charge_sum += atom.charge;
  }
  // Neutralize: the last atom balances the molecule's total charge.
  p.atoms.back().charge = -charge_sum;
  return p;
}

LocalSystem::ShortRange LocalSystem::short_range(const Particle& probe,
                                                 int skip_slot) const {
  ShortRange result;
  const double cutoff2 = params_.lj_cutoff * params_.lj_cutoff;
  const double sigma2 = params_.lj_sigma * params_.lj_sigma;
  for (std::size_t s = 0; s < particles_.size(); ++s) {
    if (static_cast<int>(s) == skip_slot) continue;
    const Particle& other = particles_[s];
    if (!other.alive) continue;
    for (const Atom& a : probe.atoms) {
      for (const Atom& b : other.atoms) {
        double r2 = 0.0;
        for (int d = 0; d < 3; ++d) {
          const double delta = min_image(
              a.pos[static_cast<std::size_t>(d)] - b.pos[static_cast<std::size_t>(d)],
              params_.box_length);
          r2 += delta * delta;
        }
        ++result.pairs;
        if (r2 >= cutoff2 || r2 == 0.0) continue;
        const double sr2 = sigma2 / r2;
        const double sr6 = sr2 * sr2 * sr2;
        result.energy += 4.0 * params_.lj_epsilon * (sr6 * sr6 - sr6);
      }
    }
  }
  return result;
}

void LocalSystem::structure_factors(
    const KSpace& kspace, std::vector<std::complex<double>>& f_local,
    std::uint64_t& evaluations) const {
  f_local.assign(kspace.kvecs.size(), {0.0, 0.0});
  evaluations = 0;
  for (const Particle& p : particles_) {
    if (!p.alive) continue;
    for (const Atom& atom : p.atoms) {
      for (std::size_t k = 0; k < kspace.kvecs.size(); ++k) {
        const Vec3& kv = kspace.kvecs[k];
        const double phase = kv[0] * atom.pos[0] + kv[1] * atom.pos[1] +
                             kv[2] * atom.pos[2];
        f_local[k] += atom.charge *
                      std::complex<double>(std::cos(phase), std::sin(phase));
        ++evaluations;
      }
    }
  }
}

double LocalSystem::long_range_energy(
    const KSpace& kspace,
    const std::vector<std::complex<double>>& f_total) const {
  SCC_EXPECTS(f_total.size() == kspace.coeff.size());
  double energy = 0.0;
  const double volume =
      params_.box_length * params_.box_length * params_.box_length;
  for (std::size_t k = 0; k < f_total.size(); ++k) {
    energy += kspace.coeff[k] / volume * std::norm(f_total[k]);
  }
  return energy;
}

}  // namespace scc::gcmc
