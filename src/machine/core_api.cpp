#include "machine/core_api.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/string_util.hpp"
#include "machine/scc_machine.hpp"

namespace scc::machine {

CoreApi::CoreApi(SccMachine& machine, int rank)
    : machine_(&machine),
      rank_(rank),
      partition_(machine.partition_of_core(rank)),
      engine_(&machine.engine_of_core(rank)) {
  SCC_EXPECTS(rank >= 0 && rank < machine.num_cores());
}

int CoreApi::num_cores() const { return machine_->num_cores(); }

SimTime CoreApi::now() const { return engine_->now(); }

const mem::CostModel& CoreApi::cost() const {
  return machine_->config().cost;
}

bool CoreApi::cross_partition(int core) const {
  return machine_->partition_of_core(core) != partition_;
}

sim::Task<> CoreApi::charge_impl(Phase phase, SimTime duration,
                                 std::string detail) {
  profile_.add(phase, duration);
  if (auto* trace = machine_->trace_of(partition_)) {
    const SimTime start = now();
    trace->interval(rank_, phase_name(phase), start, start + duration,
                    std::move(detail));
  }
  co_await engine_->sleep_for(duration);
}

sim::Task<> CoreApi::compute(std::uint64_t core_cycles) {
  return charge_impl(Phase::kCompute,
                     machine_->latency().core_cycles(core_cycles, rank_));
}

sim::Task<> CoreApi::overhead(std::uint64_t core_cycles) {
  return charge_impl(Phase::kSwOverhead,
                     machine_->latency().core_cycles(core_cycles, rank_));
}

sim::Task<> CoreApi::wait_poll(std::uint64_t core_cycles,
                               std::uint64_t after_cycles) {
  const auto& latency = machine_->latency();
  return charge_impl(
      Phase::kFlagWait,
      latency.core_cycles(after_cycles + core_cycles, rank_) -
          latency.core_cycles(after_cycles, rank_));
}

sim::Task<> CoreApi::charge(Phase phase, SimTime duration) {
  return charge_impl(phase, duration);
}

SimTime CoreApi::contention_delay(int from, int to, std::size_t bytes) {
  if (!cost().hw.model_link_contention || from == to) return SimTime::zero();
  return machine_->charge_contention(from, to, mem::lines_for(bytes),
                                     engine_->now(), partition_);
}

sim::Task<> CoreApi::mpb_put(mem::MpbAddr dst,
                             std::span<const std::byte> src) {
  SimTime t =
      machine_->latency().mpb_bulk(rank_, dst.core, src.size(), /*is_read=*/false);
  if (dst.core != rank_) {
    machine_->traffic_of(partition_).record_transfer(rank_, dst.core,
                                                     mem::lines_for(src.size()));
    t += contention_delay(rank_, dst.core, src.size());
  }
  if (cross_partition(dst.core)) {
    // The functional store lands on the owner's partition exactly at this
    // charge's completion. The bytes are staged NOW (the caller is blocked
    // for the whole charge, so issue-time and completion-time contents are
    // the same core-visible value) because the source span may point at
    // stack memory the posted callable would outlive.
    SCC_EXPECTS(t >= machine_->pdes().lookahead());
    std::vector<std::byte> staged(src.begin(), src.end());
    machine_->pdes().post(
        partition_, machine_->partition_of_core(dst.core), now() + t,
        sim::SmallCallable(
            [m = machine_, dst, staged = std::move(staged)] {
              m->mpb().write(dst, staged);
            }));
    co_await charge_impl(Phase::kMpbTransfer, t);
    co_return;
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
  machine_->mpb().write(dst, src);
}

sim::Task<> CoreApi::mpb_get(mem::MpbAddr src, std::span<std::byte> dst) {
  SimTime t =
      machine_->latency().mpb_bulk(rank_, src.core, dst.size(), /*is_read=*/true);
  if (src.core != rank_) {
    machine_->traffic_of(partition_).record_transfer(src.core, rank_,
                                                     mem::lines_for(dst.size()));
    t += contention_delay(src.core, rank_, dst.size());
  }
  if (cross_partition(src.core)) {
    // Remote read: the owner's partition copies the bytes out at
    // (completion - lookahead). A read charge pays the boundary twice
    // (request + reply), so completion - lookahead is itself >= lookahead
    // ahead of now -- the copy-post honours the conservative contract
    // (audited) -- and the window barrier between the copy and this core's
    // resume at completion is the happens-before edge that makes the dst
    // buffer safely visible.
    const SimTime lookahead = machine_->pdes().lookahead();
    SCC_EXPECTS(t >= lookahead + lookahead);
    machine_->pdes().post(
        partition_, machine_->partition_of_core(src.core),
        now() + t - lookahead,
        sim::SmallCallable([m = machine_, src, dst] { m->mpb().read(src, dst); }));
    co_await charge_impl(Phase::kMpbTransfer, t);
    co_return;
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
  machine_->mpb().read(src, dst);
}

sim::Task<> CoreApi::mpb_charge(int mpb_owner, std::size_t bytes,
                                bool is_read) {
  SimTime t = machine_->latency().mpb_bulk(rank_, mpb_owner, bytes, is_read);
  if (mpb_owner != rank_) {
    const int from = is_read ? mpb_owner : rank_;
    const int to = is_read ? rank_ : mpb_owner;
    machine_->traffic_of(partition_).record_transfer(from, to,
                                                     mem::lines_for(bytes));
    t += contention_delay(from, to, bytes);
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
}

sim::Task<> CoreApi::mpb_word_charge(int mpb_owner, std::size_t bytes,
                                     bool is_read) {
  SimTime t =
      machine_->latency().mpb_word_stream(rank_, mpb_owner, bytes, is_read);
  if (mpb_owner != rank_) {
    const int from = is_read ? mpb_owner : rank_;
    const int to = is_read ? rank_ : mpb_owner;
    machine_->traffic_of(partition_).record_transfer(from, to,
                                                     mem::lines_for(bytes));
    t += contention_delay(from, to, bytes);
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
}

sim::Task<> CoreApi::mpb_word_get(mem::MpbAddr src, std::span<std::byte> dst) {
  SimTime t = machine_->latency().mpb_word_stream(rank_, src.core, dst.size(),
                                                  /*is_read=*/true);
  if (src.core != rank_) {
    machine_->traffic_of(partition_).record_transfer(src.core, rank_,
                                                     mem::lines_for(dst.size()));
    t += contention_delay(src.core, rank_, dst.size());
  }
  if (cross_partition(src.core)) {
    // Same owner-side copy-out protocol as the cross-partition mpb_get;
    // word-stream reads also pay the boundary both ways, so the half-
    // weighted lookahead derivation covers this charge too.
    const SimTime lookahead = machine_->pdes().lookahead();
    SCC_EXPECTS(t >= lookahead + lookahead);
    machine_->pdes().post(
        partition_, machine_->partition_of_core(src.core),
        now() + t - lookahead,
        sim::SmallCallable([m = machine_, src, dst] { m->mpb().read(src, dst); }));
    co_await charge_impl(Phase::kMpbTransfer, t);
    co_return;
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
  machine_->mpb().read(src, dst);
}

sim::Task<> CoreApi::mpb_apply_write(int mpb_owner, std::size_t bytes,
                                     sim::SmallCallable apply) {
  SCC_EXPECTS(static_cast<bool>(apply));
  SimTime t = machine_->latency().mpb_bulk(rank_, mpb_owner, bytes,
                                           /*is_read=*/false);
  if (mpb_owner != rank_) {
    machine_->traffic_of(partition_).record_transfer(rank_, mpb_owner,
                                                     mem::lines_for(bytes));
    t += contention_delay(rank_, mpb_owner, bytes);
  }
  if (cross_partition(mpb_owner)) {
    SCC_EXPECTS(t >= machine_->pdes().lookahead());
    machine_->pdes().post(partition_, machine_->partition_of_core(mpb_owner),
                          now() + t, std::move(apply));
    co_await charge_impl(Phase::kMpbTransfer, t);
    co_return;
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
  apply();
}

std::span<std::byte> CoreApi::mpb_window(mem::MpbAddr addr,
                                         std::size_t bytes) {
  // Partition locality: a window is raw shared storage, so on a
  // partitioned machine only the owning slab may touch it.
  SCC_EXPECTS(!cross_partition(addr.core));
  return machine_->mpb().range(addr, bytes);
}

namespace {
// Charges are normalized to whole cache lines starting at the pointer's
// line so the line COUNT depends only on the byte count, never on where
// the host allocator placed the buffer (run-to-run determinism).
std::uintptr_t norm_base(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) & ~std::uintptr_t{mem::kCacheLineBytes - 1};
}
std::size_t norm_bytes(std::size_t bytes) {
  return mem::lines_for(bytes) * mem::kCacheLineBytes;
}
}  // namespace

sim::Task<> CoreApi::priv_read(const void* p, std::size_t bytes) {
  const auto result =
      machine_->cache(rank_).touch_read(norm_base(p), norm_bytes(bytes));
  co_await charge_impl(Phase::kPrivMem,
                       machine_->latency().priv_access(rank_, result));
}

sim::Task<> CoreApi::priv_write(void* p, std::size_t bytes) {
  const auto result =
      machine_->cache(rank_).touch_write(norm_base(p), norm_bytes(bytes));
  co_await charge_impl(Phase::kPrivMem,
                       machine_->latency().priv_access(rank_, result));
}

sim::Task<> CoreApi::flag_set(FlagRef ref, FlagValue value) {
  SimTime t =
      machine_->latency().mpb_line_access(rank_, ref.owner_core,
                                          /*is_read=*/false) +
      machine_->latency().core_cycles(cost().sw.flag_op, rank_);
  t += contention_delay(rank_, ref.owner_core, 1);
  // The deposit lands at the END of this charge; the "set c:i" detail lets
  // the blame engine pair a waiter's wakeup with the setting core (the
  // waiter's wait interval ends exactly when this interval does).
  std::string detail;
  if (machine_->trace_of(partition_) != nullptr) {
    detail = strprintf("set %d:%d", ref.owner_core, ref.index);
  }
  if (cross_partition(ref.owner_core)) {
    // The deposit is the flag's functional effect: it must execute on the
    // owner's partition (whose engine the flag's wait queue is bound to).
    // Its remote-line-write charge clears the lookahead contract (audited).
    SCC_EXPECTS(t >= machine_->pdes().lookahead());
    machine_->pdes().post(
        partition_, machine_->partition_of_core(ref.owner_core), now() + t,
        sim::SmallCallable(
            [m = machine_, ref, value] { m->flags().deposit(ref, value); }));
    co_await charge_impl(Phase::kFlagOp, t, std::move(detail));
    co_return;
  }
  co_await charge_impl(Phase::kFlagOp, t, std::move(detail));
  machine_->flags().deposit(ref, value);
}

sim::Task<> CoreApi::flag_wait(FlagRef ref, FlagValue value) {
  // Waits are partition-local by protocol design: every stack waits only
  // on flags in its OWN MPB (the RCCE discipline). A cross-partition wait
  // would read remote state without paying the mesh -- forbidden.
  SCC_EXPECTS(!cross_partition(ref.owner_core));
  auto& flags = machine_->flags();
  const SimTime start = now();
  while (flags.value(ref) != value) {
    co_await flags.waiters(ref).wait();
  }
  profile_.add(Phase::kFlagWait, now() - start);
  if (auto* trace = machine_->trace_of(partition_)) {
    trace->interval(rank_, phase_name(Phase::kFlagWait), start, now(),
                    strprintf("flag %d:%d", ref.owner_core, ref.index));
  }
  // The read that detects the value: the final poll iteration of
  // wait_until, so it profiles as wait time, not as a standalone flag op.
  const SimTime t =
      machine_->latency().mpb_line_access(rank_, ref.owner_core,
                                          /*is_read=*/true) +
      machine_->latency().core_cycles(cost().sw.flag_op, rank_);
  co_await charge_impl(Phase::kFlagWait, t);
}

sim::Task<FlagValue> CoreApi::flag_wait_change(FlagRef ref,
                                               FlagValue last_seen) {
  SCC_EXPECTS(!cross_partition(ref.owner_core));
  auto& flags = machine_->flags();
  const SimTime start = now();
  while (flags.value(ref) == last_seen) {
    co_await flags.waiters(ref).wait();
  }
  profile_.add(Phase::kFlagWait, now() - start);
  if (auto* trace = machine_->trace_of(partition_)) {
    trace->interval(rank_, phase_name(Phase::kFlagWait), start, now(),
                    strprintf("flag %d:%d", ref.owner_core, ref.index));
  }
  const SimTime t =
      machine_->latency().mpb_line_access(rank_, ref.owner_core,
                                          /*is_read=*/true) +
      machine_->latency().core_cycles(cost().sw.flag_op, rank_);
  co_await charge_impl(Phase::kFlagWait, t);
  co_return machine_->flags().value(ref);
}

sim::Task<FlagValue> CoreApi::flag_read(FlagRef ref) {
  SCC_EXPECTS(!cross_partition(ref.owner_core));
  const SimTime t = machine_->latency().mpb_line_access(rank_, ref.owner_core,
                                                        /*is_read=*/true);
  co_await charge_impl(Phase::kFlagOp, t);
  co_return machine_->flags().value(ref);
}

FlagValue CoreApi::flag_peek(FlagRef ref) const {
  SCC_EXPECTS(!cross_partition(ref.owner_core));
  return machine_->flags().value(ref);
}

sim::Task<> CoreApi::sync_barrier() {
  auto& barrier = machine_->harness_barrier(partition_);
  if (machine_->partitions() == 1) {
    // Serial machine: the exact pre-PDES inline-release path (the last
    // arriver releases everyone at its own arrival instant).
    const std::uint64_t my_generation = barrier.generation;
    if (++barrier.arrived == num_cores()) {
      barrier.arrived = 0;
      ++barrier.generation;
      barrier.queue.notify_all();
      co_return;
    }
    while (barrier.generation == my_generation) {
      co_await barrier.queue.wait();
    }
    co_return;
  }
  // Partitioned: every arriver parks on its own shard. The barrier has no
  // mesh latency of its own, so it cannot be expressed as lookahead-
  // respecting posts; instead the PDES quiescence hook releases every
  // shard at the deterministic global release instant once all cores have
  // arrived and the mesh has drained
  // (SccMachine::release_harness_barrier).
  const std::uint64_t my_generation = barrier.generation;
  ++barrier.arrived;
  barrier.last_arrival = std::max(barrier.last_arrival, now());
  while (barrier.generation == my_generation) {
    co_await barrier.queue.wait();
  }
}

}  // namespace scc::machine
