#include "machine/core_api.hpp"

#include <cstring>

#include "common/string_util.hpp"
#include "machine/scc_machine.hpp"

namespace scc::machine {

CoreApi::CoreApi(SccMachine& machine, int rank)
    : machine_(&machine), rank_(rank) {
  SCC_EXPECTS(rank >= 0 && rank < machine.num_cores());
}

int CoreApi::num_cores() const { return machine_->num_cores(); }

SimTime CoreApi::now() const { return machine_->engine().now(); }

const mem::CostModel& CoreApi::cost() const {
  return machine_->config().cost;
}

sim::Task<> CoreApi::charge_impl(Phase phase, SimTime duration,
                                 std::string detail) {
  profile_.add(phase, duration);
  if (auto* trace = machine_->trace()) {
    const SimTime start = now();
    trace->interval(rank_, phase_name(phase), start, start + duration,
                    std::move(detail));
  }
  co_await machine_->engine().sleep_for(duration);
}

sim::Task<> CoreApi::compute(std::uint64_t core_cycles) {
  return charge_impl(Phase::kCompute,
                     machine_->latency().core_cycles(core_cycles, rank_));
}

sim::Task<> CoreApi::overhead(std::uint64_t core_cycles) {
  return charge_impl(Phase::kSwOverhead,
                     machine_->latency().core_cycles(core_cycles, rank_));
}

sim::Task<> CoreApi::wait_poll(std::uint64_t core_cycles,
                               std::uint64_t after_cycles) {
  const auto& latency = machine_->latency();
  return charge_impl(
      Phase::kFlagWait,
      latency.core_cycles(after_cycles + core_cycles, rank_) -
          latency.core_cycles(after_cycles, rank_));
}

sim::Task<> CoreApi::charge(Phase phase, SimTime duration) {
  return charge_impl(phase, duration);
}

SimTime CoreApi::contention_delay(int from, int to, std::size_t bytes) {
  if (!cost().hw.model_link_contention || from == to) return SimTime::zero();
  return machine_->contention().occupy(from, to, mem::lines_for(bytes),
                                       machine_->engine().now());
}

sim::Task<> CoreApi::mpb_put(mem::MpbAddr dst,
                             std::span<const std::byte> src) {
  SimTime t =
      machine_->latency().mpb_bulk(rank_, dst.core, src.size(), /*is_read=*/false);
  if (dst.core != rank_) {
    machine_->traffic().record_transfer(rank_, dst.core,
                                        mem::lines_for(src.size()));
    t += contention_delay(rank_, dst.core, src.size());
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
  machine_->mpb().write(dst, src);
}

sim::Task<> CoreApi::mpb_get(mem::MpbAddr src, std::span<std::byte> dst) {
  SimTime t =
      machine_->latency().mpb_bulk(rank_, src.core, dst.size(), /*is_read=*/true);
  if (src.core != rank_) {
    machine_->traffic().record_transfer(src.core, rank_,
                                        mem::lines_for(dst.size()));
    t += contention_delay(src.core, rank_, dst.size());
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
  machine_->mpb().read(src, dst);
}

sim::Task<> CoreApi::mpb_charge(int mpb_owner, std::size_t bytes,
                                bool is_read) {
  SimTime t = machine_->latency().mpb_bulk(rank_, mpb_owner, bytes, is_read);
  if (mpb_owner != rank_) {
    const int from = is_read ? mpb_owner : rank_;
    const int to = is_read ? rank_ : mpb_owner;
    machine_->traffic().record_transfer(from, to, mem::lines_for(bytes));
    t += contention_delay(from, to, bytes);
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
}

sim::Task<> CoreApi::mpb_word_charge(int mpb_owner, std::size_t bytes,
                                     bool is_read) {
  SimTime t =
      machine_->latency().mpb_word_stream(rank_, mpb_owner, bytes, is_read);
  if (mpb_owner != rank_) {
    const int from = is_read ? mpb_owner : rank_;
    const int to = is_read ? rank_ : mpb_owner;
    machine_->traffic().record_transfer(from, to, mem::lines_for(bytes));
    t += contention_delay(from, to, bytes);
  }
  co_await charge_impl(Phase::kMpbTransfer, t);
}

std::span<std::byte> CoreApi::mpb_window(mem::MpbAddr addr,
                                         std::size_t bytes) {
  return machine_->mpb().range(addr, bytes);
}

namespace {
// Charges are normalized to whole cache lines starting at the pointer's
// line so the line COUNT depends only on the byte count, never on where
// the host allocator placed the buffer (run-to-run determinism).
std::uintptr_t norm_base(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) & ~std::uintptr_t{mem::kCacheLineBytes - 1};
}
std::size_t norm_bytes(std::size_t bytes) {
  return mem::lines_for(bytes) * mem::kCacheLineBytes;
}
}  // namespace

sim::Task<> CoreApi::priv_read(const void* p, std::size_t bytes) {
  const auto result =
      machine_->cache(rank_).touch_read(norm_base(p), norm_bytes(bytes));
  co_await charge_impl(Phase::kPrivMem,
                       machine_->latency().priv_access(rank_, result));
}

sim::Task<> CoreApi::priv_write(void* p, std::size_t bytes) {
  const auto result =
      machine_->cache(rank_).touch_write(norm_base(p), norm_bytes(bytes));
  co_await charge_impl(Phase::kPrivMem,
                       machine_->latency().priv_access(rank_, result));
}

sim::Task<> CoreApi::flag_set(FlagRef ref, FlagValue value) {
  SimTime t =
      machine_->latency().mpb_line_access(rank_, ref.owner_core,
                                          /*is_read=*/false) +
      machine_->latency().core_cycles(cost().sw.flag_op, rank_);
  t += contention_delay(rank_, ref.owner_core, 1);
  // The deposit lands at the END of this charge; the "set c:i" detail lets
  // the blame engine pair a waiter's wakeup with the setting core (the
  // waiter's wait interval ends exactly when this interval does).
  std::string detail;
  if (machine_->trace() != nullptr) {
    detail = strprintf("set %d:%d", ref.owner_core, ref.index);
  }
  co_await charge_impl(Phase::kFlagOp, t, std::move(detail));
  machine_->flags().deposit(ref, value);
}

sim::Task<> CoreApi::flag_wait(FlagRef ref, FlagValue value) {
  auto& flags = machine_->flags();
  const SimTime start = now();
  while (flags.value(ref) != value) {
    co_await flags.waiters(ref).wait();
  }
  profile_.add(Phase::kFlagWait, now() - start);
  if (auto* trace = machine_->trace()) {
    trace->interval(rank_, phase_name(Phase::kFlagWait), start, now(),
                    strprintf("flag %d:%d", ref.owner_core, ref.index));
  }
  // The read that detects the value: the final poll iteration of
  // wait_until, so it profiles as wait time, not as a standalone flag op.
  const SimTime t =
      machine_->latency().mpb_line_access(rank_, ref.owner_core,
                                          /*is_read=*/true) +
      machine_->latency().core_cycles(cost().sw.flag_op, rank_);
  co_await charge_impl(Phase::kFlagWait, t);
}

sim::Task<FlagValue> CoreApi::flag_wait_change(FlagRef ref,
                                               FlagValue last_seen) {
  auto& flags = machine_->flags();
  const SimTime start = now();
  while (flags.value(ref) == last_seen) {
    co_await flags.waiters(ref).wait();
  }
  profile_.add(Phase::kFlagWait, now() - start);
  if (auto* trace = machine_->trace()) {
    trace->interval(rank_, phase_name(Phase::kFlagWait), start, now(),
                    strprintf("flag %d:%d", ref.owner_core, ref.index));
  }
  const SimTime t =
      machine_->latency().mpb_line_access(rank_, ref.owner_core,
                                          /*is_read=*/true) +
      machine_->latency().core_cycles(cost().sw.flag_op, rank_);
  co_await charge_impl(Phase::kFlagWait, t);
  co_return machine_->flags().value(ref);
}

sim::Task<FlagValue> CoreApi::flag_read(FlagRef ref) {
  const SimTime t = machine_->latency().mpb_line_access(rank_, ref.owner_core,
                                                        /*is_read=*/true);
  co_await charge_impl(Phase::kFlagOp, t);
  co_return machine_->flags().value(ref);
}

FlagValue CoreApi::flag_peek(FlagRef ref) const {
  return machine_->flags().value(ref);
}

sim::Task<> CoreApi::sync_barrier() {
  auto& barrier = machine_->harness_barrier();
  const std::uint64_t my_generation = barrier.generation;
  if (++barrier.arrived == num_cores()) {
    barrier.arrived = 0;
    ++barrier.generation;
    barrier.queue.notify_all();
    co_return;
  }
  while (barrier.generation == my_generation) {
    co_await barrier.queue.wait();
  }
}

}  // namespace scc::machine
