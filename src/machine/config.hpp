// Machine-level configuration: topology shape + full cost model.
#pragma once

#include <cstdint>
#include <optional>

#include "faults/fault_spec.hpp"
#include "mem/cost_model.hpp"

namespace scc::machine {

struct SccConfig {
  int tiles_x = 6;
  int tiles_y = 4;
  int cores_per_tile = 2;
  /// Note on cost.hw.mpb_bug_workaround: HwCostModel's default (true) is
  /// THE authoritative default -- the paper's evaluated chip has the
  /// tile-arbiter bug, so paper_default() inherits it unchanged, and
  /// bug_fixed() below is the one deliberate opt-out. Tests pin all three
  /// (tests/machine/test_config.cpp) so the sites cannot drift apart.
  mem::CostModel cost;
  /// Injected machine degradation (stragglers, DVFS, slow/dead links),
  /// applied at the latency layer so every stack and algorithm sees the
  /// same degraded machine. Default-constructed (empty) = healthy machine,
  /// bit-identical to a build without the faults subsystem. DESIGN.md §13.
  faults::FaultSpec faults;
  /// Flags allocatable per core (one-byte flags in MPB space). The default
  /// leaves room for every layer: RCCE needs 2 per partner, RCKMPI one per
  /// partner, collectives a handful of extras.
  int flags_per_core = 256;
  /// When true, MPB contents are poisoned at startup so reads of
  /// never-written areas are detectable in tests.
  bool poison_mpb = false;
  /// Schedule perturbation (testing): when set, the machine's engine fires
  /// equal-time events in a seed-dependent pseudo-random permutation instead
  /// of scheduling order (sim::PerturbConfig). Deterministic per seed.
  std::optional<std::uint64_t> perturb_seed;
  /// With perturb_seed set and this nonzero, every event is additionally
  /// delayed by a uniform random duration in [0, perturb_max_delay_fs] fs.
  std::uint64_t perturb_max_delay_fs = 0;
  /// Conservative-PDES drain (--workers): 0 keeps the single serial engine
  /// (bit-identical to every pre-PDES build). N >= 1 partitions the machine
  /// into tiles_x column slabs driven by min(N, tiles_x) host threads --
  /// the partition COUNT is fixed at tiles_x regardless of N, so every
  /// worker count produces the identical event schedule and artifact bytes
  /// (only wall-clock changes). See DESIGN.md §16.
  int pdes_workers = 0;

  [[nodiscard]] int num_cores() const {
    return tiles_x * tiles_y * cores_per_tile;
  }

  /// The paper's machine: 48 cores, arbiter-bug workaround active.
  static SccConfig paper_default() { return SccConfig{}; }

  /// Hypothetical fixed-silicon SCC (Section IV-D: "with the hardware bug
  /// resolved, we expect to see significantly higher speedups").
  static SccConfig bug_fixed() {
    SccConfig c;
    c.cost.hw.mpb_bug_workaround = false;
    return c;
  }
};

}  // namespace scc::machine
