// Machine-level configuration: topology shape + full cost model.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/cost_model.hpp"

namespace scc::machine {

struct SccConfig {
  int tiles_x = 6;
  int tiles_y = 4;
  int cores_per_tile = 2;
  mem::CostModel cost;
  /// Flags allocatable per core (one-byte flags in MPB space). The default
  /// leaves room for every layer: RCCE needs 2 per partner, RCKMPI one per
  /// partner, collectives a handful of extras.
  int flags_per_core = 256;
  /// When true, MPB contents are poisoned at startup so reads of
  /// never-written areas are detectable in tests.
  bool poison_mpb = false;
  /// Schedule perturbation (testing): when set, the machine's engine fires
  /// equal-time events in a seed-dependent pseudo-random permutation instead
  /// of scheduling order (sim::PerturbConfig). Deterministic per seed.
  std::optional<std::uint64_t> perturb_seed;
  /// With perturb_seed set and this nonzero, every event is additionally
  /// delayed by a uniform random duration in [0, perturb_max_delay_fs] fs.
  std::uint64_t perturb_max_delay_fs = 0;

  [[nodiscard]] int num_cores() const {
    return tiles_x * tiles_y * cores_per_tile;
  }

  /// The paper's machine: 48 cores, arbiter-bug workaround active.
  static SccConfig paper_default() { return SccConfig{}; }

  /// Hypothetical fixed-silicon SCC (Section IV-D: "with the hardware bug
  /// resolved, we expect to see significantly higher speedups").
  static SccConfig bug_fixed() {
    SccConfig c;
    c.cost.hw.mpb_bug_workaround = false;
    return c;
  }
};

}  // namespace scc::machine
