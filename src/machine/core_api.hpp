// CoreApi: the per-core "instruction set" of the simulated SCC.
//
// Every operation a simulated core performs that costs virtual time is an
// awaitable method here. Each op (a) charges latency from the cost model,
// attributed to a profiling phase, and (b) applies its functional effect to
// real storage, so the simulation is simultaneously a timing model and an
// executable implementation whose results tests can verify.
//
// Timing semantics: all operations are core-blocking -- the core's virtual
// time advances by the full charge before the next operation issues. Posted
// remote writes (data puts, flag sets) include their one-way mesh transit
// in the charge, so a value is globally visible no earlier than the
// operation's completion; this is slightly conservative and keeps the
// protocol layers free of reordering concerns (RCCE issues an MPB fence
// before flag writes on the real chip for the same reason).
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/time.hpp"
#include "machine/flags.hpp"
#include "machine/profile.hpp"
#include "mem/cache.hpp"
#include "mem/cost_model.hpp"
#include "mem/latency.hpp"
#include "mem/mpb.hpp"
#include "sim/callable.hpp"
#include "sim/task.hpp"

namespace scc::sim {
class Engine;
}

namespace scc::machine {

class SccMachine;

class CoreApi {
 public:
  CoreApi(SccMachine& machine, int rank);

  CoreApi(const CoreApi&) = delete;
  CoreApi& operator=(const CoreApi&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int num_cores() const;
  /// The core's event-loop partition (0 on a serial machine).
  [[nodiscard]] int partition() const { return partition_; }
  [[nodiscard]] SimTime now() const;
  [[nodiscard]] const mem::CostModel& cost() const;
  [[nodiscard]] CoreProfile& profile() { return profile_; }
  [[nodiscard]] SccMachine& machine() { return *machine_; }

  // --- time-only operations -------------------------------------------
  /// Application arithmetic: n core cycles of compute.
  [[nodiscard]] sim::Task<> compute(std::uint64_t core_cycles);
  /// Library instruction-path overhead: n core cycles.
  [[nodiscard]] sim::Task<> overhead(std::uint64_t core_cycles);
  /// Busy poll-loop cycles inside rcce_wait_until-style spin waits, charged
  /// to Phase::kFlagWait: a function-level profiler attributes them to the
  /// wait primitive even when the flag is already up (paper Section IV-A).
  /// `after_cycles` names the preceding same-site charge: the poll duration
  /// is computed as cycles(after + poll) - cycles(after) so a split charge
  /// pair sums bit-exactly to the unsplit total (Clock::cycles rounds).
  [[nodiscard]] sim::Task<> wait_poll(std::uint64_t core_cycles,
                                      std::uint64_t after_cycles = 0);
  /// Raw charge attributed to an explicit phase.
  [[nodiscard]] sim::Task<> charge(Phase phase, SimTime duration);

  // --- MPB data movement ----------------------------------------------
  /// Copies bytes from this core's private buffer into an MPB.
  [[nodiscard]] sim::Task<> mpb_put(mem::MpbAddr dst,
                                    std::span<const std::byte> src);
  /// Copies bytes from an MPB into this core's private buffer.
  [[nodiscard]] sim::Task<> mpb_get(mem::MpbAddr src,
                                    std::span<std::byte> dst);
  /// Timing-only MPB access charge (fused kernels apply their own effect).
  [[nodiscard]] sim::Task<> mpb_charge(int mpb_owner, std::size_t bytes,
                                       bool is_read);
  /// Timing-only charge for word-granular uncached MPB streaming (the
  /// direct-reduction data path of Section IV-D).
  [[nodiscard]] sim::Task<> mpb_word_charge(int mpb_owner, std::size_t bytes,
                                            bool is_read);
  /// Fused word-granular MPB read: charges mpb_word_stream for dst.size()
  /// bytes (traffic/contention included, like mpb_word_charge) and copies
  /// them from `src` into the caller's private buffer at completion. On a
  /// serial machine this is bit-identical to the old
  /// mpb_word_charge-then-mpb_window idiom; on a partitioned machine the
  /// copy is performed by the MPB owner's partition at
  /// (completion - lookahead), which the read charge provably clears
  /// (charge >= 2 x lookahead, audited).
  [[nodiscard]] sim::Task<> mpb_word_get(mem::MpbAddr src,
                                         std::span<std::byte> dst);

  /// Fused bulk MPB write: charges mpb_bulk(write) for `bytes` (traffic/
  /// contention included, like mpb_charge), then runs `apply` -- which must
  /// perform the actual MPB stores from state it OWNS (staged copies, not
  /// borrowed pointers) -- at completion. Serial: charge then apply()
  /// inline, bit-identical to the old mpb_charge-then-mpb_window idiom.
  /// Partitioned: `apply` is posted to the MPB owner's partition at the
  /// charge's completion (>= lookahead ahead, audited).
  [[nodiscard]] sim::Task<> mpb_apply_write(int mpb_owner, std::size_t bytes,
                                            sim::SmallCallable apply);

  /// Direct functional access to MPB storage (no charge): used by fused
  /// kernels together with mpb_charge, and by tests. Partition-local on a
  /// partitioned machine (audited): remote windows cannot be touched from
  /// another partition's event handler -- use mpb_put/mpb_get/
  /// mpb_word_get/mpb_apply_write, which route the effect through the
  /// owner's partition.
  [[nodiscard]] std::span<std::byte> mpb_window(mem::MpbAddr addr,
                                                std::size_t bytes);

  // --- private (cacheable, off-chip) memory ----------------------------
  [[nodiscard]] sim::Task<> priv_read(const void* p, std::size_t bytes);
  [[nodiscard]] sim::Task<> priv_write(void* p, std::size_t bytes);

  // --- synchronization flags -------------------------------------------
  /// Writes a flag value (local or remote MPB write + fence).
  [[nodiscard]] sim::Task<> flag_set(FlagRef ref, FlagValue value);
  /// Blocks until the flag equals `value`; charges the detecting read (the
  /// final poll iteration). Wait time and the detecting read are both
  /// attributed to Phase::kFlagWait (rcce_wait_until).
  [[nodiscard]] sim::Task<> flag_wait(FlagRef ref, FlagValue value);
  /// Blocks until the flag differs from `last_seen`; returns the new value
  /// and charges the detecting read. Used for cumulative-counter flags
  /// (e.g. the RCKMPI channel's line counters), where equality waits could
  /// miss intermediate values.
  [[nodiscard]] sim::Task<FlagValue> flag_wait_change(FlagRef ref,
                                                      FlagValue last_seen);
  /// Non-blocking probe: charges one flag read, returns current value.
  [[nodiscard]] sim::Task<FlagValue> flag_read(FlagRef ref);
  /// Zero-cost peek for simulator-internal decisions (not charged).
  [[nodiscard]] FlagValue flag_peek(FlagRef ref) const;

  // --- harness-only ------------------------------------------------------
  /// Zero-cost rendezvous of all cores; exists so experiments can align
  /// cores before timing without perturbing the measured protocol.
  [[nodiscard]] sim::Task<> sync_barrier();

 private:
  /// `detail` annotates the traced interval (e.g. "set 3:7" on the flag-set
  /// charge so the blame engine can match waiters to their setter); empty
  /// detail keeps the old behaviour.
  [[nodiscard]] sim::Task<> charge_impl(Phase phase, SimTime duration,
                                        std::string detail = {});
  /// Extra queueing delay from the optional link-contention model.
  [[nodiscard]] SimTime contention_delay(int from, int to, std::size_t bytes);
  /// True when `core` lives on another event-loop partition (always false
  /// on a serial machine).
  [[nodiscard]] bool cross_partition(int core) const;

  SccMachine* machine_;
  int rank_;
  int partition_;
  sim::Engine* engine_;  // the rank's partition engine (cached)
  CoreProfile profile_;
};

}  // namespace scc::machine
