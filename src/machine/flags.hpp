// MPB synchronization flags with timed visibility.
//
// Each core owns a small array of one-byte flags living (conceptually) in
// its MPB. A core polls flags in its *own* MPB cheaply and sets flags in a
// peer's MPB with a posted remote write -- the RCCE discipline. Waits are
// event-driven in the simulator (the waiter parks on the flag's wait queue
// and is resumed when a write lands), which is observationally equivalent
// to busy polling under a contention-free mesh model; the detection read's
// latency is still charged by CoreApi.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/contracts.hpp"
#include "sim/wait_queue.hpp"

namespace scc::machine {

using FlagValue = std::uint8_t;

struct FlagRef {
  int owner_core = 0;  // whose MPB holds the flag
  int index = 0;
};

/// Cumulative flag-traffic counters. `sets` is volume-type (one per
/// protocol deposit, schedule-invariant); `polls` and `wakeups` are
/// time-type (wait re-checks and notify fan-out depend on the
/// interleaving, so they may drift under schedule perturbation).
struct FlagStats {
  std::uint64_t sets = 0;     // deposits (including deposit_add)
  std::uint64_t polls = 0;    // value() reads (wait re-checks, probes, peeks)
  std::uint64_t wakeups = 0;  // waiters resumed by deposits
};

class FlagFile {
 public:
  /// Maps a core rank to the engine its events run on. On a serial machine
  /// every core resolves to the one engine; on a partitioned machine each
  /// flag's wait queue is bound to its OWNER core's partition engine, so a
  /// deposit (which executes on the owner's partition) wakes waiters on the
  /// engine they parked on.
  using EngineResolver = std::function<sim::Engine&(int core)>;

  FlagFile(const EngineResolver& engine_of, int num_cores, int flags_per_core);

  /// Backward-compatible single-engine construction (serial machines,
  /// tests).
  FlagFile(sim::Engine& engine, int num_cores, int flags_per_core)
      : FlagFile([&engine](int) -> sim::Engine& { return engine; }, num_cores,
                 flags_per_core) {}

  [[nodiscard]] FlagValue value(FlagRef ref) const {
    ++stats_[static_cast<std::size_t>(ref.owner_core)].polls;
    return slot(ref).value;
  }

  /// Makes `v` visible at the engine's *current* time and wakes waiters.
  /// Callers are responsible for charging the write latency first and for
  /// scheduling delayed visibility (CoreApi does both).
  void deposit(FlagRef ref, FlagValue v);

  /// Atomic-increment deposit (used by barrier counters).
  FlagValue deposit_add(FlagRef ref, FlagValue delta);

  [[nodiscard]] sim::WaitQueue& waiters(FlagRef ref) {
    return slot(ref).queue;
  }

  [[nodiscard]] int flags_per_core() const { return flags_per_core_; }

  /// Cumulative counters summed over the per-owner-core shards. Sharding by
  /// owner core keeps the partitioned machine race-free: a flag's counters
  /// are only ever touched from its owner's partition (value() reads are
  /// partition-local by the CoreApi locality contract; deposits execute on
  /// the owner's partition engine).
  [[nodiscard]] FlagStats stats() const {
    FlagStats total;
    for (const FlagStats& s : stats_) {
      total.sets += s.sets;
      total.polls += s.polls;
      total.wakeups += s.wakeups;
    }
    return total;
  }

 private:
  struct Slot {
    explicit Slot(sim::Engine& e) : queue(e) {}
    FlagValue value = 0;
    sim::WaitQueue queue;
  };

  [[nodiscard]] Slot& slot(FlagRef ref) {
    SCC_EXPECTS(ref.owner_core >= 0 && ref.owner_core < num_cores_);
    SCC_EXPECTS(ref.index >= 0 && ref.index < flags_per_core_);
    return slots_[static_cast<std::size_t>(ref.owner_core) *
                      static_cast<std::size_t>(flags_per_core_) +
                  static_cast<std::size_t>(ref.index)];
  }
  [[nodiscard]] const Slot& slot(FlagRef ref) const {
    return const_cast<FlagFile*>(this)->slot(ref);
  }

  int num_cores_;
  int flags_per_core_;
  std::vector<Slot> slots_;
  // Mutable: polls are counted on the const read path; purely
  // observational, never feeds back into timing. One shard per owner core.
  mutable std::vector<FlagStats> stats_;
};

}  // namespace scc::machine
