// Per-core time-attribution counters.
//
// The paper motivates its first optimization with a profile: "cores spend
// up to 50% of their time in rcce_wait_until". These counters let the
// reproduction regenerate that profile (bench/tab_wait_profile).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/time.hpp"

namespace scc::machine {

enum class Phase : std::uint8_t {
  kCompute,      // application/reduction arithmetic
  kSwOverhead,   // library instruction-path overhead
  kMpbTransfer,  // moving bytes to/from MPBs
  kPrivMem,      // cacheable private-memory traffic
  kFlagOp,       // setting/clearing synchronization flags
  kFlagWait,     // blocked waiting on a flag (rcce_wait_until time)
  kCount
};

[[nodiscard]] constexpr std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kCompute: return "compute";
    case Phase::kSwOverhead: return "sw-overhead";
    case Phase::kMpbTransfer: return "mpb-transfer";
    case Phase::kPrivMem: return "priv-mem";
    case Phase::kFlagOp: return "flag-op";
    case Phase::kFlagWait: return "flag-wait";
    case Phase::kCount: break;
  }
  return "?";
}

class CoreProfile {
 public:
  void add(Phase p, SimTime t) { time_[index(p)] += t; }
  [[nodiscard]] SimTime get(Phase p) const { return time_[index(p)]; }

  [[nodiscard]] SimTime total() const {
    SimTime sum;
    for (const SimTime t : time_) sum += t;
    return sum;
  }

  void reset() { time_.fill(SimTime::zero()); }

 private:
  static constexpr std::size_t index(Phase p) {
    return static_cast<std::size_t>(p);
  }
  std::array<SimTime, static_cast<std::size_t>(Phase::kCount)> time_{};
};

}  // namespace scc::machine
