#include "machine/scc_machine.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "common/string_util.hpp"

namespace scc::machine {

namespace {

/// Partition count for a config: pdes_workers == 0 keeps the single serial
/// engine; any worker request shards into tiles_x column slabs. The count
/// is a pure function of the topology -- NOT of the worker count -- so
/// every --workers value runs the identical window schedule and produces
/// identical artifact bytes.
int partitions_for(const SccConfig& config) {
  SCC_EXPECTS(config.pdes_workers >= 0);
  return config.pdes_workers > 0 ? config.tiles_x : 1;
}

/// splitmix64 finalizer: decorrelates per-partition perturbation streams
/// derived from one user seed (seed ^ partition alone would correlate
/// neighbouring partitions).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::vector<int> core_partitions(const noc::Topology& topology,
                                 int partitions) {
  std::vector<int> map(static_cast<std::size_t>(topology.num_cores()));
  for (int core = 0; core < topology.num_cores(); ++core)
    map[static_cast<std::size_t>(core)] =
        topology.partition_of(core, partitions);
  return map;
}

}  // namespace

SccMachine::SccMachine(SccConfig config)
    : config_(config),
      topology_(config.tiles_x, config.tiles_y, config.cores_per_tile),
      fault_model_(config_.faults.empty()
                       ? std::optional<faults::FaultModel>{}
                       : std::optional<faults::FaultModel>{std::in_place,
                                                           config_.faults,
                                                           topology_}),
      latency_(config_.cost.hw, topology_, fault_model()),
      partitions_(partitions_for(config_)),
      pdes_(sim::PdesConfig{
          partitions_, std::max(config_.pdes_workers, 1),
          pdes_lookahead(latency_, topology_, partitions_),
          /*instrument_workers=*/false}),
      core_partition_(core_partitions(topology_, partitions_)),
      mpb_(topology_.num_cores()),
      flags_([this](int core) -> sim::Engine& { return engine_of_core(core); },
             topology_.num_cores(), config.flags_per_core),
      traffic_(static_cast<std::size_t>(partitions_),
               noc::TrafficMatrix(topology_)),
      contention_(static_cast<std::size_t>(partitions_),
                  noc::LinkContention(topology_, config_.cost.hw.mesh_clock(),
                                      config_.cost.hw
                                          .link_service_mesh_cycles_per_line,
                                      config_.cost.hw.mesh_cycles_per_hop)) {
  if (fault_model_) {
    // Traffic accounting and the contention model follow the degraded
    // machine too: rerouted paths where links died, stretched service and
    // traversal windows on slow links. Every partition shard gets the same
    // hooks (the fault model is immutable shared state, safe to read from
    // any worker).
    const faults::FaultModel& fm = *fault_model_;
    for (int p = 0; p < partitions_; ++p) {
      if (fm.rerouted()) {
        traffic_of(p).set_route_fn(
            [&fm](int a, int b) -> const std::vector<noc::LinkId>& {
              return fm.route(a, b);
            });
      }
      contention_of(p).set_fault_hooks(
          fm.rerouted()
              ? noc::LinkContention::RouteFn(
                    [&fm](int a, int b) -> const std::vector<noc::LinkId>& {
                      return fm.route(a, b);
                    })
              : noc::LinkContention::RouteFn(),
          [&fm](const noc::LinkId& link) { return fm.link_factor(link); });
    }
  }
  if (config_.perturb_seed) {
    if (partitions_ == 1) {
      pdes_.partition(0).enable_perturbation(sim::PerturbConfig{
          *config_.perturb_seed, SimTime{config_.perturb_max_delay_fs}});
    } else {
      // Perturbation composes per partition (see sim/pdes.hpp): each slab
      // perturbs its own schedule from a seed derived deterministically
      // from the user's -- still one reproducible trace per (seed, config),
      // for any worker count.
      for (int p = 0; p < partitions_; ++p) {
        pdes_.partition(p).enable_perturbation(sim::PerturbConfig{
            mix64(*config_.perturb_seed ^ static_cast<std::uint64_t>(p)),
            SimTime{config_.perturb_max_delay_fs}});
      }
    }
  }
  barrier_.reserve(static_cast<std::size_t>(partitions_));
  for (int p = 0; p < partitions_; ++p) barrier_.emplace_back(pdes_.partition(p));
  pdes_.set_quiescence_hook([this] { return release_harness_barrier(); });
  caches_.reserve(static_cast<std::size_t>(num_cores()));
  cores_.reserve(static_cast<std::size_t>(num_cores()));
  for (int rank = 0; rank < num_cores(); ++rank) {
    caches_.emplace_back(config_.cost.hw);
    cores_.push_back(std::make_unique<CoreApi>(*this, rank));
    if (config_.poison_mpb) mpb_.poison(rank, std::byte{0xCD});
  }
}

void SccMachine::launch(int rank, sim::Task<> program) {
  SCC_EXPECTS(rank >= 0 && rank < num_cores());
  engine_of_core(rank).spawn(std::move(program), strprintf("core%d", rank));
}

void SccMachine::run() {
  pdes_.run();
  splice_traces();
}

bool SccMachine::run_detect_deadlock() {
  const bool ok = pdes_.run_detect_deadlock();
  splice_traces();
  return ok;
}

bool SccMachine::release_harness_barrier() {
  // Fired by the PDES coordinator when every heap and outbox is dry. The
  // serial machine's sync_barrier releases inline (last arriver), so this
  // only ever sees arrivals on a partitioned machine.
  int arrived = 0;
  for (const HarnessBarrier& shard : barrier_) arrived += shard.arrived;
  if (arrived < num_cores()) return false;
  // Global release instant: no core may resume before the last arrival,
  // and no partition clock may run backwards. A pure function of the
  // (deterministic) arrival schedule -- worker-count invariant.
  SimTime release = SimTime::zero();
  for (int p = 0; p < partitions_; ++p) {
    release = std::max({release, barrier_[static_cast<std::size_t>(p)]
                                     .last_arrival,
                        pdes_.partition(p).now()});
  }
  for (int p = 0; p < partitions_; ++p) {
    HarnessBarrier* shard = &barrier_[static_cast<std::size_t>(p)];
    pdes_.partition(p).schedule_call(release, sim::SmallCallable([shard] {
      shard->arrived = 0;
      shard->last_arrival = SimTime::zero();
      ++shard->generation;
      shard->queue.notify_all();
    }));
  }
  return true;
}

void SccMachine::flush_caches() {
  for (auto& cache : caches_) cache.flush_all();
}

void SccMachine::attach_trace(trace::Recorder* recorder) {
  trace_ = recorder;
  if (partitions_ == 1) {
    pdes_.partition(0).set_trace(recorder);
    contention_.front().set_trace(recorder);
    return;
  }
  part_trace_.clear();
  for (int p = 0; p < partitions_; ++p) {
    trace::Recorder* part = nullptr;
    if (recorder) {
      part_trace_.push_back(
          std::make_unique<trace::Recorder>(recorder->capacity()));
      part = part_trace_.back().get();
    }
    pdes_.partition(p).set_trace(part);
    contention_of(p).set_trace(part);
  }
}

void SccMachine::splice_traces() {
  if (partitions_ == 1 || trace_ == nullptr) return;
  // Partition order: deterministic for any worker count (each partition's
  // private recorder saw exactly its own engine's serial event stream).
  for (auto& part : part_trace_) {
    trace_->append_from(*part);
    part->clear();
  }
}

noc::TrafficMatrix SccMachine::merged_traffic() const {
  noc::TrafficMatrix merged = traffic_.front();
  for (std::size_t p = 1; p < traffic_.size(); ++p)
    merged.merge_from(traffic_[p]);
  return merged;
}

std::vector<std::pair<std::string, noc::LinkStats>>
SccMachine::merged_link_stats() const {
  if (partitions_ == 1) return contention_.front().link_stats();
  std::map<std::string, noc::LinkStats> by_name;
  for (const noc::LinkContention& shard : contention_) {
    for (const auto& [name, s] : shard.link_stats()) {
      noc::LinkStats& merged = by_name[name];
      merged.windows += s.windows;
      merged.busy += s.busy;
      merged.queue += s.queue;
      merged.max_queue = std::max(merged.max_queue, s.max_queue);
    }
  }
  return {by_name.begin(), by_name.end()};
}

SimTime SccMachine::contention_total_delay() const {
  SimTime total;
  for (const noc::LinkContention& shard : contention_)
    total += shard.total_delay();
  return total;
}

std::uint64_t SccMachine::contention_delayed_transfers() const {
  std::uint64_t total = 0;
  for (const noc::LinkContention& shard : contention_)
    total += shard.delayed_transfers();
  return total;
}

SimTime SccMachine::charge_contention(int from, int to, std::uint64_t lines,
                                      SimTime now, int source_partition) {
  noc::LinkContention& shard = contention_of(source_partition);
  if (partitions_ == 1) return shard.occupy(from, to, lines, now);
  const SimTime floor = now + pdes_.lookahead();
  return shard.occupy_split(
      from, to, lines, now,
      [&](const noc::LinkId& link) {
        return topology_.partition_of_column(
                   std::min(link.from.x, link.to.x), partitions_) ==
               source_partition;
      },
      [&](const noc::LinkId& link, std::uint64_t l, SimTime arrival) {
        const int owner = topology_.partition_of_column(
            std::min(link.from.x, link.to.x), partitions_);
        // Absorbs may not land before the lookahead contract allows a
        // cross-partition effect to exist (audited; the clamp only engages
        // for links within lookahead of the source's clock).
        const SimTime start = std::max(arrival, floor);
        SCC_EXPECTS(start >= floor);
        pdes_.post(source_partition, owner, start,
                   sim::SmallCallable([this, owner, link, l, start] {
                     contention_of(owner).absorb(link, l, start);
                   }));
      });
}

void launch_spmd(SccMachine& machine,
                 const std::function<sim::Task<>(CoreApi&)>& factory) {
  for (int rank = 0; rank < machine.num_cores(); ++rank) {
    machine.launch(rank, factory(machine.core(rank)));
  }
}

SimTime pdes_lookahead(const mem::LatencyCalculator& latency,
                       const noc::Topology& topology, int partitions) {
  const int hops =
      std::max(1, topology.min_partition_separation_hops(partitions));
  const SimTime floor =
      latency.min_hop_transit() * static_cast<std::uint64_t>(hops);
  if (partitions <= 1) return floor;
  // True minimum cross-partition interaction distance, through the
  // fault-effective calculator (slow links / stragglers only ever RAISE
  // charges, so the healthy bound would be legal too -- but the tight
  // bound is computed from the same formulas the CoreApi charges with, so
  // the two cannot drift apart). Reads post their owner-side copy at
  // (completion - L), which needs charge >= 2L: read charges contribute at
  // half weight. O(cores^2) pure arithmetic, once per machine.
  SimTime best = SimTime::max();
  const int cores = topology.num_cores();
  for (int a = 0; a < cores; ++a) {
    const int pa = topology.partition_of(a, partitions);
    for (int b = 0; b < cores; ++b) {
      if (topology.partition_of(b, partitions) == pa) continue;
      const SimTime line_write = latency.mpb_line_access(a, b, false);
      const SimTime word_write =
          latency.mpb_word_stream(a, b, sizeof(std::uint32_t), false);
      const SimTime half_line_read =
          SimTime{latency.mpb_line_access(a, b, true).femtoseconds() / 2};
      const SimTime half_word_read = SimTime{
          latency.mpb_word_stream(a, b, sizeof(std::uint32_t), true)
              .femtoseconds() /
          2};
      best = std::min({best, line_write, word_write, half_line_read,
                       half_word_read});
    }
  }
  // Every candidate charge crosses the slab boundary at least once (reads
  // twice, hence the half weight), so the tightened bound can never fall
  // below the pure hop-transit floor.
  SCC_EXPECTS(best >= floor);
  return best;
}

}  // namespace scc::machine
