#include "machine/scc_machine.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace scc::machine {

SccMachine::SccMachine(SccConfig config)
    : config_(config),
      topology_(config.tiles_x, config.tiles_y, config.cores_per_tile),
      fault_model_(config_.faults.empty()
                       ? std::optional<faults::FaultModel>{}
                       : std::optional<faults::FaultModel>{std::in_place,
                                                           config_.faults,
                                                           topology_}),
      mpb_(topology_.num_cores()),
      flags_(engine_, topology_.num_cores(), config.flags_per_core),
      latency_(config_.cost.hw, topology_, fault_model()),
      traffic_(topology_),
      contention_(topology_, config_.cost.hw.mesh_clock(),
                  config_.cost.hw.link_service_mesh_cycles_per_line,
                  config_.cost.hw.mesh_cycles_per_hop),
      harness_barrier_(engine_) {
  if (fault_model_) {
    // Traffic accounting and the contention model follow the degraded
    // machine too: rerouted paths where links died, stretched service and
    // traversal windows on slow links.
    const faults::FaultModel& fm = *fault_model_;
    if (fm.rerouted()) {
      traffic_.set_route_fn(
          [&fm](int a, int b) -> const std::vector<noc::LinkId>& {
            return fm.route(a, b);
          });
    }
    contention_.set_fault_hooks(
        fm.rerouted()
            ? noc::LinkContention::RouteFn(
                  [&fm](int a, int b) -> const std::vector<noc::LinkId>& {
                    return fm.route(a, b);
                  })
            : noc::LinkContention::RouteFn(),
        [&fm](const noc::LinkId& link) { return fm.link_factor(link); });
  }
  if (config_.perturb_seed) {
    engine_.enable_perturbation(sim::PerturbConfig{
        *config_.perturb_seed, SimTime{config_.perturb_max_delay_fs}});
  }
  caches_.reserve(static_cast<std::size_t>(num_cores()));
  cores_.reserve(static_cast<std::size_t>(num_cores()));
  for (int rank = 0; rank < num_cores(); ++rank) {
    caches_.emplace_back(config_.cost.hw);
    cores_.push_back(std::make_unique<CoreApi>(*this, rank));
    if (config_.poison_mpb) mpb_.poison(rank, std::byte{0xCD});
  }
}

void SccMachine::launch(int rank, sim::Task<> program) {
  SCC_EXPECTS(rank >= 0 && rank < num_cores());
  engine_.spawn(std::move(program), strprintf("core%d", rank));
}

void SccMachine::flush_caches() {
  for (auto& cache : caches_) cache.flush_all();
}

void launch_spmd(SccMachine& machine,
                 const std::function<sim::Task<>(CoreApi&)>& factory) {
  for (int rank = 0; rank < machine.num_cores(); ++rank) {
    machine.launch(rank, factory(machine.core(rank)));
  }
}

SimTime pdes_lookahead(const mem::LatencyCalculator& latency,
                       const noc::Topology& topology, int partitions) {
  const int hops =
      std::max(1, topology.min_partition_separation_hops(partitions));
  return latency.min_hop_transit() * static_cast<std::uint64_t>(hops);
}

}  // namespace scc::machine
