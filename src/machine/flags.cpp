#include "machine/flags.hpp"

namespace scc::machine {

FlagFile::FlagFile(const EngineResolver& engine_of, int num_cores,
                   int flags_per_core)
    : num_cores_(num_cores),
      flags_per_core_(flags_per_core),
      stats_(static_cast<std::size_t>(num_cores)) {
  SCC_EXPECTS(num_cores > 0);
  SCC_EXPECTS(flags_per_core > 0);
  slots_.reserve(static_cast<std::size_t>(num_cores) *
                 static_cast<std::size_t>(flags_per_core));
  for (int core = 0; core < num_cores; ++core) {
    sim::Engine& engine = engine_of(core);
    for (int i = 0; i < flags_per_core; ++i) slots_.emplace_back(engine);
  }
}

void FlagFile::deposit(FlagRef ref, FlagValue v) {
  Slot& s = slot(ref);
  FlagStats& stats = stats_[static_cast<std::size_t>(ref.owner_core)];
  s.value = v;
  ++stats.sets;
  stats.wakeups += s.queue.waiter_count();
  s.queue.notify_all();
}

FlagValue FlagFile::deposit_add(FlagRef ref, FlagValue delta) {
  Slot& s = slot(ref);
  FlagStats& stats = stats_[static_cast<std::size_t>(ref.owner_core)];
  s.value = static_cast<FlagValue>(s.value + delta);
  ++stats.sets;
  stats.wakeups += s.queue.waiter_count();
  s.queue.notify_all();
  return s.value;
}

}  // namespace scc::machine
