// SccMachine: one simulated Single-Chip Cloud Computer.
//
// Owns the event engine(s), topology, MPB storage, flag file, per-core
// cache models and CoreApi handles. Programs are coroutines launched per
// core; run() drives the event loop to completion.
//
// The machine is built over a sim::PdesEngine (DESIGN.md §16). With
// config.pdes_workers == 0 it degenerates to a single partition whose one
// engine drains serially -- bit-identical to the pre-PDES machine. With
// pdes_workers >= 1 the machine shards into tiles_x column-slab partitions
// (Topology::partition_of) drained by min(workers, tiles_x) host threads
// under the conservative window protocol. Mutable state is sharded by
// partition -- per-core caches, profiles and CoreApi are partition-local
// already; flags, traffic, contention and the harness barrier are sharded
// here -- and every cross-partition interaction flows through
// PdesEngine::post under the machine::pdes_lookahead contract.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "faults/fault_model.hpp"
#include "machine/config.hpp"
#include "machine/core_api.hpp"
#include "machine/flags.hpp"
#include "mem/cache.hpp"
#include "mem/latency.hpp"
#include "mem/mpb.hpp"
#include "noc/contention.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"
#include "sim/engine.hpp"
#include "sim/pdes.hpp"

namespace scc::machine {

class SccMachine {
 public:
  explicit SccMachine(SccConfig config = SccConfig::paper_default());

  SccMachine(const SccMachine&) = delete;
  SccMachine& operator=(const SccMachine&) = delete;

  [[nodiscard]] const SccConfig& config() const { return config_; }
  [[nodiscard]] int num_cores() const { return topology_.num_cores(); }

  /// Event-loop partitions: 1 on a serial machine (pdes_workers == 0),
  /// tiles_x otherwise (fixed independent of the worker count, so every
  /// worker count produces the identical schedule).
  [[nodiscard]] int partitions() const { return partitions_; }
  [[nodiscard]] sim::PdesEngine& pdes() { return pdes_; }

  /// The serial machine's engine (partition 0). On a partitioned machine
  /// this is only partition 0's clock/heap -- machine-wide questions go
  /// through events_processed() / engine_stats() / now().
  [[nodiscard]] sim::Engine& engine() { return pdes_.partition(0); }

  [[nodiscard]] int partition_of_core(int core) const {
    SCC_EXPECTS(core >= 0 && core < num_cores());
    return core_partition_[static_cast<std::size_t>(core)];
  }
  [[nodiscard]] sim::Engine& engine_of_core(int core) {
    return pdes_.partition(partition_of_core(core));
  }

  /// Machine-level aggregates (sums/maxima over partitions; on a serial
  /// machine exactly the single engine's counters).
  [[nodiscard]] std::uint64_t events_processed() const {
    return pdes_.events_processed();
  }
  [[nodiscard]] sim::EngineStats engine_stats() const {
    return pdes_.aggregated_stats();
  }
  [[nodiscard]] SimTime now() const { return pdes_.now(); }

  [[nodiscard]] const noc::Topology& topology() const { return topology_; }
  [[nodiscard]] mem::MpbStorage& mpb() { return mpb_; }
  [[nodiscard]] FlagFile& flags() { return flags_; }

  /// Partition 0's traffic shard (the whole matrix on a serial machine;
  /// serial tests use this). Reporting goes through merged_traffic().
  [[nodiscard]] noc::TrafficMatrix& traffic() { return traffic_.front(); }
  [[nodiscard]] noc::TrafficMatrix& traffic_of(int partition) {
    return traffic_[static_cast<std::size_t>(partition)];
  }
  /// All partitions' traffic summed into one matrix (pure counter sums, so
  /// the merged totals equal a serial machine's single matrix exactly).
  [[nodiscard]] noc::TrafficMatrix merged_traffic() const;

  /// Partition 0's contention shard (the whole model on a serial machine).
  [[nodiscard]] noc::LinkContention& contention() {
    return contention_.front();
  }
  [[nodiscard]] noc::LinkContention& contention_of(int partition) {
    return contention_[static_cast<std::size_t>(partition)];
  }
  /// Per-link stats merged across partition shards by link name (sums;
  /// max_queue is a max). Serial: exactly the single shard's stats.
  [[nodiscard]] std::vector<std::pair<std::string, noc::LinkStats>>
  merged_link_stats() const;
  [[nodiscard]] SimTime contention_total_delay() const;
  [[nodiscard]] std::uint64_t contention_delayed_transfers() const;

  /// Full contention charge for one transfer, sharded by link ownership:
  /// links owned by `source_partition` occupy synchronously (their queueing
  /// feeds back into the returned delay); links owned by another slab are
  /// cross-posted as absorb()s at max(arrival, now + lookahead) -- merged
  /// deterministically at the window barrier, but contributing no delay to
  /// this transfer (a remote shard's busy horizon is unreadable inside a
  /// conservative window). Serial machines take the exact occupy() path.
  SimTime charge_contention(int from, int to, std::uint64_t lines,
                            SimTime now, int source_partition);

  [[nodiscard]] const mem::LatencyCalculator& latency() const {
    return latency_;
  }
  /// The compiled fault model, or nullptr on a healthy machine
  /// (config.faults empty).
  [[nodiscard]] const faults::FaultModel* fault_model() const {
    return fault_model_ ? &*fault_model_ : nullptr;
  }
  [[nodiscard]] CoreApi& core(int rank) {
    SCC_EXPECTS(rank >= 0 && rank < num_cores());
    return *cores_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] mem::CacheModel& cache(int rank) {
    SCC_EXPECTS(rank >= 0 && rank < num_cores());
    return caches_[static_cast<std::size_t>(rank)];
  }

  /// Registers `program` to start on core `rank` at the current time (on
  /// the rank's partition engine).
  void launch(int rank, sim::Task<> program);

  /// Runs until every launched program finishes. Throws on deadlock.
  void run();

  /// Like run(), but returns false on deadlock instead of throwing.
  [[nodiscard]] bool run_detect_deadlock();

  /// Drops all private-memory cache contents (cold-start experiments).
  void flush_caches();

  /// Attaches a trace recorder (nullptr detaches). Serial: propagated to
  /// the engine and contention model directly. Partitioned: the machine
  /// creates one private recorder per partition (same capacity) so workers
  /// record race-free, and splices them into `recorder` in partition order
  /// when the run finishes -- deterministic for any worker count. Purely
  /// observational either way: traced and untraced runs have identical
  /// virtual timing.
  void attach_trace(trace::Recorder* recorder);
  [[nodiscard]] trace::Recorder* trace() const { return trace_; }
  /// Where a partition's events record: the caller's recorder on a serial
  /// machine, the partition's private recorder otherwise (CoreApi uses
  /// this; nullptr when no recorder is attached).
  [[nodiscard]] trace::Recorder* trace_of(int partition) {
    if (partitions_ == 1) return trace_;
    return trace_ ? part_trace_[static_cast<std::size_t>(partition)].get()
                  : nullptr;
  }

  struct HarnessBarrier {
    explicit HarnessBarrier(sim::Engine& e) : queue(e) {}
    int arrived = 0;
    std::uint64_t generation = 0;
    /// Latest arrival time seen by this shard; the partitioned release
    /// fires at the max over shards (the serial inline path never reads
    /// it).
    SimTime last_arrival;
    sim::WaitQueue queue;
  };
  [[nodiscard]] HarnessBarrier& harness_barrier(int partition) {
    return barrier_[static_cast<std::size_t>(partition)];
  }

 private:
  /// PdesEngine quiescence hook: when every core has arrived at the
  /// harness barrier, schedules the generation release on every partition
  /// at the deterministic global release time (max arrival/clock), and
  /// reports that more work was scheduled.
  bool release_harness_barrier();
  void splice_traces();

  SccConfig config_;
  noc::Topology topology_;
  /// Compiled from config_.faults; disengaged when the spec is empty so the
  /// healthy machine takes exactly the pre-fault code paths. Declared (and
  /// therefore built) before latency_, which captures a pointer to it.
  std::optional<faults::FaultModel> fault_model_;
  mem::LatencyCalculator latency_;
  int partitions_;
  sim::PdesEngine pdes_;
  std::vector<int> core_partition_;
  mem::MpbStorage mpb_;
  FlagFile flags_;
  std::vector<noc::TrafficMatrix> traffic_;      // one shard per partition
  std::vector<noc::LinkContention> contention_;  // one shard per partition
  std::vector<mem::CacheModel> caches_;
  std::vector<std::unique_ptr<CoreApi>> cores_;
  std::vector<HarnessBarrier> barrier_;  // one shard per partition
  trace::Recorder* trace_ = nullptr;
  std::vector<std::unique_ptr<trace::Recorder>> part_trace_;
};

/// Launches the same program factory on every core (SPMD style) -- the
/// factory receives the core's CoreApi and must return that core's program.
void launch_spmd(SccMachine& machine,
                 const std::function<sim::Task<>(CoreApi&)>& factory);

/// Conservative-PDES lookahead for a mesh partitioned into
/// Topology::partition_of column slabs: a lower bound L on the "post
/// distance" of every cross-partition interaction the machine performs,
/// computed through the FAULT-EFFECTIVE latency calculator so degraded
/// meshes widen (never violate) the bound. Writes (data puts, flag sets,
/// bulk applies) post their effect a full charge ahead, so L must lower-
/// bound every remote write charge; reads post the owner-side copy at
/// (completion - L), which needs charge >= 2L, so read charges enter the
/// minimum at half weight:
///
///   L = min over cross-slab core pairs (a,b) of
///         min( line_write(a,b), word_write4(a,b),
///              line_read(a,b)/2, word_read4(a,b)/2 )
///
/// Every candidate includes at least one boundary hop, so L >= the pure
/// hop-transit floor (min_hop_transit x slab separation) -- asserted, and
/// the floor is returned directly for partitions <= 1 (no boundary; keeps
/// PdesConfig::lookahead positive).
[[nodiscard]] SimTime pdes_lookahead(const mem::LatencyCalculator& latency,
                                     const noc::Topology& topology,
                                     int partitions);

}  // namespace scc::machine
