// SccMachine: one simulated Single-Chip Cloud Computer.
//
// Owns the event engine, topology, MPB storage, flag file, per-core cache
// models and CoreApi handles. Programs are coroutines launched per core;
// run() drives the event loop to completion.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "faults/fault_model.hpp"
#include "machine/config.hpp"
#include "machine/core_api.hpp"
#include "machine/flags.hpp"
#include "mem/cache.hpp"
#include "mem/latency.hpp"
#include "mem/mpb.hpp"
#include "noc/contention.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"
#include "sim/engine.hpp"

namespace scc::machine {

class SccMachine {
 public:
  explicit SccMachine(SccConfig config = SccConfig::paper_default());

  SccMachine(const SccMachine&) = delete;
  SccMachine& operator=(const SccMachine&) = delete;

  [[nodiscard]] const SccConfig& config() const { return config_; }
  [[nodiscard]] int num_cores() const { return topology_.num_cores(); }

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const noc::Topology& topology() const { return topology_; }
  [[nodiscard]] mem::MpbStorage& mpb() { return mpb_; }
  [[nodiscard]] FlagFile& flags() { return flags_; }
  [[nodiscard]] noc::TrafficMatrix& traffic() { return traffic_; }
  [[nodiscard]] noc::LinkContention& contention() { return contention_; }
  [[nodiscard]] const mem::LatencyCalculator& latency() const {
    return latency_;
  }
  /// The compiled fault model, or nullptr on a healthy machine
  /// (config.faults empty).
  [[nodiscard]] const faults::FaultModel* fault_model() const {
    return fault_model_ ? &*fault_model_ : nullptr;
  }
  [[nodiscard]] CoreApi& core(int rank) {
    SCC_EXPECTS(rank >= 0 && rank < num_cores());
    return *cores_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] mem::CacheModel& cache(int rank) {
    SCC_EXPECTS(rank >= 0 && rank < num_cores());
    return caches_[static_cast<std::size_t>(rank)];
  }

  /// Registers `program` to start on core `rank` at the current time.
  void launch(int rank, sim::Task<> program);

  /// Runs until every launched program finishes. Throws on deadlock.
  void run() { engine_.run(); }

  /// Like run(), but returns false on deadlock instead of throwing.
  [[nodiscard]] bool run_detect_deadlock() {
    return engine_.run_detect_deadlock();
  }

  /// Drops all private-memory cache contents (cold-start experiments).
  void flush_caches();

  /// Attaches a trace recorder (nullptr detaches) and propagates it to the
  /// engine and the link-contention model. Purely observational: traced and
  /// untraced runs have identical virtual timing.
  void attach_trace(trace::Recorder* recorder) {
    trace_ = recorder;
    engine_.set_trace(recorder);
    contention_.set_trace(recorder);
  }
  [[nodiscard]] trace::Recorder* trace() const { return trace_; }

  struct HarnessBarrier {
    explicit HarnessBarrier(sim::Engine& e) : queue(e) {}
    int arrived = 0;
    std::uint64_t generation = 0;
    sim::WaitQueue queue;
  };
  [[nodiscard]] HarnessBarrier& harness_barrier() { return harness_barrier_; }

 private:
  SccConfig config_;
  sim::Engine engine_;
  noc::Topology topology_;
  /// Compiled from config_.faults; disengaged when the spec is empty so the
  /// healthy machine takes exactly the pre-fault code paths. Declared (and
  /// therefore built) before latency_, which captures a pointer to it.
  std::optional<faults::FaultModel> fault_model_;
  mem::MpbStorage mpb_;
  FlagFile flags_;
  mem::LatencyCalculator latency_;
  noc::TrafficMatrix traffic_;
  noc::LinkContention contention_;
  std::vector<mem::CacheModel> caches_;
  std::vector<std::unique_ptr<CoreApi>> cores_;
  HarnessBarrier harness_barrier_;
  trace::Recorder* trace_ = nullptr;
};

/// Launches the same program factory on every core (SPMD style) -- the
/// factory receives the core's CoreApi and must return that core's program.
void launch_spmd(SccMachine& machine,
                 const std::function<sim::Task<>(CoreApi&)>& factory);

/// Conservative-PDES lookahead for a mesh partitioned into
/// Topology::partition_of column slabs: the minimum virtual latency of any
/// cross-partition interaction, i.e. (minimum hops between slabs) x (one
/// healthy mesh hop's transit). With a single partition there is no
/// boundary; one hop is returned so PdesConfig::lookahead stays positive.
[[nodiscard]] SimTime pdes_lookahead(const mem::LatencyCalculator& latency,
                                     const noc::Topology& topology,
                                     int partitions);

}  // namespace scc::machine
