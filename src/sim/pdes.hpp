// Conservative-PDES partitioned drain over per-partition event heaps.
//
// A single big-mesh simulation is serial in sim::Engine: one heap, one
// clock, one thread. PdesEngine partitions the event loop by topology: each
// partition is a full sim::Engine (own MoveHeap, own virtual clock, own
// sequence counter, own stats), and the classic conservative window
// protocol (Chandy/Misra/Bryant lookahead) runs them in parallel on a
// persistent exec::WorkerPool:
//
//   1. BARRIER:  t_min   = min over partitions of next_event_time()
//                horizon = t_min + lookahead          (saturating)
//   2. WINDOW:   every partition drains events with when < horizon in
//                parallel (Engine::drain_until) -- including events those
//                events schedule locally inside the window;
//   3. MERGE:    cross-partition events posted during the window were
//                buffered in per-(source,target) outboxes; they are merged
//                into the target heaps in (source index, FIFO) order, then
//                the loop repeats.
//
// The lookahead is the minimum virtual latency of ANY cross-partition
// interaction (derived from the mesh cost model's per-hop charge -- see
// machine::pdes_lookahead). That is what makes the window safe: an event
// executing at time t >= t_min can only post across a partition boundary at
// when >= t + lookahead >= horizon, so nothing a remote partition does this
// window can affect events before the horizon. The contract is enforced:
// the merge step SCC_EXPECTS every posted timestamp >= horizon.
//
// Determinism (bit-identity to the serial schedule, any worker count):
//   - within a partition, execution is the plain serial Engine -- fully
//     deterministic;
//   - window boundaries depend only on heap minima, which are themselves
//     deterministic;
//   - the merge order of posted events is fixed by (source, FIFO), so the
//     target's tie-break sequence numbers are assigned identically no
//     matter which host thread ran which partition when;
//   - partition state must be disjoint: an event handler may only touch its
//     own partition's state, and may only reach other partitions through
//     post(). (This is the same contract the machine's cost model
//     guarantees physically: remote effects travel over the mesh and pay
//     at least one hop of latency.)
//
// Perturbation composes per partition: enable it on partition(p) before
// scheduling and each partition perturbs its own schedule from its own
// seeded stream -- still deterministic for any worker count, because
// injected delays only ever ADD latency and pushes happen in deterministic
// per-partition order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "common/time.hpp"
#include "exec/executor.hpp"
#include "sim/callable.hpp"
#include "sim/engine.hpp"

namespace scc::sim {

struct PdesConfig {
  /// Event-loop partitions (each a full Engine). >= 1.
  int partitions = 1;
  /// Host threads draining windows (1 = serial window execution; the window
  /// protocol and therefore every output byte is identical either way).
  int workers = 1;
  /// Conservative lookahead: a lower bound on the virtual latency of every
  /// cross-partition interaction. Must be > 0 (zero lookahead would make
  /// windows empty and the drain unable to progress).
  SimTime lookahead;
  /// Enables host wall-clock instrumentation on the worker pool (per-worker
  /// busy/park/barrier-wait time; see exec::WorkerPoolStats). Purely
  /// observational overhead -- never changes simulated results -- but the
  /// timers themselves are nondeterministic, so keep them out of
  /// determinism-gated artifacts.
  bool instrument_workers = false;
};

/// Coordinator-side counters (windows are a PDES-only concept; per-partition
/// engine counters live in the partition engines). Every field is a pure
/// function of the window protocol's deterministic schedule: identical for
/// any worker count (the identity tests diff artifacts built from these).
struct PdesStats {
  std::uint64_t windows = 0;          // barrier rounds executed
  std::uint64_t posts_delivered = 0;  // cross-partition events merged
  std::uint64_t max_window_events = 0;  // busiest window (all partitions)
  std::uint64_t saturated_windows = 0;  // windows with horizon at max()
  std::uint64_t max_window_posts = 0;   // busiest single merge
  /// Posts merged with when exactly at the window horizon -- the tightest
  /// legal case of the conservative contract (slack zero).
  std::uint64_t posts_at_floor = 0;
  /// Minimum (when - horizon) over every in-window post: how close the
  /// workload comes to violating the lookahead. SimTime::max() until the
  /// first in-window post is merged.
  SimTime min_post_slack = SimTime::max();
};

class PdesEngine {
 public:
  explicit PdesEngine(PdesConfig config);

  PdesEngine(const PdesEngine&) = delete;
  PdesEngine& operator=(const PdesEngine&) = delete;

  [[nodiscard]] int partitions() const {
    return static_cast<int>(engines_.size());
  }
  [[nodiscard]] int workers() const { return config_.workers; }
  [[nodiscard]] SimTime lookahead() const { return config_.lookahead; }

  /// The partition's engine: schedule setup events, spawn root tasks,
  /// attach a per-partition trace recorder, or enable perturbation here.
  /// During a window, partition p's engine is driven exclusively by the
  /// worker draining p.
  [[nodiscard]] Engine& partition(int p) {
    SCC_EXPECTS(p >= 0 && p < partitions());
    return *engines_[static_cast<std::size_t>(p)];
  }

  /// Schedules `fn` at `when` on partition `target` from an event handler
  /// currently executing in partition `source`. Cross-partition posts are
  /// buffered in the source's outbox (no locks: the outbox row is owned by
  /// the worker draining `source`) and merged at the next barrier in
  /// (source, FIFO) order. `when` must respect the conservative contract:
  /// at least `lookahead` after the posting event's time -- checked as
  /// when >= the current window's horizon at merge time. A same-partition
  /// post degenerates to a plain schedule_call.
  void post(int source, int target, SimTime when, SmallCallable fn);

  /// Runs windows until every partition heap and outbox drains, then runs
  /// each partition engine's root bookkeeping (deadlock diagnostics,
  /// first-exception rethrow) in partition order. With a single partition
  /// the window protocol is skipped entirely and the call delegates to the
  /// partition engine's run() -- bit-identical to a bare sim::Engine.
  void run();

  /// Like run() but returns false instead of throwing when root tasks are
  /// deadlocked, with the same exception-over-deadlock contract as
  /// Engine::run_detect_deadlock applied in partition order.
  [[nodiscard]] bool run_detect_deadlock();

  /// Installs a quiescence hook: fired on the coordinator thread whenever
  /// every partition heap and outbox is dry (between windows, workers
  /// parked). Returning true means the hook scheduled more work (e.g. a
  /// machine-level barrier releasing its waiters) and the window loop
  /// continues; false ends the drain. Cross-partition coordination that has
  /// no mesh latency of its own (zero-cost harness barriers) hangs off this
  /// hook instead of violating the lookahead contract with zero-latency
  /// posts. Empty function clears.
  void set_quiescence_hook(std::function<bool()> hook) {
    quiescence_hook_ = std::move(hook);
  }

  /// Sum of events processed across partitions.
  [[nodiscard]] std::uint64_t events_processed() const;

  /// Max partition clock (the virtual end time of the simulation).
  [[nodiscard]] SimTime now() const;

  /// Engine scheduler counters summed across partitions in partition order.
  [[nodiscard]] EngineStats aggregated_stats() const;

  [[nodiscard]] const PdesStats& stats() const { return stats_; }

  /// Worker-pool execution counters (host-side; see WorkerPoolStats for
  /// what is deterministic and what is wall-clock).
  [[nodiscard]] exec::WorkerPoolStats worker_stats() const {
    return pool_.pool_stats();
  }

  /// Installs a barrier-cadence probe: `fn` fires once per window, after the
  /// window's outboxes merged, with the window horizon (the drain's
  /// deterministic virtual-time frontier; now() for the saturated final
  /// window). This is the PDES analogue of Engine::set_probe -- it runs on
  /// the coordinator thread between rounds, so a sampler ticked from it may
  /// read any partition's counters without racing workers. Must be purely
  /// observational. Replaces any previous probe; empty function clears.
  void set_window_probe(std::function<void(SimTime)> fn) {
    window_probe_ = std::move(fn);
  }

 private:
  struct Pending {
    SimTime when;
    SmallCallable fn;
  };

  void flush_outboxes(SimTime floor);
  /// The conservative window loop shared by run()/run_detect_deadlock():
  /// returns once every heap and outbox is dry and the quiescence hook (if
  /// any) declined to schedule more work.
  void drain_windows();

  PdesConfig config_;
  std::vector<std::unique_ptr<Engine>> engines_;
  /// outboxes_[source * partitions + target]: written only by the worker
  /// draining `source` during a window, drained only by the coordinator at
  /// the barrier (the pool round is the synchronization point).
  std::vector<std::vector<Pending>> outboxes_;
  exec::WorkerPool pool_;
  PdesStats stats_;
  std::function<void(SimTime)> window_probe_;
  std::function<bool()> quiescence_hook_;
};

}  // namespace scc::sim
