// Coroutine task type for the discrete-event simulator.
//
// Every simulated core runs its program as a Task<> coroutine; every
// operation with a virtual-time cost is itself awaitable. The whole
// simulation is single-threaded and deterministic (Core Guidelines CP.2:
// no shared mutable state between OS threads -- parallelism here is
// *simulated*, not executed).
//
// Task<T> is lazy (suspends at initial_suspend) and resumes its awaiting
// parent via symmetric transfer at final_suspend, so arbitrarily deep call
// chains cost no stack growth and no scheduler round-trips.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "common/contracts.hpp"
#include "sim/frame_arena.hpp"

namespace scc::sim {

template <typename T = void>
class Task;

namespace detail {

struct PromiseBase {
  // Frame allocation goes through the per-thread arena: a promise-level
  // operator new/delete customizes the whole coroutine frame, and the
  // simulator churns through identical frame sizes by the hundred thousand.
  static void* operator new(std::size_t bytes) { return frame_alloc(bytes); }
  static void operator delete(void* block, std::size_t bytes) noexcept {
    frame_free(block, bytes);
  }

  std::coroutine_handle<> continuation;  // resumed when this task finishes
  std::exception_ptr exception;

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& promise = h.promise();
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
    return {};
  }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// An awaitable, lazily-started coroutine returning T.
/// Move-only; owns the coroutine frame.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a Task starts it and suspends the awaiter until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      [[nodiscard]] bool await_ready() const noexcept {
        return !handle || handle.done();
      }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer into the child
      }
      T await_resume() {
        auto& promise = handle.promise();
        if (promise.exception) std::rethrow_exception(promise.exception);
        SCC_ASSERT(promise.value.has_value());
        return std::move(*promise.value);
      }
    };
    return Awaiter{handle_};
  }

  /// For the engine only: the raw handle (used to start root tasks).
  [[nodiscard]] std::coroutine_handle<promise_type> native_handle() const {
    return handle_;
  }

  /// Result extraction after completion (root tasks driven by the engine).
  [[nodiscard]] T& result() {
    SCC_EXPECTS(done());
    auto& promise = handle_.promise();
    if (promise.exception) std::rethrow_exception(promise.exception);
    return *promise.value;
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// void specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      [[nodiscard]] bool await_ready() const noexcept {
        return !handle || handle.done();
      }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() {
        if (handle.promise().exception)
          std::rethrow_exception(handle.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

  [[nodiscard]] std::coroutine_handle<promise_type> native_handle() const {
    return handle_;
  }

  void rethrow_if_failed() {
    SCC_EXPECTS(done());
    if (handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

  /// The captured exception, or nullptr if none (or the task never ran).
  /// Non-throwing counterpart of rethrow_if_failed() for callers that must
  /// scan several roots before deciding which failure to surface.
  [[nodiscard]] std::exception_ptr failure() const {
    return handle_ ? handle_.promise().exception : nullptr;
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace scc::sim
