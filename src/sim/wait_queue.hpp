// WaitQueue: the simulator's condition-variable analogue.
//
// A coroutine that must block until some simulated state changes (e.g. an
// MPB flag is written) awaits the queue; whoever changes the state calls
// notify_all(). Waiters are resumed *through the engine queue* at the
// notifier's current time, never inline, so notification order cannot
// depend on incidental call stacks (determinism). Because wakeups route
// through the engine, the engine's schedule-perturbation mode permutes the
// resume order of simultaneously-notified waiters -- code parked here must
// therefore re-check its predicate on wake and never rely on FIFO wakeup
// (the classic condition-variable discipline).
#pragma once

#include <coroutine>
#include <vector>

#include "sim/engine.hpp"

namespace scc::sim {

class WaitQueue {
 public:
  explicit WaitQueue(Engine& engine) : engine_(&engine) {}

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;
  WaitQueue(WaitQueue&&) = default;
  WaitQueue& operator=(WaitQueue&&) = default;

  /// Awaitable: park the current coroutine until the next notify_all().
  /// Typical use is a re-check loop:
  ///   while (!predicate()) co_await queue.wait();
  [[nodiscard]] auto wait() {
    struct Awaiter {
      WaitQueue& queue;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        queue.engine_->note_park();
        queue.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Wakes every parked waiter (scheduled at the engine's current time).
  void notify_all() {
    engine_->note_notify(waiters_.size());
    for (const auto h : waiters_) engine_->schedule_resume(engine_->now(), h);
    waiters_.clear();
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine* engine_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace scc::sim
