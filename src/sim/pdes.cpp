#include "sim/pdes.hpp"

#include <algorithm>

namespace scc::sim {

namespace {

/// t + d without overflowing SimTime's checked arithmetic; saturates at
/// SimTime::max() (events clamped there are handled by the full drain).
SimTime saturating_add(SimTime t, SimTime d) {
  const SimTime headroom = SimTime::max() - t;
  return d > headroom ? SimTime::max() : t + d;
}

}  // namespace

PdesEngine::PdesEngine(PdesConfig config)
    : config_(config),
      outboxes_(static_cast<std::size_t>(config.partitions) *
                static_cast<std::size_t>(config.partitions)),
      pool_(std::min(std::max(config.workers, 1), config.partitions),
            config.instrument_workers) {
  SCC_EXPECTS(config.partitions >= 1);
  SCC_EXPECTS(config.workers >= 1);
  SCC_EXPECTS(config.lookahead > SimTime::zero());
  engines_.reserve(static_cast<std::size_t>(config.partitions));
  for (int p = 0; p < config.partitions; ++p)
    engines_.push_back(std::make_unique<Engine>());
}

void PdesEngine::post(int source, int target, SimTime when, SmallCallable fn) {
  SCC_EXPECTS(source >= 0 && source < partitions());
  SCC_EXPECTS(target >= 0 && target < partitions());
  SCC_EXPECTS(static_cast<bool>(fn));
  if (source == target) {
    // Local: no conservatism needed, the partition's own heap orders it.
    engines_[static_cast<std::size_t>(source)]->schedule_call(when,
                                                              std::move(fn));
    return;
  }
  outboxes_[static_cast<std::size_t>(source) *
                static_cast<std::size_t>(partitions()) +
            static_cast<std::size_t>(target)]
      .push_back(Pending{when, std::move(fn)});
}

void PdesEngine::flush_outboxes(SimTime floor) {
  // Fixed (target, source, FIFO) order: the target engine's sequence
  // counters advance identically for every worker count -- this is the
  // deterministic merge that keeps the whole drain bit-identical to serial.
  std::uint64_t merged = 0;
  for (int target = 0; target < partitions(); ++target) {
    Engine& engine = *engines_[static_cast<std::size_t>(target)];
    for (int source = 0; source < partitions(); ++source) {
      std::vector<Pending>& box =
          outboxes_[static_cast<std::size_t>(source) *
                        static_cast<std::size_t>(partitions()) +
                    static_cast<std::size_t>(target)];
      for (Pending& pending : box) {
        // The conservative contract: nothing posted during a window may
        // land before the window's horizon. A violation means the posting
        // code charged less than the configured lookahead for a
        // cross-partition interaction -- a correctness bug, not a timing
        // detail, so it aborts.
        SCC_EXPECTS(pending.when >= floor);
        // Slack introspection (in-window merges only: the pre-run flush has
        // no conservative floor and would report meaningless huge slack).
        if (floor > SimTime::zero()) {
          const SimTime slack = pending.when - floor;
          if (slack == SimTime::zero()) ++stats_.posts_at_floor;
          stats_.min_post_slack = std::min(stats_.min_post_slack, slack);
        }
        engine.schedule_call(pending.when, std::move(pending.fn));
        ++stats_.posts_delivered;
        ++merged;
      }
      box.clear();
    }
  }
  stats_.max_window_posts = std::max(stats_.max_window_posts, merged);
}

void PdesEngine::drain_windows() {
  const auto num = static_cast<std::size_t>(partitions());
  for (;;) {
    std::optional<SimTime> t_min;
    for (auto& engine : engines_) {
      const std::optional<SimTime> t = engine->next_event_time();
      if (t && (!t_min || *t < *t_min)) t_min = *t;
    }
    if (!t_min) {
      // Heaps are dry. Posts buffered outside a window (setup code calling
      // post() before run()) may still be pending; merge them with no
      // conservative floor -- nothing is executing -- and keep going.
      bool any = false;
      for (const auto& box : outboxes_) any = any || !box.empty();
      if (any) {
        flush_outboxes(SimTime::zero());
        continue;
      }
      // Fully quiescent. Machine-level coordination with no mesh latency of
      // its own (the harness barrier) gets one chance to release waiters;
      // if it schedules anything the window loop keeps going.
      if (quiescence_hook_ && quiescence_hook_()) continue;
      break;
    }

    const SimTime horizon = saturating_add(*t_min, config_.lookahead);
    const std::uint64_t before = events_processed();
    ++stats_.windows;
    if (horizon == SimTime::max()) {
      // Saturated horizon: drain_until's strict < would strand events
      // clamped exactly at SimTime::max(); the unbounded drain takes them.
      ++stats_.saturated_windows;
      pool_.run_round(num, [&](std::size_t p) { engines_[p]->drain(); });
    } else {
      pool_.run_round(
          num, [&](std::size_t p) { engines_[p]->drain_until(horizon); });
    }
    stats_.max_window_events =
        std::max(stats_.max_window_events, events_processed() - before);
    flush_outboxes(horizon);
    if (window_probe_) {
      // Coordinator thread, between rounds: workers are parked, so the probe
      // may read any partition's counters. A saturated horizon is reported
      // as the actual end time (max() would be a useless timestamp).
      window_probe_(horizon == SimTime::max() ? now() : horizon);
    }
  }
}

void PdesEngine::run() {
  if (partitions() == 1) {
    // Degenerate case: one partition IS a serial engine. Skip the window
    // protocol (and its WorkerPool round overhead) entirely -- the drain,
    // deadlock diagnostics and exception surfacing are bit-identical to a
    // bare sim::Engine. The quiescence hook still participates: run() once,
    // consult the hook, repeat while it schedules more work.
    Engine& engine = *engines_[0];
    do {
      engine.run();
    } while (quiescence_hook_ && quiescence_hook_());
    return;
  }
  drain_windows();

  // Root bookkeeping in partition order: deadlock diagnostics and the
  // first root failure surface exactly as a serial engine would surface
  // them, partition by partition.
  for (auto& engine : engines_) engine->run();
}

bool PdesEngine::run_detect_deadlock() {
  if (partitions() == 1) {
    Engine& engine = *engines_[0];
    bool ok = engine.run_detect_deadlock();
    while (ok && quiescence_hook_ && quiescence_hook_())
      ok = engine.run_detect_deadlock();
    return ok;
  }
  drain_windows();

  // Partition order, same exception-over-deadlock contract as the serial
  // engine: the first root exception (spawn order within the earliest
  // affected partition) outranks any deadlock diagnosis.
  bool ok = true;
  for (auto& engine : engines_) ok = engine->run_detect_deadlock() && ok;
  return ok;
}

std::uint64_t PdesEngine::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& engine : engines_) total += engine->events_processed();
  return total;
}

SimTime PdesEngine::now() const {
  SimTime latest = SimTime::zero();
  for (const auto& engine : engines_)
    latest = std::max(latest, engine->now());
  return latest;
}

EngineStats PdesEngine::aggregated_stats() const {
  EngineStats total;
  for (const auto& engine : engines_) {
    const EngineStats& s = engine->stats();
    total.parks += s.parks;
    total.notifies += s.notifies;
    total.waiters_woken += s.waiters_woken;
    total.perturb_delays += s.perturb_delays;
    total.perturb_delay_total += s.perturb_delay_total;
  }
  return total;
}

}  // namespace scc::sim
