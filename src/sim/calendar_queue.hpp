// CalendarQueue: an O(1)-amortized priority queue over numeric keys
// (Brown's calendar queue), evaluated against the engine's binary MoveHeap.
//
// The classic discrete-event-simulation structure: buckets are "days" of a
// fixed width; an event lands in bucket (key / width) % num_buckets, and
// the dequeue cursor walks days in order, so with a well-tuned width both
// enqueue and dequeue touch O(1) elements. The width and bucket count are
// retuned on resize from the live event population (mean inter-key gap),
// which is what keeps the structure O(1) across workload phases.
//
// Ordering contract: Less is a TOTAL order consistent with the key
// (Less(a, b) implies key(a) <= key(b)); equal keys land in the same
// bucket, so ties resolve by Less exactly as they would in a binary heap
// -- pop order is identical to MoveHeap's for the same push/pop schedule,
// which is what the differential tests pin down.
//
// Status: benchmarked against MoveHeap by bench/selfperf (queue_moveheap /
// queue_calendar rows, both gated). On the engine's workloads -- small
// live frontiers with heavy same-day churn -- the calendar's cursor scans
// and retunes do not beat the heap's cache-resident sift (<~128 live
// events), so sim::Engine keeps MoveHeap; the structure and its gate stay
// as the measured alternative for bigger-frontier machines (DESIGN.md
// §14).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace scc::sim {

template <typename T, typename Less, typename KeyFn>
class CalendarQueue {
 public:
  explicit CalendarQueue(Less less = {}, KeyFn key = {})
      : less_(std::move(less)), key_(std::move(key)) {
    buckets_.resize(kMinBuckets);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push(T value) {
    const std::uint64_t day = key_(value) / width_;
    insert_into(bucket_of(day), std::move(value));
    if (day < cursor_day_) cursor_day_ = day;  // never skip a past event
    ++size_;
    if (size_ > 2 * buckets_.size()) rebuild(buckets_.size() * 2);
  }

  /// The minimum element under Less. Non-const: may advance the cursor
  /// (amortized bookkeeping), never changes the contents.
  [[nodiscard]] const T& min() {
    SCC_EXPECTS(size_ > 0);
    return buckets_[locate_min()].back();
  }

  T pop_min() {
    SCC_EXPECTS(size_ > 0);
    std::vector<T>& bucket = buckets_[locate_min()];
    T out = std::move(bucket.back());
    bucket.pop_back();
    --size_;
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2)
      rebuild(buckets_.size() / 2);
    return out;
  }

  void reserve(std::size_t n) {
    for (auto& bucket : buckets_) bucket.reserve(n / buckets_.size() + 1);
  }

 private:
  static constexpr std::size_t kMinBuckets = 8;

  [[nodiscard]] std::size_t bucket_of(std::uint64_t day) const {
    return static_cast<std::size_t>(day % buckets_.size());
  }

  /// Buckets are sorted descending by Less (minimum at the back), so the
  /// hot pop is a pop_back and insertion is an upper-bound shift over the
  /// handful of same-bucket events.
  void insert_into(std::size_t idx, T value) {
    std::vector<T>& bucket = buckets_[idx];
    const auto at = std::upper_bound(
        bucket.begin(), bucket.end(), value,
        [this](const T& a, const T& b) { return less_(b, a); });
    bucket.insert(at, std::move(value));
  }

  /// Index of the bucket whose back element is the global minimum, walking
  /// days from the cursor. An event's day must match the scanned day --
  /// buckets also hold events of later "years" (day + k * num_buckets).
  /// If a whole year passes without a hit the population is sparse:
  /// fall back to a direct scan and jump the cursor there.
  [[nodiscard]] std::size_t locate_min() {
    for (std::size_t step = 0; step < buckets_.size(); ++step) {
      const std::uint64_t day = cursor_day_ + step;
      const std::vector<T>& bucket = buckets_[bucket_of(day)];
      if (!bucket.empty() && key_(bucket.back()) / width_ == day) {
        cursor_day_ = day;
        return bucket_of(day);
      }
    }
    std::size_t best = buckets_.size();
    for (std::size_t idx = 0; idx < buckets_.size(); ++idx) {
      if (buckets_[idx].empty()) continue;
      if (best == buckets_.size() ||
          less_(buckets_[idx].back(), buckets_[best].back()))
        best = idx;
    }
    SCC_ASSERT(best < buckets_.size());
    cursor_day_ = key_(buckets_[best].back()) / width_;
    return best;
  }

  /// Re-bucket the whole population into `count` buckets with a width
  /// retuned to the live key span (mean gap, clamped to >= 1): the classic
  /// calendar-queue resize that keeps ~O(1) events per day.
  void rebuild(std::size_t count) {
    std::vector<std::vector<T>> old = std::move(buckets_);
    buckets_.clear();  // resize (not assign): T may be move-only
    buckets_.resize(std::max(count, kMinBuckets));
    std::uint64_t lo = ~0ULL, hi = 0;
    for (const auto& bucket : old) {
      for (const T& value : bucket) {
        lo = std::min(lo, key_(value));
        hi = std::max(hi, key_(value));
      }
    }
    width_ = size_ > 1 ? std::max<std::uint64_t>((hi - lo) / size_, 1) : 1;
    cursor_day_ = size_ > 0 ? lo / width_ : 0;
    for (auto& bucket : old) {
      for (T& value : bucket)
        insert_into(bucket_of(key_(value) / width_), std::move(value));
    }
  }

  std::vector<std::vector<T>> buckets_;
  std::uint64_t width_ = 1;
  std::uint64_t cursor_day_ = 0;
  std::size_t size_ = 0;
  Less less_;
  KeyFn key_;
};

}  // namespace scc::sim
