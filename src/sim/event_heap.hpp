// Move-based binary min-heap for the event loop.
//
// std::priority_queue only exposes a const top(), which forces the engine
// to COPY every event out of the queue before popping it -- including the
// event's callable. This heap stores elements contiguously in a vector and
// implements the classic hole-percolation sift: push and pop_min move
// elements, never copy them, and pop_min moves the minimum out to the
// caller. Pop order is exactly ascending in the comparator's total order;
// since engine events carry a unique sequence number the order is total,
// so swapping std::priority_queue for this heap cannot change which event
// fires next (guarded by the engine determinism tests).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace scc::sim {

/// Min-heap: pop_min() yields the least element under `Greater` (the same
/// "greater" functor std::priority_queue's min-heap configuration uses).
template <typename T, typename Greater>
class MoveHeap {
 public:
  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  /// The minimum element, without removing it. Precondition: !empty().
  /// Bounded drains (Engine::drain_until) peek here to decide whether the
  /// next event is still inside the current window before popping it.
  [[nodiscard]] const T& min() const { return v_.front(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() { v_.clear(); }

  void push(T&& item) {
    std::size_t hole = v_.size();
    v_.emplace_back();  // the hole; filled below after percolation
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 2;
      if (!greater_(v_[parent], item)) break;
      v_[hole] = std::move(v_[parent]);
      hole = parent;
    }
    v_[hole] = std::move(item);
  }

  /// Removes and returns the minimum. Precondition: !empty().
  T pop_min() {
    T min = std::move(v_.front());
    T last = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) {
      // Percolate the root hole down toward the smaller child until `last`
      // fits, moving each child up exactly once (half the moves of a
      // swap-based sift).
      std::size_t hole = 0;
      const std::size_t n = v_.size();
      for (;;) {
        std::size_t child = 2 * hole + 1;
        if (child >= n) break;
        if (child + 1 < n && greater_(v_[child], v_[child + 1])) ++child;
        if (!greater_(last, v_[child])) break;
        v_[hole] = std::move(v_[child]);
        hole = child;
      }
      v_[hole] = std::move(last);
    }
    return min;
  }

 private:
  std::vector<T> v_;
  [[no_unique_address]] Greater greater_;
};

}  // namespace scc::sim
