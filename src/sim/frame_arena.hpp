// Per-thread free-list arena for coroutine frames.
//
// Every simulated operation with a virtual-time cost is a Task<T> coroutine,
// so a single collective run creates and destroys the same handful of frame
// sizes hundreds of thousands of times. The global allocator handles that
// fine, but each round trip still pays malloc bookkeeping on the drain loop's
// critical path. This arena keeps freed frames in per-size-class intrusive
// free lists (64-byte granularity, capped per class; the link pointer lives
// inside the dead block, so the arena itself never allocates) and hands them
// back on the next allocation of the same class -- the steady state of a
// simulation allocates no frame memory at all.
//
// Thread model: the lists are thread_local, so concurrent simulations on
// exec worker threads (or PDES partition workers) never contend or race. A
// frame may legally be allocated on one thread and freed on another (e.g. a
// partition task spawned on a worker but destroyed with the engine's roots
// on the coordinator): the block simply migrates to the freeing thread's
// list, which is the only list that thread ever touches. Each list frees its
// remaining blocks at thread exit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace scc::sim {

/// Counters for the calling thread's arena (tests assert steady-state
/// reuse; selfperf reports them).
struct FrameArenaStats {
  std::uint64_t allocs = 0;    // frame allocations served (any path)
  std::uint64_t reuses = 0;    // ... of which came from a free list
  std::uint64_t oversize = 0;  // ... of which bypassed the arena entirely
};

namespace frame_arena_detail {

inline constexpr std::size_t kGranularity = 64;
inline constexpr std::size_t kMaxBytes = 4096;
inline constexpr std::size_t kClasses = kMaxBytes / kGranularity;
/// Cap per class: bounds idle memory at kMaxPerClass * 4 KB * kClasses
/// worst case per thread while still covering the frame population of a
/// 48-core machine mid-collective.
inline constexpr std::size_t kMaxPerClass = 128;

/// Link node overlaid on the first word of a freed block (every class is at
/// least kGranularity bytes, so the pointer always fits).
struct FreeBlock {
  FreeBlock* next;
};

struct FreeLists {
  FreeBlock* heads[kClasses] = {};
  std::size_t counts[kClasses] = {};
  FrameArenaStats stats;
  ~FreeLists() {
    for (FreeBlock* head : heads) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(static_cast<void*>(head));
        head = next;
      }
    }
  }
};

inline thread_local FreeLists tl_arena;

[[nodiscard]] constexpr std::size_t class_of(std::size_t bytes) {
  return (bytes - 1) / kGranularity;
}

[[nodiscard]] constexpr std::size_t class_bytes(std::size_t cls) {
  return (cls + 1) * kGranularity;
}

}  // namespace frame_arena_detail

[[nodiscard]] inline void* frame_alloc(std::size_t bytes) {
  using namespace frame_arena_detail;
  FreeLists& arena = tl_arena;
  ++arena.stats.allocs;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxBytes) {
    ++arena.stats.oversize;
    return ::operator new(bytes);
  }
  const std::size_t cls = class_of(bytes);
  if (FreeBlock* head = arena.heads[cls]; head != nullptr) {
    arena.heads[cls] = head->next;
    --arena.counts[cls];
    ++arena.stats.reuses;
    return static_cast<void*>(head);
  }
  // Allocate the full class size so the block is reusable by any frame of
  // the same class, not just this exact byte count.
  return ::operator new(class_bytes(cls));
}

inline void frame_free(void* block, std::size_t bytes) noexcept {
  using namespace frame_arena_detail;
  if (block == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxBytes) {
    ::operator delete(block);
    return;
  }
  FreeLists& arena = tl_arena;
  const std::size_t cls = class_of(bytes);
  if (arena.counts[cls] >= kMaxPerClass) {
    ::operator delete(block);
    return;
  }
  auto* node = static_cast<FreeBlock*>(block);
  node->next = arena.heads[cls];
  arena.heads[cls] = node;
  ++arena.counts[cls];
}

[[nodiscard]] inline const FrameArenaStats& frame_arena_stats() {
  return frame_arena_detail::tl_arena.stats;
}

}  // namespace scc::sim
