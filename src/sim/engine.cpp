#include "sim/engine.hpp"

#include <stdexcept>

namespace scc::sim {

void Engine::enable_perturbation(PerturbConfig config) {
  SCC_EXPECTS(!running_);
  SCC_EXPECTS(queue_.empty() && next_seq_ == 0);
  SCC_EXPECTS(config.max_delay < SimTime::max());
  perturb_ = config;
  perturb_rng_ = Xoshiro256(config.seed);
}

void Engine::push_event(SimTime when, std::coroutine_handle<> h,
                        SmallCallable fn) {
  std::uint64_t tie = 0;
  if (perturb_) {
    tie = perturb_rng_();
    if (perturb_->max_delay > SimTime::zero()) {
      const SimTime drawn{
          perturb_rng_.below(perturb_->max_delay.femtoseconds() + 1)};
      // Saturate at SimTime::max(): enable_perturbation only bounds the
      // per-event delay, not when + delay, so an event scheduled near the
      // end of representable time must clamp instead of overflowing the
      // SimTime arithmetic contract. The RNG draw happens either way, so
      // clamping never shifts the seed stream of later events.
      const SimTime headroom = SimTime::max() - when;
      const SimTime delay = drawn > headroom ? headroom : drawn;
      when += delay;
      if (delay > SimTime::zero()) {
        ++stats_.perturb_delays;
        stats_.perturb_delay_total += delay;
        if (trace_) {
          char detail[40];
          std::snprintf(detail, sizeof detail, "+%llu fs",
                        static_cast<unsigned long long>(delay.femtoseconds()));
          trace_->instant(trace::kEnginePid, "perturb", "inject-delay", now_,
                          detail);
        }
      }
    }
  }
  queue_.push(Event{when, tie, next_seq_++, h, std::move(fn)});
}

void Engine::schedule_resume(SimTime when, std::coroutine_handle<> h) {
  SCC_EXPECTS(when >= now_);
  SCC_EXPECTS(h != nullptr);
  push_event(when, h, {});
}

void Engine::schedule_call(SimTime when, SmallCallable fn) {
  SCC_EXPECTS(when >= now_);
  SCC_EXPECTS(static_cast<bool>(fn));
  push_event(when, nullptr, std::move(fn));
}

void Engine::spawn(Task<> task, std::string name) {
  SCC_EXPECTS(task.valid());
  if (trace_) {
    trace_->instant(trace::kEnginePid, "tasks", "spawn", now_, name);
  }
  if (roots_.empty()) {
    // Pre-size the pools once per program: typical machines launch tens of
    // root tasks and keep a bounded frontier of pending events, so the hot
    // loop then never grows either vector.
    roots_.reserve(64);
    queue_.reserve(256);
  }
  roots_.push_back(Root{std::move(task), std::move(name)});
  // Task is lazy; kick it off at the current time through the queue so
  // spawn order equals first-run order (under perturbation the start order
  // is permuted like any other equal-time batch).
  push_event(now_, roots_.back().task.native_handle(), {});
}

void Engine::set_probe(SimTime interval, std::function<void(SimTime)> fn) {
  SCC_EXPECTS(!running_);
  SCC_EXPECTS(interval > SimTime::zero());
  SCC_EXPECTS(static_cast<bool>(fn));
  probe_interval_ = interval;
  const SimTime headroom = SimTime::max() - now_;
  probe_due_ = interval > headroom ? SimTime::max() : now_ + interval;
  probe_ = std::move(fn);
}

void Engine::clear_probe() {
  SCC_EXPECTS(!running_);
  probe_due_ = SimTime::max();
  probe_interval_ = SimTime::zero();
  probe_ = nullptr;
}

void Engine::fire_probe(SimTime limit) {
  // Every tick instant <= the event about to run fires, in order, with
  // now() pinned at the tick instant -- the probe observes exactly the
  // state produced by events strictly before the tick. The cadence
  // saturates: a tick that would overflow SimTime lands on max(), which the
  // loop guard treats as "no further ticks" (an event clamped at max() is
  // still covered by `<= limit` on the prior ticks).
  while (probe_due_ <= limit && probe_due_ < SimTime::max()) {
    const SimTime at = probe_due_;
    const SimTime headroom = SimTime::max() - probe_due_;
    probe_due_ = probe_interval_ > headroom ? SimTime::max()
                                            : probe_due_ + probe_interval_;
    now_ = at;
    probe_(at);
  }
}

void Engine::dispatch(Event ev) {
  SCC_ASSERT(ev.when >= now_);
  if (ev.when >= probe_due_) fire_probe(ev.when);
  now_ = ev.when;
  ++events_processed_;
  if (ev.handle) {
    ev.handle.resume();
  } else {
    ev.call();
  }
}

void Engine::drain() {
  SCC_EXPECTS(!running_);
  const RunningGuard guard{&running_};
  while (!queue_.empty()) {
    // pop_min moves the event (and its callable) out of the heap: the hot
    // loop neither copies events nor touches the allocator.
    dispatch(queue_.pop_min());
  }
}

void Engine::drain_until(SimTime horizon) {
  SCC_EXPECTS(!running_);
  const RunningGuard guard{&running_};
  while (!queue_.empty() && queue_.min().when < horizon) {
    dispatch(queue_.pop_min());
  }
}

void Engine::run() {
  drain();
  // Diagnostic strings are assembled only here, after the event loop has
  // fully drained, with one up-front reservation -- never inside drain().
  std::string stuck;
  for (auto& root : roots_) {
    if (trace_) {
      trace_->instant(trace::kEnginePid, "tasks",
                      root.task.done() ? "done" : "stuck", now_, root.name);
    }
    if (!root.task.done()) {
      if (stuck.empty()) {
        std::size_t bytes = 0;
        for (const auto& r : roots_) bytes += r.name.size() + 2;
        stuck.reserve(bytes);
      } else {
        stuck += ", ";
      }
      stuck += root.name;
    }
  }
  if (!stuck.empty()) {
    std::string msg;
    msg.reserve(stuck.size() + 96);
    msg += "simulation deadlock";
    msg += perturb_ ? " [perturbation seed " +
                          std::to_string(perturb_->seed) + "]"
                    : " [perturbation off]";
    msg += ": event queue empty but tasks still blocked: ";
    msg += stuck;
    throw std::runtime_error(msg);
  }
  // Capture the first failure, then clear roots_ BEFORE rethrowing: the
  // exception_ptr keeps the exception alive past the frame destruction, and
  // a throwing run() must leave the engine re-runnable, not holding dead
  // coroutine frames.
  std::exception_ptr first;
  for (auto& root : roots_)
    if (!first) first = root.task.failure();
  roots_.clear();
  if (first) std::rethrow_exception(first);
}

bool Engine::run_detect_deadlock() {
  drain();
  bool all_done = true;
  std::exception_ptr first;
  for (auto& root : roots_) {
    if (!root.task.done()) {
      all_done = false;
      continue;
    }
    // Tasks that *did* complete may have failed; a stuck sibling must not
    // swallow that (deadlock + exception is a double fault, and the
    // exception names the actual bug).
    if (!first) first = root.task.failure();
  }
  roots_.clear();
  if (first) std::rethrow_exception(first);
  return all_done;
}

}  // namespace scc::sim
