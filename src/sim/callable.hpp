// Small-buffer move-only callable for engine events.
//
// std::function is copyable, so storing one per event forces every capture
// onto the heap the moment it outgrows the (implementation-defined, small)
// inline buffer, and drags copy machinery through the hot event loop. The
// engine only ever moves events and invokes each callable once, so this
// type supports exactly that: a fixed inline buffer sized for every
// callable the simulator schedules (lambdas capturing a few pointers),
// with a heap fallback for oversized ones rather than a compile error --
// test code may capture liberally.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace scc::sim {

class SmallCallable {
 public:
  /// Inline capacity: covers captures up to six pointers/words, which is
  /// larger than anything the simulator itself schedules.
  static constexpr std::size_t kInlineBytes = 48;

  SmallCallable() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallCallable> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  SmallCallable(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buffer_))
          Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallCallable(SmallCallable&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  SmallCallable& operator=(SmallCallable&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(buffer_, other.buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallCallable(const SmallCallable&) = delete;
  SmallCallable& operator=(const SmallCallable&) = delete;

  ~SmallCallable() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buffer_); }

 private:
  struct Ops {
    void (*invoke)(std::byte* storage);
    // Move-construct into `dst` from `src` and destroy `src` (for the
    // inline case; the heap case just moves the owning pointer over).
    void (*relocate)(std::byte* dst, std::byte* src);
    void (*destroy)(std::byte* storage);
  };

  template <typename Fn>
  static Fn* as(std::byte* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](std::byte* s) { (*as<Fn>(s))(); },
      [](std::byte* dst, std::byte* src) {
        ::new (static_cast<void*>(dst)) Fn(std::move(*as<Fn>(src)));
        as<Fn>(src)->~Fn();
      },
      [](std::byte* s) { as<Fn>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](std::byte* s) { (**as<Fn*>(s))(); },
      [](std::byte* dst, std::byte* src) {
        // The stored pointer is trivially destructible; moving it over is
        // an ownership transfer.
        ::new (static_cast<void*>(dst)) Fn*(*as<Fn*>(src));
      },
      [](std::byte* s) { delete *as<Fn*>(s); },
  };

  void reset() {
    if (ops_) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buffer_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace scc::sim
