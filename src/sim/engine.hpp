// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal times fire in the order
// they were scheduled (monotone sequence numbers break ties), so a given
// program and seed always produce the identical virtual-time trace.
//
// Schedule perturbation (testing mode): enable_perturbation() replaces the
// scheduling-order tie-break with a seeded pseudo-random key, so events at
// equal times fire in a seed-dependent permutation, and can additionally
// inject a small random delay into every scheduled event. Each seed still
// yields one exactly-reproducible trace -- the point is to explore *other*
// legal interleavings than the default one, which is how ordering bugs in
// the relaxed-synchronization protocols are flushed out (see DESIGN.md,
// "Determinism & schedule perturbation").
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/callable.hpp"
#include "sim/event_heap.hpp"
#include "sim/task.hpp"
#include "trace/recorder.hpp"

namespace scc::sim {

/// Cumulative scheduler counters. All time-type for conformance purposes:
/// park/notify counts depend on the interleaving (a waiter woken into a
/// still-false predicate re-parks), and the delay counters exist only under
/// perturbation.
struct EngineStats {
  std::uint64_t parks = 0;            // coroutines parked on a WaitQueue
  std::uint64_t notifies = 0;         // notify_all() calls
  std::uint64_t waiters_woken = 0;    // waiters resumed across all notifies
  std::uint64_t perturb_delays = 0;   // nonzero injected event delays
  SimTime perturb_delay_total;        // sum of injected delays
};

/// Settings for the engine's schedule-perturbation mode.
struct PerturbConfig {
  /// Seeds the tie-break/delay stream. Equal seeds reproduce the identical
  /// interleaving; distinct seeds explore distinct ones.
  std::uint64_t seed = 0;
  /// When nonzero, every scheduled event is additionally delayed by a
  /// uniform pseudo-random duration in [0, max_delay]. Zero keeps virtual
  /// timestamps exact and only permutes equal-time ordering.
  SimTime max_delay = SimTime::zero();
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Switches the engine into perturbation mode. Must be called before any
  /// event is scheduled (the permutation covers the whole trace or none of
  /// it -- a half-perturbed trace would not be reproducible from the seed).
  void enable_perturbation(PerturbConfig config);

  [[nodiscard]] bool perturbation_enabled() const {
    return perturb_.has_value();
  }
  /// The active perturbation seed; only valid when perturbation_enabled().
  [[nodiscard]] std::uint64_t perturbation_seed() const {
    SCC_EXPECTS(perturb_.has_value());
    return perturb_->seed;
  }

  /// Attaches a trace recorder (nullptr detaches). The engine records
  /// scheduler instants -- task spawn/done/stuck, wait-queue park/notify,
  /// perturbation delay injections -- under trace::kEnginePid. Recording is
  /// purely observational: it never changes what is scheduled or when.
  void set_trace(trace::Recorder* recorder) { trace_ = recorder; }
  [[nodiscard]] trace::Recorder* trace() const { return trace_; }

  /// Count/trace hooks for WaitQueue. Counting is unconditional (host-side
  /// bookkeeping); the trace instants still require an attached recorder.
  void note_park() {
    ++stats_.parks;
    if (trace_) trace_->instant(trace::kEnginePid, "waitqueue", "park", now_);
  }
  void note_notify(std::size_t waiters) {
    ++stats_.notifies;
    stats_.waiters_woken += waiters;
    if (trace_ && waiters > 0) {
      // One fixed-size stack buffer; no temporary string concatenation on
      // the notify path (hot under tracing).
      char detail[32];
      std::snprintf(detail, sizeof detail, "%zu waiter(s)", waiters);
      trace_->instant(trace::kEnginePid, "waitqueue", "notify", now_, detail);
    }
  }

  /// Installs a deterministic cadence probe: `fn` fires exactly at the
  /// virtual instants now() + interval, now() + 2 * interval, ... -- each
  /// call made after every event with timestamp < the tick instant has been
  /// processed and before any event with timestamp >= it runs, with `t`
  /// being the exact tick instant (now() reads `t` during the call). Ticks
  /// with no later event pending never fire (the series ends at the last
  /// event), and the cadence saturates at SimTime::max(). The probe must be
  /// purely observational: it may read state but must not schedule events,
  /// and it adds one branch per dispatched event when idle. Replaces any
  /// previous probe.
  void set_probe(SimTime interval, std::function<void(SimTime)> fn);
  void clear_probe();

  /// Resume `h` at absolute time `when` (must be >= now()).
  void schedule_resume(SimTime when, std::coroutine_handle<> h);

  /// Run `fn` at absolute time `when` (must be >= now()). The callable is
  /// invoked exactly once; captures up to SmallCallable::kInlineBytes stay
  /// allocation-free.
  void schedule_call(SimTime when, SmallCallable fn);

  /// Awaitable: suspend the current coroutine for `duration`.
  /// Zero-duration sleeps still round-trip through the queue so two tasks
  /// "running at the same instant" interleave deterministically.
  [[nodiscard]] auto sleep_for(SimTime duration) {
    struct Awaiter {
      Engine& engine;
      SimTime wake;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine.schedule_resume(wake, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, now_ + duration};
  }

  /// Registers a root task (e.g. one simulated core's program). The engine
  /// owns it for the duration of run(); the task starts at time now().
  /// `name` appears in deadlock diagnostics.
  void spawn(Task<> task, std::string name);

  /// Runs until the event queue drains. Throws std::runtime_error if any
  /// root task is still unfinished then (deadlock), listing the stuck tasks
  /// and the perturbation seed when perturbation is active; rethrows the
  /// first root-task exception, if any.
  void run();

  /// Like run() but returns false instead of throwing when root tasks are
  /// deadlocked (used by tests that *expect* deadlock). A root task that
  /// completed *with an exception* is a failure, not a deadlock: the first
  /// such exception (in spawn order) is rethrown even when other roots are
  /// stuck -- deadlock plus exception is a double fault, and the exception
  /// is the more specific diagnosis.
  [[nodiscard]] bool run_detect_deadlock();

  /// Unbounded drain without root-task bookkeeping: processes every queued
  /// event (run() is drain() plus deadlock diagnostics and root-exception
  /// rethrow). The PDES coordinator uses it for the saturated-horizon
  /// window, where the strict-< bound of drain_until would strand events
  /// clamped exactly at SimTime::max().
  void drain();

  /// Bounded drain for partitioned (conservative-PDES) execution: processes
  /// every event with timestamp strictly before `horizon`, including events
  /// those events schedule inside the window, then returns with later events
  /// still queued. now() is left at the last processed event (never advanced
  /// to the horizon). Serial drains via run() are the special case
  /// horizon = infinity; see sim::PdesEngine for the window protocol.
  void drain_until(SimTime horizon);

  /// Timestamp of the earliest pending event, or nullopt when the queue is
  /// empty. The PDES coordinator min-reduces this across partitions to pick
  /// each window's base time.
  [[nodiscard]] std::optional<SimTime> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.min().when;
  }

  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t tie;  // 0 unperturbed; seeded-random key under perturbation
    std::uint64_t seq;
    std::coroutine_handle<> handle;    // either handle ...
    SmallCallable call;                // ... or call is set
    Event() : when(), tie(0), seq(0), handle(nullptr) {}
    Event(SimTime w, std::uint64_t t, std::uint64_t s,
          std::coroutine_handle<> h, SmallCallable c)
        : when(w), tie(t), seq(s), handle(h), call(std::move(c)) {}
    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };

  struct Root {
    Task<> task;
    std::string name;
  };

  /// Resets running_ when a drain exits, including by exception: a throwing
  /// event handler must not latch the engine into a state where every later
  /// drain()/enable_perturbation() dies on its !running_ precondition.
  struct RunningGuard {
    bool* flag;
    explicit RunningGuard(bool* f) : flag(f) { *flag = true; }
    ~RunningGuard() { *flag = false; }
    RunningGuard(const RunningGuard&) = delete;
    RunningGuard& operator=(const RunningGuard&) = delete;
  };

  void dispatch(Event ev);
  void push_event(SimTime when, std::coroutine_handle<> h, SmallCallable fn);
  void fire_probe(SimTime limit);

  MoveHeap<Event, std::greater<>> queue_;
  std::vector<Root> roots_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  EngineStats stats_;
  bool running_ = false;
  std::optional<PerturbConfig> perturb_;
  Xoshiro256 perturb_rng_;
  trace::Recorder* trace_ = nullptr;
  // Cadence probe (set_probe). probe_due_ == SimTime::max() doubles as the
  // "no probe" sentinel, so the dispatch hot path pays exactly one compare
  // when sampling is off.
  SimTime probe_due_ = SimTime::max();
  SimTime probe_interval_ = SimTime::zero();
  std::function<void(SimTime)> probe_;
};

}  // namespace scc::sim
