#include "common/table.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/contracts.hpp"

namespace scc {

namespace {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

// A cell holding a complete JSON number (stricter than strtod: no inf/nan/
// hex), so it can be emitted into the JSON document verbatim.
bool is_json_number(const std::string& cell) {
  std::size_t i = 0;
  const auto digits = [&] {
    std::size_t n = 0;
    while (i < cell.size() && cell[i] >= '0' && cell[i] <= '9') {
      ++i;
      ++n;
    }
    return n;
  };
  if (i < cell.size() && cell[i] == '-') ++i;
  if (digits() == 0) return false;
  if (i < cell.size() && cell[i] == '.') {
    ++i;
    if (digits() == 0) return false;
  }
  if (i < cell.size() && (cell[i] == 'e' || cell[i] == 'E')) {
    ++i;
    if (i < cell.size() && (cell[i] == '+' || cell[i] == '-')) ++i;
    if (digits() == 0) return false;
  }
  return i == cell.size();
}

// Local copy of the JSON string escape (scc_common sits below scc_metrics
// in the layering, so it cannot use metrics/json.hpp).
std::string json_cell_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SCC_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SCC_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(out);
}

void Table::write_json(std::ostream& os, const std::string& name,
                       const std::string& extra_members) const {
  os << "{\n  \"schema\": \"scc-bench-v1\",\n  \"name\": \""
     << json_cell_escape(name) << "\",\n  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "" : ",") << "\n    {";
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ", ") << '"' << json_cell_escape(header_[c])
         << "\": ";
      if (row[c].empty()) {
        os << "null";
      } else if (is_json_number(row[c])) {
        os << row[c];
      } else {
        os << '"' << json_cell_escape(row[c]) << '"';
      }
    }
    os << '}';
  }
  os << "\n  ]";
  if (!extra_members.empty()) os << ",\n  " << extra_members;
  os << "\n}\n";
}

void Table::write_json_file(const std::string& path, const std::string& name,
                            const std::string& extra_members) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_json(out, name, extra_members);
}

}  // namespace scc
