#include "common/table.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/contracts.hpp"

namespace scc {

namespace {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SCC_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SCC_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(out);
}

}  // namespace scc
