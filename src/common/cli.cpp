#include "common/cli.hpp"

#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace scc {

CliFlags CliFlags::parse(int argc, const char* const* argv) {
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--") break;
    if (arg.rfind("--", 0) != 0) {
      flags.positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = {body.substr(eq + 1), false};
    } else {
      // Values must be attached with '=': without a registry of which
      // flags take values, consuming the next token here would swallow a
      // following positional (see header comment).
      flags.values_[body] = {"true", false};  // bare boolean flag
    }
  }
  return flags;
}

bool CliFlags::has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  it->second.second = true;
  return true;
}

std::string CliFlags::get(const std::string& name,
                          const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  return it->second.first;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  char* end = nullptr;
  const char* s = it->second.first.c_str();
  const long long v = std::strtoll(s, &end, 10);
  // end == s catches the empty value of "--n=" (strtoll consumes nothing
  // but still leaves *end == '\0', which the trailing-junk check accepts).
  if (end == nullptr || end == s || *end != '\0')
    throw std::runtime_error("flag --" + name + " expects an integer, got '" +
                             it->second.first + "'");
  return v;
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  char* end = nullptr;
  const char* s = it->second.first.c_str();
  const double v = std::strtod(s, &end);
  if (end == nullptr || end == s || *end != '\0')
    throw std::runtime_error("flag --" + name + " expects a number, got '" +
                             it->second.first + "'");
  return v;
}

int CliFlags::get_positive_int(const std::string& name, int fallback) const {
  if (!has(name)) return fallback;
  const std::int64_t v = get_int(name, 0);
  if (v < 1 || v > std::numeric_limits<int>::max())
    throw std::runtime_error("--" + name +
                             " must be a positive integer, got " +
                             std::to_string(v));
  return static_cast<int>(v);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  const std::string& v = it->second.first;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("flag --" + name + " expects a boolean, got '" + v +
                           "'");
}

std::vector<std::string> CliFlags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : values_)
    if (!entry.second) out.push_back(name);
  return out;
}

}  // namespace scc
