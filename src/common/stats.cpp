#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace scc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return mean_; }

double RunningStats::min() const {
  SCC_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  SCC_EXPECTS(n_ > 0);
  return max_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double median(std::vector<double> samples) {
  SCC_EXPECTS(!samples.empty());
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid),
                   samples.end());
  double hi = samples[mid];
  if (samples.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double quantile(std::vector<double> samples, double q) {
  SCC_EXPECTS(!samples.empty());
  SCC_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double h = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= samples.size()) return samples.back();
  const double frac = h - static_cast<double>(lo);
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

double geometric_mean(const std::vector<double>& samples) {
  SCC_EXPECTS(!samples.empty());
  double log_sum = 0.0;
  for (const double s : samples) {
    SCC_EXPECTS(s > 0.0);
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace scc
