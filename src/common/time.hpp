// Simulation time: a strong type with femtosecond resolution.
//
// The SCC has three clock domains (cores at 533 MHz, mesh and DRAM at
// 800 MHz in the paper's "standard preset"). Femtoseconds keep conversion
// error negligible (one 533 MHz core cycle = 1,876,172,608 fs with < 1e-9
// relative error) while a 64-bit count still covers ~5 hours of virtual
// time -- far beyond any experiment in the paper.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

#include "common/contracts.hpp"

namespace scc {

/// A point in (or duration of) virtual time, in femtoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::uint64_t femtoseconds) : fs_(femtoseconds) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::uint64_t>::max()};
  }
  static constexpr SimTime from_ns(double ns) {
    return SimTime{static_cast<std::uint64_t>(ns * 1e6)};
  }
  static constexpr SimTime from_us(double us) {
    return SimTime{static_cast<std::uint64_t>(us * 1e9)};
  }

  [[nodiscard]] constexpr std::uint64_t femtoseconds() const { return fs_; }
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(fs_) * 1e-6; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(fs_) * 1e-9; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(fs_) * 1e-12; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(fs_) * 1e-15; }

  constexpr SimTime& operator+=(SimTime rhs) {
    SCC_ASSERT(fs_ <= max().fs_ - rhs.fs_);
    fs_ += rhs.fs_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    SCC_ASSERT(fs_ >= rhs.fs_);
    fs_ -= rhs.fs_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return a += b; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return a -= b; }
  friend constexpr SimTime operator*(SimTime a, std::uint64_t k) {
    return SimTime{a.fs_ * k};
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  std::uint64_t fs_ = 0;
};

/// One clock domain (e.g. the 533 MHz core clock). Converts cycle counts to
/// SimTime durations without accumulating per-cycle rounding error.
class Clock {
 public:
  constexpr Clock() = default;
  constexpr explicit Clock(double hz) : hz_(hz) {
    SCC_EXPECTS(hz > 0.0);
  }

  [[nodiscard]] constexpr double hz() const { return hz_; }

  /// Duration of `n` cycles of this clock.
  [[nodiscard]] SimTime cycles(std::uint64_t n) const {
    // 1e15 fs per second; use long double so 1e12 cycles stays exact enough.
    const long double fs = static_cast<long double>(n) * (1e15L / static_cast<long double>(hz_));
    return SimTime{static_cast<std::uint64_t>(fs)};
  }

  /// Number of whole cycles of this clock in `t` (rounded down).
  [[nodiscard]] std::uint64_t cycles_in(SimTime t) const {
    const long double c =
        static_cast<long double>(t.femtoseconds()) * static_cast<long double>(hz_) / 1e15L;
    return static_cast<std::uint64_t>(c);
  }

 private:
  double hz_ = 1e9;
};

}  // namespace scc
