// Minimal command-line flag parsing for bench and example binaries.
// Flags use --name=value; a bare --name is the boolean "true". The
// space-separated form (--name value) is deliberately NOT supported: the
// parser has no flag registry, so it cannot tell a boolean flag followed
// by a positional from a value flag, and guessing used to swallow the
// positional (and turned "--n -5" into n="-5" or n=true depending on the
// sign). Unknown flags are an error so typos don't silently run the wrong
// experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace scc {

class CliFlags {
 public:
  /// Parses argv. Throws std::runtime_error on malformed input.
  /// Arguments not starting with "--" are collected as positionals.
  /// Anything after a literal "--" separator is ignored (left for wrapped
  /// frameworks such as google-benchmark).
  static CliFlags parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;
  /// Strict positive-integer flag shared by thread-count flags (--jobs,
  /// --workers): absent -> `fallback`; present -> must be an integer >= 1.
  /// Rejects 0, negatives and garbage with "--name must be a positive
  /// integer, got V" / get_int's "expects an integer" error.
  [[nodiscard]] int get_positive_int(const std::string& name,
                                     int fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  /// Names that were parsed but never queried -- call at the end of main to
  /// reject typos.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  mutable std::map<std::string, std::pair<std::string, bool>> values_;
  std::vector<std::string> positionals_;
};

}  // namespace scc
