// Result-table rendering: aligned ASCII tables for stdout and CSV files for
// downstream plotting. Every bench binary reports through these so the
// reproduction output has one consistent format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace scc {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

  /// Pretty-prints with column alignment.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing separators).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to a file path; throws std::runtime_error on
  /// failure to open.
  void write_csv_file(const std::string& path) const;

  /// Writes the "scc-bench-v1" JSON document bench/compare consumes: one
  /// object per row keyed by the header names. Cells that are valid JSON
  /// numbers are emitted as numbers, empty cells as null, the rest as
  /// strings. `extra_members`, when non-empty, must be one or more complete
  /// top-level members WITHOUT a leading comma (e.g. "\"histograms\": {...}")
  /// and is spliced verbatim after the rows array -- the caller owns its
  /// JSON validity. Empty (the default) emits the historical byte-identical
  /// document.
  void write_json(std::ostream& os, const std::string& name,
                  const std::string& extra_members = {}) const;
  void write_json_file(const std::string& path, const std::string& name,
                       const std::string& extra_members = {}) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scc
