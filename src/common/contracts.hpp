// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// SCC_EXPECTS(cond)  -- precondition; aborts with a diagnostic when violated.
// SCC_ENSURES(cond)  -- postcondition; same behaviour.
// SCC_ASSERT(cond)   -- internal invariant.
//
// Contracts stay enabled in all build types: the simulator is the load-bearing
// substrate for every experiment, and a silently-corrupted simulation is worse
// than a crash. The checks are branches on cold paths; profiling shows they
// are not measurable in the event loop.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace scc::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace scc::detail

#define SCC_EXPECTS(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                            \
          : ::scc::detail::contract_failure("precondition", #cond, __FILE__, \
                                            __LINE__))

#define SCC_ENSURES(cond)                                                    \
  ((cond) ? static_cast<void>(0)                                             \
          : ::scc::detail::contract_failure("postcondition", #cond, __FILE__, \
                                            __LINE__))

#define SCC_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                          \
          : ::scc::detail::contract_failure("invariant", #cond, __FILE__, \
                                            __LINE__))
