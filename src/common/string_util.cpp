#include "common/string_util.hpp"

#include <cstdarg>
#include <cstdio>

namespace scc {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string format_minutes(double seconds) {
  const bool negative = seconds < 0;
  if (negative) seconds = -seconds;
  const auto whole_minutes = static_cast<long>(seconds / 60.0);
  const double rest = seconds - static_cast<double>(whole_minutes) * 60.0;
  return strprintf("%s%ldmin %05.2fs", negative ? "-" : "", whole_minutes, rest);
}

std::string format_duration_us(double microseconds) {
  if (microseconds < 1e3) return strprintf("%.1f us", microseconds);
  if (microseconds < 1e6) return strprintf("%.2f ms", microseconds * 1e-3);
  return strprintf("%.3f s", microseconds * 1e-6);
}

}  // namespace scc
