// Deterministic pseudo-random number generation for workloads and the GCMC
// application. xoshiro256** (Blackman/Vigna, public domain algorithm),
// reimplemented here so every experiment is reproducible bit-for-bit across
// platforms -- std::mt19937 would do, but its double conversion via
// std::uniform_real_distribution is not specified identically everywhere.
#pragma once

#include <array>
#include <cstdint>

namespace scc {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so that nearby seeds give uncorrelated streams.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Jump function: advances 2^128 steps, for splitting one seed into many
  /// independent streams (one per simulated core).
  void jump();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace scc
