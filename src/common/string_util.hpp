// String helpers shared by the table writer and CLI parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace scc {

/// Splits on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "mm:ss.cc" rendering of a duration in seconds (Fig. 10 style).
[[nodiscard]] std::string format_minutes(double seconds);

/// Human-friendly duration, e.g. "432.1 us" or "12.3 ms".
[[nodiscard]] std::string format_duration_us(double microseconds);

}  // namespace scc
