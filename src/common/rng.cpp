#include "common/rng.hpp"

#include "common/contracts.hpp"

namespace scc {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // All-zero state is the one invalid state; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 high bits -> double in [0,1) with full mantissa coverage.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  SCC_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  SCC_EXPECTS(n > 0);
  // Debiased via rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace scc
