// Cache-line-aligned vector for buffers whose accesses are charged through
// the simulated cache model.
//
// Why: the cache model classifies host-memory lines. If two live buffers
// shared a 32-byte line, their hit/miss interaction would depend on where
// the host allocator happened to place them -- breaking the simulator's
// run-to-run determinism. Allocations aligned to the line size can never
// share a line, so the classification depends only on the (deterministic)
// access pattern.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace scc {

inline constexpr std::size_t kLineAlignment = 32;

template <typename T>
class LineAlignedAllocator {
 public:
  using value_type = T;

  LineAlignedAllocator() = default;
  template <typename U>
  LineAlignedAllocator(const LineAlignedAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kLineAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kLineAlignment});
  }

  friend bool operator==(const LineAlignedAllocator&,
                         const LineAlignedAllocator&) {
    return true;
  }
};

/// Vector whose storage starts on a cache-line boundary.
template <typename T>
using aligned_vector = std::vector<T, LineAlignedAllocator<T>>;

}  // namespace scc
