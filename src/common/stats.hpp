// Small online-statistics helpers used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace scc {

/// Accumulates a stream of samples; exposes count/mean/min/max/stddev.
/// Uses Welford's algorithm so variance stays numerically stable.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a sample vector (copies; callers keep their data).
[[nodiscard]] double median(std::vector<double> samples);

/// Exact sample quantile with linear interpolation between order statistics
/// (the "type 7" definition: rank h = q * (n - 1)). q must be in [0, 1];
/// the sample must be non-empty. quantile(v, 0.5) of an even-sized sample
/// equals median(v); n == 1 returns the sole sample for every q.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

/// Geometric mean; requires every sample > 0.
[[nodiscard]] double geometric_mean(const std::vector<double>& samples);

}  // namespace scc
