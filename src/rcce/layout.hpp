// MPB layout shared by the RCCE-family communication layers.
//
// Each core's 8 KB MPB is divided into:
//   [ flag lines: one 32-byte line per remote writer ][ payload chunk ]
//
// Giving every potential writer its own line keeps flag writes free of
// read-modify-write races at line granularity (the write-combining buffer
// moves whole lines), mirroring RCCE's one-line-per-flag allocation.
// Flag *indices* map into the machine's FlagFile:
//   sent(from)    -- writer `from` staged a message for me
//   ready(from)   -- writer `from` consumed the message I staged
//   barrier(r)    -- dissemination-barrier round r (single writer each)
//   mpb_filled(b)/mpb_free(b) -- MPB-direct Allreduce double buffering
//
// Lane sublayouts (Layout::lane): the non-blocking progress engine runs
// several collectives concurrently over one untagged flag fabric, which is
// only safe if concurrent schedules never share a (flag, chunk) namespace.
// A lane is a vertical slice of the same MPB: lane L gets flag indices
// [L*flags_needed, (L+1)*flags_needed) and an equal cache-line-aligned cut
// of the shared payload region. The flag *lines* (one per writer) are
// shared -- a 32-byte line carries one byte per flag, so a handful of lanes
// fits the per-writer line with no extra MPB reservation; only the payload
// chunk shrinks. Lane 0 of 1 is bit-identical to the plain layout.
#pragma once

#include <cstddef>

#include "common/contracts.hpp"
#include "machine/flags.hpp"
#include "mem/cost_model.hpp"

namespace scc::rcce {

class Layout {
 public:
  explicit Layout(int num_cores,
                  std::size_t mpb_bytes = mem::kMpbBytesPerCore)
      : num_cores_(num_cores),
        mpb_bytes_(mpb_bytes),
        payload_base_(static_cast<std::size_t>(num_cores) *
                      mem::kCacheLineBytes),
        payload_end_(mpb_bytes) {
    SCC_EXPECTS(num_cores > 0);
    SCC_EXPECTS(payload_bytes() >= mem::kCacheLineBytes);
  }

  /// Lane `which` of `lanes` equal sublayouts of the same MPB (see the file
  /// comment). Lane payload cuts are cache-line aligned; the machine's
  /// flags_per_core must cover lane `lanes-1`'s flags_needed().
  [[nodiscard]] static Layout lane(int num_cores, int which, int lanes,
                                   std::size_t mpb_bytes =
                                       mem::kMpbBytesPerCore) {
    SCC_EXPECTS(lanes >= 1);
    SCC_EXPECTS(which >= 0 && which < lanes);
    Layout l(num_cores);
    l.mpb_bytes_ = mpb_bytes;
    const std::size_t shared =
        static_cast<std::size_t>(num_cores) * mem::kCacheLineBytes;
    SCC_EXPECTS(mpb_bytes > shared);
    const std::size_t per_lane = ((mpb_bytes - shared) /
                                  static_cast<std::size_t>(lanes)) &
                                 ~(mem::kCacheLineBytes - 1);
    SCC_EXPECTS(per_lane >= mem::kCacheLineBytes);
    l.payload_base_ = shared + static_cast<std::size_t>(which) * per_lane;
    l.payload_end_ = l.payload_base_ + per_lane;
    l.flag_base_ = which * (2 * num_cores + 18);
    return l;
  }

  [[nodiscard]] int num_cores() const { return num_cores_; }

  // --- flag indices ------------------------------------------------------
  [[nodiscard]] machine::FlagRef sent_flag(int at_core, int from) const {
    check_core(at_core);
    check_core(from);
    return {at_core, flag_base_ + from};
  }
  [[nodiscard]] machine::FlagRef ready_flag(int at_core, int from) const {
    check_core(at_core);
    check_core(from);
    return {at_core, flag_base_ + num_cores_ + from};
  }
  [[nodiscard]] machine::FlagRef barrier_flag(int at_core, int round) const {
    check_core(at_core);
    SCC_EXPECTS(round >= 0 && round < 14);
    return {at_core, flag_base_ + 2 * num_cores_ + round};
  }
  /// Double-buffer handshake for the MPB-direct Allreduce: `filled` is set
  /// by the left ring neighbour, `free` by the right one -- single writer
  /// per flag either way.
  [[nodiscard]] machine::FlagRef mpb_filled_flag(int at_core, int buf) const {
    check_core(at_core);
    SCC_EXPECTS(buf == 0 || buf == 1);
    return {at_core, flag_base_ + 2 * num_cores_ + 14 + buf};
  }
  [[nodiscard]] machine::FlagRef mpb_free_flag(int at_core, int buf) const {
    check_core(at_core);
    SCC_EXPECTS(buf == 0 || buf == 1);
    return {at_core, flag_base_ + 2 * num_cores_ + 16 + buf};
  }
  /// Number of flag slots this layout requires per core (the one-past-the-
  /// end flag index, so a lane sublayout reports its own upper bound).
  [[nodiscard]] int flags_needed() const {
    return flag_base_ + 2 * num_cores_ + 18;
  }

  // --- payload ------------------------------------------------------------
  /// First payload byte of this (sub)layout; one reserved line per remote
  /// writer precedes the payload of the full layout.
  [[nodiscard]] std::size_t payload_offset() const { return payload_base_; }
  [[nodiscard]] std::size_t payload_bytes() const {
    SCC_EXPECTS(payload_end_ > payload_base_);
    return payload_end_ - payload_base_;
  }
  /// Largest message staged in one piece (RCCE chunk size).
  [[nodiscard]] std::size_t chunk_bytes() const { return payload_bytes(); }

  [[nodiscard]] mem::MpbAddr payload_addr(int core,
                                          std::size_t offset = 0) const {
    check_core(core);
    SCC_EXPECTS(offset < payload_bytes());
    return {core, payload_base_ + offset};
  }

 private:
  void check_core(int core) const {
    SCC_EXPECTS(core >= 0 && core < num_cores_);
  }

  int num_cores_;
  std::size_t mpb_bytes_;
  std::size_t payload_base_;
  std::size_t payload_end_;
  int flag_base_ = 0;
};

}  // namespace scc::rcce
